#include "export/p4.hpp"

#include <cctype>
#include <cstdio>
#include <map>

#include "util/contract.hpp"

namespace maton::exporter {

namespace {

using core::AttrKind;
using core::Attribute;
using core::Schema;
using core::Stage;
using core::ValueCodec;

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || (std::isdigit(static_cast<unsigned char>(out[0])) != 0)) {
    out.insert(out.begin(), 't');
  }
  return out;
}

/// P4 lvalue for a core attribute; names without a wire header become
/// user-metadata fields (collected by the caller).
std::string p4_lvalue(const std::string& name,
                      std::map<std::string, unsigned>* user_meta,
                      unsigned width) {
  if (name == "ip_dst") return "hdr.ipv4.dst_addr";
  if (name == "ip_src") return "hdr.ipv4.src_addr";
  if (name == "ip_ttl" || name == "mod_ttl") return "hdr.ipv4.ttl";
  if (name == "tcp_dst") return "hdr.tcp.dst_port";
  if (name == "tcp_src") return "hdr.tcp.src_port";
  if (name == "eth_type") return "hdr.ethernet.ether_type";
  if (name == "eth_src" || name == "mod_smac") return "hdr.ethernet.src_addr";
  if (name == "eth_dst" || name == "mod_dmac") return "hdr.ethernet.dst_addr";
  if (name == "in_port") return "standard_metadata.ingress_port";
  if (name == "out") return "standard_metadata.egress_spec";
  const std::string field = sanitize(name);
  if (user_meta != nullptr) {
    const auto it = user_meta->find(field);
    if (it == user_meta->end()) {
      user_meta->emplace(field, width);
    }
  }
  return "meta." + field;
}

std::string hex(core::Value v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Match value rendering; prefix tokens become `value &&& mask`.
std::string entry_key(const Attribute& attr, core::Value v) {
  if (attr.codec == ValueCodec::kIpv4Prefix) {
    const auto addr = static_cast<std::uint32_t>(v >> 8);
    const unsigned plen = static_cast<unsigned>(v & 0xff);
    const std::uint32_t mask =
        plen == 0 ? 0 : 0xffffffffu << (32 - plen);
    return hex(addr & mask) + " &&& " + hex(mask);
  }
  return hex(v);
}

}  // namespace

Result<std::string> to_p4(const core::Pipeline& pipeline,
                          const P4Options& opts) {
  if (pipeline.num_stages() == 0) {
    return failed_precondition("cannot export an empty pipeline");
  }
  if (Status s = pipeline.validate(); !s.is_ok()) return s;
  for (const Stage& stage : pipeline.stages()) {
    if (stage.uses_goto()) {
      return unimplemented(
          "goto_table joins have no structural P4 counterpart; "
          "re-normalize with JoinKind::kMetadata before exporting");
    }
  }

  // Stage order along the linear chain, skipping spliced husks.
  std::vector<std::size_t> chain;
  std::optional<std::size_t> cursor = pipeline.entry();
  while (cursor.has_value()) {
    expects(chain.size() <= pipeline.num_stages(), "cycle during export");
    if (pipeline.stage(*cursor).table.num_cols() > 0) {
      chain.push_back(*cursor);
    }
    cursor = pipeline.stage(*cursor).next;
  }

  std::map<std::string, unsigned> user_meta;
  std::string tables;
  std::string actions;

  actions +=
      "    action drop_() { mark_to_drop(standard_metadata); }\n";

  for (const std::size_t si : chain) {
    const Stage& stage = pipeline.stage(si);
    const Schema& schema = stage.table.schema();
    const std::string tname = sanitize(stage.table.name());

    // Action: one per stage, parameterized by its action columns.
    std::string params;
    std::string body;
    for (const std::size_t c : schema.action_set()) {
      const Attribute& attr = schema.at(c);
      if (!params.empty()) params += ", ";
      const std::string p = sanitize(attr.name);
      params += "bit<" + std::to_string(attr.width_bits) + "> " + p;
      body += "        " +
              p4_lvalue(attr.name, &user_meta, attr.width_bits) + " = " +
              (attr.name == "out" ? "(bit<9>)" + p : p) + ";\n";
    }
    actions += "    action " + tname + "_act(" + params + ") {\n" + body +
               "    }\n";

    // Table: keys from the match columns.
    tables += "    table " + tname + " {\n        key = {\n";
    for (const std::size_t c : schema.match_set()) {
      const Attribute& attr = schema.at(c);
      const char* kind =
          attr.codec == ValueCodec::kIpv4Prefix ? "lpm" : "exact";
      tables += "            " +
                p4_lvalue(attr.name, &user_meta, attr.width_bits) + " : " +
                kind + ";\n";
    }
    tables += "        }\n        actions = { " + tname +
              "_act; drop_; }\n        default_action = drop_();\n";

    tables += "        const entries = {\n";
    for (std::size_t r = 0; r < stage.table.num_rows(); ++r) {
      tables += "            (";
      bool first = true;
      for (const std::size_t c : schema.match_set()) {
        if (!first) tables += ", ";
        first = false;
        tables += entry_key(schema.at(c), stage.table.at(r, c));
      }
      tables += ") : " + tname + "_act(";
      first = true;
      for (const std::size_t c : schema.action_set()) {
        if (!first) tables += ", ";
        first = false;
        tables += hex(stage.table.at(r, c));
      }
      tables += ");\n";
    }
    tables += "        };\n    }\n";
  }

  // Apply block: nested hit-gating along the chain.
  std::string apply;
  std::string indent = "        ";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const std::string tname =
        sanitize(pipeline.stage(chain[i]).table.name());
    apply += indent + "if (" + tname + ".apply().hit) {\n";
    indent += "    ";
  }
  apply += indent + "/* pipeline completed */\n";
  for (std::size_t i = chain.size(); i > 0; --i) {
    indent.resize(indent.size() - 4);
    apply += indent + "}\n";
  }

  // Assemble the program.
  std::string meta_struct = "struct metadata_t {\n";
  for (const auto& [field, width] : user_meta) {
    meta_struct +=
        "    bit<" + std::to_string(width) + "> " + field + ";\n";
  }
  meta_struct += "}\n";

  std::string out;
  out += "// " + opts.program_name + " — generated by maton\n";
  out += "#include <core.p4>\n#include <v1model.p4>\n\n";
  out +=
      "header ethernet_t {\n    bit<48> dst_addr;\n    bit<48> src_addr;\n"
      "    bit<16> ether_type;\n}\n"
      "header ipv4_t {\n    bit<4>  version;\n    bit<4>  ihl;\n"
      "    bit<8>  diffserv;\n    bit<16> total_len;\n"
      "    bit<16> identification;\n    bit<16> flags_frag;\n"
      "    bit<8>  ttl;\n    bit<8>  protocol;\n    bit<16> hdr_checksum;\n"
      "    bit<32> src_addr;\n    bit<32> dst_addr;\n}\n"
      "header tcp_t {\n    bit<16> src_port;\n    bit<16> dst_port;\n"
      "    bit<96> rest;\n}\n"
      "struct headers_t {\n    ethernet_t ethernet;\n    ipv4_t ipv4;\n"
      "    tcp_t tcp;\n}\n";
  out += meta_struct;
  out +=
      "\nparser MatonParser(packet_in packet, out headers_t hdr,\n"
      "                   inout metadata_t meta,\n"
      "                   inout standard_metadata_t standard_metadata) {\n"
      "    state start {\n        packet.extract(hdr.ethernet);\n"
      "        transition select(hdr.ethernet.ether_type) {\n"
      "            0x0800: parse_ipv4;\n            default: accept;\n"
      "        }\n    }\n"
      "    state parse_ipv4 {\n        packet.extract(hdr.ipv4);\n"
      "        transition select(hdr.ipv4.protocol) {\n"
      "            6: parse_tcp;\n            default: accept;\n"
      "        }\n    }\n"
      "    state parse_tcp {\n        packet.extract(hdr.tcp);\n"
      "        transition accept;\n    }\n}\n\n";
  out += "control MatonIngress(inout headers_t hdr, inout metadata_t meta,\n"
         "                     inout standard_metadata_t standard_metadata) "
         "{\n";
  out += actions;
  out += tables;
  out += "    apply {\n" + apply + "    }\n}\n\n";
  out +=
      "control MatonVerifyChecksum(inout headers_t hdr, inout metadata_t "
      "meta) { apply { } }\n"
      "control MatonEgress(inout headers_t hdr, inout metadata_t meta,\n"
      "                    inout standard_metadata_t standard_metadata) { "
      "apply { } }\n"
      "control MatonComputeChecksum(inout headers_t hdr, inout metadata_t "
      "meta) { apply { } }\n"
      "control MatonDeparser(packet_out packet, in headers_t hdr) {\n"
      "    apply {\n        packet.emit(hdr.ethernet);\n"
      "        packet.emit(hdr.ipv4);\n        packet.emit(hdr.tcp);\n"
      "    }\n}\n\n";
  out += "V1Switch(MatonParser(), MatonVerifyChecksum(), MatonIngress(),\n"
         "         MatonEgress(), MatonComputeChecksum(), MatonDeparser()) "
         "main;\n";
  return out;
}

}  // namespace maton::exporter
