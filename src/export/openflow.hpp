// OpenFlow exporter: renders a compiled data-plane program as
// `ovs-ofctl add-flow` lines, so normalized pipelines can be loaded into
// a real OpenFlow 1.3+ switch (goto_table joins map to goto_table
// instructions, metadata tags to NXM registers).
#pragma once

#include <string>

#include "dataplane/program.hpp"

namespace maton::exporter {

struct OpenflowOptions {
  /// Bridge name used in the leading comment.
  std::string bridge = "br0";
};

/// One `table=…, priority=…, <matches>, actions=…` line per rule,
/// preceded by a per-table comment. Returns kInvalidArgument for field
/// kinds that have no OpenFlow encoding.
[[nodiscard]] Result<std::string> to_openflow(const dp::Program& program,
                                              const OpenflowOptions& opts = {});

}  // namespace maton::exporter
