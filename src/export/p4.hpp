// P4_16 exporter: renders a core pipeline as a v1model P4 program with
// one table per stage (match kinds derived from the attribute codecs),
// one action per stage's action signature, and const entries carrying the
// pipeline's rules — compilable with p4c / runnable on bmv2.
//
// Linear pipelines (metadata / rematch / product joins) export directly:
// the apply block applies the stages in order, gating each on the
// previous stage's hit. Goto joins have no direct P4 counterpart (P4's
// control flow is structural); convert to the metadata join first —
// to_p4 reports kUnimplemented for goto pipelines and says so.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace maton::exporter {

struct P4Options {
  std::string program_name = "maton_pipeline";
};

[[nodiscard]] Result<std::string> to_p4(const core::Pipeline& pipeline,
                                        const P4Options& opts = {});

}  // namespace maton::exporter
