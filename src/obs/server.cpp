#include "obs/server.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#if !defined(MATON_OBS_OFF)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "obs/diff.hpp"
#include "obs/expose.hpp"
#include "obs/trace.hpp"

namespace maton::obs {

#if defined(MATON_OBS_OFF)

// Compiled-out plane: no sockets, no threads, no state.
struct ExpoServer::State {};

ExpoServer::ExpoServer() = default;
ExpoServer::~ExpoServer() = default;

Status ExpoServer::start(const std::string& addr) {
  (void)addr;
  return unimplemented("observability compiled out (MATON_OBS_OFF)");
}

void ExpoServer::stop() {}

bool ExpoServer::running() const noexcept { return false; }

std::uint16_t ExpoServer::port() const noexcept { return 0; }

std::string ExpoServer::address() const { return ""; }

#else

namespace {

struct ParsedAddr {
  std::string host;
  std::uint16_t port = 0;
};

Result<ParsedAddr> parse_addr(const std::string& addr) {
  ParsedAddr out;
  std::string port_str = addr;
  if (const auto colon = addr.rfind(':'); colon != std::string::npos) {
    out.host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  if (out.host.empty() || out.host == "localhost") out.host = "127.0.0.1";
  if (port_str.empty()) {
    return invalid_argument("metrics address needs a port: " + addr);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) {
    return invalid_argument("bad metrics port: " + addr);
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

struct Response {
  std::string_view content_type;
  std::string body;
};

void send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to recover
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void send_response(int fd, int code, std::string_view reason,
                   std::string_view content_type, const std::string& body,
                   bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  send_all(fd, out.data(), out.size());
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct ExpoServer::State {
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::string host;
  std::thread thread;
  std::atomic<bool> stopping{false};
  std::atomic<bool> running{false};
  ScrapeDiff diff;  // touched only from the accept-loop thread

  void serve_connection(int fd) {
    // Read until the end of the request headers (or a sane cap); only
    // the request line is interpreted.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    const auto line_end = req.find("\r\n");
    if (line_end == std::string::npos) return;
    const std::string line = req.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 <= sp1) {
      send_response(fd, 400, "Bad Request", "text/plain", "bad request\n",
                    false);
      return;
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const auto q = path.find('?'); q != std::string::npos) {
      path.resize(q);  // queries are accepted and ignored
    }
    const bool head = method == "HEAD";
    if (!head && method != "GET") {
      send_response(fd, 405, "Method Not Allowed", "text/plain",
                    "only GET and HEAD\n", false);
      return;
    }

    if (path == "/healthz") {
      send_response(fd, 200, "OK", "text/plain; charset=utf-8", "ok\n",
                    head);
      return;
    }
    if (path == "/trace") {
      send_response(fd, 200, "OK", "application/json",
                    render_chrome_trace(), head);
      return;
    }
    if (path == "/metrics" || path == "/metrics.json") {
      update_derived_gauges();
      const Snapshot snap = diff.augment(MetricRegistry::global().scrape(),
                                         monotonic_seconds());
      if (path == "/metrics") {
        send_response(fd, 200, "OK",
                      "text/plain; version=0.0.4; charset=utf-8",
                      render_prometheus(snap), head);
      } else {
        send_response(fd, 200, "OK", "application/json", render_json(snap),
                      head);
      }
      return;
    }
    send_response(fd, 404, "Not Found", "text/plain", "not found\n", false);
  }

  void accept_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (stopping.load(std::memory_order_relaxed)) break;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // listening socket is gone; nothing left to serve
      }
      serve_connection(fd);
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
};

ExpoServer::ExpoServer() : state_(std::make_unique<State>()) {}

ExpoServer::~ExpoServer() { stop(); }

Status ExpoServer::start(const std::string& addr) {
  if (state_->running.load(std::memory_order_relaxed)) {
    return failed_precondition("scrape server already running");
  }
  const auto parsed = parse_addr(addr);
  if (!parsed.is_ok()) return parsed.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(parsed.value().port);
  if (::inet_pton(AF_INET, parsed.value().host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return invalid_argument("bad metrics host (want IPv4 literal): " +
                            parsed.value().host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const Status err =
        internal_error("bind " + addr + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 16) != 0) {
    const Status err =
        internal_error("listen " + addr + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status err =
        internal_error(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return err;
  }

  state_->listen_fd = fd;
  state_->port = ntohs(bound.sin_port);
  state_->host = parsed.value().host;
  state_->stopping.store(false, std::memory_order_relaxed);
  state_->running.store(true, std::memory_order_relaxed);
  state_->thread = std::thread([s = state_.get()] { s->accept_loop(); });
  return Status::ok();
}

void ExpoServer::stop() {
  if (!state_->running.load(std::memory_order_relaxed)) return;
  state_->stopping.store(true, std::memory_order_relaxed);
  // Unblock accept(): shutdown() wakes it on Linux; close() finishes the
  // job everywhere else.
  ::shutdown(state_->listen_fd, SHUT_RDWR);
  ::close(state_->listen_fd);
  if (state_->thread.joinable()) state_->thread.join();
  state_->listen_fd = -1;
  state_->port = 0;
  state_->running.store(false, std::memory_order_relaxed);
}

bool ExpoServer::running() const noexcept {
  return state_->running.load(std::memory_order_relaxed);
}

std::uint16_t ExpoServer::port() const noexcept { return state_->port; }

std::string ExpoServer::address() const {
  if (!running()) return "";
  return state_->host + ":" + std::to_string(state_->port);
}

#endif  // MATON_OBS_OFF

Status start_from_env(ExpoServer& server) {
  const char* addr = std::getenv("MATON_METRICS_ADDR");
  if (addr == nullptr || *addr == '\0') return Status::ok();
  return server.start(addr);
}

}  // namespace maton::obs
