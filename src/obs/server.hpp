// ExpoServer: a minimal embedded HTTP/1.1 scrape server so a long-
// running process (maton-soak, matonc on a big input, a future
// controller service) can be watched live instead of post-mortem.
//
// Endpoints (GET/HEAD, Connection: close):
//   /metrics        Prometheus text exposition of the global registry,
//                   augmented by a ScrapeDiff (per-interval *_per_sec
//                   rates, *_hwm high-watermarks, fallback ratio) and
//                   the derived process gauges (RSS, ring occupancy,
//                   maton_build_info)
//   /metrics.json   the same augmented snapshot as JSON
//   /trace          Chrome trace_event JSON of the merged per-thread
//                   span rings (loads in chrome://tracing / Perfetto)
//   /healthz        200 "ok\n"
//
// Design: one blocking accept loop on a background std::thread, one
// connection served at a time, no keep-alive, no external dependencies —
// a scrape every few seconds is the intended load, not a web workload.
// Requests are served sequentially, so consecutive scrapes observe
// nondecreasing counters and the ScrapeDiff state needs no locking.
//
// Start via start("host:port") — port 0 binds an ephemeral port,
// re-readable through port() — or start_from_env(), which reads
// MATON_METRICS_ADDR and treats an unset variable as "don't serve".
// stop() (also run by the destructor) closes the listening socket and
// joins the thread.
//
// Under MATON_OBS_OFF the server is compiled out: start() returns
// kUnimplemented and no socket or thread is ever created, so binaries
// built without observability are bit-identical in behavior modulo that
// status.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.hpp"

namespace maton::obs {

class ExpoServer {
 public:
  ExpoServer();
  ~ExpoServer();
  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Binds `addr` ("host:port"; ":port" and bare "port" bind 127.0.0.1,
  /// port 0 picks an ephemeral port) and starts the accept loop.
  /// Errors: kUnimplemented under MATON_OBS_OFF, kFailedPrecondition if
  /// already running, kInvalidArgument / kInternal on bad addresses and
  /// socket failures.
  [[nodiscard]] Status start(const std::string& addr);

  /// Stops the accept loop and joins the thread; idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Actual bound port (resolves port 0), 0 when not running.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// "host:port" with the actual bound port, "" when not running.
  [[nodiscard]] std::string address() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Starts `server` on MATON_METRICS_ADDR when that variable is set.
/// Unset is not an error (returns ok, server not running); set-but-
/// unusable (bad address, port in use, MATON_OBS_OFF build) returns the
/// start() error so the caller can surface it.
[[nodiscard]] Status start_from_env(ExpoServer& server);

}  // namespace maton::obs
