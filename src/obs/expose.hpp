// Exposition: render a MetricRegistry snapshot as Prometheus text
// format or JSON, and helpers for writing scrapes/traces to files
// driven by environment variables (used by the bench binaries so shell
// wrappers can collect telemetry without touching the bench CLI).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace maton::obs {

/// Prometheus text exposition (v0.0.4): one `# TYPE` line per metric
/// family, then one sample line per metric; histograms emit cumulative
/// `_bucket{le=...}` samples for every non-empty bucket plus
/// `le="+Inf"`, `_sum`, and `_count`. Deterministic output for a given
/// snapshot.
[[nodiscard]] std::string render_prometheus(const Snapshot& snapshot);

/// JSON exposition: an array of metric objects mirroring MetricSnapshot
/// (name, labels, kind, value / buckets+sum+count).
[[nodiscard]] std::string render_json(const Snapshot& snapshot);

/// Convenience: scrape the global registry and render.
[[nodiscard]] std::string render_prometheus();
[[nodiscard]] std::string render_json();

/// Writes `text` to `path` (truncating). Status error on I/O failure.
Status write_text_file(const std::string& path, const std::string& text);

/// If MATON_METRICS_OUT is set, writes the global registry scrape there
/// (".prom" suffix selects Prometheus text, anything else JSON). If
/// MATON_TRACE_OUT is set, writes the Chrome trace JSON there. Returns
/// the first error; missing env vars are not errors.
Status write_exports_from_env();

}  // namespace maton::obs
