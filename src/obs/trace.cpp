#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace maton::obs {

namespace {

/// Sequential thread ids (steady, small) instead of opaque
/// std::thread::id values, so the Chrome trace shows "thread 0/1/2".
std::uint32_t this_thread_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint32_t t_depth = 0;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void copy_name(std::array<char, 48>& dst, std::string_view src) noexcept {
  const std::size_t n = std::min(src.size(), dst.size() - 1);
  std::memcpy(dst.data(), src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct Tracer::State {
  mutable std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;           // write cursor
  std::uint64_t total = 0;        // spans ever recorded
};

Tracer::State& Tracer::state() const {
  // Leaked for the same reason as MetricRegistry::global(): spans may be
  // recorded from destructors of static-lifetime objects.
  static State* instance = new State();
  return *instance;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::record(std::string_view name, std::uint32_t tid,
                    std::uint32_t depth, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.ring.size() < kCapacity) {
    s.ring.emplace_back();
    TraceEvent& e = s.ring.back();
    copy_name(e.name, name);
    e.tid = tid;
    e.depth = depth;
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
  } else {
    TraceEvent& e = s.ring[s.next % kCapacity];
    copy_name(e.name, name);
    e.tid = tid;
    e.depth = depth;
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
  }
  ++s.next;
  ++s.total;
}

Tracer::Contents Tracer::contents() const {
  const State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  Contents out;
  out.total_recorded = s.total;
  if (s.ring.size() < kCapacity) {
    out.events = s.ring;
  } else {
    // The slot at `next % kCapacity` is the oldest surviving span.
    out.events.reserve(kCapacity);
    const std::size_t head = s.next % kCapacity;
    out.events.insert(out.events.end(), s.ring.begin() + head, s.ring.end());
    out.events.insert(out.events.end(), s.ring.begin(),
                      s.ring.begin() + head);
  }
  return out;
}

void Tracer::clear() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.ring.clear();
  s.next = 0;
  s.total = 0;
}

TraceSpan::TraceSpan(std::string_view name) noexcept {
#if !defined(MATON_OBS_OFF)
  copy_name(name_, name);
  ++t_depth;
  start_ = std::chrono::steady_clock::now();
#else
  (void)name;
#endif
}

TraceSpan::~TraceSpan() {
#if !defined(MATON_OBS_OFF)
  const std::uint64_t end = now_ns();
  const std::uint64_t start = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start_.time_since_epoch())
          .count());
  --t_depth;
  Tracer::global().record(std::string_view(name_.data()), this_thread_tid(),
                          t_depth, start, end > start ? end - start : 0);
#endif
}

std::string render_chrome_trace(const Tracer::Contents& c) {
  std::string out;
  out.reserve(128 + c.events.size() * 120);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : c.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name_view());
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // Chrome expects microsecond floats; keep ns precision via 3 dp.
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(e.start_ns / 1000),
                  static_cast<unsigned long long>(e.start_ns % 1000),
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out += buf;
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"total_recorded\":";
  out += std::to_string(c.total_recorded);
  out += "}}";
  return out;
}

std::string render_chrome_trace() {
  return render_chrome_trace(Tracer::global().contents());
}

}  // namespace maton::obs
