#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

namespace maton::obs {

namespace {

#if !defined(MATON_OBS_OFF)
thread_local std::uint32_t t_depth = 0;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

void copy_name(std::array<char, 48>& dst, std::string_view src) noexcept {
  const std::size_t n = std::min(src.size(), dst.size() - 1);
  std::memcpy(dst.data(), src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Deterministic merge order: nondecreasing start time; ties broken by
/// thread, then nesting depth (a parent that shares its child's coarse
/// start timestamp renders first), then name.
bool event_before(const TraceEvent& a, const TraceEvent& b) noexcept {
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.depth != b.depth) return a.depth < b.depth;
  return a.name_view() < b.name_view();
}

}  // namespace

void TraceRing::record(std::string_view name, std::uint32_t tid,
                       std::uint32_t depth, std::uint64_t start_ns,
                       std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.emplace_back();
  }
  TraceEvent& e = ring_[next_ % kCapacity];
  copy_name(e.name, name);
  e.tid = tid;
  e.depth = depth;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  ++next_;
  ++total_;
}

TraceRing::Contents TraceRing::contents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Contents out;
  out.total_recorded = total_;
  if (ring_.size() < kCapacity) {
    out.events = ring_;
  } else {
    // The slot at `next % kCapacity` is the oldest surviving span.
    out.events.reserve(kCapacity);
    const std::size_t head = next_ % kCapacity;
    out.events.insert(out.events.end(), ring_.begin() + head, ring_.end());
    out.events.insert(out.events.end(), ring_.begin(), ring_.begin() + head);
  }
  return out;
}

TraceRing::Stats TraceRing::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.size(), total_};
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

TracerRegistry& TracerRegistry::global() {
  // Leaked for the same reason as MetricRegistry::global(): spans may be
  // recorded from destructors of static-lifetime objects.
  static TracerRegistry* instance = new TracerRegistry();
  return *instance;
}

std::uint32_t TracerRegistry::this_thread_tid() noexcept {
  // Sequential thread ids (steady, small) instead of opaque
  // std::thread::id values, so the Chrome trace shows "thread 0/1/2".
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRing& TracerRegistry::this_thread_ring() {
  // The cache is sound because the only TracerRegistry is the leaked
  // global(): the ring it hands out lives forever.
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<TraceRing>();
    ring = owned.get();
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::move(owned));
  }
  return *ring;
}

TraceRing::Contents TracerRegistry::merged() const {
  // Snapshot the ring list first (registration only appends; the
  // unique_ptrs are stable), then copy each ring out under its own lock.
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  TraceRing::Contents out;
  for (const TraceRing* ring : rings) {
    TraceRing::Contents c = ring->contents();
    out.total_recorded += c.total_recorded;
    out.events.insert(out.events.end(), c.events.begin(), c.events.end());
  }
  std::sort(out.events.begin(), out.events.end(), event_before);
  return out;
}

TracerRegistry::Occupancy TracerRegistry::occupancy() const {
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  Occupancy out;
  out.rings = rings.size();
  out.capacity = rings.size() * TraceRing::kCapacity;
  for (const TraceRing* ring : rings) {
    const TraceRing::Stats s = ring->stats();
    out.events += s.occupied;
    out.total_recorded += s.total_recorded;
  }
  return out;
}

void TracerRegistry::clear() {
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  for (TraceRing* ring : rings) ring->clear();
}

TraceSpan::TraceSpan(std::string_view name) noexcept {
#if !defined(MATON_OBS_OFF)
  copy_name(name_, name);
  ++t_depth;
  start_ = std::chrono::steady_clock::now();
#else
  (void)name;
#endif
}

TraceSpan::~TraceSpan() {
#if !defined(MATON_OBS_OFF)
  const std::uint64_t end = now_ns();
  const std::uint64_t start = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start_.time_since_epoch())
          .count());
  --t_depth;
  TracerRegistry::global().record(std::string_view(name_.data()),
                                  TracerRegistry::this_thread_tid(), t_depth,
                                  start, end > start ? end - start : 0);
#endif
}

std::string render_chrome_trace(const TraceRing::Contents& c) {
  std::string out;
  out.reserve(128 + c.events.size() * 120);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : c.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name_view());
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // Chrome expects microsecond floats; keep ns precision via 3 dp.
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(e.start_ns / 1000),
                  static_cast<unsigned long long>(e.start_ns % 1000),
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out += buf;
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"total_recorded\":";
  out += std::to_string(c.total_recorded);
  out += "}}";
  return out;
}

std::string render_chrome_trace() {
  return render_chrome_trace(TracerRegistry::global().merged());
}

}  // namespace maton::obs
