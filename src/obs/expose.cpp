#include "obs/expose.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/trace.hpp"

namespace maton::obs {

namespace {

/// Formats a double the way Prometheus expects: integers without a
/// fractional part, +Inf spelled out, otherwise shortest round-trip-ish
/// representation (%.17g is overkill for exposition; %.9g keeps lines
/// readable and is exact for every value we record).
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_escaped(std::string& out, std::string_view s, bool json) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (json && static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Renders `{key="value",...}` with an optional extra `le` label.
/// Returns "" when there is nothing to render.
std::string prom_labels(const Labels& labels, const std::string* le) {
  if (labels.empty() && le == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v, /*json=*/false);
    out += '"';
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += *le;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string_view last_family;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != last_family) {
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += to_string(m.kind);
      out += '\n';
      last_family = m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += m.name;
        out += prom_labels(m.labels, nullptr);
        out += ' ';
        out += format_value(m.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (const auto& [upper, count] : m.buckets) {
          cumulative += count;
          const std::string le = format_value(upper);
          out += m.name;
          out += "_bucket";
          out += prom_labels(m.labels, &le);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        const std::string inf = "+Inf";
        out += m.name;
        out += "_bucket";
        out += prom_labels(m.labels, &inf);
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        out += m.name;
        out += "_sum";
        out += prom_labels(m.labels, nullptr);
        out += ' ';
        out += format_value(m.sum);
        out += '\n';
        out += m.name;
        out += "_count";
        out += prom_labels(m.labels, nullptr);
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "[";
  bool first_metric = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "\n {\"name\":\"";
    append_escaped(out, m.name, /*json=*/true);
    out += "\",\"kind\":\"";
    out += to_string(m.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      append_escaped(out, k, /*json=*/true);
      out += "\":\"";
      append_escaped(out, v, /*json=*/true);
      out += '"';
    }
    out += '}';
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += ",\"value\":";
        out += format_value(m.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (const auto& [upper, count] : m.buckets) {
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += "{\"le\":";
          out += std::isinf(upper) ? std::string("\"+Inf\"")
                                   : format_value(upper);
          out += ",\"count\":";
          out += std::to_string(count);
          out += '}';
        }
        out += "],\"sum\":";
        out += format_value(m.sum);
        out += ",\"count\":";
        out += std::to_string(m.count);
        break;
      }
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

std::string render_prometheus() {
  return render_prometheus(MetricRegistry::global().scrape());
}

std::string render_json() {
  return render_json(MetricRegistry::global().scrape());
}

Status write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return internal_error("cannot open for writing: " + path);
  out << text;
  out.flush();
  if (!out) return internal_error("short write: " + path);
  return Status::ok();
}

Status write_exports_from_env() {
  if (const char* metrics_path = std::getenv("MATON_METRICS_OUT")) {
    const std::string path(metrics_path);
    const bool prom = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".prom") == 0;
    const Status wrote =
        write_text_file(path, prom ? render_prometheus() : render_json());
    if (!wrote.is_ok()) return wrote;
  }
  if (const char* trace_path = std::getenv("MATON_TRACE_OUT")) {
    const Status wrote =
        write_text_file(trace_path, render_chrome_trace());
    if (!wrote.is_ok()) return wrote;
  }
  return Status::ok();
}

}  // namespace maton::obs
