#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/contract.hpp"

namespace maton::obs {

namespace detail {

std::size_t shard_id() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return id;
}

}  // namespace detail

Histogram::Totals Histogram::totals() const {
  Totals out;
  out.buckets.assign(kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : out.buckets) out.count += c;
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

/// Map key: metric name plus the normalized (sorted) label set. Using
/// the structured pair keeps ordering deterministic without inventing a
/// serialization that could collide on label values containing
/// separators.
using MetricKey = std::pair<std::string, Labels>;

}  // namespace

struct MetricRegistry::Entry {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct MetricRegistry::State {
  mutable std::mutex mutex;
  // std::map for stable iteration order and node stability: Entry
  // addresses (and therefore the metric objects behind the unique_ptrs)
  // never move after insertion.
  std::map<MetricKey, Entry> metrics;
};

MetricRegistry::MetricRegistry() : state_(std::make_unique<State>()) {}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::global() {
  // Leaked on purpose: instrumented code may record through cached
  // handles during static destruction; the registry must outlive them.
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

MetricRegistry::Entry& MetricRegistry::find_or_create(std::string_view name,
                                                      Labels labels,
                                                      MetricKind kind) {
  expects(!name.empty(), "metric name must be non-empty");
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(state_->mutex);
  MetricKey key{std::string(name), std::move(labels)};
  auto [it, inserted] = state_->metrics.try_emplace(std::move(key));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    expects(entry.kind == kind,
            "metric re-registered with a different kind");
  }
  return entry;
}

Counter& MetricRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kCounter)
              .counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kGauge).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

Snapshot MetricRegistry::scrape() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(state_->mutex);
  snap.metrics.reserve(state_->metrics.size());
  for (const auto& [key, entry] : state_->metrics) {
    MetricSnapshot m;
    m.name = key.first;
    m.labels = key.second;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.value = static_cast<double>(entry.counter->total());
        m.count = entry.counter->total();
        break;
      case MetricKind::kGauge:
        m.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram::Totals totals = entry.histogram->totals();
        for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          if (totals.buckets[b] != 0) {
            m.buckets.emplace_back(Histogram::bucket_upper(b),
                                   totals.buckets[b]);
          }
        }
        m.sum = totals.sum;
        m.count = totals.count;
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void MetricRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (auto& [key, entry] : state_->metrics) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

}  // namespace maton::obs
