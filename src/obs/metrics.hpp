// Process-wide metric registry: named, labeled counters, gauges and
// log-linear histograms.
//
// The hot path is one relaxed atomic add on a per-thread shard — no
// locks, no false sharing (shards are cache-line padded) — so switch
// models and classifier kernels can bump metrics from the packet path
// and from every replay queue concurrently. Aggregation happens only on
// scrape(), which sums the shards under the registry mutex. Compiling
// with -DMATON_OBS_OFF turns every recording call into an empty inline
// function (zero instructions, zero clock reads); registration and
// scraping still compile so call sites never branch on the switch.
//
// Metric identity is (name, sorted label set). Registered metric objects
// are never deallocated while the registry lives, so call sites resolve
// a handle once (at load/setup time) and record through the raw pointer.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maton::obs {

#if defined(MATON_OBS_OFF)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Sorted-by-key label set, e.g. {{"model","eswitch"},{"table","svc"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Shard count for per-thread striping. Power of two; more shards than
/// this rarely helps because scrape cost grows linearly with it.
inline constexpr std::size_t kShards = 8;

/// Stable per-thread shard index in [0, kShards), assigned round-robin
/// on first use per thread.
[[nodiscard]] std::size_t shard_id() noexcept;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

/// fetch_add for doubles via CAS (portable across standard libraries
/// that lack std::atomic<double>::fetch_add).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kEnabled) {
      shards_[detail::shard_id()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }

  /// Sum over shards (scrape path; monotone between concurrent adds).
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_;
};

/// Last-write-wins instantaneous value (e.g. cache occupancy). Not
/// sharded: gauges are set at update frequency, not packet frequency,
/// and concurrent setters racing to the same label set is a semantic
/// tie, not a data race (the value is a single atomic).
class Gauge {
 public:
  void set(double v) noexcept {
    if constexpr (kEnabled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void add(double d) noexcept {
    if constexpr (kEnabled) {
      detail::atomic_add(value_, d);
    } else {
      (void)d;
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear histogram over non-negative values (latencies in ns,
/// chunk sizes, ...). Buckets: values below 8 are exact; above, each
/// power-of-two octave splits into 8 sub-buckets, so the relative
/// bucket-width error is bounded by 12.5% across the full uint64 range.
/// observe() truncates the sample to an integer for bucketing but
/// accumulates the exact value into sum().
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  /// 8 exact small buckets + 8 per octave for octaves 3..63.
  static constexpr std::size_t kNumBuckets = kSub + (64 - kSubBits) * kSub;

  /// Bucket index holding integer value `u`.
  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t u) noexcept {
    if (u < kSub) return static_cast<std::size_t>(u);
    const unsigned octave = std::bit_width(u) - 1;  // >= kSubBits
    const std::uint64_t minor = (u >> (octave - kSubBits)) & (kSub - 1);
    return kSub + (octave - kSubBits) * kSub + static_cast<std::size_t>(minor);
  }

  /// Smallest integer value mapping to bucket `b` (inverse of bucket_of).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t b) noexcept {
    if (b < kSub) return b;
    const std::size_t octave_off = (b - kSub) / kSub;
    const std::uint64_t minor = (b - kSub) % kSub;
    return (kSub + minor) << octave_off;
  }

  /// Exclusive upper bound of bucket `b` (lower bound of the next).
  [[nodiscard]] static constexpr double bucket_upper(std::size_t b) noexcept {
    if (b + 1 >= kNumBuckets) {
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(bucket_lower(b + 1));
  }

  void observe(double v) noexcept {
    if constexpr (kEnabled) {
      const double clamped = v < 0.0 ? 0.0 : v;
      const std::uint64_t u =
          clamped >= 9.2e18 ? ~std::uint64_t{0}
                            : static_cast<std::uint64_t>(clamped);
      Shard& s = shards_[detail::shard_id()];
      s.buckets[bucket_of(u)].fetch_add(1, std::memory_order_relaxed);
      detail::atomic_add(s.sum, clamped);
    } else {
      (void)v;
    }
  }

  /// Aggregated bucket counts (size kNumBuckets), exact sample sum and
  /// total count, summed over shards.
  struct Totals {
    std::vector<std::uint64_t> buckets;
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Totals totals() const;

  void reset() noexcept;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0.0};
    // Pad to a cache line past the sum so adjacent shards' sums don't
    // false-share.
    char pad[64];
  };
  std::array<Shard, detail::kShards> shards_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// Point-in-time aggregated view of one metric.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter total or gauge value.
  double value = 0.0;
  /// Histogram data (kHistogram only): (exclusive upper bound, count)
  /// for every non-empty bucket, in ascending bucket order.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Deterministically ordered scrape: metrics sorted by (name, labels).
struct Snapshot {
  std::vector<MetricSnapshot> metrics;
};

/// Owns every registered metric. Registration is mutexed (cold path);
/// recording goes through the returned handles without touching the
/// registry again.
class MetricRegistry {
 public:
  MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;
  ~MetricRegistry();

  /// The process-wide registry every instrumentation site uses.
  [[nodiscard]] static MetricRegistry& global();

  /// Finds or creates the metric. Labels need not be pre-sorted; they
  /// are normalized to ascending key order. Registering the same
  /// (name, labels) with a different kind is a contract violation.
  [[nodiscard]] Counter& counter(std::string_view name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     Labels labels = {});

  [[nodiscard]] Snapshot scrape() const;

  /// Zeroes every registered metric's value. Registrations (and handed-
  /// out handles) stay valid — this resets data, not identity.
  void reset_values();

 private:
  struct Entry;
  struct State;
  Entry& find_or_create(std::string_view name, Labels labels,
                        MetricKind kind);
  std::unique_ptr<State> state_;
};

}  // namespace maton::obs
