// Rate/delta layer over MetricRegistry scrapes, plus the process-level
// derived gauges the live scrape endpoints serve.
//
// A raw scrape is a pile of monotone totals; watching a soak live needs
// per-interval rates and peaks. ScrapeDiff keeps the previous scrape and
// augments the current one with:
//
//   <counter>_per_sec   gauge: (cur − prev) / dt for every counter seen
//                       in both scrapes (omitted on the first scrape and
//                       re-baselined without emitting after a reset)
//   <gauge>_hwm         gauge: the highest value this ScrapeDiff has
//                       observed for each gauge (RSS, ring occupancy,
//                       fallback ratio, ... — whatever is registered)
//   maton_cp_incremental_fallback_ratio
//                       gauge: fallbacks / (hits + fallbacks) over the
//                       incremental-compile counters, 0 until any intent
//                       compiled
//
// update_derived_gauges() refreshes the point-in-time process gauges the
// ratios and watermarks are computed over: RSS from /proc/self/status,
// trace-ring occupancy from the TracerRegistry, and the constant
// maton_build_info gauge carrying the same provenance fields the
// BENCH_*.json `env` blocks record.
//
// Under MATON_OBS_OFF every registry write is a no-op (gauges read 0)
// and augment() passes snapshots through with nothing to derive; the
// layer compiles either way so call sites never branch on the switch.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace maton::obs {

/// Build provenance, identical in source to the BENCH_*.json env blocks:
/// build type from the MATON_BUILD_TYPE compile definition, core count
/// from the host, obs on/off from the compile switch.
struct BuildInfo {
  std::string build_type;
  unsigned host_cores = 0;
  bool obs_enabled = false;
};
[[nodiscard]] BuildInfo build_info();

/// Current resident set size in bytes (VmRSS) and its process-lifetime
/// peak (VmHWM), from /proc/self/status; 0 where /proc is unavailable.
[[nodiscard]] std::uint64_t read_rss_bytes();
[[nodiscard]] std::uint64_t read_peak_rss_bytes();

/// Refreshes the derived point-in-time gauges in the global registry:
///   maton_build_info{build_type,cores,obs} = 1
///   maton_rss_bytes, maton_rss_peak_bytes
///   maton_trace_rings, maton_trace_ring_events,
///   maton_trace_ring_capacity, maton_trace_spans_recorded_total (gauge:
///   spans ever recorded, incl. wrapped-out ones)
/// Called by the scrape server before every scrape; cheap enough to call
/// from any exporter.
void update_derived_gauges();

/// Stateful scrape differ. Not thread-safe: the scrape server serializes
/// requests, and independent consumers should own independent instances.
class ScrapeDiff {
 public:
  /// Folds `snapshot` (taken at `now_seconds`, any monotone clock) into
  /// the diff state and returns it augmented with the derived metrics
  /// described above, re-sorted to the registry's (name, labels) order.
  [[nodiscard]] Snapshot augment(Snapshot snapshot, double now_seconds);

 private:
  using Key = std::pair<std::string, Labels>;
  std::map<Key, double> last_counters_;
  std::map<Key, double> gauge_hwm_;
  double last_time_seconds_ = 0.0;
  bool has_last_ = false;
};

}  // namespace maton::obs
