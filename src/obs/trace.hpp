// Phase tracing: TraceSpan is an RAII scope timer that records one
// completed span (name, thread, start, duration, nesting depth) into a
// process-wide fixed-capacity ring buffer on destruction. Spans are
// meant for phase-frequency events — a churn intent, a TANE lattice
// level, a batch round — not per-packet work, so the ring is guarded by
// a plain mutex and the hot cost is two steady_clock reads per span.
//
// The ring keeps the most recent kCapacity spans; older ones are
// overwritten. render_chrome_trace() exports the buffer as Chrome
// trace_event JSON ("X" complete events, microsecond timestamps) that
// loads directly in chrome://tracing or Perfetto.
//
// With MATON_OBS_OFF, TraceSpan is an empty object: no clock reads, no
// recording; the exporter renders an empty event list.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace maton::obs {

#if defined(MATON_OBS_OFF)
inline constexpr bool kTraceEnabled = false;
#else
inline constexpr bool kTraceEnabled = true;
#endif

/// One completed span, as stored in the ring.
struct TraceEvent {
  /// Span name, truncated to fit (no allocation on the record path).
  std::array<char, 48> name{};
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;

  [[nodiscard]] std::string_view name_view() const noexcept {
    return std::string_view(name.data());
  }
};

/// Process-wide span ring buffer.
class Tracer {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 14;

  [[nodiscard]] static Tracer& global();

  /// Appends a completed span, overwriting the oldest if full.
  void record(std::string_view name, std::uint32_t tid, std::uint32_t depth,
              std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Spans in recording order (oldest surviving first). Total number of
  /// spans ever recorded is reported separately so callers can tell how
  /// many wrapped out.
  struct Contents {
    std::vector<TraceEvent> events;
    std::uint64_t total_recorded = 0;
  };
  [[nodiscard]] Contents contents() const;

  void clear();

 private:
  Tracer() = default;
  struct State;
  State& state() const;
};

/// RAII phase timer. Construct at scope entry; the span is recorded
/// when the object is destroyed. Nesting depth is tracked per thread.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if !defined(MATON_OBS_OFF)
  std::array<char, 48> name_{};
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Renders the ring (or `contents` if given) as a Chrome trace_event
/// JSON document: {"traceEvents": [{"ph":"X", ...}, ...]}.
[[nodiscard]] std::string render_chrome_trace();
[[nodiscard]] std::string render_chrome_trace(const Tracer::Contents& c);

}  // namespace maton::obs
