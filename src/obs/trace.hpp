// Phase tracing: TraceSpan is an RAII scope timer that records one
// completed span (name, thread, start, duration, nesting depth) into the
// calling thread's TraceRing on destruction. Spans are meant for
// phase-frequency events — a churn intent, a TANE lattice level, a batch
// round, a replay queue pass — not per-packet work.
//
// Rings are strictly per-thread: each thread lazily creates one ring and
// registers it with the process-wide TracerRegistry on its first span.
// The record path therefore only ever takes its own ring's mutex, which
// is uncontended unless a scrape is copying that specific ring out — the
// multi-queue replay workers never serialize against each other the way
// they did on the old single shared ring. Rings outlive their threads
// (the registry owns them), so spans from joined workers still export.
//
// Each ring keeps its most recent kCapacity spans; older ones are
// overwritten. TracerRegistry::merged() snapshots every ring and merges
// them into one deterministically ordered event list — sorted by
// (start_ns, tid, depth) — so the export is in nondecreasing timestamp
// order even when individual rings have wrapped or hold out-of-start-
// order events (nested spans complete innermost-first).
// render_chrome_trace() exports the merge as Chrome trace_event JSON
// ("X" complete events, microsecond timestamps) that loads directly in
// chrome://tracing or Perfetto.
//
// With MATON_OBS_OFF, TraceSpan is an empty object: no clock reads, no
// recording; the exporter renders an empty event list.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maton::obs {

#if defined(MATON_OBS_OFF)
inline constexpr bool kTraceEnabled = false;
#else
inline constexpr bool kTraceEnabled = true;
#endif

/// One completed span, as stored in a ring.
struct TraceEvent {
  /// Span name, truncated to fit (no allocation on the record path).
  std::array<char, 48> name{};
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;

  [[nodiscard]] std::string_view name_view() const noexcept {
    return std::string_view(name.data());
  }
};

/// Fixed-capacity span ring with a single producer (the owning thread).
/// The mutex exists only so a concurrent scrape can copy the ring out
/// without tearing events; the producer never contends with other
/// producers.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 14;

  /// Appends a completed span, overwriting the oldest if full.
  void record(std::string_view name, std::uint32_t tid, std::uint32_t depth,
              std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Spans in recording order (oldest surviving first). Total number of
  /// spans ever recorded is reported separately so callers can tell how
  /// many wrapped out.
  struct Contents {
    std::vector<TraceEvent> events;
    std::uint64_t total_recorded = 0;
  };
  [[nodiscard]] Contents contents() const;

  /// Spans currently held (≤ kCapacity) and ever recorded.
  struct Stats {
    std::size_t occupied = 0;
    std::uint64_t total_recorded = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     // write cursor
  std::uint64_t total_ = 0;  // spans ever recorded
};

/// Process-wide registry of per-thread rings: hands each thread its own
/// ring on first use, and merges all rings into one deterministically
/// ordered export.
class TracerRegistry {
 public:
  [[nodiscard]] static TracerRegistry& global();

  /// The calling thread's ring, created and registered on first use.
  /// Rings are owned by the registry and never deallocated, so cached
  /// references stay valid past thread exit.
  [[nodiscard]] TraceRing& this_thread_ring();

  /// Stable sequential id of the calling thread (0, 1, 2, ... in first-
  /// span order), used as the Chrome trace tid.
  [[nodiscard]] static std::uint32_t this_thread_tid() noexcept;

  /// Records into the calling thread's ring (TraceSpan's path; also the
  /// tests' hook for synthesizing spans with explicit timestamps).
  void record(std::string_view name, std::uint32_t tid, std::uint32_t depth,
              std::uint64_t start_ns, std::uint64_t dur_ns) {
    this_thread_ring().record(name, tid, depth, start_ns, dur_ns);
  }

  /// Snapshot of every ring merged into one event list, sorted by
  /// (start_ns, tid, depth, name): nondecreasing timestamps regardless
  /// of per-ring wrap state, and deterministic for a given set of
  /// events. total_recorded sums over rings.
  [[nodiscard]] TraceRing::Contents merged() const;

  /// Ring-occupancy roll-up for the derived gauges.
  struct Occupancy {
    std::size_t rings = 0;
    std::size_t events = 0;    ///< spans currently held across rings
    std::size_t capacity = 0;  ///< rings × kCapacity
    std::uint64_t total_recorded = 0;
  };
  [[nodiscard]] Occupancy occupancy() const;

  /// Clears every registered ring (rings stay registered).
  void clear();

 private:
  TracerRegistry() = default;
  mutable std::mutex mutex_;  // guards rings_ (registration + iteration)
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

/// RAII phase timer. Construct at scope entry; the span is recorded
/// when the object is destroyed. Nesting depth is tracked per thread.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if !defined(MATON_OBS_OFF)
  std::array<char, 48> name_{};
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Renders the merged registry (or `contents` if given) as a Chrome
/// trace_event JSON document: {"traceEvents": [{"ph":"X", ...}, ...]}.
[[nodiscard]] std::string render_chrome_trace();
[[nodiscard]] std::string render_chrome_trace(const TraceRing::Contents& c);

}  // namespace maton::obs
