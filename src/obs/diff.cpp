#include "obs/diff.hpp"

#include <algorithm>
#include <fstream>
#include <string>
#include <thread>

#include "obs/trace.hpp"

#ifndef MATON_BUILD_TYPE
#define MATON_BUILD_TYPE "unknown"
#endif

namespace maton::obs {

namespace {

/// Parses a "Vm...:  12345 kB" line from /proc/self/status.
std::uint64_t proc_status_kb(std::string_view field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::strtoull(line.c_str() + field.size(), nullptr, 10);
    }
  }
  return 0;
}

bool snapshot_key_before(const MetricSnapshot& a, const MetricSnapshot& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

MetricSnapshot derived_gauge(std::string name, Labels labels, double value) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.labels = std::move(labels);
  m.kind = MetricKind::kGauge;
  m.value = value;
  return m;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.build_type = MATON_BUILD_TYPE;
  info.host_cores = std::thread::hardware_concurrency();
  info.obs_enabled = kEnabled;
  return info;
}

std::uint64_t read_rss_bytes() { return proc_status_kb("VmRSS:") * 1024; }

std::uint64_t read_peak_rss_bytes() {
  return proc_status_kb("VmHWM:") * 1024;
}

void update_derived_gauges() {
  MetricRegistry& reg = MetricRegistry::global();
  // Registered once, refreshed cheaply through the cached handles.
  static const BuildInfo info = build_info();
  static Gauge& build = reg.gauge(
      "maton_build_info",
      {{"build_type", info.build_type},
       {"cores", std::to_string(info.host_cores)},
       {"obs", info.obs_enabled ? "on" : "off"}});
  static Gauge& rss = reg.gauge("maton_rss_bytes");
  static Gauge& rss_peak = reg.gauge("maton_rss_peak_bytes");
  static Gauge& rings = reg.gauge("maton_trace_rings");
  static Gauge& ring_events = reg.gauge("maton_trace_ring_events");
  static Gauge& ring_capacity = reg.gauge("maton_trace_ring_capacity");
  static Gauge& spans_recorded =
      reg.gauge("maton_trace_spans_recorded_total");

  build.set(1.0);
  rss.set(static_cast<double>(read_rss_bytes()));
  rss_peak.set(static_cast<double>(read_peak_rss_bytes()));
  const TracerRegistry::Occupancy occ = TracerRegistry::global().occupancy();
  rings.set(static_cast<double>(occ.rings));
  ring_events.set(static_cast<double>(occ.events));
  ring_capacity.set(static_cast<double>(occ.capacity));
  spans_recorded.set(static_cast<double>(occ.total_recorded));
}

Snapshot ScrapeDiff::augment(Snapshot snapshot, double now_seconds) {
  std::vector<MetricSnapshot> derived;
  const double dt = now_seconds - last_time_seconds_;

  double inc_hits = 0.0;
  double inc_fallbacks = 0.0;
  // Per-cause fallback tallies keyed by the counter's `cause` label
  // (vip_collision / slice_validation; unlabeled legacy counters land
  // under "").
  std::map<std::string, double> fallbacks_by_cause;
  std::map<Key, double> counters_now;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kCounter) {
      counters_now.emplace(Key{m.name, m.labels}, m.value);
      if (m.name == "maton_cp_incremental_hits_total") {
        inc_hits += m.value;
      } else if (m.name == "maton_cp_incremental_fallbacks_total") {
        inc_fallbacks += m.value;
        const auto cause = std::find_if(
            m.labels.begin(), m.labels.end(),
            [](const auto& label) { return label.first == "cause"; });
        fallbacks_by_cause[cause != m.labels.end() ? cause->second : ""] +=
            m.value;
      }
      if (has_last_ && dt > 0.0) {
        const auto prev = last_counters_.find(Key{m.name, m.labels});
        // A decrease means the counter was reset (tests, reset_values);
        // re-baseline silently instead of reporting a negative rate.
        if (prev != last_counters_.end() && m.value >= prev->second) {
          derived.push_back(derived_gauge(m.name + "_per_sec", m.labels,
                                          (m.value - prev->second) / dt));
        }
      }
    } else if (m.kind == MetricKind::kGauge &&
               m.name != "maton_build_info") {
      double& hwm = gauge_hwm_[Key{m.name, m.labels}];
      hwm = std::max(hwm, m.value);
      derived.push_back(derived_gauge(m.name + "_hwm", m.labels, hwm));
    }
  }
  derived.push_back(derived_gauge(
      "maton_cp_incremental_fallback_ratio", {},
      inc_hits + inc_fallbacks > 0.0
          ? inc_fallbacks / (inc_hits + inc_fallbacks)
          : 0.0));
  // One ratio gauge per observed cause, against the same denominator:
  // the causes partition the fallbacks, so these sum to the overall
  // ratio.
  for (const auto& [cause, count] : fallbacks_by_cause) {
    if (cause.empty()) continue;  // legacy unlabeled counter
    derived.push_back(derived_gauge(
        "maton_cp_incremental_fallback_ratio", {{"cause", cause}},
        inc_hits + inc_fallbacks > 0.0
            ? count / (inc_hits + inc_fallbacks)
            : 0.0));
  }

  last_counters_ = std::move(counters_now);
  last_time_seconds_ = now_seconds;
  has_last_ = true;

  snapshot.metrics.insert(snapshot.metrics.end(),
                          std::make_move_iterator(derived.begin()),
                          std::make_move_iterator(derived.end()));
  // Restore the scrape invariant (sorted by name, then labels) so the
  // Prometheus renderer keeps families contiguous.
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            snapshot_key_before);
  return snapshot;
}

}  // namespace maton::obs
