#include "core/fd_mine.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contract.hpp"

namespace maton::core {

namespace {

/// Enumerates subsets of `pool` in increasing-cardinality order, skipping
/// supersets of anything already found, so reported LHS sets are minimal
/// by construction.
void mine_for_rhs(const Table& table, std::size_t rhs, std::size_t max_lhs,
                  FdSet& out) {
  AttrSet pool = table.schema().all();
  pool.erase(rhs);
  std::vector<std::size_t> cols(pool.begin(), pool.end());
  const std::size_t n = cols.size();
  const std::size_t bound = max_lhs == 0 ? n : std::min(max_lhs, n);

  std::vector<AttrSet> found;
  for (std::size_t size = 0; size <= bound; ++size) {
    // All n-bit masks with `size` bits set, ascending (Gosper's hack).
    std::vector<std::uint64_t> masks;
    if (size == 0) {
      masks.push_back(0);
    } else if (size <= n) {
      std::uint64_t mask = (std::uint64_t{1} << size) - 1;
      const std::uint64_t limit = std::uint64_t{1} << n;
      while (mask < limit) {
        masks.push_back(mask);
        const std::uint64_t c = mask & (~mask + 1);
        const std::uint64_t r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
      }
    }
    for (std::uint64_t mask : masks) {
      AttrSet lhs;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) lhs.insert(cols[i]);
      }
      const bool dominated =
          std::any_of(found.begin(), found.end(),
                      [&](const AttrSet& f) { return f.subset_of(lhs); });
      if (dominated) continue;
      if (fd_holds(table, {lhs, AttrSet::single(rhs)})) {
        found.push_back(lhs);
        out.add(lhs, AttrSet::single(rhs));
      }
    }
  }
}

}  // namespace

FdSet mine_fds_naive(const Table& table, MineOptions opts) {
  FdSet out;
  for (std::size_t rhs = 0; rhs < table.num_cols(); ++rhs) {
    mine_for_rhs(table, rhs, opts.max_lhs, out);
  }
  return out;
}

namespace tane {

std::size_t Partition::covered() const noexcept {
  std::size_t total = 0;
  for (const auto& cls : classes) total += cls.size();
  return total;
}

std::size_t Partition::error() const noexcept {
  return covered() - classes.size();
}

Partition partition_by_column(const Table& table, std::size_t col) {
  std::unordered_map<Value, std::vector<std::uint32_t>> groups;
  groups.reserve(table.num_rows());
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    groups[table.at(i, col)].push_back(static_cast<std::uint32_t>(i));
  }
  Partition out;
  for (auto& [value, rows] : groups) {
    if (rows.size() >= 2) out.classes.push_back(std::move(rows));
  }
  // Deterministic class order: by first (smallest) row index.
  std::sort(out.classes.begin(), out.classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

Partition product(const Partition& a, const Partition& b,
                  std::size_t num_rows) {
  // Stripped-partition product (TANE §6): probe b's classes against a's
  // class ids; only groups of two or more rows survive.
  std::vector<std::int32_t> owner(num_rows, -1);
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    for (std::uint32_t t : a.classes[i]) {
      owner[t] = static_cast<std::int32_t>(i);
    }
  }
  std::vector<std::vector<std::uint32_t>> buckets(a.classes.size());
  Partition out;
  std::vector<std::size_t> touched;
  for (const auto& cls : b.classes) {
    touched.clear();
    for (std::uint32_t t : cls) {
      const std::int32_t g = owner[t];
      if (g < 0) continue;
      auto& bucket = buckets[static_cast<std::size_t>(g)];
      if (bucket.empty()) touched.push_back(static_cast<std::size_t>(g));
      bucket.push_back(t);
    }
    for (std::size_t g : touched) {
      if (buckets[g].size() >= 2) {
        out.classes.push_back(std::move(buckets[g]));
      }
      buckets[g].clear();
    }
  }
  std::sort(out.classes.begin(), out.classes.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return out;
}

}  // namespace tane

namespace {

struct Node {
  tane::Partition partition;
  AttrSet rhs_candidates;  // TANE's C⁺(X)
};

/// One lattice level, keyed by the attribute set's raw bits.
using Level = std::unordered_map<std::uint64_t, Node>;

}  // namespace

FdSet mine_fds_tane(const Table& table, MineOptions opts) {
  const std::size_t k = table.num_cols();
  const std::size_t n = table.num_rows();
  const AttrSet universe = table.schema().all();
  FdSet out;
  if (k == 0) return out;

  // A dependency X → A is discovered at the lattice node X ∪ {A}, so we
  // must visit levels up to max_lhs + 1.
  const std::size_t max_level = opts.max_lhs == 0 ? k : opts.max_lhs + 1;
  // e(π(∅)): one class containing every row.
  const std::size_t empty_error = n == 0 ? 0 : n - 1;

  Level prev;
  Level cur;
  for (std::size_t c = 0; c < k; ++c) {
    Node node;
    node.partition = tane::partition_by_column(table, c);
    node.rhs_candidates = universe;
    cur.emplace(AttrSet::single(c).raw(), std::move(node));
  }

  for (std::size_t depth = 1; depth <= max_level && !cur.empty(); ++depth) {
    // COMPUTE_DEPENDENCIES: for each node X, test X∖{A} → A for every
    // candidate A ∈ X ∩ C⁺(X) via the partition-error criterion.
    for (auto& [raw, node] : cur) {
      const AttrSet x = AttrSet::from_raw(raw);
      const AttrSet check = x & node.rhs_candidates;
      for (std::size_t a : check) {
        AttrSet lhs = x;
        lhs.erase(a);
        std::size_t lhs_error;
        if (lhs.empty()) {
          lhs_error = empty_error;
        } else {
          // Candidate generation guarantees every (depth−1)-subset
          // survived the previous level's pruning.
          const auto it = prev.find(lhs.raw());
          ensures(it != prev.end(), "TANE: missing lattice subset");
          lhs_error = it->second.partition.error();
        }
        if (lhs_error == node.partition.error()) {
          out.add(lhs, AttrSet::single(a));
          node.rhs_candidates.erase(a);
          node.rhs_candidates -= (universe - x);
        }
      }
    }

    // PRUNE: only the empty-C⁺ rule. (TANE's key-pruning is a pure
    // optimization requiring compensating emissions; at match-action
    // schema widths the lattice is small enough to skip it, keeping the
    // algorithm straightforwardly complete.)
    for (auto it = cur.begin(); it != cur.end();) {
      it = it->second.rhs_candidates.empty() ? cur.erase(it) : std::next(it);
    }

    // GENERATE_NEXT_LEVEL: Apriori-style prefix join; a candidate is kept
    // only when all of its depth-size subsets survived.
    Level next;
    std::vector<std::uint64_t> keys;
    keys.reserve(cur.size());
    for (const auto& [raw, node] : cur) keys.push_back(raw);
    std::sort(keys.begin(), keys.end());

    for (std::size_t i = 0; i < keys.size(); ++i) {
      for (std::size_t j = i + 1; j < keys.size(); ++j) {
        const AttrSet a = AttrSet::from_raw(keys[i]);
        const AttrSet b = AttrSet::from_raw(keys[j]);
        const AttrSet xy = a | b;
        if (xy.size() != depth + 1) continue;
        if (next.count(xy.raw()) != 0) continue;
        bool all_present = true;
        for (std::size_t e : xy) {
          AttrSet sub = xy;
          sub.erase(e);
          if (cur.find(sub.raw()) == cur.end()) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;

        Node node;
        node.partition = tane::product(cur.at(a.raw()).partition,
                                       cur.at(b.raw()).partition, n);
        node.rhs_candidates = universe;
        for (std::size_t e : xy) {
          AttrSet sub = xy;
          sub.erase(e);
          node.rhs_candidates &= cur.at(sub.raw()).rhs_candidates;
        }
        next.emplace(xy.raw(), std::move(node));
      }
    }

    prev = std::move(cur);
    cur = std::move(next);
  }

  return out;
}

}  // namespace maton::core
