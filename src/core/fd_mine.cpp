#include "core/fd_mine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace maton::core {

namespace {

/// Both miners represent column sets as AttrSet (one machine word), so
/// schemas beyond its capacity cannot be mined; Schema::all() would
/// silently truncate and the naive miner's Gosper enumeration would shift
/// by ≥ 64 bits (UB). Reject loudly instead.
void ensure_minable(const Table& table) {
  ensures(table.num_cols() <= AttrSet::kCapacity,
          "FD mining supports at most 64 columns (AttrSet capacity); "
          "project the table onto a narrower attribute set first");
}

/// Enumerates subsets of `pool` in increasing-cardinality order, skipping
/// supersets of anything already found, so reported LHS sets are minimal
/// by construction.
void mine_for_rhs(const Table& table, std::size_t rhs, std::size_t max_lhs,
                  FdSet& out) {
  AttrSet pool = table.schema().all();
  pool.erase(rhs);
  std::vector<std::size_t> cols(pool.begin(), pool.end());
  const std::size_t n = cols.size();
  const std::size_t bound = max_lhs == 0 ? n : std::min(max_lhs, n);

  std::vector<AttrSet> found;
  for (std::size_t size = 0; size <= bound; ++size) {
    // All n-bit masks with `size` bits set, ascending (Gosper's hack).
    std::vector<std::uint64_t> masks;
    if (size == 0) {
      masks.push_back(0);
    } else if (size <= n) {
      std::uint64_t mask = (std::uint64_t{1} << size) - 1;
      const std::uint64_t limit = std::uint64_t{1} << n;
      while (mask < limit) {
        masks.push_back(mask);
        const std::uint64_t c = mask & (~mask + 1);
        const std::uint64_t r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
      }
    }
    for (std::uint64_t mask : masks) {
      AttrSet lhs;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) lhs.insert(cols[i]);
      }
      const bool dominated =
          std::any_of(found.begin(), found.end(),
                      [&](const AttrSet& f) { return f.subset_of(lhs); });
      if (dominated) continue;
      if (fd_holds(table, {lhs, AttrSet::single(rhs)})) {
        found.push_back(lhs);
        out.add(lhs, AttrSet::single(rhs));
      }
    }
  }
}

}  // namespace

FdSet mine_fds_naive(const Table& table, MineOptions opts) {
  ensure_minable(table);
  FdSet out;
  for (std::size_t rhs = 0; rhs < table.num_cols(); ++rhs) {
    mine_for_rhs(table, rhs, opts.max_lhs, out);
  }
  return out;
}

namespace tane {

std::size_t Partition::covered() const noexcept {
  std::size_t total = 0;
  for (const auto& cls : classes) total += cls.size();
  return total;
}

std::size_t Partition::error() const noexcept {
  return covered() - classes.size();
}

Partition partition_by_column(const Table& table, std::size_t col) {
  const Column& column = table.column(col);
  Partition out;
  if (column.interned()) {
    // Ids are dense pool indices preserving equality, so the groups are
    // a direct-indexed array — no hashing at all.
    const std::span<const std::uint32_t> ids = column.ids();
    std::vector<std::vector<std::uint32_t>> groups(column.pool().size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      groups[ids[i]].push_back(static_cast<std::uint32_t>(i));
    }
    for (auto& rows : groups) {
      if (rows.size() >= 2) out.classes.push_back(std::move(rows));
    }
  } else {
    std::unordered_map<Value, std::vector<std::uint32_t>> groups;
    groups.reserve(table.num_rows());
    for (std::size_t i = 0; i < column.size(); ++i) {
      groups[column[i]].push_back(static_cast<std::uint32_t>(i));
    }
    for (auto& [value, rows] : groups) {
      if (rows.size() >= 2) out.classes.push_back(std::move(rows));
    }
  }
  // Deterministic class order: by first (smallest) row index.
  std::sort(out.classes.begin(), out.classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

Partition product(const Partition& a, const Partition& b,
                  std::size_t num_rows, ProductScratch& scratch) {
  // Stripped-partition product (TANE §6): probe b's classes against a's
  // class ids; only groups of two or more rows survive. All working
  // state lives in the scratch arena; the only allocations are the
  // output's own classes.
  if (scratch.owner.size() < num_rows) {
    scratch.owner.resize(num_rows, -1);
    scratch.stamp.resize(num_rows, 0);
  }
  // Epoch 0 means "never written", so a fresh scratch starts at epoch 1.
  if (++scratch.epoch == 0) {
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), std::size_t{0});
    scratch.epoch = 1;
  }
  const std::size_t epoch = scratch.epoch;

  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    for (std::uint32_t t : a.classes[i]) {
      scratch.owner[t] = static_cast<std::int32_t>(i);
      scratch.stamp[t] = epoch;
    }
  }
  if (scratch.buckets.size() < a.classes.size()) {
    scratch.buckets.resize(a.classes.size());
  }
  Partition out;
  std::vector<std::size_t>& touched = scratch.touched;
  for (const auto& cls : b.classes) {
    touched.clear();
    for (std::uint32_t t : cls) {
      if (scratch.stamp[t] != epoch) continue;
      const auto g = static_cast<std::size_t>(scratch.owner[t]);
      auto& bucket = scratch.buckets[g];
      if (bucket.empty()) touched.push_back(g);
      bucket.push_back(t);
    }
    for (std::size_t g : touched) {
      auto& bucket = scratch.buckets[g];
      if (bucket.size() >= 2) {
        // Copy (not move): the output owns fresh storage while the
        // bucket keeps its capacity for the next product.
        out.classes.emplace_back(bucket.begin(), bucket.end());
      }
      bucket.clear();
    }
  }
  std::sort(out.classes.begin(), out.classes.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return out;
}

Partition product(const Partition& a, const Partition& b,
                  std::size_t num_rows) {
  ProductScratch scratch;
  return product(a, b, num_rows, scratch);
}

std::vector<std::uint64_t> column_fingerprints(const Table& table) {
  const std::size_t k = table.num_cols();
  // The table caches these per column with dirty-tracking, so a mine
  // after a cell-wise patch only rehashes the touched columns. Calling
  // this before the parallel lattice walk also warms the cache on the
  // calling thread (Table caches are unsynchronized).
  std::vector<std::uint64_t> fps(k);
  for (std::size_t c = 0; c < k; ++c) fps[c] = table.column_fingerprint(c);
  return fps;
}

std::uint64_t subset_fingerprint(const std::vector<std::uint64_t>& col_fps,
                                 std::size_t num_rows, AttrSet attrs) {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^ num_rows;
  for (std::size_t c : attrs) {
    h ^= col_fps[c] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::shared_ptr<const Partition> PartitionCache::find(
    std::uint64_t fp, std::uint64_t attrs_raw) {
  static obs::Counter& hit_count = obs::MetricRegistry::global().counter(
      "maton_fdmine_partition_cache_hits_total");
  static obs::Counter& miss_count = obs::MetricRegistry::global().counter(
      "maton_fdmine_partition_cache_misses_total");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(Key{fp, attrs_raw});
  if (it == map_.end()) {
    ++stats_.misses;
    miss_count.add();
    return nullptr;
  }
  ++stats_.hits;
  hit_count.add();
  return it->second;
}

std::shared_ptr<const Partition> PartitionCache::put(
    std::uint64_t fp, std::uint64_t attrs_raw,
    std::shared_ptr<const Partition> p) {
  static obs::Counter& evictions = obs::MetricRegistry::global().counter(
      "maton_fdmine_partition_cache_evictions_total");
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.size() >= capacity_) {
    evictions.add(map_.size());
    map_.clear();
    ++stats_.resets;
  }
  const auto [it, inserted] =
      map_.try_emplace(Key{fp, attrs_raw}, std::move(p));
  return it->second;
}

std::size_t PartitionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

PartitionCache::Stats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PartitionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = Stats{};
}

}  // namespace tane

namespace {

struct Node {
  std::shared_ptr<const tane::Partition> partition;
  std::size_t error = 0;  // e(π), computed once at node creation
  AttrSet rhs_candidates;  // TANE's C⁺(X)
};

/// One lattice level, keyed by the attribute set's raw bits.
using Level = std::unordered_map<std::uint64_t, Node>;

std::size_t resolve_workers(std::size_t threads) {
  if (threads == MineOptions::kAutoThreads) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return threads == 0 ? 1 : threads;
}

/// fn(i, worker) for i in [0, n): inline when sequential (never touching
/// the pool, so opts.threads == 0 cannot spawn threads as a side effect),
/// fanned out over the shared pool otherwise.
template <typename Fn>
void for_each_index(util::ThreadPool* pool, std::size_t workers,
                    std::size_t n, const Fn& fn) {
  if (pool == nullptr || workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  pool->parallel_for(n, workers, fn);
}

}  // namespace

FdSet mine_fds_tane(const Table& table, MineOptions opts) {
  static obs::Counter& mines =
      obs::MetricRegistry::global().counter("maton_fdmine_mines_total");
  const obs::TraceSpan mine_span("tane_mine");
  mines.add();
  ensure_minable(table);
  const std::size_t k = table.num_cols();
  const std::size_t n = table.num_rows();
  const AttrSet universe = table.schema().all();
  FdSet out;
  if (k == 0) return out;

  const std::size_t workers = resolve_workers(opts.threads);
  util::ThreadPool* pool =
      workers > 1 ? &util::ThreadPool::shared() : nullptr;
  std::vector<tane::ProductScratch> scratch(workers);

  // Cache plumbing: fingerprints are only computed when a cache is
  // attached (one O(n·k) table scan per call).
  std::vector<std::uint64_t> col_fps;
  if (opts.cache != nullptr) col_fps = tane::column_fingerprints(table);
  const auto cache_find =
      [&](AttrSet attrs) -> std::shared_ptr<const tane::Partition> {
    if (opts.cache == nullptr) return nullptr;
    return opts.cache->find(tane::subset_fingerprint(col_fps, n, attrs),
                            attrs.raw());
  };
  const auto publish = [&](AttrSet attrs, tane::Partition p) {
    auto sp = std::make_shared<const tane::Partition>(std::move(p));
    if (opts.cache == nullptr) return sp;
    return opts.cache->put(tane::subset_fingerprint(col_fps, n, attrs),
                           attrs.raw(), std::move(sp));
  };

  // A dependency X → A is discovered at the lattice node X ∪ {A}, so we
  // must visit levels up to max_lhs + 1.
  const std::size_t max_level = opts.max_lhs == 0 ? k : opts.max_lhs + 1;
  // e(π(∅)): one class containing every row.
  const std::size_t empty_error = n == 0 ? 0 : n - 1;

  // Level 1: single-column partitions, one task per column.
  std::vector<std::shared_ptr<const tane::Partition>> singles(k);
  for_each_index(pool, workers, k, [&](std::size_t c, std::size_t) {
    const AttrSet x = AttrSet::single(c);
    if (auto hit = cache_find(x)) {
      singles[c] = std::move(hit);
      return;
    }
    singles[c] = publish(x, tane::partition_by_column(table, c));
  });

  Level prev;
  Level cur;
  for (std::size_t c = 0; c < k; ++c) {
    cur.emplace(AttrSet::single(c).raw(),
                Node{singles[c], singles[c]->error(), universe});
  }

  // All fan-out/merge below follows ascending node keys, so the emitted
  // FdSet (contents *and* order) is identical for every worker count.
  for (std::size_t depth = 1; depth <= max_level && !cur.empty(); ++depth) {
    const obs::TraceSpan level_span("tane_level");
    [[maybe_unused]] const auto level_start =
        std::chrono::steady_clock::now();
    std::vector<std::uint64_t> keys;
    keys.reserve(cur.size());
    for (const auto& [raw, node] : cur) keys.push_back(raw);
    std::sort(keys.begin(), keys.end());

    // COMPUTE_DEPENDENCIES: for each node X, test X∖{A} → A for every
    // candidate A ∈ X ∩ C⁺(X) via the partition-error criterion. Nodes
    // are independent (they read the immutable prev level and mutate
    // only their own C⁺), so they fan out; discovered FDs are staged per
    // node and merged in key order afterwards.
    std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> staged(
        keys.size());
    for_each_index(pool, workers, keys.size(), [&](std::size_t i,
                                                   std::size_t) {
      Node& node = cur.find(keys[i])->second;
      const AttrSet x = AttrSet::from_raw(keys[i]);
      const AttrSet check = x & node.rhs_candidates;
      for (std::size_t a : check) {
        AttrSet lhs = x;
        lhs.erase(a);
        std::size_t lhs_error;
        if (lhs.empty()) {
          lhs_error = empty_error;
        } else {
          // Candidate generation guarantees every (depth−1)-subset
          // survived the previous level's pruning.
          const auto it = prev.find(lhs.raw());
          ensures(it != prev.end(), "TANE: missing lattice subset");
          lhs_error = it->second.error;
        }
        if (lhs_error == node.error) {
          staged[i].push_back({lhs.raw(), a});
          node.rhs_candidates.erase(a);
          node.rhs_candidates -= (universe - x);
        }
      }
    });
    for (const auto& found : staged) {
      for (const auto& [lhs_raw, a] : found) {
        out.add(AttrSet::from_raw(lhs_raw), AttrSet::single(a));
      }
    }

    // PRUNE: only the empty-C⁺ rule. (TANE's key-pruning is a pure
    // optimization requiring compensating emissions; at match-action
    // schema widths the lattice is small enough to skip it, keeping the
    // algorithm straightforwardly complete.)
    for (auto it = cur.begin(); it != cur.end();) {
      it = it->second.rhs_candidates.empty() ? cur.erase(it) : std::next(it);
    }

    // GENERATE_NEXT_LEVEL: Apriori-style prefix join; a candidate is kept
    // only when all of its depth-size subsets survived. Enumeration is
    // bitset algebra (sequential, cheap); the partition products — the
    // expensive part — fan out below.
    keys.clear();
    for (const auto& [raw, node] : cur) keys.push_back(raw);
    std::sort(keys.begin(), keys.end());

    struct Candidate {
      AttrSet xy;
      std::uint64_t a_raw = 0;
      std::uint64_t b_raw = 0;
      AttrSet rhs_candidates;
    };
    std::vector<Candidate> cands;
    Level next;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      for (std::size_t j = i + 1; j < keys.size(); ++j) {
        const AttrSet a = AttrSet::from_raw(keys[i]);
        const AttrSet b = AttrSet::from_raw(keys[j]);
        const AttrSet xy = a | b;
        if (xy.size() != depth + 1) continue;
        if (next.count(xy.raw()) != 0) continue;
        bool all_present = true;
        AttrSet rhs = universe;
        for (std::size_t e : xy) {
          AttrSet sub = xy;
          sub.erase(e);
          const auto it = cur.find(sub.raw());
          if (it == cur.end()) {
            all_present = false;
            break;
          }
          rhs &= it->second.rhs_candidates;
        }
        if (!all_present) continue;
        next.emplace(xy.raw(), Node{});  // reserves the slot; filled below
        cands.push_back({xy, keys[i], keys[j], rhs});
      }
    }

    std::vector<std::shared_ptr<const tane::Partition>> prods(cands.size());
    for_each_index(pool, workers, cands.size(),
                   [&](std::size_t i, std::size_t w) {
                     const Candidate& cand = cands[i];
                     if (auto hit = cache_find(cand.xy)) {
                       prods[i] = std::move(hit);
                       return;
                     }
                     prods[i] = publish(
                         cand.xy,
                         tane::product(*cur.at(cand.a_raw).partition,
                                       *cur.at(cand.b_raw).partition, n,
                                       scratch[w]));
                   });
    for (std::size_t i = 0; i < cands.size(); ++i) {
      Node& node = next.at(cands[i].xy.raw());
      node.partition = prods[i];
      node.error = prods[i]->error();
      node.rhs_candidates = cands[i].rhs_candidates;
    }

    prev = std::move(cur);
    cur = std::move(next);

    if constexpr (obs::kEnabled) {
      // Per-level lattice timing; the level label keeps the dozen or so
      // depths match-action schemas reach apart without exploding the
      // registry.
      obs::MetricRegistry::global()
          .histogram("maton_fdmine_level_ns",
                     {{"level", std::to_string(depth)}})
          .observe(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - level_start)
                  .count()));
    }
  }

  return out;
}

namespace {

/// Finalizer avalanche (murmur3) so consecutive key values spread across
/// shards instead of striping.
std::uint64_t shard_hash(Value v) noexcept {
  std::uint64_t h = v;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 32;
  return h;
}

}  // namespace

FdSet mine_fds_sharded(const Table& table, ShardedMineOptions opts) {
  static obs::Counter& mines =
      obs::MetricRegistry::global().counter("maton_fdmine_sharded_mines_total");
  const obs::TraceSpan span("sharded_mine");
  ensure_minable(table);
  const std::size_t k = table.num_cols();
  const std::size_t n = table.num_rows();
  if (k == 0) return {};
  if (opts.shards <= 1 || n < 2 * opts.shards) {
    return mine_fds_tane(table, opts.mine);
  }
  expects(opts.shard_col < k, "shard column out of range");
  mines.add();

  // 1. Hash-partition the rows. Equal key values colocate, so any FD
  //    scoped to one key value survives sharding intact.
  std::vector<Table> shards;
  shards.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    shards.emplace_back(table.name() + "#" + std::to_string(s),
                        table.schema());
    shards.back().reserve_rows(n / opts.shards + 1);
  }
  const Column& key_col = table.column(opts.shard_col);
  Row row(k);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) row[c] = table.at(r, c);
    shards[shard_hash(key_col[r]) % opts.shards].add_row(row);
  }

  // 2. Per-shard TANE. The shard is the parallel grain: each pass runs
  //    strictly sequentially (threads = 0 never touches the pool, so
  //    fanning the passes over it cannot nest parallel_for). Results
  //    land in per-shard slots; every merge below walks them in shard
  //    order, keeping the output independent of completion order.
  MineOptions per_shard = opts.mine;
  per_shard.threads = 0;
  const std::size_t workers = resolve_workers(opts.mine.threads);
  util::ThreadPool* pool = workers > 1 ? &util::ThreadPool::shared() : nullptr;
  std::vector<FdSet> shard_fds(shards.size());
  for_each_index(pool, workers, shards.size(),
                 [&](std::size_t s, std::size_t) {
                   shard_fds[s] = mine_fds_tane(shards[s], per_shard);
                 });

  // 3. Candidate seeds: the union of shard-local minimal FDs, deduped.
  //    `visited` doubles as the escalation guard: each (lhs, rhs) node
  //    is enqueued at most once.
  std::unordered_map<std::uint64_t, std::uint64_t> visited;  // lhs → rhs bits
  const auto visit = [&](AttrSet lhs, std::size_t a) {
    std::uint64_t& bits = visited[lhs.raw()];
    const std::uint64_t bit = AttrSet::single(a).raw();
    if ((bits & bit) != 0) return false;
    bits |= bit;
    return true;
  };
  const std::size_t max_lhs =
      opts.mine.max_lhs == 0 ? k - 1 : std::min(opts.mine.max_lhs, k - 1);
  std::vector<std::vector<Fd>> levels(max_lhs + 2);
  for (const FdSet& fs : shard_fds) {
    for (const Fd& fd : fs.fds()) {
      if (fd.lhs.size() > max_lhs) continue;
      for (std::size_t a : fd.rhs) {
        if (visit(fd.lhs, a)) {
          levels[fd.lhs.size()].push_back({fd.lhs, AttrSet::single(a)});
        }
      }
    }
  }

  // 4. Level-wise global verification with one-attribute escalation.
  //    A candidate dominated by an already-verified FD (same RHS,
  //    subset LHS — necessarily from a shallower level) is non-minimal
  //    and cannot sit below a minimal FD either, so it is dropped
  //    without expansion. Verification fans out per level; fd_holds is
  //    a pure read of the table.
  const AttrSet universe = table.schema().all();
  std::vector<Fd> verified;
  std::vector<std::vector<AttrSet>> verified_by_rhs(k);
  for (std::size_t level = 0; level < levels.size(); ++level) {
    std::vector<Fd>& cands = levels[level];
    std::sort(cands.begin(), cands.end());
    std::vector<Fd> to_check;
    to_check.reserve(cands.size());
    for (const Fd& fd : cands) {
      const std::size_t a = *fd.rhs.begin();
      const bool dominated = std::any_of(
          verified_by_rhs[a].begin(), verified_by_rhs[a].end(),
          [&](AttrSet lhs) { return lhs.subset_of(fd.lhs); });
      if (!dominated) to_check.push_back(fd);
    }
    std::vector<std::uint8_t> holds(to_check.size(), 0);
    for_each_index(pool, workers, to_check.size(),
                   [&](std::size_t i, std::size_t) {
                     holds[i] = fd_holds(table, to_check[i]) ? 1 : 0;
                   });
    for (std::size_t i = 0; i < to_check.size(); ++i) {
      const Fd& fd = to_check[i];
      const std::size_t a = *fd.rhs.begin();
      if (holds[i] != 0) {
        verified.push_back(fd);
        verified_by_rhs[a].push_back(fd.lhs);
        continue;
      }
      if (level >= max_lhs) continue;
      for (std::size_t b : universe - fd.lhs) {
        if (b == a) continue;
        AttrSet wider = fd.lhs;
        wider.insert(b);
        if (visit(wider, a)) levels[level + 1].push_back({wider, fd.rhs});
      }
    }
  }

  // 5. Canonical order — exactly mine_fds_tane's emission order: by
  //    lattice level (|lhs| + 1), then ascending node key (lhs ∪ rhs),
  //    then ascending RHS attribute.
  std::sort(verified.begin(), verified.end(), [](const Fd& x, const Fd& y) {
    if (x.lhs.size() != y.lhs.size()) return x.lhs.size() < y.lhs.size();
    const std::uint64_t nx = x.lhs.raw() | x.rhs.raw();
    const std::uint64_t ny = y.lhs.raw() | y.rhs.raw();
    if (nx != ny) return nx < ny;
    return x.rhs.raw() < y.rhs.raw();
  });
  return FdSet(std::move(verified));
}

}  // namespace maton::core
