#include "core/normal_forms.hpp"

#include <algorithm>

#include "core/fd_mine.hpp"

namespace maton::core {

std::string_view to_string(NormalForm nf) noexcept {
  switch (nf) {
    case NormalForm::kNotFirst: return "not-1NF";
    case NormalForm::kFirst: return "1NF";
    case NormalForm::kSecond: return "2NF";
    case NormalForm::kThird: return "3NF";
    case NormalForm::kBoyceCodd: return "BCNF";
  }
  return "unknown";
}

NormalForm NfReport::highest() const noexcept {
  if (!order_independent) return NormalForm::kNotFirst;
  if (!partial_dependencies.empty()) return NormalForm::kFirst;
  if (!transitive_dependencies.empty()) return NormalForm::kSecond;
  if (!bcnf_violations.empty()) return NormalForm::kThird;
  return NormalForm::kBoyceCodd;
}

std::string NfReport::to_string(const Schema& schema) const {
  std::string out = "normal form: ";
  out += std::string(maton::core::to_string(highest()));
  out += "\nkeys:";
  for (const AttrSet& k : keys) {
    out += " (" + schema.names(k) + ")";
  }
  out += "\n";
  auto emit = [&](const char* label, const std::vector<Fd>& fds) {
    for (const Fd& fd : fds) {
      out += label;
      out += maton::core::to_string(fd, schema);
      out += '\n';
    }
  };
  emit("2NF violation (partial): ", partial_dependencies);
  emit("3NF violation (transitive): ", transitive_dependencies);
  emit("BCNF violation: ", bcnf_violations);
  return out;
}

NfReport analyze(const Table& table, const FdSet& fds) {
  NfReport report;
  report.order_independent = table.is_order_independent();

  const AttrSet universe = table.schema().all();
  const FdSet cover = fds.minimal_cover();
  report.keys = candidate_keys(cover, universe);
  report.prime = prime_attributes(report.keys);

  // 2NF: a partial dependency may only be *implied* (X → B → A with B
  // prime), so checking cover members is not complete. Enumerate the
  // proper subsets of every candidate key and inspect their closures.
  std::vector<AttrSet> partial_lhs_seen;
  for (const AttrSet& key : report.keys) {
    if (key.empty()) continue;
    const std::vector<std::size_t> cols(key.begin(), key.end());
    const std::size_t n = cols.size();
    // All proper subsets, including the empty set (a constant non-prime
    // column is determined by ∅ ⊊ K and is redundancy all the same).
    for (std::uint64_t mask = 0; mask + 1 < (std::uint64_t{1} << n); ++mask) {
      AttrSet x;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) x.insert(cols[i]);
      }
      const bool seen = std::any_of(
          partial_lhs_seen.begin(), partial_lhs_seen.end(),
          [&](const AttrSet& s) { return s == x; });
      if (seen) continue;
      const AttrSet determined_nonprime =
          (cover.closure(x) - x) - report.prime;
      if (!determined_nonprime.empty()) {
        partial_lhs_seen.push_back(x);
        report.partial_dependencies.push_back({x, determined_nonprime});
      }
    }
  }

  // 3NF / BCNF: checking the cover members is sound and complete.
  for (const Fd& fd : cover.fds()) {
    if (fd.trivial()) continue;
    if (cover.is_superkey(fd.lhs, universe)) continue;  // no violation
    if (fd.rhs.subset_of(report.prime)) {
      report.bcnf_violations.push_back(fd);
      continue;
    }
    // Already reported as partial when the LHS sits inside a key.
    const bool partial = std::any_of(
        report.keys.begin(), report.keys.end(),
        [&](const AttrSet& k) { return fd.lhs.proper_subset_of(k); });
    if (!partial) report.transitive_dependencies.push_back(fd);
  }
  return report;
}

NfReport analyze(const Table& table) {
  return analyze(table, mine_fds_tane(table));
}

}  // namespace maton::core
