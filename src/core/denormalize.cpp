#include "core/denormalize.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/contract.hpp"

namespace maton::core {

namespace {

/// Symbolic execution state along one pipeline path.
struct PathState {
  /// Constraints the path imposes on the incoming packet's fields.
  std::map<std::string, Value> constraints;
  /// Fields written by actions so far (shadowing packet constraints).
  std::map<std::string, Value> written;
  /// Observable (non-metadata) action bindings, last-writer-wins.
  std::map<std::string, Value> actions;
};

struct Collector {
  const Pipeline& pipeline;
  const FlattenOptions& opts;
  std::vector<PathState> complete;
  /// First-appearance order of packet-constraint fields and action
  /// fields, with the attribute metadata that introduced them.
  std::vector<Attribute> match_attrs;
  std::vector<Attribute> action_attrs;
  Status failure = Status::ok();

  void note_match_attr(const Attribute& attr) {
    for (const Attribute& a : match_attrs) {
      if (a.name == attr.name) return;
    }
    Attribute copy = attr;
    copy.kind = AttrKind::kMatch;
    match_attrs.push_back(std::move(copy));
  }
  void note_action_attr(const Attribute& attr) {
    for (const Attribute& a : action_attrs) {
      if (a.name == attr.name) return;
    }
    Attribute copy = attr;
    copy.kind = AttrKind::kAction;
    action_attrs.push_back(std::move(copy));
  }

  bool walk(std::size_t stage_idx, PathState state, std::size_t depth) {
    if (!failure.is_ok()) return false;
    if (depth > pipeline.num_stages()) {
      failure = internal_error("pipeline cycle while flattening");
      return false;
    }
    const Stage& stage = pipeline.stage(stage_idx);
    const Schema& schema = stage.table.schema();

    for (std::size_t r = 0; r < stage.table.num_rows(); ++r) {
      PathState next = state;
      bool feasible = true;

      for (std::size_t c : schema.match_set()) {
        const Attribute& attr = schema.at(c);
        const Value v = stage.table.at(r, c);
        // A field some earlier stage wrote is checked against the
        // written value (metadata joins, rewrites) and does not
        // constrain the packet.
        if (const auto w = next.written.find(attr.name);
            w != next.written.end()) {
          if (w->second != v) {
            feasible = false;
            break;
          }
          continue;
        }
        if (const auto cst = next.constraints.find(attr.name);
            cst != next.constraints.end()) {
          if (cst->second != v) {
            feasible = false;
            break;
          }
          continue;
        }
        next.constraints.emplace(attr.name, v);
        note_match_attr(attr);
      }
      if (!feasible) continue;

      for (std::size_t c : schema.action_set()) {
        const Attribute& attr = schema.at(c);
        const Value v = stage.table.at(r, c);
        next.written[attr.name] = v;
        if (!is_metadata_name(attr.name)) {
          next.actions[attr.name] = v;
          note_action_attr(attr);
        }
      }

      const std::optional<std::size_t> target =
          stage.uses_goto() ? std::optional{stage.goto_targets[r]}
                            : stage.next;
      if (target.has_value()) {
        if (!walk(*target, std::move(next), depth + 1)) return false;
      } else {
        complete.push_back(std::move(next));
        if (complete.size() > opts.max_rows) {
          failure = invalid_argument(
              "flatten exceeded max_rows; pipeline expands beyond the "
              "configured universal-table size");
          return false;
        }
      }
    }
    return true;
  }
};

}  // namespace

Result<Table> flatten(const Pipeline& pipeline, const FlattenOptions& opts) {
  if (pipeline.num_stages() == 0) {
    return failed_precondition("cannot flatten an empty pipeline");
  }
  if (Status s = pipeline.validate(); !s.is_ok()) return s;

  Collector collector{pipeline, opts, {}, {}, {}, Status::ok()};
  collector.walk(pipeline.entry(), PathState{}, 0);
  if (!collector.failure.is_ok()) return collector.failure;

  // Every feasible path must constrain exactly the same field set,
  // otherwise there is no uniform universal schema.
  for (const PathState& path : collector.complete) {
    if (path.constraints.size() != collector.match_attrs.size()) {
      return failed_precondition(
          "pipeline paths constrain different match-field sets; no "
          "uniform universal table exists");
    }
    if (path.actions.size() != collector.action_attrs.size()) {
      return failed_precondition(
          "pipeline paths apply different action sets; no uniform "
          "universal table exists");
    }
  }

  Schema schema;
  for (const Attribute& a : collector.match_attrs) schema.add(a);
  for (const Attribute& a : collector.action_attrs) schema.add(a);
  Table out(opts.name, std::move(schema));

  std::set<Row> seen;
  for (const PathState& path : collector.complete) {
    Row row;
    row.reserve(out.num_cols());
    for (const Attribute& a : collector.match_attrs) {
      row.push_back(path.constraints.at(a.name));
    }
    for (const Attribute& a : collector.action_attrs) {
      row.push_back(path.actions.at(a.name));
    }
    if (seen.insert(row).second) out.add_row(std::move(row));
  }

  if (!out.is_order_independent()) {
    return failed_precondition(
        "flattened entries have duplicate match keys; the pipeline is "
        "not expressible as a 1NF universal table");
  }
  return out;
}

}  // namespace maton::core
