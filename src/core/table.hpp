// Table: a match-action table in (or aspiring to) first normal form —
// a finite relation over a Schema whose rows pair exact-match values with
// action values (Eq. 1 of the paper).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/attr.hpp"
#include "util/status.hpp"

namespace maton::core {

/// One entry of a match-action table: a full assignment of values to the
/// schema's columns.
using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return schema_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Appends an entry; the row width must equal the schema width.
  void add_row(Row row);

  /// Overwrites one cell in place. This is the control-plane patching
  /// primitive: an intent that rewrites a few cells of one column leaves
  /// every other column's fingerprint — and therefore its cached mining
  /// partitions — unchanged. Callers must preserve order independence.
  void set_value(std::size_t row, std::size_t col, Value v);

  /// Erases `count` consecutive rows starting at `first`.
  void erase_rows(std::size_t first, std::size_t count);

  [[nodiscard]] const Row& row(std::size_t i) const;
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  [[nodiscard]] Value at(std::size_t row, std::size_t col) const;

  /// Relational projection onto `cols` with duplicate elimination.
  /// Column order in the result follows ascending original index.
  [[nodiscard]] Table project(const AttrSet& cols, std::string name = {}) const;

  /// Rows whose `col` equals `v` (selection).
  [[nodiscard]] Table select_eq(std::size_t col, Value v,
                                std::string name = {}) const;

  /// True when no two rows agree on every column of `cols`.
  /// unique_on(match_set()) is the paper's order-independence requirement
  /// for 1NF.
  [[nodiscard]] bool unique_on(const AttrSet& cols) const;

  /// First pair of row indices that agree on every column of `cols`
  /// (a witness against unique_on), or nullopt when none exists.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
  duplicate_on(const AttrSet& cols) const;

  /// Order independence: the match columns uniquely identify every entry.
  [[nodiscard]] bool is_order_independent() const {
    return unique_on(schema_.match_set());
  }

  /// Index of the first row whose `cols` columns equal `key` (which is
  /// given in ascending-column order), or nullopt.
  [[nodiscard]] std::optional<std::size_t> find_row(
      const AttrSet& cols, std::span<const Value> key) const;

  /// Number of populated match-action fields, the size measure of §2
  /// ("the universal table in Fig. 1a contains 24 match-action fields").
  [[nodiscard]] std::size_t field_count() const noexcept {
    return rows_.size() * schema_.size();
  }

  /// Number of distinct value combinations over `cols`.
  [[nodiscard]] std::size_t distinct_count(const AttrSet& cols) const;

  /// Content fingerprint of one column: a hash of its value sequence in
  /// row order. Equal fingerprints ⇒ (whp) equal column contents, which
  /// is the FD-mining partition-cache reuse criterion — π(X) depends
  /// only on the value sequences of X's columns.
  [[nodiscard]] std::uint64_t column_fingerprint(std::size_t col) const;

  /// Whole-table content fingerprint: schema width, row count, and every
  /// cell, in order. Mutating the table (add_row) changes it.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Pretty-printed table (attribute header + typed value rendering).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Table&, const Table&) = default;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

/// Renders one cell according to the attribute's codec.
[[nodiscard]] std::string format_value(const Attribute& attr, Value v);

}  // namespace maton::core
