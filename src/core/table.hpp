// Table: a match-action table in (or aspiring to) first normal form —
// a finite relation over a Schema whose rows pair exact-match values with
// action values (Eq. 1 of the paper).
//
// Storage is columnar (struct-of-arrays): one Column per attribute.
// Every relational operation the pipeline is built from — projection,
// selection, fingerprinting, FD mining's partition construction — is a
// column scan or a key probe, so the column-major layout turns the hot
// loops into contiguous sweeps and drops the per-row heap allocation of
// the former row-of-vectors store (≈3× fewer bytes per rule at fleet
// scale; see BENCH_scale.json). Columns adapt their representation:
// narrow-domain columns intern their values (32-bit ids into an
// append-only pool of distinct values), wide-domain columns spill to
// raw 64-bit storage — see Column.
//
// Two lazy, mutation-tracked acceleration structures ride on top:
//
//  * per-column content fingerprints (column_fingerprint): computed on
//    demand, kept per column and invalidated only when that column's
//    value sequence changes, so the FD-mining partition cache stays warm
//    across cell-wise control-plane patches without rehashing clean
//    columns;
//  * match-key hash indexes (find_row): one per queried column set,
//    built on first probe and extended incrementally on append, making
//    find_row O(1) amortized instead of an O(rows) scan.
//
// Both are internal caches: they never change observable results, and
// equality/fingerprints depend only on (name, schema, cell contents).
// They are NOT synchronized — concurrent access to one Table must be
// confined to the pure readers (at, column, row_view, num_rows); the
// parallel FD miner warms fingerprints on the calling thread for this
// reason.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attr.hpp"
#include "util/status.hpp"

namespace maton::core {

/// One entry of a match-action table: a full assignment of values to the
/// schema's columns (materialized, row-major).
using Row = std::vector<Value>;

namespace detail {
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace detail

/// Adaptive column store. A column starts *interned*: each cell is a
/// 32-bit id into an append-only pool of the distinct values seen, so a
/// narrow-domain column (ports, VIP tags, metadata) costs 4 bytes per
/// cell instead of 8 and its fingerprint folds over the compact ids.
/// Ids preserve equality — two cells carry the same id iff they hold the
/// same value — so partitioning and FD checks can work on ids directly.
/// When the domain turns out wide (distinct values exceed
/// max(4096, rows/2), e.g. a globally-unique output column) the column
/// spills to raw 64-bit storage once and stays raw: ids would not pay
/// for the pool.
///
/// The content fingerprint is a pure fold over the VALUE sequence —
/// identical for interned and raw representations — so equal contents
/// always fingerprint equal (the partition cache's cross-rebuild reuse
/// criterion). It is cached, folds appends in place, and recomputes
/// after point writes/erases by scanning the 4-byte ids against the
/// resident pool instead of 8 bytes per cell.
class Column {
 public:
  [[nodiscard]] std::size_t size() const noexcept {
    return interned_ ? ids_.size() : raw_.size();
  }
  [[nodiscard]] Value operator[](std::size_t r) const noexcept {
    return interned_ ? pool_[ids_[r]] : raw_[r];
  }
  [[nodiscard]] bool interned() const noexcept { return interned_; }
  /// Interned representation (valid only while interned()).
  [[nodiscard]] std::span<const std::uint32_t> ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] std::span<const Value> pool() const noexcept {
    return pool_;
  }

  void reserve(std::size_t n);
  void push_back(Value v);
  /// Overwrites cell `r`; returns false when the value was already there
  /// (every cache stays valid in that case).
  bool set(std::size_t r, Value v);
  void erase(std::size_t first, std::size_t count);

  [[nodiscard]] std::uint64_t content_fingerprint() const;
  [[nodiscard]] bool content_equals(const Column& other) const;
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  [[nodiscard]] static std::size_t spill_threshold(
      std::size_t rows) noexcept {
    return rows / 2 > 4096 ? rows / 2 : 4096;
  }
  void spill();

  bool interned_ = true;
  std::vector<std::uint32_t> ids_;  // interned cells: pool indices
  std::vector<Value> pool_;         // id → value, append-only
  std::unordered_map<Value, std::uint32_t> lookup_;  // value → id
  std::vector<Value> raw_;          // wide-domain cells, post-spill
  mutable std::uint64_t fp_ = detail::kFnvOffset;  // fold of the values
  mutable bool fp_valid_ = true;  // empty sequence: offset is correct
};

class Table;

/// Lightweight non-owning view of one table entry. Indexing reads
/// straight out of the column store; materialize() produces a Row copy.
/// Invalidated by any mutation of the underlying table.
class RowView {
 public:
  RowView(const Table& table, std::size_t row) noexcept
      : table_(&table), row_(row) {}

  [[nodiscard]] inline Value operator[](std::size_t col) const;
  [[nodiscard]] inline std::size_t size() const noexcept;
  /// Index of this entry within its table.
  [[nodiscard]] std::size_t index() const noexcept { return row_; }
  [[nodiscard]] inline Row materialize() const;

 private:
  const Table* table_;
  std::size_t row_;
};

/// Forward range over a table's entries yielding RowView (the migration
/// target for the former `for (const Row& r : table.rows())` loops).
class RowRange {
 public:
  class iterator {
   public:
    using value_type = RowView;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() noexcept : table_(nullptr), row_(0) {}
    iterator(const Table* table, std::size_t row) noexcept
        : table_(table), row_(row) {}
    RowView operator*() const noexcept { return RowView(*table_, row_); }
    iterator& operator++() noexcept {
      ++row_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator out = *this;
      ++row_;
      return out;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const Table* table_;
    std::size_t row_;
  };

  RowRange(const Table& table, std::size_t n) noexcept
      : table_(&table), n_(n) {}
  [[nodiscard]] iterator begin() const noexcept { return {table_, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {table_, n_}; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  const Table* table_;
  std::size_t n_;
};

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        cols_(schema_.size()) {}

  Table(const Table& other);
  Table(Table&& other) noexcept = default;
  Table& operator=(const Table& other);
  Table& operator=(Table&& other) noexcept = default;
  ~Table() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] std::size_t num_cols() const noexcept { return schema_.size(); }
  [[nodiscard]] bool empty() const noexcept { return num_rows_ == 0; }

  /// Appends an entry; the row width must equal the schema width.
  void add_row(const Row& row);

  /// Pre-extends every column's capacity for `n` total entries.
  void reserve_rows(std::size_t n);

  /// Overwrites one cell in place. This is the control-plane patching
  /// primitive: an intent that rewrites a few cells of one column leaves
  /// every other column's fingerprint — and therefore its cached mining
  /// partitions — unchanged. Callers must preserve order independence.
  void set_value(std::size_t row, std::size_t col, Value v);

  /// Erases `count` consecutive rows starting at `first`.
  void erase_rows(std::size_t first, std::size_t count);

  /// Materialized copy of entry `i` (row-major).
  [[nodiscard]] Row row(std::size_t i) const;

  /// Copies entry `i` into `out` (resized to the schema width) without
  /// allocating when `out` already has capacity — the per-row primitive
  /// of bulk lowering loops.
  void copy_row_into(std::size_t i, Row& out) const;

  /// Zero-copy view of entry `i`.
  [[nodiscard]] RowView row_view(std::size_t i) const;

  /// Iteration over all entries as RowViews, in row order.
  [[nodiscard]] RowRange rows() const noexcept {
    return RowRange(*this, num_rows_);
  }

  /// One column's value sequence, in row order. The natural access path
  /// for column scans (fingerprints, partitions, FD checks); interned
  /// columns additionally expose their id sequence for scans that only
  /// need equality structure.
  [[nodiscard]] const Column& column(std::size_t col) const;

  [[nodiscard]] Value at(std::size_t row, std::size_t col) const;

  /// Relational projection onto `cols` with duplicate elimination.
  /// Column order in the result follows ascending original index.
  [[nodiscard]] Table project(const AttrSet& cols, std::string name = {}) const;

  /// Rows whose `col` equals `v` (selection).
  [[nodiscard]] Table select_eq(std::size_t col, Value v,
                                std::string name = {}) const;

  /// True when no two rows agree on every column of `cols`.
  /// unique_on(match_set()) is the paper's order-independence requirement
  /// for 1NF.
  [[nodiscard]] bool unique_on(const AttrSet& cols) const;

  /// First pair of row indices that agree on every column of `cols`
  /// (a witness against unique_on), or nullopt when none exists.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
  duplicate_on(const AttrSet& cols) const;

  /// Order independence: the match columns uniquely identify every entry.
  [[nodiscard]] bool is_order_independent() const {
    return unique_on(schema_.match_set());
  }

  /// Index of the first row whose `cols` columns equal `key` (which is
  /// given in ascending-column order), or nullopt. O(1) amortized: the
  /// first probe for a given `cols` builds a hash index over the live
  /// rows; later probes reuse it (appends extend it incrementally,
  /// set_value drops only the indexes covering the touched column).
  [[nodiscard]] std::optional<std::size_t> find_row(
      const AttrSet& cols, std::span<const Value> key) const;

  /// Number of populated match-action fields, the size measure of §2
  /// ("the universal table in Fig. 1a contains 24 match-action fields").
  [[nodiscard]] std::size_t field_count() const noexcept {
    return num_rows_ * schema_.size();
  }

  /// Number of distinct value combinations over `cols`.
  [[nodiscard]] std::size_t distinct_count(const AttrSet& cols) const;

  /// Content fingerprint of one column: a hash of its value sequence in
  /// row order. Equal fingerprints ⇒ (whp) equal column contents, which
  /// is the FD-mining partition-cache reuse criterion — π(X) depends
  /// only on the value sequences of X's columns. Cached per column and
  /// recomputed only after that column's sequence changed (set_value
  /// dirties one column; appends fold into valid fingerprints in place).
  [[nodiscard]] std::uint64_t column_fingerprint(std::size_t col) const;

  /// Whole-table content fingerprint: schema width, row count, and every
  /// cell, in row-major order. Mutating the table changes it. Cached
  /// until the next mutation.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Heap bytes held by the value store plus the lazy caches/indexes
  /// currently materialized (hash-map footprints are estimated from
  /// entry and bucket counts). The BENCH_scale.json bytes/rule metric.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Pretty-printed table (attribute header + typed value rendering).
  /// Large tables are elided: the first kRenderHead and last kRenderTail
  /// entries frame an "… (N more rows)" marker, so printing a
  /// fleet-scale universal table stays O(1) in the row count.
  [[nodiscard]] std::string to_string() const;

  static constexpr std::size_t kRenderHead = 48;
  static constexpr std::size_t kRenderTail = 8;

  /// Equality is relation-level: name, schema and cell contents. The
  /// lazy caches, key indexes, and each column's representation (interned
  /// vs raw, pool order) never participate.
  friend bool operator==(const Table& a, const Table& b) {
    if (a.name_ != b.name_ || a.schema_ != b.schema_ ||
        a.num_rows_ != b.num_rows_) {
      return false;
    }
    for (std::size_t c = 0; c < a.cols_.size(); ++c) {
      if (!a.cols_[c].content_equals(b.cols_[c])) return false;
    }
    return true;
  }

 private:
  friend class RowView;

  /// Hash index over one column set: FNV-1a of the key values (ascending
  /// column order) → row indices carrying that hash, ascending. Probes
  /// verify the actual cells, so hash collisions only cost comparisons.
  struct KeyIndex {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    std::size_t rows_indexed = 0;
  };

  void invalidate_all_caches() noexcept;
  [[nodiscard]] std::uint64_t hash_row_key(std::size_t row,
                                           const AttrSet& cols) const;

  std::string name_;
  Schema schema_;
  std::size_t num_rows_ = 0;
  /// cols_[c][r] = cell (r, c); every column has num_rows_ entries.
  /// Per-column fingerprints live inside Column.
  std::vector<Column> cols_;

  // --- lazy caches (content-derived; dropped by copy, never compared) --
  mutable std::optional<std::uint64_t> table_fp_;
  mutable std::unordered_map<std::uint64_t, KeyIndex> key_indexes_;
};

inline Value RowView::operator[](std::size_t col) const {
  return table_->cols_[col][row_];
}

inline std::size_t RowView::size() const noexcept {
  return table_->num_cols();
}

inline Row RowView::materialize() const {
  Row out;
  out.reserve(size());
  for (std::size_t c = 0; c < size(); ++c) out.push_back((*this)[c]);
  return out;
}

/// Renders one cell according to the attribute's codec.
[[nodiscard]] std::string format_value(const Attribute& attr, Value v);

}  // namespace maton::core
