// Full normalization: iterative decomposition of a universal table into a
// 2NF / 3NF / BCNF pipeline, plus Bernstein-style schema synthesis.
//
// The driver repeatedly analyzes every stage of the working pipeline,
// picks a violating functional dependency (constant columns first — they
// factor into a Cartesian-product stage as in Fig. 2c — then partial,
// then transitive dependencies), decomposes that stage along the
// dependency with the requested join abstraction, and splices the result
// back in. Each decomposition strictly shrinks the affected tables'
// column sets, so the process terminates.
//
// Dependencies can come from two places (§3: "dependencies may exist
// inherently encoded into the high-level data plane model [...] or they
// may be transient data-level dependencies"):
//  * instance mining (default) — normalize against everything that holds
//    in the current configuration;
//  * a caller-supplied model FdSet — only violations *implied by the
//    model* are decomposed, so accidental data coincidences (e.g.
//    tcp_dst → ip_dst happening to hold in Fig. 1a) do not drive
//    normalization. Metadata columns introduced by earlier steps are
//    translated back to the source attributes they encode.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/decompose.hpp"
#include "core/normal_forms.hpp"

namespace maton::core {

struct NormalizeOptions {
  /// Stop once every stage satisfies this form.
  NormalForm target = NormalForm::kThird;
  JoinKind join = JoinKind::kMetadata;
  /// Factor all-constant columns into a product stage (Fig. 2c).
  bool factor_constant_columns = true;
  /// Intended (model-level) dependencies over the input table's schema;
  /// when absent, instance-mined dependencies drive normalization.
  std::optional<FdSet> model_fds;
  std::size_t max_steps = 64;
};

/// One applied normalization step, for the trace.
struct NormalizeStep {
  std::size_t stage = 0;       // stage index that was decomposed
  std::string description;     // e.g. "decompose T0 on ip_dst -> tcp_dst"
};

struct NormalizeOutcome {
  Pipeline pipeline;
  std::vector<NormalizeStep> trace;
  /// Violations that could not be decomposed (e.g. action→match
  /// dependencies, Fig. 3), with the rejection reason.
  std::vector<std::string> skipped;
};

/// Normalizes `table` into a pipeline whose every stage satisfies
/// opts.target (up to undecomposable violations, reported in `skipped`).
/// The input must be in 1NF.
[[nodiscard]] Result<NormalizeOutcome> normalize(const Table& table,
                                                 const NormalizeOptions& opts = {});

/// Bernstein-style 3NF synthesis at the schema level: groups a minimal
/// cover by left-hand side, one relation per group, drops subsumed
/// schemas, and appends a candidate key when no group contains one.
/// Returned attribute sets are over the same column space as `fds`.
[[nodiscard]] std::vector<AttrSet> synthesize_3nf_schemas(const FdSet& fds,
                                                          AttrSet universe);

}  // namespace maton::core
