#include "core/decompose.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contract.hpp"

namespace maton::core {

std::string_view to_string(JoinKind kind) noexcept {
  switch (kind) {
    case JoinKind::kGoto: return "goto";
    case JoinKind::kMetadata: return "metadata";
    case JoinKind::kRematch: return "rematch";
  }
  return "unknown";
}

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<Value>& vals) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (Value v : vals) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Groups table rows by their values over `cols` (first-appearance order).
struct Grouping {
  std::vector<std::size_t> row_group;            // row index → group id
  std::vector<std::size_t> group_representative; // group id → first row
};

Grouping group_by(const Table& table, const AttrSet& cols) {
  Grouping g;
  g.row_group.resize(table.num_rows());
  std::unordered_map<std::vector<Value>, std::size_t, VecHash> ids;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    std::vector<Value> key;
    key.reserve(cols.size());
    for (std::size_t c : cols) key.push_back(table.at(i, c));
    const auto [it, inserted] = ids.emplace(std::move(key), ids.size());
    if (inserted) g.group_representative.push_back(i);
    g.row_group[i] = it->second;
  }
  return g;
}

/// Picks a metadata attribute name not already present in `schema`.
std::string fresh_meta_name(const Schema& schema, const std::string& base) {
  for (std::size_t k = 0;; ++k) {
    std::string name = base + std::to_string(k);
    if (!schema.find(name).has_value()) return name;
  }
}

/// Builds a table whose columns are `cols` of `source` (ascending order),
/// one row per group, taking values from the group representative row.
Table per_group_table(const Table& source, const AttrSet& cols,
                      const Grouping& grouping, std::string name) {
  Table out(std::move(name), source.schema().project(cols, nullptr));
  for (std::size_t rep : grouping.group_representative) {
    Row row;
    row.reserve(cols.size());
    for (std::size_t c : cols) row.push_back(source.at(rep, c));
    out.add_row(std::move(row));
  }
  return out;
}

/// Builds a table over `cols` (ascending) plus a trailing group column,
/// with one row per distinct (cols-part, group) combination.
Table residual_table_with_group(const Table& source, const AttrSet& cols,
                                const Grouping& grouping,
                                const Attribute& group_attr,
                                std::string name) {
  Schema schema = source.schema().project(cols, nullptr);
  schema.add(group_attr);
  Table out(std::move(name), std::move(schema));
  std::unordered_map<std::vector<Value>, bool, VecHash> seen;
  for (std::size_t i = 0; i < source.num_rows(); ++i) {
    Row row;
    row.reserve(cols.size() + 1);
    for (std::size_t c : cols) row.push_back(source.at(i, c));
    row.push_back(static_cast<Value>(grouping.row_group[i]));
    if (seen.emplace(row, true).second) out.add_row(std::move(row));
  }
  return out;
}

/// Order-independence check with a Fig. 3-flavoured diagnostic.
Status check_stage_tables(const Pipeline& pipeline, const Table& original,
                          const Fd& fd) {
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Table& t = pipeline.stage(i).table;
    if (!t.is_order_independent()) {
      return failed_precondition(
          "decomposition along " + to_string(fd, original.schema()) +
          " yields a sub-table (" + t.name() +
          ") that is not order-independent; dependencies whose left-hand "
          "side contains actions and whose right-hand side includes match "
          "fields cannot be decomposed with sequential join abstractions "
          "(cf. Fig. 3 of the paper)");
    }
  }
  return Status::ok();
}

}  // namespace

Result<Decomposition> decompose_on_fd(const Table& table, const Fd& fd,
                                      const DecomposeOptions& opts) {
  const Schema& schema = table.schema();
  const AttrSet universe = schema.all();

  if (!fd.lhs.subset_of(universe) || !fd.rhs.subset_of(universe)) {
    return invalid_argument("dependency refers to columns outside the table");
  }
  if (fd.trivial()) {
    return failed_precondition("cannot decompose along a trivial dependency");
  }
  if (!table.is_order_independent()) {
    return failed_precondition("table " + table.name() +
                               " is not in 1NF (duplicate match keys)");
  }
  if (!fd_holds(table, fd)) {
    return failed_precondition("dependency " + to_string(fd, schema) +
                               " does not hold in table " + table.name());
  }

  const AttrSet x = fd.lhs;
  const AttrSet y = fd.rhs - fd.lhs;
  const AttrSet z = (universe - x) - y;
  const AttrSet matches = schema.match_set();

  const bool x_all_match = x.subset_of(matches);
  const bool x_all_action = !x.intersects(matches);
  if (!x_all_match && !x_all_action) {
    return unimplemented(
        "decomposition with a mixed match/action left-hand side (" +
        schema.names(x) + ") is not defined by the framework");
  }
  if (x.empty()) {
    return failed_precondition(
        "constant columns are factored with factor_constants(), not by "
        "FD decomposition");
  }
  if (opts.join == JoinKind::kRematch && !x_all_match) {
    return failed_precondition(
        "the rematch join can only re-match header fields; " +
        schema.names(x) + " contains actions");
  }

  const Grouping grouping = group_by(table, x);
  const std::size_t num_groups = grouping.group_representative.size();

  Pipeline pipeline;
  std::string created_meta;
  const std::string base_name = table.name().empty() ? "T" : table.name();

  if (x_all_match) {
    // T_XY runs first: it can match X directly.
    switch (opts.join) {
      case JoinKind::kMetadata: {
        const std::string meta = fresh_meta_name(schema, opts.meta_base);
        created_meta = meta;
        Table fd_table = per_group_table(table, x | y, grouping,
                                         base_name + ".fd");
        {
          Schema s = fd_table.schema();
          // Rebuild with the metadata action appended.
          s.add_action(meta, ValueCodec::kPlain, 16);
          Table with_meta(fd_table.name(), std::move(s));
          for (std::size_t g = 0; g < num_groups; ++g) {
            Row row = fd_table.row(g);
            row.push_back(static_cast<Value>(g));
            with_meta.add_row(std::move(row));
          }
          fd_table = std::move(with_meta);
        }
        Table residual = residual_table_with_group(
            table, z, grouping,
            Attribute{meta, AttrKind::kMatch, ValueCodec::kPlain, 16},
            base_name + ".res");
        const std::size_t first = pipeline.add_stage(
            {std::move(fd_table), {}, std::nullopt});
        const std::size_t second =
            pipeline.add_stage({std::move(residual), {}, std::nullopt});
        pipeline.stage(first).next = second;
        pipeline.set_entry(first);
        break;
      }
      case JoinKind::kRematch: {
        Table fd_table =
            per_group_table(table, x | y, grouping, base_name + ".fd");
        Table residual = table.project(x | z, base_name + ".res");
        const std::size_t first =
            pipeline.add_stage({std::move(fd_table), {}, std::nullopt});
        const std::size_t second =
            pipeline.add_stage({std::move(residual), {}, std::nullopt});
        pipeline.stage(first).next = second;
        pipeline.set_entry(first);
        break;
      }
      case JoinKind::kGoto: {
        Table fd_table =
            per_group_table(table, x | y, grouping, base_name + ".fd");
        const std::size_t first =
            pipeline.add_stage({std::move(fd_table), {}, std::nullopt});
        std::vector<std::size_t> targets(num_groups);
        for (std::size_t g = 0; g < num_groups; ++g) {
          // Residual rows of group g, projected onto Z.
          Table residual(base_name + ".g" + std::to_string(g),
                         schema.project(z, nullptr));
          std::unordered_map<std::vector<Value>, bool, VecHash> seen;
          for (std::size_t i = 0; i < table.num_rows(); ++i) {
            if (grouping.row_group[i] != g) continue;
            Row row;
            row.reserve(z.size());
            for (std::size_t c : z) row.push_back(table.at(i, c));
            if (seen.emplace(row, true).second) residual.add_row(std::move(row));
          }
          targets[g] =
              pipeline.add_stage({std::move(residual), {}, std::nullopt});
        }
        pipeline.stage(first).goto_targets = std::move(targets);
        pipeline.set_entry(first);
        break;
      }
    }
  } else {
    // X consists of actions: the residual table runs first, computes the
    // X-group from the packet's header fields, and forwards it; the FD
    // table becomes a group-table-like second stage.
    switch (opts.join) {
      case JoinKind::kMetadata: {
        const std::string meta = fresh_meta_name(schema, opts.meta_base);
        created_meta = meta;
        Table residual = residual_table_with_group(
            table, z, grouping,
            Attribute{meta, AttrKind::kAction, ValueCodec::kPlain, 16},
            base_name + ".res");
        // FD table: meta match column plus the X∪Y columns with their
        // original kinds (Y match fields keep being matched here).
        Schema fd_schema;
        fd_schema.add_match(meta, ValueCodec::kPlain, 16);
        std::vector<std::size_t> old_cols;
        for (std::size_t c : x | y) {
          fd_schema.add(schema.at(c));
          old_cols.push_back(c);
        }
        Table fd_table(base_name + ".fd", std::move(fd_schema));
        for (std::size_t g = 0; g < num_groups; ++g) {
          Row row;
          row.reserve(old_cols.size() + 1);
          row.push_back(static_cast<Value>(g));
          const std::size_t rep = grouping.group_representative[g];
          for (std::size_t c : old_cols) row.push_back(table.at(rep, c));
          fd_table.add_row(std::move(row));
        }
        const std::size_t first =
            pipeline.add_stage({std::move(residual), {}, std::nullopt});
        const std::size_t second =
            pipeline.add_stage({std::move(fd_table), {}, std::nullopt});
        pipeline.stage(first).next = second;
        pipeline.set_entry(first);
        break;
      }
      case JoinKind::kGoto: {
        // One row per distinct Z-part, each jumping to its X-group stage.
        // Each Z-part must map to exactly one X-group, otherwise the jump
        // is ambiguous — the goto-join flavour of the Fig. 3 problem.
        Table res(base_name + ".res", schema.project(z, nullptr));
        std::vector<std::size_t> res_targets;
        std::unordered_map<std::vector<Value>, std::size_t, VecHash> seen;
        std::vector<std::size_t> res_groups;
        for (std::size_t i = 0; i < table.num_rows(); ++i) {
          Row row;
          row.reserve(z.size());
          for (std::size_t c : z) row.push_back(table.at(i, c));
          const auto [it, inserted] =
              seen.emplace(row, grouping.row_group[i]);
          if (inserted) {
            res.add_row(std::move(row));
            res_groups.push_back(grouping.row_group[i]);
          } else if (it->second != grouping.row_group[i]) {
            return failed_precondition(
                "decomposition along " + to_string(fd, schema) +
                " with the goto join is ambiguous: one residual entry "
                "would need to jump to several group tables (cf. Fig. 3 "
                "of the paper)");
          }
        }
        const std::size_t first =
            pipeline.add_stage({std::move(res), {}, std::nullopt});
        // One single-entry "group table" per X-group (the OpenFlow
        // group-table shape the paper points out below Fig. 2b).
        std::vector<std::size_t> group_stage(num_groups);
        for (std::size_t g = 0; g < num_groups; ++g) {
          Table group_table(base_name + ".g" + std::to_string(g),
                            schema.project(x | y, nullptr));
          Row row;
          row.reserve((x | y).size());
          const std::size_t rep = grouping.group_representative[g];
          for (std::size_t c : x | y) row.push_back(table.at(rep, c));
          group_table.add_row(std::move(row));
          group_stage[g] =
              pipeline.add_stage({std::move(group_table), {}, std::nullopt});
        }
        res_targets.reserve(res_groups.size());
        for (std::size_t g : res_groups) res_targets.push_back(group_stage[g]);
        pipeline.stage(first).goto_targets = std::move(res_targets);
        pipeline.set_entry(first);
        break;
      }
      case JoinKind::kRematch:
        ensures(false, "unreachable: rematch with action LHS rejected above");
        break;
    }
  }

  if (Status s = check_stage_tables(pipeline, table, fd); !s.is_ok()) {
    return s;
  }
  if (Status s = pipeline.validate(); !s.is_ok()) {
    return s;
  }
  Decomposition result{std::move(pipeline), fd, opts.join, created_meta, {}};
  if (!created_meta.empty()) {
    for (std::size_t c : x) {
      result.meta_source_names.push_back(schema.at(c).name);
    }
  }
  return result;
}

AttrSet constant_columns(const Table& table) {
  AttrSet result;
  if (table.empty()) return result;
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    const Value first = table.at(0, c);
    bool constant = true;
    for (std::size_t i = 1; i < table.num_rows(); ++i) {
      if (table.at(i, c) != first) {
        constant = false;
        break;
      }
    }
    if (constant) result.insert(c);
  }
  return result;
}

Result<Pipeline> factor_constants(const Table& table) {
  if (table.num_rows() < 2) {
    return failed_precondition(
        "constant factoring needs at least two rows to be meaningful");
  }
  const AttrSet constants = constant_columns(table);
  if (constants.empty()) {
    return failed_precondition("table " + table.name() +
                               " has no constant columns");
  }
  if (constants == table.schema().all()) {
    return failed_precondition(
        "every column is constant; the table is a single fact and cannot "
        "be factored further");
  }

  const std::string base_name = table.name().empty() ? "T" : table.name();
  Table constant_part = table.project(constants, base_name + ".const");
  ensures(constant_part.num_rows() == 1,
          "constant columns must project to a single row");
  Table rest = table.project(table.schema().all() - constants,
                             base_name + ".rest");

  // Cartesian product, realized as an always-visited stage. The product
  // is commutative (§3); we place the constant stage first by convention.
  Pipeline pipeline;
  const std::size_t first =
      pipeline.add_stage({std::move(constant_part), {}, std::nullopt});
  const std::size_t second =
      pipeline.add_stage({std::move(rest), {}, std::nullopt});
  pipeline.stage(first).next = second;
  pipeline.set_entry(first);

  if (Status s = pipeline.validate(); !s.is_ok()) return s;
  return pipeline;
}

}  // namespace maton::core
