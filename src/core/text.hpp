// Textual table specifications: a small, line-oriented format for
// defining match-action tables in files (consumed by the `matonc` CLI
// and handy in tests), plus the inverse serializer.
//
//   # cloud gateway
//   table gwlb {
//     match ip_src: ipv4_prefix;
//     match ip_dst: ipv4;
//     match tcp_dst: port;
//     action out: port;
//
//     0.0.0.0/1,   192.0.2.1, 80 -> 1;
//     128.0.0.0/1, 192.0.2.1, 80 -> 2;
//   }
//
// Value syntax follows the column's codec: dotted quads for ipv4,
// addr/len for ipv4_prefix, aa:bb:cc:dd:ee:ff for mac, and decimal or
// 0x-hex integers otherwise. `#` starts a comment.
#pragma once

#include <string>
#include <string_view>

#include "core/fd.hpp"
#include "core/table.hpp"

namespace maton::core {

/// A parsed specification: the table plus any declared model-level
/// dependencies (`fd ip_dst -> tcp_dst;` lines, §3's "intrinsic"
/// dependencies that normalization should follow instead of transient
/// instance coincidences).
struct ParsedSpec {
  Table table;
  FdSet model_fds;
};

/// Parses one table specification. Errors carry the line number.
[[nodiscard]] Result<ParsedSpec> parse_spec(std::string_view text);

/// Convenience: parse and keep only the table.
[[nodiscard]] Result<Table> parse_table(std::string_view text);

/// Serializes a table back into the specification format; the result
/// re-parses to an equal table.
[[nodiscard]] std::string to_text(const Table& table);

}  // namespace maton::core
