#include "core/mvd.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/fd_mine.hpp"
#include "util/contract.hpp"

namespace maton::core {

std::string to_string(const Mvd& mvd, const Schema& schema) {
  return schema.names(mvd.lhs) + " ->> " + schema.names(mvd.rhs);
}

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<Value>& vals) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (Value v : vals) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

std::vector<Value> slice(const RowView& row, const AttrSet& cols) {
  std::vector<Value> out;
  out.reserve(cols.size());
  for (std::size_t c : cols) out.push_back(row[c]);
  return out;
}

}  // namespace

bool mvd_holds(const Table& table, const Mvd& mvd) {
  const AttrSet universe = table.schema().all();
  expects(mvd.lhs.subset_of(universe) && mvd.rhs.subset_of(universe),
          "MVD refers to columns outside the table");
  const AttrSet y = mvd.rhs - mvd.lhs;
  const AttrSet z = (universe - mvd.lhs) - y;
  if (y.empty() || z.empty()) return true;  // trivial

  // Per X-group: the distinct (Y, Z) combinations must be exactly the
  // product of the distinct Y-parts and distinct Z-parts.
  struct Group {
    std::set<std::vector<Value>> ys;
    std::set<std::vector<Value>> zs;
    std::set<std::pair<std::vector<Value>, std::vector<Value>>> pairs;
  };
  std::unordered_map<std::vector<Value>, Group, VecHash> groups;
  for (const RowView row : table.rows()) {
    Group& g = groups[slice(row, mvd.lhs)];
    auto ypart = slice(row, y);
    auto zpart = slice(row, z);
    g.pairs.insert({ypart, zpart});
    g.ys.insert(std::move(ypart));
    g.zs.insert(std::move(zpart));
  }
  for (const auto& [key, g] : groups) {
    if (g.pairs.size() != g.ys.size() * g.zs.size()) return false;
  }
  return true;
}

std::vector<Mvd> mine_mvds(const Table& table) {
  const std::size_t k = table.num_cols();
  expects(k <= 12, "mine_mvds is exponential; table too wide");
  const AttrSet universe = table.schema().all();

  std::vector<Mvd> found;
  // Enumerate LHS sets X by increasing size, then splits of the
  // complement into (Y, Z); keep the canonical (smaller-raw) side and
  // only minimal X for a given Y.
  for (std::uint64_t xmask = 0; xmask < (std::uint64_t{1} << k); ++xmask) {
    const AttrSet x = AttrSet::from_raw(xmask);
    if (!x.subset_of(universe)) continue;
    const AttrSet rest = universe - x;
    if (rest.size() < 2) continue;

    const std::vector<std::size_t> rest_cols(rest.begin(), rest.end());
    const std::size_t m = rest_cols.size();
    // Proper non-empty subsets of `rest`; canonical side only.
    for (std::uint64_t ymask = 1; ymask + 1 < (std::uint64_t{1} << m);
         ++ymask) {
      AttrSet y;
      for (std::size_t i = 0; i < m; ++i) {
        if ((ymask >> i) & 1) y.insert(rest_cols[i]);
      }
      const AttrSet z = rest - y;
      if (y.raw() > z.raw()) continue;  // complement reported once

      // Minimality: skip when a smaller LHS already gives this Y.
      const bool dominated = std::any_of(
          found.begin(), found.end(), [&](const Mvd& f) {
            return f.rhs == y && f.lhs.proper_subset_of(x);
          });
      if (dominated) continue;
      if (mvd_holds(table, {x, y})) found.push_back({x, y});
    }
  }
  return found;
}

Nf4Report analyze_4nf(const Table& table, const FdSet& fds) {
  Nf4Report report;
  const AttrSet universe = table.schema().all();
  for (const Mvd& mvd : mine_mvds(table)) {
    if (fds.is_superkey(mvd.lhs, universe)) continue;
    // Proper MVD only: FD-backed violations are already BCNF business.
    if (fd_holds(table, {mvd.lhs, mvd.rhs})) continue;
    report.satisfied = false;
    report.violations.push_back(mvd);
  }
  return report;
}

Nf4Report analyze_4nf(const Table& table) {
  return analyze_4nf(table, mine_fds_tane(table));
}

}  // namespace maton::core
