#include "core/pipeline.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace maton::core {

bool is_metadata_name(std::string_view name) noexcept {
  return name.starts_with("meta.");
}

Pipeline Pipeline::single(Table table) {
  Pipeline p;
  p.add_stage({std::move(table), {}, std::nullopt});
  return p;
}

std::size_t Pipeline::add_stage(Stage stage) {
  expects(stage.goto_targets.empty() ||
              stage.goto_targets.size() == stage.table.num_rows(),
          "goto target vector must be parallel to table rows");
  stages_.push_back(std::move(stage));
  return stages_.size() - 1;
}

const Stage& Pipeline::stage(std::size_t i) const {
  expects(i < stages_.size(), "stage index out of range");
  return stages_[i];
}

Stage& Pipeline::stage(std::size_t i) {
  expects(i < stages_.size(), "stage index out of range");
  return stages_[i];
}

void Pipeline::set_entry(std::size_t i) {
  expects(i < stages_.size(), "entry stage out of range");
  entry_ = i;
}

EvalResult Pipeline::evaluate(const PacketState& packet) const {
  EvalResult result;
  if (stages_.empty()) return result;

  PacketState state = packet;
  PacketState pending_actions;
  std::optional<std::size_t> current = entry_;

  while (current.has_value()) {
    const std::size_t idx = *current;
    expects(idx < stages_.size(), "pipeline jump out of range");
    // A revisited stage would mean a cycle; validate() rejects those, but
    // guard evaluation too since pipelines can be built by hand.
    expects(std::find(result.path.begin(), result.path.end(), idx) ==
                result.path.end(),
            "pipeline cycle during evaluation");
    result.path.push_back(idx);

    const Stage& st = stages_[idx];
    const Schema& schema = st.table.schema();
    const AttrSet match_cols = schema.match_set();

    // Gather the packet's values for this table's match columns.
    std::vector<Value> key;
    key.reserve(match_cols.size());
    bool bindable = true;
    for (std::size_t c : match_cols) {
      const auto it = state.find(schema.at(c).name);
      if (it == state.end()) {
        bindable = false;
        break;
      }
      key.push_back(it->second);
    }
    const std::optional<std::size_t> row =
        bindable ? st.table.find_row(match_cols, key) : std::nullopt;
    if (!row.has_value()) {
      // Miss: implicit default action (drop). Nothing observable happens.
      return result;
    }

    // Apply the entry's actions: record observable ones, and write every
    // action value back into the packet state (metadata join, rewrites).
    for (std::size_t c : schema.action_set()) {
      const Attribute& attr = schema.at(c);
      const Value v = st.table.at(*row, c);
      state[attr.name] = v;
      if (!is_metadata_name(attr.name)) pending_actions[attr.name] = v;
    }

    current = st.uses_goto() ? std::optional{st.goto_targets[*row]} : st.next;
  }

  result.hit = true;
  result.actions = std::move(pending_actions);
  return result;
}

std::size_t Pipeline::field_count() const noexcept {
  std::size_t total = 0;
  for (const Stage& st : stages_) {
    total += st.table.field_count();
    if (st.uses_goto()) total += st.table.num_rows();
  }
  return total;
}

std::size_t Pipeline::total_entries() const noexcept {
  std::size_t total = 0;
  for (const Stage& st : stages_) total += st.table.num_rows();
  return total;
}

std::size_t Pipeline::max_depth() const {
  // Longest path from entry in the stage DAG; validate() guarantees
  // acyclicity for library-built pipelines, and the recursion depth is
  // bounded by the stage count here via the visiting guard.
  std::vector<int> memo(stages_.size(), -1);
  std::vector<bool> visiting(stages_.size(), false);

  auto depth = [&](auto&& self, std::size_t i) -> std::size_t {
    expects(!visiting[i], "pipeline cycle in max_depth");
    if (memo[i] >= 0) return static_cast<std::size_t>(memo[i]);
    visiting[i] = true;
    std::size_t best = 0;
    const Stage& st = stages_[i];
    if (st.uses_goto()) {
      for (std::size_t t : st.goto_targets) {
        best = std::max(best, self(self, t));
      }
    }
    if (st.next.has_value()) best = std::max(best, self(self, *st.next));
    visiting[i] = false;
    memo[i] = static_cast<int>(best + 1);
    return best + 1;
  };

  if (stages_.empty()) return 0;
  return depth(depth, entry_);
}

void Pipeline::splice(std::size_t idx, Pipeline sub) {
  expects(idx < stages_.size(), "splice stage out of range");
  expects(sub.num_stages() > 0, "cannot splice an empty pipeline");

  const std::optional<std::size_t> old_next = stages_[idx].next;
  const std::size_t base = stages_.size();

  // Append sub's stages, rebasing its internal indices.
  for (Stage& st : sub.stages_) {
    for (std::size_t& t : st.goto_targets) t += base;
    if (st.next.has_value()) st.next = *st.next + base;
    stages_.push_back(std::move(st));
  }
  const std::size_t sub_entry = base + sub.entry_;

  // Sub's terminal stages inherit the replaced stage's successor.
  if (old_next.has_value()) {
    for (std::size_t i = base; i < stages_.size(); ++i) {
      Stage& st = stages_[i];
      if (!st.uses_goto() && !st.next.has_value()) st.next = old_next;
    }
  }

  // Redirect references to `idx` at sub's entry. The old stage becomes an
  // unreferenced husk; we keep indices stable by turning it into an empty
  // shell that forwards to the sub entry (never executed once all
  // references are redirected, but harmless if something still points
  // here).
  for (Stage& st : stages_) {
    for (std::size_t& t : st.goto_targets) {
      if (t == idx) t = sub_entry;
    }
    if (st.next == idx) st.next = sub_entry;
  }
  if (entry_ == idx) {
    entry_ = sub_entry;
  }
  // Hollow out the replaced stage: a single always-hit empty entry that
  // forwards to the sub entry, so stale references stay executable.
  Table empty_shell("(spliced)", Schema{});
  empty_shell.add_row({});
  stages_[idx] = Stage{std::move(empty_shell), {}, sub_entry};
}

Status Pipeline::validate() const {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& st = stages_[i];
    if (!st.goto_targets.empty() &&
        st.goto_targets.size() != st.table.num_rows()) {
      return internal_error("stage " + std::to_string(i) +
                            ": goto vector not parallel to rows");
    }
    for (std::size_t t : st.goto_targets) {
      if (t >= stages_.size()) {
        return internal_error("stage " + std::to_string(i) +
                              ": goto target out of range");
      }
    }
    if (st.next.has_value() && *st.next >= stages_.size()) {
      return internal_error("stage " + std::to_string(i) +
                            ": successor out of range");
    }
    if (!st.table.is_order_independent()) {
      return failed_precondition(
          "stage " + std::to_string(i) + " (" + st.table.name() +
          ") is not order-independent: duplicate match keys");
    }
  }

  // Cycle check: DFS from every stage (spliced husks may be unreachable
  // from the entry but must still be sane).
  enum class Mark { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(stages_.size(), Mark::kWhite);
  auto dfs = [&](auto&& self, std::size_t i) -> bool {
    if (mark[i] == Mark::kGrey) return false;
    if (mark[i] == Mark::kBlack) return true;
    mark[i] = Mark::kGrey;
    const Stage& st = stages_[i];
    for (std::size_t t : st.goto_targets) {
      if (!self(self, t)) return false;
    }
    if (st.next.has_value() && !self(self, *st.next)) return false;
    mark[i] = Mark::kBlack;
    return true;
  };
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (!dfs(dfs, i)) {
      return internal_error("pipeline stage graph contains a cycle");
    }
  }
  return Status::ok();
}

std::string Pipeline::to_string() const {
  std::string out = "pipeline (" + std::to_string(stages_.size()) +
                    " stages, entry " + std::to_string(entry_) + ")\n";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& st = stages_[i];
    out += "--- stage " + std::to_string(i);
    if (st.uses_goto()) {
      out += " [goto join]";
    } else if (st.next.has_value()) {
      out += " -> stage " + std::to_string(*st.next);
    } else {
      out += " [terminal]";
    }
    out += '\n';
    out += st.table.to_string();
    if (st.uses_goto()) {
      out += "  goto targets:";
      for (std::size_t t : st.goto_targets) out += " " + std::to_string(t);
      out += '\n';
    }
  }
  return out;
}

}  // namespace maton::core
