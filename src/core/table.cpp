#include "core/table.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contract.hpp"
#include "util/format.hpp"

namespace maton::core {

namespace {

using detail::kFnvOffset;
using detail::kFnvPrime;

/// FNV-1a over the selected columns of a row, for dedup sets.
struct ProjectedRowHash {
  std::size_t operator()(const std::vector<Value>& vals) const noexcept {
    std::uint64_t h = kFnvOffset;
    for (Value v : vals) {
      h ^= v;
      h *= kFnvPrime;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

void Column::reserve(std::size_t n) {
  if (interned_) {
    ids_.reserve(n);
  } else {
    raw_.reserve(n);
  }
}

void Column::push_back(Value v) {
  if (interned_) {
    std::uint32_t id = 0;
    if (const auto it = lookup_.find(v); it != lookup_.end()) {
      id = it->second;
    } else if (pool_.size() + 1 > spill_threshold(ids_.size() + 1)) {
      spill();
      raw_.push_back(v);
      return;
    } else {
      id = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(v);
      lookup_.emplace(v, id);
    }
    ids_.push_back(id);
    if (fp_valid_) fp_ = (fp_ ^ v) * kFnvPrime;
    return;
  }
  raw_.push_back(v);
  if (fp_valid_) fp_ = (fp_ ^ v) * kFnvPrime;
}

bool Column::set(std::size_t r, Value v) {
  if ((*this)[r] == v) return false;
  if (interned_) {
    if (const auto it = lookup_.find(v); it != lookup_.end()) {
      ids_[r] = it->second;
    } else if (pool_.size() + 1 > spill_threshold(size())) {
      spill();
      raw_[r] = v;
    } else {
      const auto id = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(v);
      lookup_.emplace(v, id);
      ids_[r] = id;
    }
  } else {
    raw_[r] = v;
  }
  fp_valid_ = false;
  return true;
}

void Column::erase(std::size_t first, std::size_t count) {
  if (interned_) {
    ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(first),
               ids_.begin() + static_cast<std::ptrdiff_t>(first + count));
    // Erased rows may leave dead pool entries behind; the pool is
    // append-only and bounded by the distinct values ever seen.
  } else {
    raw_.erase(raw_.begin() + static_cast<std::ptrdiff_t>(first),
               raw_.begin() + static_cast<std::ptrdiff_t>(first + count));
  }
  fp_valid_ = false;
}

void Column::spill() {
  raw_.reserve(ids_.size() + 1);
  for (const std::uint32_t id : ids_) raw_.push_back(pool_[id]);
  ids_.clear();
  ids_.shrink_to_fit();
  pool_.clear();
  pool_.shrink_to_fit();
  lookup_.clear();
  interned_ = false;
  // The fingerprint folds values in either representation, so a warm
  // fold stays valid across the spill.
}

std::uint64_t Column::content_fingerprint() const {
  if (!fp_valid_) {
    std::uint64_t h = kFnvOffset;
    if (interned_) {
      // 4-byte scan; the pool resolves ids to values from cache.
      for (const std::uint32_t id : ids_) {
        h ^= pool_[id];
        h *= kFnvPrime;
      }
    } else {
      for (const Value v : raw_) {
        h ^= v;
        h *= kFnvPrime;
      }
    }
    fp_ = h;
    fp_valid_ = true;
  }
  return fp_;
}

bool Column::content_equals(const Column& other) const {
  const std::size_t n = size();
  if (n != other.size()) return false;
  if (interned_ && other.interned_ && pool_ == other.pool_) {
    return ids_ == other.ids_;
  }
  if (!interned_ && !other.interned_) return raw_ == other.raw_;
  for (std::size_t r = 0; r < n; ++r) {
    if ((*this)[r] != other[r]) return false;
  }
  return true;
}

std::size_t Column::memory_bytes() const noexcept {
  std::size_t bytes = ids_.capacity() * sizeof(std::uint32_t) +
                      pool_.capacity() * sizeof(Value) +
                      raw_.capacity() * sizeof(Value);
  // unordered_map estimate: node (key + mapped + next pointer) per entry
  // plus the bucket array.
  bytes += lookup_.size() *
           (sizeof(Value) + sizeof(std::uint32_t) + sizeof(void*));
  bytes += lookup_.bucket_count() * sizeof(void*);
  return bytes;
}

Table::Table(const Table& other)
    : name_(other.name_),
      schema_(other.schema_),
      num_rows_(other.num_rows_),
      cols_(other.cols_) {
  // Key indexes are rebuilt on demand; copying a table (e.g. into a
  // pipeline stage) must not drag an index sized like the table. The
  // columns' own fingerprint caches are content-derived and travel with
  // them.
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  schema_ = other.schema_;
  num_rows_ = other.num_rows_;
  cols_ = other.cols_;
  invalidate_all_caches();
  return *this;
}

void Table::invalidate_all_caches() noexcept {
  table_fp_.reset();
  key_indexes_.clear();
}

void Table::add_row(const Row& row) {
  expects(row.size() == schema_.size(),
          "row width does not match schema width in table " + name_);
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    // Columns fold appended cells into their fingerprints in place
    // (FNV-1a is a left fold over the sequence), so appends keep warm
    // fingerprints warm.
    cols_[c].push_back(row[c]);
  }
  ++num_rows_;
  // The whole-table fingerprint mixes the row count before the cells.
  table_fp_.reset();
  // Key indexes extend lazily on the next probe (rows_indexed lags).
}

void Table::reserve_rows(std::size_t n) {
  for (auto& col : cols_) col.reserve(n);
}

void Table::set_value(std::size_t row_idx, std::size_t col, Value v) {
  expects(row_idx < num_rows_, "row index out of range");
  expects(col < schema_.size(), "column index out of range");
  if (!cols_[col].set(row_idx, v)) {
    return;  // no content change; every cache stays valid
  }
  table_fp_.reset();
  // Only indexes that cover the touched column see a different key.
  for (auto it = key_indexes_.begin(); it != key_indexes_.end();) {
    it = ((it->first >> col) & 1) != 0 ? key_indexes_.erase(it)
                                       : std::next(it);
  }
}

void Table::erase_rows(std::size_t first, std::size_t count) {
  expects(first + count <= num_rows_, "row range out of range");
  if (count == 0) return;
  for (auto& col : cols_) col.erase(first, count);
  num_rows_ -= count;
  invalidate_all_caches();
}

Row Table::row(std::size_t i) const {
  expects(i < num_rows_, "row index out of range");
  Row out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col[i]);
  return out;
}

void Table::copy_row_into(std::size_t i, Row& out) const {
  expects(i < num_rows_, "row index out of range");
  out.resize(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) out[c] = cols_[c][i];
}

RowView Table::row_view(std::size_t i) const {
  expects(i < num_rows_, "row index out of range");
  return RowView(*this, i);
}

const Column& Table::column(std::size_t col) const {
  expects(col < schema_.size(), "column index out of range");
  return cols_[col];
}

Value Table::at(std::size_t row_idx, std::size_t col) const {
  expects(row_idx < num_rows_, "row index out of range");
  expects(col < schema_.size(), "column index out of range");
  return cols_[col][row_idx];
}

Table Table::project(const AttrSet& cols, std::string name) const {
  std::vector<std::size_t> old_cols;
  Schema sub = schema_.project(cols, &old_cols);
  Table out(name.empty() ? name_ + "[" + schema_.names(cols) + "]"
                         : std::move(name),
            std::move(sub));

  std::vector<const Column*> src;
  src.reserve(old_cols.size());
  for (std::size_t c : old_cols) src.push_back(&cols_[c]);

  std::unordered_set<std::vector<Value>, ProjectedRowHash> seen;
  seen.reserve(num_rows_);
  std::vector<Value> proj(old_cols.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t k = 0; k < src.size(); ++k) proj[k] = (*src[k])[r];
    if (seen.insert(proj).second) out.add_row(proj);
  }
  return out;
}

Table Table::select_eq(std::size_t col, Value v, std::string name) const {
  expects(col < schema_.size(), "column index out of range");
  Table out(name.empty() ? name_ : std::move(name), schema_);
  const Column& probe = cols_[col];
  Row scratch;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    if (probe[r] != v) continue;
    copy_row_into(r, scratch);
    out.add_row(scratch);
  }
  return out;
}

bool Table::unique_on(const AttrSet& cols) const {
  return !duplicate_on(cols).has_value();
}

std::optional<std::pair<std::size_t, std::size_t>> Table::duplicate_on(
    const AttrSet& cols) const {
  std::vector<const Column*> src;
  src.reserve(cols.size());
  for (std::size_t c : cols) {
    expects(c < schema_.size(), "column index out of range");
    src.push_back(&cols_[c]);
  }
  std::unordered_map<std::vector<Value>, std::size_t, ProjectedRowHash> seen;
  seen.reserve(num_rows_);
  std::vector<Value> proj(src.size());
  for (std::size_t i = 0; i < num_rows_; ++i) {
    for (std::size_t k = 0; k < src.size(); ++k) proj[k] = (*src[k])[i];
    const auto [it, inserted] = seen.emplace(proj, i);
    if (!inserted) return std::pair{it->second, i};
  }
  return std::nullopt;
}

std::uint64_t Table::hash_row_key(std::size_t row, const AttrSet& cols) const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t c : cols) {
    h ^= cols_[c][row];
    h *= kFnvPrime;
  }
  return h;
}

std::optional<std::size_t> Table::find_row(const AttrSet& cols,
                                           std::span<const Value> key) const {
  expects(key.size() == cols.size(), "key width differs from column count");
  for (std::size_t c : cols) {
    expects(c < schema_.size(), "column index out of range");
  }

  KeyIndex& index = key_indexes_[cols.raw()];
  if (index.rows_indexed < num_rows_) {
    // Extend over rows appended since the last probe (or build fresh).
    for (std::size_t r = index.rows_indexed; r < num_rows_; ++r) {
      index.buckets[hash_row_key(r, cols)].push_back(
          static_cast<std::uint32_t>(r));
    }
    index.rows_indexed = num_rows_;
  }

  std::uint64_t h = kFnvOffset;
  for (Value v : key) {
    h ^= v;
    h *= kFnvPrime;
  }
  const auto bucket = index.buckets.find(h);
  if (bucket == index.buckets.end()) return std::nullopt;
  // Bucket rows are ascending by construction, so the first verified
  // candidate is the first matching row — identical to the linear scan.
  for (const std::uint32_t r : bucket->second) {
    std::size_t k = 0;
    bool match = true;
    for (std::size_t c : cols) {
      if (cols_[c][r] != key[k]) {
        match = false;
        break;
      }
      ++k;
    }
    if (match) return r;
  }
  return std::nullopt;
}

std::size_t Table::distinct_count(const AttrSet& cols) const {
  std::vector<const Column*> src;
  src.reserve(cols.size());
  for (std::size_t c : cols) {
    expects(c < schema_.size(), "column index out of range");
    src.push_back(&cols_[c]);
  }
  std::unordered_set<std::vector<Value>, ProjectedRowHash> seen;
  seen.reserve(num_rows_);
  std::vector<Value> proj(src.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t k = 0; k < src.size(); ++k) proj[k] = (*src[k])[r];
    seen.insert(proj);
  }
  return seen.size();
}

std::uint64_t Table::column_fingerprint(std::size_t col) const {
  expects(col < schema_.size(), "column index out of range");
  return cols_[col].content_fingerprint();
}

std::uint64_t Table::fingerprint() const noexcept {
  if (table_fp_.has_value()) return *table_fp_;
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  mix(schema_.size());
  mix(num_rows_);
  // Row-major cell order, matching the former row-of-vectors store.
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (const auto& col : cols_) mix(col[r]);
  }
  table_fp_ = h;
  return h;
}

std::size_t Table::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& col : cols_) bytes += col.memory_bytes();
  bytes += cols_.capacity() * sizeof(Column);
  // Hash maps: estimate nodes (entry + next pointer) plus bucket array.
  for (const auto& [raw, index] : key_indexes_) {
    (void)raw;
    for (const auto& [h, rows] : index.buckets) {
      (void)h;
      bytes += sizeof(std::uint64_t) + sizeof(std::vector<std::uint32_t>) +
               rows.capacity() * sizeof(std::uint32_t) + sizeof(void*);
    }
    bytes += index.buckets.bucket_count() * sizeof(void*);
  }
  return bytes;
}

std::string format_value(const Attribute& attr, Value v) {
  switch (attr.codec) {
    case ValueCodec::kPlain:
      return std::to_string(v);
    case ValueCodec::kIpv4:
      return format_ipv4(static_cast<std::uint32_t>(v));
    case ValueCodec::kIpv4Prefix:
      return format_ipv4_prefix(static_cast<std::uint32_t>(v >> 8),
                                static_cast<unsigned>(v & 0xff));
    case ValueCodec::kMac:
      return format_mac(v);
    case ValueCodec::kPort:
      return std::to_string(v);
  }
  return std::to_string(v);
}

std::string Table::to_string() const {
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const Attribute& a : schema_.attributes()) {
    header.push_back(a.kind == AttrKind::kAction ? a.name + "!" : a.name);
  }

  // Head/tail elision: rendering cost (and column-width computation) is
  // bounded by kRenderHead + kRenderTail regardless of the row count.
  const bool elide = num_rows_ > kRenderHead + kRenderTail;
  const std::size_t head = elide ? kRenderHead : num_rows_;
  const std::size_t tail_first = elide ? num_rows_ - kRenderTail : num_rows_;
  std::vector<std::size_t> rendered;
  rendered.reserve(head + (num_rows_ - tail_first));
  for (std::size_t r = 0; r < head; ++r) rendered.push_back(r);
  for (std::size_t r = tail_first; r < num_rows_; ++r) rendered.push_back(r);

  std::vector<std::vector<std::string>> cells;
  cells.reserve(rendered.size());
  for (const std::size_t r : rendered) {
    std::vector<std::string> line;
    line.reserve(schema_.size());
    for (std::size_t c = 0; c < schema_.size(); ++c) {
      line.push_back(format_value(schema_.at(c), cols_[c][r]));
    }
    cells.push_back(std::move(line));
  }
  std::vector<std::size_t> width(schema_.size(), 0);
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    width[c] = header[c].size();
    for (const auto& line : cells) width[c] = std::max(width[c], line[c].size());
  }

  std::string out = "table " + name_ + " (" + std::to_string(num_rows_) +
                    " entries)\n";
  auto emit = [&](const std::vector<std::string>& line) {
    out += "  ";
    for (std::size_t c = 0; c < line.size(); ++c) {
      out += line[c];
      if (c + 1 < line.size()) out.append(width[c] - line[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit(header);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (elide && i == head) {
      out += "  … (" + std::to_string(tail_first - head) + " more rows)\n";
    }
    emit(cells[i]);
  }
  return out;
}

}  // namespace maton::core
