#include "core/table.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/contract.hpp"
#include "util/format.hpp"

namespace maton::core {

namespace {

/// FNV-1a over the selected columns of a row, for dedup sets.
struct ProjectedRowHash {
  std::size_t operator()(const std::vector<Value>& vals) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (Value v : vals) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

void Table::add_row(Row row) {
  expects(row.size() == schema_.size(),
          "row width does not match schema width in table " + name_);
  rows_.push_back(std::move(row));
}

void Table::set_value(std::size_t row_idx, std::size_t col, Value v) {
  expects(row_idx < rows_.size(), "row index out of range");
  expects(col < schema_.size(), "column index out of range");
  rows_[row_idx][col] = v;
}

void Table::erase_rows(std::size_t first, std::size_t count) {
  expects(first + count <= rows_.size(), "row range out of range");
  rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(first),
              rows_.begin() + static_cast<std::ptrdiff_t>(first + count));
}

const Row& Table::row(std::size_t i) const {
  expects(i < rows_.size(), "row index out of range");
  return rows_[i];
}

Value Table::at(std::size_t row_idx, std::size_t col) const {
  expects(row_idx < rows_.size(), "row index out of range");
  expects(col < schema_.size(), "column index out of range");
  return rows_[row_idx][col];
}

Table Table::project(const AttrSet& cols, std::string name) const {
  std::vector<std::size_t> old_cols;
  Schema sub = schema_.project(cols, &old_cols);
  Table out(name.empty() ? name_ + "[" + schema_.names(cols) + "]"
                         : std::move(name),
            std::move(sub));

  std::unordered_set<std::vector<Value>, ProjectedRowHash> seen;
  for (const Row& r : rows_) {
    std::vector<Value> proj;
    proj.reserve(old_cols.size());
    for (std::size_t c : old_cols) proj.push_back(r[c]);
    if (seen.insert(proj).second) out.add_row(proj);
  }
  return out;
}

Table Table::select_eq(std::size_t col, Value v, std::string name) const {
  expects(col < schema_.size(), "column index out of range");
  Table out(name.empty() ? name_ : std::move(name), schema_);
  for (const Row& r : rows_) {
    if (r[col] == v) out.add_row(r);
  }
  return out;
}

bool Table::unique_on(const AttrSet& cols) const {
  return !duplicate_on(cols).has_value();
}

std::optional<std::pair<std::size_t, std::size_t>> Table::duplicate_on(
    const AttrSet& cols) const {
  std::unordered_map<std::vector<Value>, std::size_t, ProjectedRowHash> seen;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::vector<Value> proj;
    proj.reserve(cols.size());
    for (std::size_t c : cols) proj.push_back(rows_[i][c]);
    const auto [it, inserted] = seen.emplace(std::move(proj), i);
    if (!inserted) return std::pair{it->second, i};
  }
  return std::nullopt;
}

std::optional<std::size_t> Table::find_row(const AttrSet& cols,
                                           std::span<const Value> key) const {
  expects(key.size() == cols.size(), "key width differs from column count");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::size_t k = 0;
    bool match = true;
    for (std::size_t c : cols) {
      if (rows_[i][c] != key[k]) {
        match = false;
        break;
      }
      ++k;
    }
    if (match) return i;
  }
  return std::nullopt;
}

std::size_t Table::distinct_count(const AttrSet& cols) const {
  std::unordered_set<std::vector<Value>, ProjectedRowHash> seen;
  for (const Row& r : rows_) {
    std::vector<Value> proj;
    proj.reserve(cols.size());
    for (std::size_t c : cols) proj.push_back(r[c]);
    seen.insert(std::move(proj));
  }
  return seen.size();
}

std::uint64_t Table::column_fingerprint(std::size_t col) const {
  expects(col < schema_.size(), "column index out of range");
  std::uint64_t h = 1469598103934665603ULL;
  for (const Row& r : rows_) {
    h ^= r[col];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t Table::fingerprint() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(schema_.size());
  mix(rows_.size());
  for (const Row& r : rows_) {
    for (Value v : r) mix(v);
  }
  return h;
}

std::string format_value(const Attribute& attr, Value v) {
  switch (attr.codec) {
    case ValueCodec::kPlain:
      return std::to_string(v);
    case ValueCodec::kIpv4:
      return format_ipv4(static_cast<std::uint32_t>(v));
    case ValueCodec::kIpv4Prefix:
      return format_ipv4_prefix(static_cast<std::uint32_t>(v >> 8),
                                static_cast<unsigned>(v & 0xff));
    case ValueCodec::kMac:
      return format_mac(v);
    case ValueCodec::kPort:
      return std::to_string(v);
  }
  return std::to_string(v);
}

std::string Table::to_string() const {
  // Compute column widths over header and rendered cells.
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const Attribute& a : schema_.attributes()) {
    header.push_back(a.kind == AttrKind::kAction ? a.name + "!" : a.name);
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const Row& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (std::size_t c = 0; c < r.size(); ++c) {
      line.push_back(format_value(schema_.at(c), r[c]));
    }
    cells.push_back(std::move(line));
  }
  std::vector<std::size_t> width(schema_.size(), 0);
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    width[c] = header[c].size();
    for (const auto& line : cells) width[c] = std::max(width[c], line[c].size());
  }

  std::string out = "table " + name_ + " (" + std::to_string(rows_.size()) +
                    " entries)\n";
  auto emit = [&](const std::vector<std::string>& line) {
    out += "  ";
    for (std::size_t c = 0; c < line.size(); ++c) {
      out += line[c];
      if (c + 1 < line.size()) out.append(width[c] - line[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit(header);
  for (const auto& line : cells) emit(line);
  return out;
}

}  // namespace maton::core
