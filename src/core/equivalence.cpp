#include "core/equivalence.hpp"

#include <vector>

#include "core/probe_oracle.hpp"

namespace maton::core {

PacketState packet_for_row(const Table& table, std::size_t i) {
  PacketState packet;
  const Schema& schema = table.schema();
  for (std::size_t c : schema.match_set()) {
    packet[schema.at(c).name] = table.at(i, c);
  }
  return packet;
}

PacketState actions_of_row(const Table& table, std::size_t i) {
  PacketState actions;
  const Schema& schema = table.schema();
  for (std::size_t c : schema.action_set()) {
    const Attribute& attr = schema.at(c);
    if (!is_metadata_name(attr.name)) actions[attr.name] = table.at(i, c);
  }
  return actions;
}

namespace {

std::string describe_state(const PacketState& state) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : state) {
    if (!first) out += ", ";
    out += name + "=" + std::to_string(value);
    first = false;
  }
  out += "}";
  return out;
}

/// Compares one packet's fate under both representations.
bool check_packet(const Table& table, const Pipeline& reference,
                  const Pipeline& pipeline, const PacketState& packet,
                  EquivalenceReport& report) {
  (void)table;
  const EvalResult expected = reference.evaluate(packet);
  const EvalResult actual = pipeline.evaluate(packet);
  ++report.packets_checked;
  if (expected.hit != actual.hit || expected.actions != actual.actions) {
    report.equivalent = false;
    report.counterexample =
        "packet " + describe_state(packet) + ": universal " +
        (expected.hit ? "hits with " + describe_state(expected.actions)
                      : std::string("misses")) +
        ", pipeline " +
        (actual.hit ? "hits with " + describe_state(actual.actions)
                    : std::string("misses"));
    return false;
  }
  return true;
}

}  // namespace

EquivalenceReport check_equivalence(const Table& table,
                                    const Pipeline& pipeline,
                                    const EquivalenceOptions& opts) {
  EquivalenceReport report;
  const Pipeline reference = Pipeline::single(table);

  // Phase 1: every entry's own packet (exhaustive over hit paths).
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    if (!check_packet(table, reference, pipeline, packet_for_row(table, i),
                      report)) {
      return report;
    }
  }

  // Phase 2: randomized probes from the shared oracle — active domain
  // plus one fresh value per field, exercising misses and the
  // partial-hit paths of multi-stage pipelines.
  for (const PacketState& packet :
       draw_table_probes(table, opts.random_probes, opts.seed)) {
    if (!check_packet(table, reference, pipeline, packet, report)) {
      return report;
    }
  }
  return report;
}

}  // namespace maton::core
