#include "core/text.hpp"
#include <cctype>

#include <charconv>
#include <vector>

#include "util/contract.hpp"
#include "util/format.hpp"

namespace maton::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.front())) != 0)) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.back())) != 0)) {
    s.remove_suffix(1);
  }
  return s;
}

Status error_at(std::size_t line, const std::string& message) {
  return invalid_argument("line " + std::to_string(line) + ": " + message);
}

Result<ValueCodec> parse_codec(std::string_view name, std::size_t line) {
  if (name == "plain") return ValueCodec::kPlain;
  if (name == "ipv4") return ValueCodec::kIpv4;
  if (name == "ipv4_prefix") return ValueCodec::kIpv4Prefix;
  if (name == "mac") return ValueCodec::kMac;
  if (name == "port") return ValueCodec::kPort;
  return error_at(line, "unknown codec '" + std::string(name) + "'");
}

unsigned default_width(ValueCodec codec) {
  switch (codec) {
    case ValueCodec::kIpv4:
    case ValueCodec::kIpv4Prefix:
      return 32;
    case ValueCodec::kMac:
      return 48;
    case ValueCodec::kPort:
      return 16;
    case ValueCodec::kPlain:
      return 32;
  }
  return 32;
}

Result<Value> parse_integer(std::string_view text, std::size_t line) {
  text = trim(text);
  if (text.empty()) return error_at(line, "empty value");
  int base = 10;
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
    base = 16;
  }
  Value v = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, base);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return error_at(line, "malformed integer '" + std::string(text) + "'");
  }
  return v;
}

Result<Value> parse_mac(std::string_view text, std::size_t line) {
  Value mac = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t colon = text.find(':', pos);
    const std::string_view part =
        text.substr(pos, colon == std::string_view::npos ? std::string_view::npos
                                                         : colon - pos);
    unsigned byte = 0;
    const auto [end, ec] = std::from_chars(
        part.data(), part.data() + part.size(), byte, 16);
    if (ec != std::errc{} || end != part.data() + part.size() || byte > 255) {
      return error_at(line, "malformed MAC octet '" + std::string(part) + "'");
    }
    mac = (mac << 8) | byte;
    ++octets;
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  if (octets != 6) return error_at(line, "MAC needs six octets");
  return mac;
}

Result<Value> parse_value(std::string_view text, ValueCodec codec,
                          std::size_t line) {
  text = trim(text);
  switch (codec) {
    case ValueCodec::kIpv4: {
      const auto addr = parse_ipv4(text);
      if (!addr.is_ok()) return error_at(line, addr.status().message());
      return Value{addr.value()};
    }
    case ValueCodec::kIpv4Prefix: {
      const std::size_t slash = text.find('/');
      if (slash == std::string_view::npos) {
        return error_at(line, "ipv4_prefix value needs addr/len");
      }
      const auto addr = parse_ipv4(text.substr(0, slash));
      if (!addr.is_ok()) return error_at(line, addr.status().message());
      const auto len = parse_integer(text.substr(slash + 1), line);
      if (!len.is_ok()) return len.status();
      if (len.value() > 32) return error_at(line, "prefix length > 32");
      return (Value{addr.value()} << 8) | len.value();
    }
    case ValueCodec::kMac:
      return parse_mac(text, line);
    case ValueCodec::kPlain:
    case ValueCodec::kPort:
      return parse_integer(text, line);
  }
  return error_at(line, "unhandled codec");
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string_view::npos) {
      parts.push_back(text.substr(pos));
      break;
    }
    parts.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

}  // namespace

Result<ParsedSpec> parse_spec(std::string_view text) {
  std::string name = "table";
  Schema schema;
  std::vector<Row> rows;
  FdSet model_fds;
  bool in_table = false;
  bool saw_table = false;
  bool closed = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (closed) return error_at(line_no, "content after closing '}'");

    if (!in_table) {
      if (!line.starts_with("table ")) {
        return error_at(line_no, "expected 'table <name> {'");
      }
      line.remove_prefix(6);
      if (!line.ends_with("{")) {
        return error_at(line_no, "expected '{' ending the table header");
      }
      line.remove_suffix(1);
      name = std::string(trim(line));
      if (name.empty()) return error_at(line_no, "table needs a name");
      in_table = true;
      saw_table = true;
      continue;
    }

    if (line == "}") {
      closed = true;
      in_table = false;
      continue;
    }

    if (!line.ends_with(";")) {
      return error_at(line_no, "missing ';'");
    }
    line.remove_suffix(1);
    line = trim(line);

    const bool is_match = line.starts_with("match ");
    const bool is_action = line.starts_with("action ");
    if (is_match || is_action) {
      if (!rows.empty()) {
        return error_at(line_no, "column declared after entries");
      }
      line.remove_prefix(is_match ? 6 : 7);
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return error_at(line_no, "expected '<name>: <codec>'");
      }
      const std::string attr_name{trim(line.substr(0, colon))};
      std::string_view codec_part = trim(line.substr(colon + 1));
      // Optional explicit width: "<codec>/<bits>".
      unsigned width = 0;
      if (const std::size_t slash = codec_part.find('/');
          slash != std::string_view::npos) {
        const auto bits =
            parse_integer(codec_part.substr(slash + 1), line_no);
        if (!bits.is_ok()) return bits.status();
        if (bits.value() == 0 || bits.value() > 64) {
          return error_at(line_no, "width must be in [1, 64]");
        }
        width = static_cast<unsigned>(bits.value());
        codec_part = trim(codec_part.substr(0, slash));
      }
      const auto codec = parse_codec(codec_part, line_no);
      if (!codec.is_ok()) return codec.status();
      if (schema.find(attr_name).has_value()) {
        return error_at(line_no, "duplicate column '" + attr_name + "'");
      }
      schema.add({attr_name,
                  is_match ? AttrKind::kMatch : AttrKind::kAction,
                  codec.value(),
                  width == 0 ? default_width(codec.value()) : width});
      continue;
    }

    // Model dependency: "fd <cols> -> <cols>".
    if (line.starts_with("fd ")) {
      line.remove_prefix(3);
      const std::size_t fd_arrow = line.find("->");
      if (fd_arrow == std::string_view::npos) {
        return error_at(line_no, "fd declaration needs '->'");
      }
      auto parse_cols = [&](std::string_view part,
                            AttrSet& out) -> Status {
        for (const std::string_view col : split(part, ',')) {
          const auto idx = schema.find(trim(col));
          if (!idx.has_value()) {
            return error_at(line_no, "fd names unknown column '" +
                                         std::string(trim(col)) + "'");
          }
          out.insert(*idx);
        }
        return Status::ok();
      };
      AttrSet lhs;
      AttrSet rhs;
      if (Status st = parse_cols(trim(line.substr(0, fd_arrow)), lhs);
          !st.is_ok()) {
        return st;
      }
      if (Status st = parse_cols(trim(line.substr(fd_arrow + 2)), rhs);
          !st.is_ok()) {
        return st;
      }
      model_fds.add(lhs, rhs);
      continue;
    }

    // Entry: "<match values> -> <action values>".
    const std::size_t arrow = line.find("->");
    const std::size_t match_count = schema.match_set().size();
    const std::size_t action_count = schema.action_set().size();
    std::vector<std::string_view> match_parts;
    std::vector<std::string_view> action_parts;
    if (arrow == std::string_view::npos) {
      if (action_count != 0) return error_at(line_no, "missing '->'");
      match_parts = split(line, ',');
    } else {
      const std::string_view lhs = trim(line.substr(0, arrow));
      const std::string_view rhs = trim(line.substr(arrow + 2));
      if (!lhs.empty()) match_parts = split(lhs, ',');
      if (!rhs.empty()) action_parts = split(rhs, ',');
    }
    if (match_parts.size() != match_count ||
        action_parts.size() != action_count) {
      return error_at(line_no, "entry arity mismatch: expected " +
                                   std::to_string(match_count) + " -> " +
                                   std::to_string(action_count));
    }

    Row row(schema.size(), 0);
    std::size_t m = 0;
    for (const std::size_t c : schema.match_set()) {
      const auto v = parse_value(match_parts[m++], schema.at(c).codec,
                                 line_no);
      if (!v.is_ok()) return v.status();
      row[c] = v.value();
    }
    std::size_t a = 0;
    for (const std::size_t c : schema.action_set()) {
      const auto v = parse_value(action_parts[a++], schema.at(c).codec,
                                 line_no);
      if (!v.is_ok()) return v.status();
      row[c] = v.value();
    }
    rows.push_back(std::move(row));
  }

  if (!saw_table) return invalid_argument("no table definition found");
  if (!closed) return invalid_argument("missing closing '}'");
  if (schema.empty()) return invalid_argument("table has no columns");

  Table table(std::move(name), std::move(schema));
  for (Row& row : rows) table.add_row(std::move(row));
  // Declared dependencies must actually hold in the instance, otherwise
  // the spec contradicts its own data.
  for (const Fd& fd : model_fds.fds()) {
    if (!fd_holds(table, fd)) {
      return invalid_argument("declared dependency " +
                              to_string(fd, table.schema()) +
                              " does not hold in the table's entries");
    }
  }
  return ParsedSpec{std::move(table), std::move(model_fds)};
}

Result<Table> parse_table(std::string_view text) {
  auto spec = parse_spec(text);
  if (!spec.is_ok()) return spec.status();
  return std::move(spec).value().table;
}

namespace {

std::string_view codec_name(ValueCodec codec) {
  switch (codec) {
    case ValueCodec::kPlain: return "plain";
    case ValueCodec::kIpv4: return "ipv4";
    case ValueCodec::kIpv4Prefix: return "ipv4_prefix";
    case ValueCodec::kMac: return "mac";
    case ValueCodec::kPort: return "port";
  }
  return "plain";
}

}  // namespace

std::string to_text(const Table& table) {
  std::string out = "table " + table.name() + " {\n";
  const Schema& schema = table.schema();
  for (const Attribute& attr : schema.attributes()) {
    out += "  ";
    out += attr.kind == AttrKind::kMatch ? "match " : "action ";
    out += attr.name;
    out += ": ";
    out += codec_name(attr.codec);
    if (attr.width_bits != default_width(attr.codec)) {
      out += "/" + std::to_string(attr.width_bits);
    }
    out += ";\n";
  }
  out += "\n";
  for (const RowView row : table.rows()) {
    out += "  ";
    bool first = true;
    for (const std::size_t c : schema.match_set()) {
      if (!first) out += ", ";
      first = false;
      out += format_value(schema.at(c), row[c]);
    }
    if (!schema.action_set().empty()) {
      out += " -> ";
      first = true;
      for (const std::size_t c : schema.action_set()) {
        if (!first) out += ", ";
        first = false;
        out += format_value(schema.at(c), row[c]);
      }
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace maton::core
