// Equivalent decomposition of match-action tables along functional
// dependencies (§4 of the paper).
//
// Heath's theorem: a relation T over attributes XYZ with X → Y decomposes
// losslessly into T_XY ⋈ T_XZ. For match-action programs the join is
// realized by one of three data-plane abstractions:
//
//  * goto_table — T_XY gains a per-entry goto to a per-X-group residual
//    table (Fig. 1b); smallest aggregate footprint.
//  * metadata   — T_XY gains a "write meta.k" action carrying the X-group
//    id; the residual table matches meta.k instead of X (Fig. 1c).
//  * rematch    — the residual table simply re-matches X (Fig. 1d);
//    only available when X consists of header fields.
//
// When X consists of actions (e.g. mod_dmac → {mod_ttl, mod_smac, out} of
// Fig. 2), the residual table runs *first* and communicates the X-group
// forward; the T_XY side becomes an OpenFlow-group-table-like stage.
//
// Decomposition along an action → match dependency (Fig. 3) produces a
// first stage that is not order-independent; such requests are rejected
// with a structured error rather than yielding a broken pipeline.
#pragma once

#include <string>

#include "core/fd.hpp"
#include "core/pipeline.hpp"

namespace maton::core {

/// Join abstraction used to chain decomposed tables (§4).
enum class JoinKind { kGoto, kMetadata, kRematch };

[[nodiscard]] std::string_view to_string(JoinKind kind) noexcept;

struct DecomposeOptions {
  JoinKind join = JoinKind::kMetadata;
  /// Name given to a freshly introduced metadata attribute; decompose()
  /// appends a numeric suffix to keep names unique within the schema.
  std::string meta_base = "meta.t";
};

/// A successful decomposition: the two-(or more-)stage pipeline plus the
/// dependency and join that produced it.
struct Decomposition {
  Pipeline pipeline;
  Fd fd;
  JoinKind join = JoinKind::kMetadata;
  /// For the metadata join: the freshly introduced metadata attribute and
  /// the names of the source attributes (the dependency's LHS) whose
  /// value-group it encodes. Empty for goto/rematch joins.
  std::string meta_name;
  std::vector<std::string> meta_source_names;
};

/// Decomposes `table` along `fd` using the requested join abstraction.
///
/// Requirements checked (returned as Status errors, not contract
/// violations, because callers legitimately probe candidate FDs):
///  * `table` is order-independent (1NF);
///  * `fd` is non-trivial and holds in the instance;
///  * X is homogeneous: all header fields or all actions (mixed LHS
///    decompositions are not defined by the paper — kUnimplemented);
///  * kRematch additionally requires X to be header fields;
///  * every resulting stage is order-independent — this is the Fig. 3
///    action→match validity condition.
[[nodiscard]] Result<Decomposition> decompose_on_fd(
    const Table& table, const Fd& fd, const DecomposeOptions& opts = {});

/// Fig. 2c constant factoring: columns holding the same value in every
/// row are split into a separate single-entry table composed with the
/// rest by Cartesian product (realized as an always-visited stage).
/// Returns kFailedPrecondition when no column is constant or the table
/// has fewer than two rows (factoring a 1-row table is meaningless).
[[nodiscard]] Result<Pipeline> factor_constants(const Table& table);

/// Columns whose value is identical across all rows (empty for tables
/// with no rows).
[[nodiscard]] AttrSet constant_columns(const Table& table);

}  // namespace maton::core
