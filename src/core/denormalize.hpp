// Denormalization: collapsing a multi-table pipeline back into one
// universal match-action table — the "vice versa" direction of the
// paper's transformation framework (§1, §4) and what §5 observes OVS
// doing implicitly ("OVS explicitly denormalizes the pipeline prior to
// encoding it into the datapath").
//
// flatten() symbolically executes every root-to-terminal path of the
// pipeline, accumulating the packet constraints each path imposes
// (metadata plumbing is resolved away: a match on a field some earlier
// stage wrote checks the written value instead of constraining the
// packet) and the observable actions it applies. Each feasible path
// becomes one universal-table entry.
#pragma once

#include "core/pipeline.hpp"

namespace maton::core {

struct FlattenOptions {
  /// Guard against path blow-up on adversarial pipelines.
  std::size_t max_rows = 1u << 20;
  std::string name = "flattened";
};

/// Collapses `pipeline` into an equivalent universal table.
///
/// Fails with kFailedPrecondition when the pipeline has no uniform
/// universal form: paths that constrain different match-field sets
/// (ragged schemas) or produce duplicate match keys; and with
/// kInvalidArgument when max_rows is exceeded.
[[nodiscard]] Result<Table> flatten(const Pipeline& pipeline,
                                    const FlattenOptions& opts = {});

}  // namespace maton::core
