// Multi-table match-action pipelines: the T ≫ S composition of §3–§4.
//
// A Pipeline is a DAG of Stages. Each stage holds one Table; control
// transfers to either a per-entry goto target (the OpenFlow goto_table
// join), or the stage's default successor (metadata / rematch / product
// joins, where chaining is positional and the "join" lives in shared
// attribute names — metadata columns are attributes named "meta.*").
//
// Execution semantics follow OpenFlow write-actions: action values
// accumulate while the packet traverses the pipeline and take effect only
// if every visited stage hits; a miss at any stage invokes the implicit
// default action (drop), producing no observable output. Applied action
// values are also written back into the packet's bindings, which is what
// makes both the metadata join (write meta.k, match meta.k downstream)
// and field-rewriting pipelines composable.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "util/status.hpp"

namespace maton::core {

/// Attributes named "meta.*" are pipeline-internal metadata: they join
/// stages but are excluded from a pipeline's observable output.
[[nodiscard]] bool is_metadata_name(std::string_view name) noexcept;

/// A packet (or execution state) at the core level: attribute-name →
/// value bindings for header fields and metadata.
using PacketState = std::map<std::string, Value, std::less<>>;

/// One stage of a pipeline.
struct Stage {
  Table table;

  /// Per-entry goto targets (stage indices), parallel to table rows.
  /// Empty when this stage does not use the goto_table join.
  std::vector<std::size_t> goto_targets;

  /// Default successor after a hit when goto_targets is empty;
  /// nullopt terminates the pipeline.
  std::optional<std::size_t> next;

  [[nodiscard]] bool uses_goto() const noexcept {
    return !goto_targets.empty();
  }
};

/// Result of sending one packet through a pipeline.
struct EvalResult {
  /// True when every visited stage had a matching entry.
  bool hit = false;
  /// Observable action bindings (metadata excluded); empty unless hit.
  PacketState actions;
  /// Stage indices visited, in order.
  std::vector<std::size_t> path;
};

class Pipeline {
 public:
  Pipeline() = default;

  /// Pipeline consisting of a single (universal) table.
  [[nodiscard]] static Pipeline single(Table table);

  /// Appends a stage and returns its index.
  std::size_t add_stage(Stage stage);

  [[nodiscard]] std::size_t num_stages() const noexcept {
    return stages_.size();
  }
  [[nodiscard]] const Stage& stage(std::size_t i) const;
  [[nodiscard]] Stage& stage(std::size_t i);
  [[nodiscard]] const std::vector<Stage>& stages() const noexcept {
    return stages_;
  }

  [[nodiscard]] std::size_t entry() const noexcept { return entry_; }
  void set_entry(std::size_t i);

  /// Sends a packet through the pipeline from the entry stage.
  /// `packet` must bind every header field the visited tables match on
  /// (missing bindings count as a miss, not an error).
  [[nodiscard]] EvalResult evaluate(const PacketState& packet) const;

  /// §2's data-plane size measure: populated match-action fields summed
  /// over all stages; per-entry goto targets count as one field each.
  [[nodiscard]] std::size_t field_count() const noexcept;

  /// Total entries across stages.
  [[nodiscard]] std::size_t total_entries() const noexcept;

  /// Longest stage chain a packet can traverse (lookup count upper
  /// bound); this drives the latency models.
  [[nodiscard]] std::size_t max_depth() const;

  /// Replaces stage `idx` by the sub-pipeline `sub`: references to `idx`
  /// are redirected to sub's entry, and sub's terminal stages inherit the
  /// replaced stage's successor. Indices of other stages are preserved.
  void splice(std::size_t idx, Pipeline sub);

  /// Structural sanity: all goto targets and successors in range, goto
  /// vectors parallel to rows, every stage table order-independent,
  /// and the stage graph acyclic.
  [[nodiscard]] Status validate() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Stage> stages_;
  std::size_t entry_ = 0;
};

}  // namespace maton::core
