#include "core/synthesis.hpp"

#include <algorithm>
#include <map>

#include "core/fd_mine.hpp"
#include "util/contract.hpp"

namespace maton::core {

namespace {

/// Registry of metadata attributes introduced during normalization:
/// meta name → names of the source attributes whose value-group the
/// metadata encodes. Expansion is recursive (a later meta may encode an
/// earlier meta).
using MetaRegistry = std::map<std::string, std::vector<std::string>>;

/// Expands `name` through the registry into root-schema attribute names.
void expand_name(const std::string& name, const MetaRegistry& registry,
                 std::vector<std::string>& out, int depth = 0) {
  expects(depth < 32, "metadata registry expansion too deep");
  const auto it = registry.find(name);
  if (it == registry.end()) {
    out.push_back(name);
    return;
  }
  for (const std::string& src : it->second) {
    expand_name(src, registry, out, depth + 1);
  }
}

/// Translates a stage-level FD into the root schema's column space and
/// checks whether the model implies it. Conservative: any attribute that
/// cannot be mapped back makes the answer "not implied".
bool implied_by_model(const Fd& stage_fd, const Schema& stage_schema,
                      const MetaRegistry& registry, const FdSet& model,
                      const Schema& root_schema) {
  auto translate = [&](const AttrSet& cols, AttrSet& out) -> bool {
    for (std::size_t c : cols) {
      std::vector<std::string> names;
      expand_name(stage_schema.at(c).name, registry, names);
      for (const std::string& n : names) {
        const auto idx = root_schema.find(n);
        if (!idx.has_value()) return false;
        out.insert(*idx);
      }
    }
    return true;
  };
  AttrSet lhs;
  AttrSet rhs;
  if (!translate(stage_fd.lhs, lhs) || !translate(stage_fd.rhs, rhs)) {
    return false;
  }
  return model.implies({lhs, rhs});
}

/// Violations to try for a stage, in normalization priority order.
std::vector<Fd> violations_for_target(const NfReport& report,
                                      NormalForm target) {
  std::vector<Fd> out = report.partial_dependencies;
  if (target == NormalForm::kThird || target == NormalForm::kBoyceCodd) {
    out.insert(out.end(), report.transitive_dependencies.begin(),
               report.transitive_dependencies.end());
  }
  if (target == NormalForm::kBoyceCodd) {
    out.insert(out.end(), report.bcnf_violations.begin(),
               report.bcnf_violations.end());
  }
  return out;
}

}  // namespace

Result<NormalizeOutcome> normalize(const Table& table,
                                   const NormalizeOptions& opts) {
  if (!table.is_order_independent()) {
    return failed_precondition("table " + table.name() +
                               " is not in 1NF (duplicate match keys); "
                               "normalization starts from 1NF");
  }
  expects(opts.target != NormalForm::kNotFirst &&
              opts.target != NormalForm::kFirst,
          "normalization target must be 2NF, 3NF or BCNF");

  NormalizeOutcome outcome;
  outcome.pipeline = Pipeline::single(table);
  MetaRegistry registry;
  // FDs a stage may be decomposed on must not be "undone" — remember the
  // ones rejected per stage-table name so we do not retry forever.
  std::vector<std::string> permanently_skipped;

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    bool progressed = false;

    for (std::size_t s = 0;
         s < outcome.pipeline.num_stages() && !progressed; ++s) {
      const Table& stage_table = outcome.pipeline.stage(s).table;
      if (stage_table.num_cols() < 2 || stage_table.num_rows() == 0) continue;

      // In model mode, only instance dependencies *implied by the model*
      // drive the analysis — accidental data coincidences (a backend VM
      // appearing exactly once makes `out` a key of Fig. 1a) must not
      // create or mask violations.
      FdSet mined = mine_fds_tane(stage_table);
      if (opts.model_fds.has_value()) {
        FdSet filtered;
        for (const Fd& fd : mined.fds()) {
          if (implied_by_model(fd, stage_table.schema(), registry,
                               *opts.model_fds, table.schema())) {
            filtered.add(fd);
          }
        }
        mined = std::move(filtered);
      }
      const NfReport report = analyze(stage_table, mined);
      for (const Fd& violation : violations_for_target(report, opts.target)) {
        // Constant columns (empty LHS) factor into a product stage.
        if (violation.lhs.empty()) {
          if (!opts.factor_constant_columns) continue;
          Result<Pipeline> factored = factor_constants(stage_table);
          if (!factored.is_ok()) continue;
          outcome.trace.push_back(
              {s, "factor constant columns (" +
                      stage_table.schema().names(
                          constant_columns(stage_table)) +
                      ") out of " + stage_table.name()});
          outcome.pipeline.splice(s, std::move(factored).value());
          progressed = true;
          break;
        }

        // Decompose with the maximal determined RHS so one step removes
        // everything this LHS pins down. (In model mode `mined` is
        // already filtered, so the closure only contains model facts.)
        Fd full = violation;
        const AttrSet closure_rhs = mined.closure(full.lhs) - full.lhs;
        if (closure_rhs.empty()) continue;
        full.rhs = closure_rhs;

        const std::string signature =
            stage_table.name() + "|" + to_string(full, stage_table.schema());
        if (std::find(permanently_skipped.begin(), permanently_skipped.end(),
                      signature) != permanently_skipped.end()) {
          continue;
        }

        Result<Decomposition> dec =
            decompose_on_fd(stage_table, full, {opts.join, "meta.t"});
        if (!dec.is_ok()) {
          permanently_skipped.push_back(signature);
          outcome.skipped.push_back(dec.status().message());
          continue;
        }

        Decomposition d = std::move(dec).value();
        if (!d.meta_name.empty()) {
          registry[d.meta_name] = d.meta_source_names;
        }
        outcome.trace.push_back(
            {s, "decompose " + stage_table.name() + " on " +
                    to_string(full, stage_table.schema()) + " [" +
                    std::string(to_string(opts.join)) + " join]"});
        outcome.pipeline.splice(s, std::move(d.pipeline));
        progressed = true;
        break;
      }
    }

    if (!progressed) break;
  }

  if (Status s = outcome.pipeline.validate(); !s.is_ok()) return s;
  return outcome;
}

std::vector<AttrSet> synthesize_3nf_schemas(const FdSet& fds,
                                            AttrSet universe) {
  const FdSet cover = fds.minimal_cover();

  // Group the cover by left-hand side; one schema per group.
  std::map<std::uint64_t, AttrSet> groups;
  for (const Fd& fd : cover.fds()) {
    groups[fd.lhs.raw()] |= (fd.lhs | fd.rhs);
  }
  std::vector<AttrSet> schemas;
  schemas.reserve(groups.size());
  for (const auto& [raw, attrs] : groups) schemas.push_back(attrs);

  // Drop schemas contained in another.
  std::vector<AttrSet> kept;
  for (std::size_t i = 0; i < schemas.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < schemas.size() && !subsumed; ++j) {
      if (i == j) continue;
      subsumed = schemas[i].proper_subset_of(schemas[j]) ||
                 (schemas[i] == schemas[j] && j < i);
    }
    if (!subsumed) kept.push_back(schemas[i]);
  }

  // Guarantee a global key is present (lossless join + dependency
  // preservation requirement of the synthesis algorithm).
  const std::vector<AttrSet> keys = candidate_keys(cover, universe);
  const bool has_key = std::any_of(
      kept.begin(), kept.end(), [&](const AttrSet& schema_attrs) {
        return std::any_of(keys.begin(), keys.end(), [&](const AttrSet& k) {
          return k.subset_of(schema_attrs);
        });
      });
  if (!has_key && !keys.empty()) kept.push_back(keys.front());

  // Attributes untouched by any FD still need a home; attach them to the
  // key schema (or emit a standalone schema when no key exists).
  AttrSet covered;
  for (const AttrSet& s : kept) covered |= s;
  const AttrSet loose = universe - covered;
  if (!loose.empty()) {
    if (!keys.empty()) {
      for (AttrSet& s : kept) {
        if (keys.front().subset_of(s)) {
          s |= loose;
          break;
        }
      }
    } else {
      kept.push_back(loose);
    }
  }

  std::sort(kept.begin(), kept.end(), [](const AttrSet& a, const AttrSet& b) {
    return a.raw() < b.raw();
  });
  return kept;
}

}  // namespace maton::core
