// Normal-form analysis of match-action tables (§3 of the paper).
//
//  1NF — the table is a set of fully-specified exact-match entries whose
//        match fields uniquely identify each entry (order independence).
//  2NF — 1NF and no functional dependency from a proper subset of any
//        minimal key to a non-prime attribute (no partial dependencies).
//  3NF — 2NF and no transitive dependencies: for every nontrivial FD
//        X → A, X is a superkey or A is prime.
//  BCNF — for every nontrivial FD X → A, X is a superkey.
#pragma once

#include <string>
#include <vector>

#include "core/fd.hpp"
#include "core/keys.hpp"

namespace maton::core {

/// Highest normal form satisfied. kNotFirst means the table is not even
/// order-independent (duplicate match keys).
enum class NormalForm { kNotFirst, kFirst, kSecond, kThird, kBoyceCodd };

[[nodiscard]] std::string_view to_string(NormalForm nf) noexcept;

/// Complete normal-form report for one table under one dependency set.
struct NfReport {
  bool order_independent = false;
  std::vector<AttrSet> keys;
  AttrSet prime;

  /// FDs violating 2NF: X → A with X a proper subset of some key and A
  /// non-prime.
  std::vector<Fd> partial_dependencies;
  /// FDs violating 3NF (and not 2NF): X → A with X not a superkey and A
  /// non-prime, where X is not a proper subset of any key.
  std::vector<Fd> transitive_dependencies;
  /// FDs violating only BCNF: X → A with X not a superkey but A prime.
  std::vector<Fd> bcnf_violations;

  [[nodiscard]] NormalForm highest() const noexcept;

  /// Human-readable summary naming the violating dependencies.
  [[nodiscard]] std::string to_string(const Schema& schema) const;
};

/// Analyzes `table` under the dependencies `fds` (a minimal cover is
/// computed internally). `fds` must actually hold in the instance for the
/// report to be meaningful; analyze(Table) mines them from the instance.
[[nodiscard]] NfReport analyze(const Table& table, const FdSet& fds);

/// Mines instance FDs (TANE) and analyzes against them.
[[nodiscard]] NfReport analyze(const Table& table);

}  // namespace maton::core
