#include "core/fd.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "util/contract.hpp"

namespace maton::core {

std::string to_string(const Fd& fd, const Schema& schema) {
  return schema.names(fd.lhs) + " -> " + schema.names(fd.rhs);
}

bool fd_holds(const Table& table, const Fd& fd) {
  // Partition-refinement check: refine the all-rows group by each LHS
  // column in turn (exact — groups split only on actual value
  // inequality), then require every group to be constant on the RHS
  // columns, compared in place against the group's first row. No per-row
  // key/value vectors are materialized.
  const std::size_t n = table.num_rows();
  if (n == 0 || fd.trivial()) return true;

  std::vector<std::uint32_t> group(n, 0);
  std::uint32_t num_groups = 1;

  struct SplitKey {
    std::uint32_t group;
    Value value;
    bool operator==(const SplitKey& o) const noexcept {
      return group == o.group && value == o.value;
    }
  };
  struct SplitKeyHash {
    std::size_t operator()(const SplitKey& k) const noexcept {
      std::uint64_t h = (std::uint64_t{k.group} << 1) ^ k.value;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<SplitKey, std::uint32_t, SplitKeyHash> splitter;
  splitter.reserve(n);
  for (std::size_t c : fd.lhs) {
    // Interned columns split on ids: equality-preserving and narrower
    // hash keys than the raw 64-bit values.
    const Column& col = table.column(c);
    splitter.clear();
    std::uint32_t next_id = 0;
    const auto split_on = [&](auto cell_at) {
      for (std::size_t r = 0; r < n; ++r) {
        const auto [it, inserted] =
            splitter.try_emplace({group[r], cell_at(r)}, next_id);
        if (inserted) ++next_id;
        group[r] = it->second;
      }
    };
    if (col.interned()) {
      const std::span<const std::uint32_t> ids = col.ids();
      split_on([ids](std::size_t r) { return Value{ids[r]}; });
    } else {
      split_on([&col](std::size_t r) { return col[r]; });
    }
    num_groups = next_id;
    if (num_groups == n) return true;  // all rows distinct on the LHS
  }

  // Representative (first) row per group; compare later rows in place.
  std::vector<const Column*> rhs_cols;
  rhs_cols.reserve(fd.rhs.size());
  for (std::size_t c : fd.rhs) rhs_cols.push_back(&table.column(c));
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> rep(num_groups, kNone);
  for (std::size_t r = 0; r < n; ++r) {
    std::uint32_t& leader = rep[group[r]];
    if (leader == kNone) {
      leader = static_cast<std::uint32_t>(r);
      continue;
    }
    for (const Column* col : rhs_cols) {
      if ((*col)[r] != (*col)[leader]) return false;
    }
  }
  return true;
}

std::optional<std::pair<std::size_t, std::size_t>> fd_violation_witness(
    const Table& table, const Fd& fd) {
  // Witness search is O(n) with a hash map from LHS projection to the
  // first row carrying it; diagnostics only need the first offending
  // pair, so the partition-refinement machinery above is overkill here.
  if (fd.trivial()) return std::nullopt;

  struct ProjHash {
    std::size_t operator()(const std::vector<Value>& vals) const noexcept {
      std::uint64_t h = 1469598103934665603ULL;
      for (Value v : vals) {
        h ^= v;
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<Value>, std::size_t, ProjHash> first;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> proj;
    proj.reserve(fd.lhs.size());
    for (std::size_t c : fd.lhs) proj.push_back(table.at(r, c));
    const auto [it, inserted] = first.emplace(std::move(proj), r);
    if (inserted) continue;
    for (std::size_t c : fd.rhs) {
      if (table.at(r, c) != table.at(it->second, c)) {
        return std::pair{it->second, r};
      }
    }
  }
  return std::nullopt;
}

AttrSet FdSet::closure(AttrSet attrs) const {
  AttrSet result = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds_) {
      if (fd.lhs.subset_of(result) && !fd.rhs.subset_of(result)) {
        result |= fd.rhs;
        changed = true;
      }
    }
  }
  return result;
}

FdSet FdSet::minimal_cover() const {
  // 1. Split composite right-hand sides into singletons.
  std::vector<Fd> work;
  for (const Fd& fd : fds_) {
    for (std::size_t a : fd.rhs) {
      if (fd.lhs.contains(a)) continue;  // drop the trivial part
      work.push_back({fd.lhs, AttrSet::single(a)});
    }
  }

  // 2. Remove extraneous LHS attributes: drop b from X when
  //    (X − b) → A is still implied.
  const FdSet full(work);
  for (Fd& fd : work) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (std::size_t b : fd.lhs) {
        AttrSet smaller = fd.lhs;
        smaller.erase(b);
        if (fd.rhs.subset_of(full.closure(smaller))) {
          fd.lhs = smaller;
          shrunk = true;
          break;
        }
      }
    }
  }

  // Deduplicate before the redundancy pass so identical copies do not keep
  // each other alive.
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end()), work.end());

  // 3. Remove redundant dependencies: drop fd when the rest implies it.
  for (std::size_t i = 0; i < work.size();) {
    std::vector<Fd> rest;
    rest.reserve(work.size() - 1);
    for (std::size_t j = 0; j < work.size(); ++j) {
      if (j != i) rest.push_back(work[j]);
    }
    if (FdSet(rest).implies(work[i])) {
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return FdSet(std::move(work));
}

bool FdSet::equivalent_to(const FdSet& other) const {
  return std::all_of(other.fds_.begin(), other.fds_.end(),
                     [&](const Fd& fd) { return implies(fd); }) &&
         std::all_of(fds_.begin(), fds_.end(),
                     [&](const Fd& fd) { return other.implies(fd); });
}

FdSet FdSet::project(AttrSet attrs) const {
  expects(attrs.size() <= 20,
          "FdSet::project is exponential; attribute set too large");
  // Enumerate every subset X of attrs and emit X → (closure(X) ∩ attrs − X).
  FdSet out;
  std::vector<std::size_t> cols(attrs.begin(), attrs.end());
  const std::size_t n = cols.size();
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    AttrSet x;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) x.insert(cols[i]);
    }
    const AttrSet determined = (closure(x) & attrs) - x;
    if (!determined.empty()) out.add(x, determined);
  }
  return out.minimal_cover();
}

std::string FdSet::to_string(const Schema& schema) const {
  std::string out;
  for (const Fd& fd : fds_) {
    out += maton::core::to_string(fd, schema);
    out += '\n';
  }
  return out;
}

}  // namespace maton::core
