// Candidate-key enumeration and prime-attribute classification.
//
// §3: "A superkey is a set of attributes that together uniquely identify
// an entry in T. [...] keys may contain both header fields and actions;
// a key is a minimal superkey and a non-prime attribute is an attribute
// that does not appear in any of the keys."
#pragma once

#include <vector>

#include "core/fd.hpp"

namespace maton::core {

/// All candidate (minimal) keys of a relation over `universe` under `fds`.
/// Deterministic output, ordered by (size, bit pattern). Worst case is
/// exponential in |universe|; match-action schemas are narrow enough.
[[nodiscard]] std::vector<AttrSet> candidate_keys(const FdSet& fds,
                                                  AttrSet universe);

/// Keys of a table instance: mines the instance FDs first.
[[nodiscard]] std::vector<AttrSet> candidate_keys(const Table& table);

/// Union of all candidate keys (the prime attributes).
[[nodiscard]] AttrSet prime_attributes(const std::vector<AttrSet>& keys);

}  // namespace maton::core
