// Functional dependencies over match-action tables.
//
// A set of attributes X functionally determines Y (X → Y) in a table T
// when every X-value is associated with exactly one Y-value in T (§3).
// FdSet implements the standard relational machinery: attribute closure
// under Armstrong's axioms, implication testing, and minimal covers —
// the drivers of normalization (§4, Heath's theorem).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/attr.hpp"
#include "core/table.hpp"

namespace maton::core {

/// One functional dependency X → Y over a schema's column indices.
struct Fd {
  AttrSet lhs;
  AttrSet rhs;

  /// Trivial when Y ⊆ X (always holds, carries no information).
  [[nodiscard]] bool trivial() const noexcept { return rhs.subset_of(lhs); }

  friend bool operator==(const Fd&, const Fd&) = default;
  friend auto operator<=>(const Fd&, const Fd&) = default;
};

/// "ip_dst -> tcp_dst" rendering using the schema's attribute names.
[[nodiscard]] std::string to_string(const Fd& fd, const Schema& schema);

/// Tests whether `fd` holds in the table instance: no two rows agree on
/// fd.lhs but differ on fd.rhs.
[[nodiscard]] bool fd_holds(const Table& table, const Fd& fd);

/// First pair of row indices violating `fd` (agreeing on fd.lhs but
/// differing on fd.rhs), or nullopt when the dependency holds.
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
fd_violation_witness(const Table& table, const Fd& fd);

/// A set of functional dependencies with the classic closure algorithms.
class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(std::vector<Fd> fds) : fds_(std::move(fds)) {}

  void add(Fd fd) { fds_.push_back(fd); }
  void add(AttrSet lhs, AttrSet rhs) { fds_.push_back({lhs, rhs}); }

  [[nodiscard]] const std::vector<Fd>& fds() const noexcept { return fds_; }
  [[nodiscard]] std::size_t size() const noexcept { return fds_.size(); }
  [[nodiscard]] bool empty() const noexcept { return fds_.empty(); }

  /// Attribute closure X⁺: all attributes determined by `attrs` under
  /// this FD set. O(|fds|²) fixed-point iteration.
  [[nodiscard]] AttrSet closure(AttrSet attrs) const;

  /// True when this set logically implies `fd` (fd.rhs ⊆ closure(fd.lhs)).
  [[nodiscard]] bool implies(const Fd& fd) const {
    return fd.rhs.subset_of(closure(fd.lhs));
  }

  /// True when `attrs` is a superkey of a relation over `universe`.
  [[nodiscard]] bool is_superkey(AttrSet attrs, AttrSet universe) const {
    return universe.subset_of(closure(attrs));
  }

  /// Canonical (minimal) cover: every RHS is a single attribute, no LHS
  /// contains an extraneous attribute, and no dependency is redundant.
  /// The result is deterministic for a given input order.
  [[nodiscard]] FdSet minimal_cover() const;

  /// Logical equivalence: each set implies every dependency of the other.
  [[nodiscard]] bool equivalent_to(const FdSet& other) const;

  /// Projection of the dependency set onto `attrs`: all FDs X → Y with
  /// X, Y ⊆ attrs implied by this set, returned as a minimal cover.
  /// Exponential in |attrs| in the worst case; `attrs` is expected small
  /// (a decomposed sub-table's columns).
  [[nodiscard]] FdSet project(AttrSet attrs) const;

  /// Multi-line rendering using the schema's attribute names.
  [[nodiscard]] std::string to_string(const Schema& schema) const;

 private:
  std::vector<Fd> fds_;
};

}  // namespace maton::core
