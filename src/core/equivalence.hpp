// Semantic equivalence of a universal table and a decomposed pipeline.
//
// Two representations are equivalent when every packet either misses both
// (and is dropped) or hits both with identical observable action bindings.
// We check this (a) exhaustively over packets crafted from the universal
// table's own entries — which covers every hit path — and (b) over
// randomized probes drawn from the active domain plus fresh values, which
// exercises partial-hit and miss paths.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "core/probe_oracle.hpp"

namespace maton::core {

struct EquivalenceOptions {
  std::size_t random_probes = 256;
  std::uint64_t seed = kProbeSeed;
};

struct EquivalenceReport {
  bool equivalent = true;
  std::size_t packets_checked = 0;
  /// Human-readable description of the first divergence found, if any.
  std::string counterexample;
};

/// Checks that `pipeline` implements exactly the packet-processing
/// function of the universal `table`.
[[nodiscard]] EquivalenceReport check_equivalence(
    const Table& table, const Pipeline& pipeline,
    const EquivalenceOptions& opts = {});

/// Builds the packet that row `i` of `table` matches (its match-field
/// bindings), used by the exhaustive phase and handy in tests.
[[nodiscard]] PacketState packet_for_row(const Table& table, std::size_t i);

/// Expected observable actions of row `i` (action columns, metadata
/// excluded).
[[nodiscard]] PacketState actions_of_row(const Table& table, std::size_t i);

}  // namespace maton::core
