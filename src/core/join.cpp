#include "core/join.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contract.hpp"

namespace maton::core {

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<Value>& vals) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (Value v : vals) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

Table natural_join(const Table& left, const Table& right, std::string name) {
  const Schema& ls = left.schema();
  const Schema& rs = right.schema();

  // Shared attribute names and the right-only columns.
  std::vector<std::pair<std::size_t, std::size_t>> shared;  // (lcol, rcol)
  std::vector<std::size_t> right_only;
  for (std::size_t rc = 0; rc < rs.size(); ++rc) {
    if (const auto lc = ls.find(rs.at(rc).name)) {
      shared.push_back({*lc, rc});
    } else {
      right_only.push_back(rc);
    }
  }

  Schema schema;
  for (const Attribute& a : ls.attributes()) schema.add(a);
  for (std::size_t rc : right_only) schema.add(rs.at(rc));
  Table out(name.empty() ? left.name() + "*" + right.name()
                         : std::move(name),
            std::move(schema));

  // Hash right rows by their shared-column key.
  std::unordered_map<std::vector<Value>, std::vector<std::size_t>, VecHash>
      index;
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) key.push_back(right.at(r, rc));
    index[std::move(key)].push_back(r);
  }

  for (std::size_t l = 0; l < left.num_rows(); ++l) {
    std::vector<Value> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) key.push_back(left.at(l, lc));
    const auto it = index.find(key);
    if (it == index.end()) continue;
    for (std::size_t r : it->second) {
      Row row = left.row(l);
      for (std::size_t rc : right_only) row.push_back(right.at(r, rc));
      out.add_row(std::move(row));
    }
  }
  return out;
}

HeathSplit heath_split(const Table& table, const Fd& fd) {
  const AttrSet universe = table.schema().all();
  expects(fd.lhs.subset_of(universe) && fd.rhs.subset_of(universe),
          "dependency refers to columns outside the table");
  const AttrSet xy = fd.lhs | fd.rhs;
  const AttrSet xz = universe - (fd.rhs - fd.lhs);
  return {table.project(xy, table.name() + ".xy"),
          table.project(xz, table.name() + ".xz")};
}

bool same_relation(const Table& a, const Table& b) {
  if (a.schema() != b.schema()) return false;
  if (a.num_rows() != b.num_rows()) return false;
  std::unordered_map<std::vector<Value>, int, VecHash> counts;
  Row scratch;
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    a.copy_row_into(r, scratch);
    ++counts[scratch];
  }
  for (std::size_t r = 0; r < b.num_rows(); ++r) {
    b.copy_row_into(r, scratch);
    const auto it = counts.find(scratch);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool jd_holds(const Table& table, std::span<const AttrSet> components) {
  expects(!components.empty(), "join dependency needs components");
  AttrSet covered;
  for (const AttrSet& c : components) covered |= c;
  expects(covered == table.schema().all(),
          "join-dependency components must cover the schema");

  Table joined = table.project(components[0]);
  for (std::size_t i = 1; i < components.size(); ++i) {
    joined = natural_join(joined, table.project(components[i]));
  }
  // Reorder to the original column order and compare as sets.
  Table reordered(table.name(), table.schema());
  std::vector<std::size_t> order;
  order.reserve(table.schema().size());
  for (const Attribute& attr : table.schema().attributes()) {
    order.push_back(joined.schema().index_of(attr.name));
  }
  std::unordered_map<std::vector<Value>, bool, VecHash> seen;
  for (const RowView r : joined.rows()) {
    Row row;
    row.reserve(order.size());
    for (std::size_t c : order) row.push_back(r[c]);
    if (seen.emplace(row, true).second) reordered.add_row(std::move(row));
  }
  Table original_set(table.name(), table.schema());
  std::unordered_map<std::vector<Value>, bool, VecHash> seen2;
  Row scratch;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    table.copy_row_into(r, scratch);
    if (seen2.emplace(scratch, true).second) original_set.add_row(scratch);
  }
  return same_relation(original_set, reordered);
}

bool is_lossless_split(const Table& table, const Fd& fd) {
  const HeathSplit split = heath_split(table, fd);
  Table joined = natural_join(split.t_xz, split.t_xy);
  // Reorder the joined columns back to the original schema order before
  // comparing (natural_join puts xz's columns first).
  AttrSet cols;
  std::vector<std::size_t> order(table.schema().size());
  for (std::size_t c = 0; c < table.schema().size(); ++c) {
    order[c] = joined.schema().index_of(table.schema().at(c).name);
    cols.insert(order[c]);
  }
  Table reordered(table.name(), table.schema());
  for (const RowView r : joined.rows()) {
    Row row;
    row.reserve(order.size());
    for (std::size_t c : order) row.push_back(r[c]);
    reordered.add_row(std::move(row));
  }
  // Projection dedup may have merged duplicates; compare as sets.
  Row scratch;
  Table original_set(table.name(), table.schema());
  {
    std::unordered_map<std::vector<Value>, bool, VecHash> seen;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      table.copy_row_into(r, scratch);
      if (seen.emplace(scratch, true).second) original_set.add_row(scratch);
    }
  }
  Table joined_set(table.name(), table.schema());
  {
    std::unordered_map<std::vector<Value>, bool, VecHash> seen;
    for (std::size_t r = 0; r < reordered.num_rows(); ++r) {
      reordered.copy_row_into(r, scratch);
      if (seen.emplace(scratch, true).second) joined_set.add_row(scratch);
    }
  }
  return same_relation(original_set, joined_set);
}

}  // namespace maton::core
