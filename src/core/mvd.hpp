// Multi-valued dependencies and the fourth normal form — the paper's
// declared next step ("Database theory recognizes several normal forms
// that go beyond 3NF by removing so called multi-valued dependencies";
// §6 and the appendix).
//
// X ↠ Y holds in T when, for every X-value, the set of Y-values and the
// set of Z-values (Z = rest) combine freely: whenever two rows agree on
// X, the rows obtained by swapping their Y-parts also exist in T. Every
// FD X → Y is an MVD; a *proper* MVD (one that is not an FD) signals
// combination redundancy — exactly the appendix's SDX situation, where
// per-prefix candidate sets and the hash-based balancing combine freely.
#pragma once

#include <vector>

#include "core/fd.hpp"
#include "core/keys.hpp"

namespace maton::core {

/// Multi-valued dependency X ↠ Y.
struct Mvd {
  AttrSet lhs;
  AttrSet rhs;

  friend bool operator==(const Mvd&, const Mvd&) = default;
};

[[nodiscard]] std::string to_string(const Mvd& mvd, const Schema& schema);

/// Tests X ↠ Y in the instance by the swap-closure criterion.
[[nodiscard]] bool mvd_holds(const Table& table, const Mvd& mvd);

/// All minimal-LHS non-trivial MVDs X ↠ Y holding in `table`, with Y
/// restricted to canonical (lexicographically-least of {Y, Z}) sides so
/// each complementary pair is reported once. Exponential in the column
/// count; match-action schemas are narrow.
[[nodiscard]] std::vector<Mvd> mine_mvds(const Table& table);

/// 4NF: for every non-trivial MVD X ↠ Y, X is a superkey. The FD set is
/// needed to compute keys; analyze_4nf mines instance FDs when absent.
struct Nf4Report {
  bool satisfied = true;
  /// Proper (non-FD) MVD violations — the "beyond 3NF" redundancy.
  std::vector<Mvd> violations;
};

[[nodiscard]] Nf4Report analyze_4nf(const Table& table, const FdSet& fds);
[[nodiscard]] Nf4Report analyze_4nf(const Table& table);

}  // namespace maton::core
