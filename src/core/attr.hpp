// Attributes and schemas for match-action tables.
//
// Following §3 of the paper, header fields ("match" columns) and actions
// are treated uniformly as *attributes* of a relation; functional
// dependencies may relate any mix of them. The kind only matters for
// execution semantics (what a packet must satisfy vs. what gets applied)
// and for decomposition validity (action→match splits, Fig. 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset.hpp"
#include "util/status.hpp"

namespace maton::core {

/// Role a column plays at execution time.
enum class AttrKind {
  kMatch,   // packet must carry this value for the entry to apply
  kAction,  // applied to the packet / execution state on a hit
};

[[nodiscard]] std::string_view to_string(AttrKind kind) noexcept;

/// How a column's 64-bit Value is to be interpreted when lowering to the
/// data plane or pretty-printing. Normalization itself treats all values
/// as opaque tokens (the exact-match assumption of §3).
enum class ValueCodec {
  kPlain,       // opaque integer
  kIpv4,        // host-order IPv4 address
  kIpv4Prefix,  // (addr << 8) | prefix_len, lowered to an LPM match
  kMac,         // 48-bit MAC
  kPort,        // switch port number
};

[[nodiscard]] std::string_view to_string(ValueCodec codec) noexcept;

/// One column of a match-action table.
struct Attribute {
  std::string name;
  AttrKind kind = AttrKind::kMatch;
  ValueCodec codec = ValueCodec::kPlain;
  unsigned width_bits = 32;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// Set of column indices within one Schema.
using AttrSet = SmallBitset;

/// All cell contents are 64-bit tokens; ValueCodec gives them meaning.
using Value = std::uint64_t;

/// Ordered collection of attributes; column indices are stable and
/// returned by add(). Names must be unique within a schema.
class Schema {
 public:
  Schema() = default;

  /// Appends a column and returns its index. Duplicate names are a
  /// contract violation (schemas are built by library code).
  std::size_t add(Attribute attr);

  /// Convenience: add a match column.
  std::size_t add_match(std::string name, ValueCodec codec = ValueCodec::kPlain,
                        unsigned width_bits = 32);
  /// Convenience: add an action column.
  std::size_t add_action(std::string name, ValueCodec codec = ValueCodec::kPlain,
                         unsigned width_bits = 32);

  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }

  [[nodiscard]] const Attribute& at(std::size_t col) const;
  [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept {
    return attrs_;
  }

  /// Column index of the attribute with this name, if present.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// Column index of `name`; contract violation when absent.
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  /// All columns / match columns / action columns as attribute sets.
  [[nodiscard]] AttrSet all() const noexcept {
    return AttrSet::full(attrs_.size());
  }
  [[nodiscard]] AttrSet match_set() const;
  [[nodiscard]] AttrSet action_set() const;

  /// Sub-schema with only the columns in `cols` (ascending index order).
  /// `old_cols`, when non-null, receives the original index of each kept
  /// column so callers can translate rows.
  [[nodiscard]] Schema project(const AttrSet& cols,
                               std::vector<std::size_t>* old_cols = nullptr) const;

  /// "ip_src, ip_dst" rendering of a column set.
  [[nodiscard]] std::string names(const AttrSet& cols) const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace maton::core
