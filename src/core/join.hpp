// Relational joins over match-action tables and the Heath's-theorem
// machinery (§4): "the decomposition of a relation R_XYZ into R_XY ⋈ R_XZ
// is lossless if and only if X → Y is a functional dependency".
#pragma once

#include "core/fd.hpp"
#include "core/table.hpp"

namespace maton::core {

/// Natural join: rows of `left` and `right` agreeing on every attribute
/// name the two schemas share. The result carries left's columns followed
/// by right's non-shared columns; attribute kinds/codecs come from the
/// table that contributes the column. With no shared names this is the
/// Cartesian product.
[[nodiscard]] Table natural_join(const Table& left, const Table& right,
                                 std::string name = {});

/// Heath's decomposition at the relational level: projections of `table`
/// onto X∪Y and X∪Z (Z = rest), returned as {t_xy, t_xz}.
struct HeathSplit {
  Table t_xy;
  Table t_xz;
};
[[nodiscard]] HeathSplit heath_split(const Table& table, const Fd& fd);

/// True when the Heath split re-joins losslessly to exactly the original
/// rows. By Heath's theorem this holds iff fd holds in the instance —
/// property-tested both ways in the suite.
[[nodiscard]] bool is_lossless_split(const Table& table, const Fd& fd);

/// Row-set equality (same schema, same rows up to order).
[[nodiscard]] bool same_relation(const Table& a, const Table& b);

/// Join dependency ⋈{C1, …, Cn}: projecting onto each component and
/// re-joining reproduces exactly the original rows. MVDs are the binary
/// case; the appendix's SDX split is a ternary one over derived
/// attributes. Components must cover the schema.
[[nodiscard]] bool jd_holds(const Table& table,
                            std::span<const AttrSet> components);

}  // namespace maton::core
