#include "core/keys.hpp"

#include <algorithm>

#include "core/fd_mine.hpp"
#include "util/contract.hpp"

namespace maton::core {

std::vector<AttrSet> candidate_keys(const FdSet& fds, AttrSet universe) {
  // Attributes that never appear on any right-hand side cannot be derived,
  // so they belong to every key.
  AttrSet derivable;
  for (const Fd& fd : fds.fds()) derivable |= (fd.rhs - fd.lhs);
  const AttrSet core = universe - derivable;

  std::vector<AttrSet> keys;
  if (fds.is_superkey(core, universe)) {
    keys.push_back(core);
    return keys;
  }

  // Search supersets of `core` by increasing size over the derivable
  // candidates; minimality is by construction (skip supersets of keys).
  const std::vector<std::size_t> cand(derivable.begin(), derivable.end());
  const std::size_t n = cand.size();
  for (std::size_t size = 1; size <= n; ++size) {
    // Gosper's hack over n-bit masks with `size` bits.
    std::uint64_t mask = (std::uint64_t{1} << size) - 1;
    const std::uint64_t limit = std::uint64_t{1} << n;
    while (mask < limit) {
      AttrSet probe = core;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) probe.insert(cand[i]);
      }
      const bool dominated =
          std::any_of(keys.begin(), keys.end(),
                      [&](const AttrSet& k) { return k.subset_of(probe); });
      if (!dominated && fds.is_superkey(probe, universe)) {
        keys.push_back(probe);
      }
      const std::uint64_t c = mask & (~mask + 1);
      const std::uint64_t r = mask + c;
      mask = (((r ^ mask) >> 2) / c) | r;
    }
    // Early exit: once every candidate combination of this size is
    // dominated, larger sizes cannot add minimal keys — but supersets of a
    // key are always dominated, so we can stop only when keys cover all
    // candidates; keep it simple and scan all sizes (n is small).
  }

  std::sort(keys.begin(), keys.end(), [](const AttrSet& a, const AttrSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.raw() < b.raw();
  });
  return keys;
}

std::vector<AttrSet> candidate_keys(const Table& table) {
  return candidate_keys(mine_fds_tane(table), table.schema().all());
}

AttrSet prime_attributes(const std::vector<AttrSet>& keys) {
  AttrSet prime;
  for (const AttrSet& k : keys) prime |= k;
  return prime;
}

}  // namespace maton::core
