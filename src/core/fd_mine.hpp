// Functional-dependency discovery from table instances.
//
// §3 leaves open *how* dependencies are known during decomposition and
// notes they may be intrinsic to the data-plane model or transient
// data-level dependencies of the current configuration. This module
// recovers the complete set of minimal FDs that hold in a concrete table
// instance, which is exactly the "transient" notion — and, for workloads
// generated from a model (gwlb, l3fwd), coincides with the intrinsic one.
//
// Two miners are provided:
//  * mine_fds_naive — O(k · 2^k · n) subset enumeration; simple enough to
//    serve as the test oracle.
//  * mine_fds_tane  — the level-wise lattice algorithm of Huhtala et al.
//    (TANE, 1999) with stripped partitions and rhs⁺ pruning; the
//    production path and the subject of the A2 scalability ablation.
//
// mine_fds_tane is an *engine*: per-level work fans out over a thread
// pool (MineOptions::threads) with a deterministic merge, so the emitted
// FdSet is bit-identical — same dependencies, same order — for every
// thread count including 0 (strictly sequential). An optional
// PartitionCache memoizes stripped partitions across calls, keyed by
// column-content fingerprints, so re-mining after a control-plane churn
// event only recomputes partitions whose columns actually changed.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fd.hpp"
#include "core/table.hpp"

namespace maton::core {

namespace tane {
class PartitionCache;
}  // namespace tane

struct MineOptions {
  /// Sentinel for `threads`: one worker lane per hardware thread.
  static constexpr std::size_t kAutoThreads = ~std::size_t{0};

  /// Upper bound on LHS size; dependencies with larger LHS are not
  /// reported. 0 means "no bound".
  std::size_t max_lhs = 0;

  /// Worker lanes for the TANE engine. 0 runs strictly sequentially on
  /// the calling thread (no pool interaction at all); kAutoThreads sizes
  /// to the hardware. The mined FdSet is identical for every setting.
  /// Ignored by mine_fds_naive.
  std::size_t threads = kAutoThreads;

  /// Optional cross-call stripped-partition cache; see PartitionCache.
  /// Not owned. Ignored by mine_fds_naive.
  tane::PartitionCache* cache = nullptr;
};

/// All minimal non-trivial FDs X → A (singleton RHS) holding in `table`,
/// by direct subset enumeration. Deterministic output order.
/// Tables wider than AttrSet capacity (64 columns) are rejected.
[[nodiscard]] FdSet mine_fds_naive(const Table& table, MineOptions opts = {});

/// Same dependency set as mine_fds_naive (up to order), via the TANE
/// lattice. Output is deterministic and independent of opts.threads.
[[nodiscard]] FdSet mine_fds_tane(const Table& table, MineOptions opts = {});

struct ShardedMineOptions {
  /// Number of hash shards. Values ≤ 1 (or tables too small to split)
  /// fall back to a single mine_fds_tane pass.
  std::size_t shards = 8;

  /// Column whose value assigns each row to a shard (hash mod shards).
  /// Rows agreeing on this column always share a shard, so when it keys
  /// service identity the per-shard instances mirror per-service
  /// structure and shard-local FDs are rarely refuted globally.
  std::size_t shard_col = 0;

  /// Engine options. `mine.threads` bounds the shard fan-out and the
  /// parallel verification rung; each shard's own TANE pass runs
  /// strictly sequentially (the shard is the parallel grain).
  /// `mine.cache` is shared across shards — PartitionCache is
  /// thread-safe and shard tables key their own fingerprints.
  MineOptions mine;
};

/// Sharded variant of mine_fds_tane for fleet-scale tables: hash-shards
/// the rows, mines each shard independently (per-shard TANE over the
/// shared partition cache), then promotes the union of shard-local FDs
/// to global ones by level-wise verification against the full table,
/// escalating refuted candidates one LHS attribute at a time.
///
/// Complete and minimal: a globally-minimal X → A holds on every row
/// subset, so each shard emits some Y ⊆ X; every proper subset of X
/// fails globally (minimality), so the escalation path from Y climbs
/// through failing nodes until it reaches X. The result is bit-identical
/// to mine_fds_tane(table) — same dependencies, same order — for every
/// shard count and thread count.
[[nodiscard]] FdSet mine_fds_sharded(const Table& table,
                                     ShardedMineOptions opts = {});

/// Stripped-partition machinery, exposed for tests and benchmarks.
namespace tane {

/// A stripped partition: the equivalence classes of rows under "agrees on
/// the attribute set", with singleton classes removed.
struct Partition {
  std::vector<std::vector<std::uint32_t>> classes;

  /// ||π||: number of rows covered by non-singleton classes.
  [[nodiscard]] std::size_t covered() const noexcept;
  /// e(π) = ||π|| − |π|, the TANE error measure; X → A holds iff
  /// e(π(X)) == e(π(X ∪ {A})).
  [[nodiscard]] std::size_t error() const noexcept;
  /// A set is a superkey iff its stripped partition is empty.
  [[nodiscard]] bool is_key_partition() const noexcept {
    return classes.empty();
  }
};

/// Partition of `table`'s rows by the single column `col`.
[[nodiscard]] Partition partition_by_column(const Table& table,
                                            std::size_t col);

/// Reusable arena for product(): the num_rows-sized owner map and the
/// per-class buckets persist across calls so the hot lattice loop stops
/// allocating per product. One scratch per worker lane; a scratch must
/// not be shared between concurrently running products.
struct ProductScratch {
  /// Row → class id within partition `a`; valid iff stamp[row] == epoch.
  std::vector<std::int32_t> owner;
  /// Row → epoch of the product call that last wrote owner[row]. The
  /// epoch stamp replaces the O(num_rows) owner reset per call.
  std::vector<std::size_t> stamp;
  std::size_t epoch = 0;
  /// Per-class accumulation buckets; capacities persist across calls.
  std::vector<std::vector<std::uint32_t>> buckets;
  /// Bucket indices touched while scanning one class of `b`.
  std::vector<std::size_t> touched;
};

/// Product π(X)·π(Y) over a table with `num_rows` rows.
[[nodiscard]] Partition product(const Partition& a, const Partition& b,
                                std::size_t num_rows);

/// As above, reusing `scratch` instead of allocating working state.
[[nodiscard]] Partition product(const Partition& a, const Partition& b,
                                std::size_t num_rows, ProductScratch& scratch);

/// Cache key ingredients: content fingerprints of each column of `table`
/// (value sequence in row order). Two tables assigning the same value
/// sequence to a column set X have the same π(X), even if other columns
/// differ — this is what lets the churn loop reuse partitions for the
/// columns an intent did not touch.
[[nodiscard]] std::vector<std::uint64_t> column_fingerprints(
    const Table& table);

/// Fingerprint of `table` restricted to `attrs`: mixes the member
/// columns' fingerprints (ascending order) with the row count. Serves as
/// the PartitionCache key together with AttrSet::raw().
[[nodiscard]] std::uint64_t subset_fingerprint(
    const std::vector<std::uint64_t>& col_fps, std::size_t num_rows,
    AttrSet attrs);

/// Memoizes stripped partitions across mine_fds_tane calls.
///
/// Keyed by (subset_fingerprint, AttrSet::raw), so entries are reusable
/// exactly when the keyed columns' contents are unchanged; mutating a
/// table (add_row, or rebuilding it after a churn intent) changes the
/// fingerprints of the affected columns and the stale entries simply
/// stop being found. Thread-safe: the mining engine consults it from
/// worker lanes. Bounded: when `capacity` entries are exceeded the cache
/// is wholesale-reset (partitions regenerate on the next mine; eviction
/// precision is not worth the bookkeeping at this size).
class PartitionCache {
 public:
  explicit PartitionCache(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t resets = 0;
  };

  /// The cached partition for the key, or nullptr (counts a hit/miss).
  [[nodiscard]] std::shared_ptr<const Partition> find(std::uint64_t fp,
                                                      std::uint64_t attrs_raw);

  /// Inserts (first writer wins) and returns the resident partition.
  std::shared_ptr<const Partition> put(std::uint64_t fp,
                                       std::uint64_t attrs_raw,
                                       std::shared_ptr<const Partition> p);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Key {
    std::uint64_t fp;
    std::uint64_t attrs;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.fp ^ (k.attrs * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const Partition>, KeyHash> map_;
  std::size_t capacity_;
  Stats stats_;
};

}  // namespace tane

}  // namespace maton::core
