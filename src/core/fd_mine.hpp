// Functional-dependency discovery from table instances.
//
// §3 leaves open *how* dependencies are known during decomposition and
// notes they may be intrinsic to the data-plane model or transient
// data-level dependencies of the current configuration. This module
// recovers the complete set of minimal FDs that hold in a concrete table
// instance, which is exactly the "transient" notion — and, for workloads
// generated from a model (gwlb, l3fwd), coincides with the intrinsic one.
//
// Two miners are provided:
//  * mine_fds_naive — O(k · 2^k · n) subset enumeration; simple enough to
//    serve as the test oracle.
//  * mine_fds_tane  — the level-wise lattice algorithm of Huhtala et al.
//    (TANE, 1999) with stripped partitions and rhs⁺ pruning; the
//    production path and the subject of the A2 scalability ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fd.hpp"
#include "core/table.hpp"

namespace maton::core {

struct MineOptions {
  /// Upper bound on LHS size; dependencies with larger LHS are not
  /// reported. 0 means "no bound".
  std::size_t max_lhs = 0;
};

/// All minimal non-trivial FDs X → A (singleton RHS) holding in `table`,
/// by direct subset enumeration. Deterministic output order.
[[nodiscard]] FdSet mine_fds_naive(const Table& table, MineOptions opts = {});

/// Same result as mine_fds_naive (up to order), via the TANE lattice.
[[nodiscard]] FdSet mine_fds_tane(const Table& table, MineOptions opts = {});

/// Stripped-partition machinery, exposed for tests and benchmarks.
namespace tane {

/// A stripped partition: the equivalence classes of rows under "agrees on
/// the attribute set", with singleton classes removed.
struct Partition {
  std::vector<std::vector<std::uint32_t>> classes;

  /// ||π||: number of rows covered by non-singleton classes.
  [[nodiscard]] std::size_t covered() const noexcept;
  /// e(π) = ||π|| − |π|, the TANE error measure; X → A holds iff
  /// e(π(X)) == e(π(X ∪ {A})).
  [[nodiscard]] std::size_t error() const noexcept;
  /// A set is a superkey iff its stripped partition is empty.
  [[nodiscard]] bool is_key_partition() const noexcept {
    return classes.empty();
  }
};

/// Partition of `table`'s rows by the single column `col`.
[[nodiscard]] Partition partition_by_column(const Table& table,
                                            std::size_t col);

/// Product π(X)·π(Y) over a table with `num_rows` rows.
[[nodiscard]] Partition product(const Partition& a, const Partition& b,
                                std::size_t num_rows);

}  // namespace tane

}  // namespace maton::core
