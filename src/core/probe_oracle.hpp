// Shared probe oracle: the one place that turns a seed into equivalence
// probe packets. Both probe-based checkers — core::check_equivalence's
// randomized phase and netkat::equivalent_on's sampled packet universe —
// draw through this module, so they share one seed constant and one
// reproducible draw discipline instead of each reinventing them.
//
// The symbolic engine (analysis/symbolic) supersedes these probes with
// proofs; the oracle remains as the independent cross-check the
// differential test suite compares the solver against.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/table.hpp"

namespace maton::core {

/// Seed of every probe-based equivalence check ("maton" in ASCII).
inline constexpr std::uint64_t kProbeSeed = 0x6d61746f6eULL;

/// Draws `count` probe packets over the match columns of `table`:
/// uniform over each column's active value domain plus one fresh value
/// no entry uses, which exercises miss and partial-hit paths. Draw
/// order is deterministic in (table contents, seed).
[[nodiscard]] std::vector<PacketState> draw_table_probes(
    const Table& table, std::size_t count,
    std::uint64_t seed = kProbeSeed);

/// Draws `count` sparse packets over an explicit field universe: each
/// field is present with probability `present_probability` (absent
/// fields exercise failing tests) and bound uniformly in
/// [0, max_value]. Used for NetKAT policy probing.
[[nodiscard]] std::vector<PacketState> draw_field_probes(
    std::span<const std::string> fields, std::size_t count,
    std::uint64_t max_value, double present_probability = 0.85,
    std::uint64_t seed = kProbeSeed);

}  // namespace maton::core
