#include "core/probe_oracle.hpp"

#include <set>

#include "util/rng.hpp"

namespace maton::core {

std::vector<PacketState> draw_table_probes(const Table& table,
                                           std::size_t count,
                                           std::uint64_t seed) {
  const Schema& schema = table.schema();
  const std::vector<std::size_t> match_cols = [&] {
    const AttrSet m = schema.match_set();
    return std::vector<std::size_t>(m.begin(), m.end());
  }();

  // Per-column domain: the active values plus one fresh value outside
  // the active domain.
  std::vector<std::vector<Value>> domain(match_cols.size());
  for (std::size_t k = 0; k < match_cols.size(); ++k) {
    std::set<Value> seen;
    for (std::size_t i = 0; i < table.num_rows(); ++i) {
      seen.insert(table.at(i, match_cols[k]));
    }
    Value fresh = 0;
    while (seen.count(fresh) != 0) ++fresh;
    domain[k].assign(seen.begin(), seen.end());
    domain[k].push_back(fresh);
  }

  Rng rng(seed);
  std::vector<PacketState> probes;
  probes.reserve(count);
  for (std::size_t probe = 0; probe < count; ++probe) {
    PacketState packet;
    for (std::size_t k = 0; k < match_cols.size(); ++k) {
      packet[schema.at(match_cols[k]).name] =
          domain[k][rng.index(domain[k].size())];
    }
    probes.push_back(std::move(packet));
  }
  return probes;
}

std::vector<PacketState> draw_field_probes(
    std::span<const std::string> fields, std::size_t count,
    std::uint64_t max_value, double present_probability,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PacketState> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PacketState packet;
    for (const std::string& field : fields) {
      if (rng.chance(present_probability)) {
        packet[field] = rng.uniform(0, max_value);
      }
    }
    probes.push_back(std::move(packet));
  }
  return probes;
}

}  // namespace maton::core
