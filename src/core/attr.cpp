#include "core/attr.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace maton::core {

std::string_view to_string(AttrKind kind) noexcept {
  switch (kind) {
    case AttrKind::kMatch: return "match";
    case AttrKind::kAction: return "action";
  }
  return "unknown";
}

std::string_view to_string(ValueCodec codec) noexcept {
  switch (codec) {
    case ValueCodec::kPlain: return "plain";
    case ValueCodec::kIpv4: return "ipv4";
    case ValueCodec::kIpv4Prefix: return "ipv4-prefix";
    case ValueCodec::kMac: return "mac";
    case ValueCodec::kPort: return "port";
  }
  return "unknown";
}

std::size_t Schema::add(Attribute attr) {
  expects(!attr.name.empty(), "attribute name must be non-empty");
  expects(!find(attr.name).has_value(),
          "duplicate attribute name in schema: " + attr.name);
  expects(attrs_.size() < AttrSet::kCapacity,
          "schema exceeds the supported number of columns");
  attrs_.push_back(std::move(attr));
  return attrs_.size() - 1;
}

std::size_t Schema::add_match(std::string name, ValueCodec codec,
                              unsigned width_bits) {
  return add({std::move(name), AttrKind::kMatch, codec, width_bits});
}

std::size_t Schema::add_action(std::string name, ValueCodec codec,
                               unsigned width_bits) {
  return add({std::move(name), AttrKind::kAction, codec, width_bits});
}

const Attribute& Schema::at(std::size_t col) const {
  expects(col < attrs_.size(), "schema column index out of range");
  return attrs_[col];
}

std::optional<std::size_t> Schema::find(std::string_view name) const {
  const auto it = std::find_if(
      attrs_.begin(), attrs_.end(),
      [&](const Attribute& a) { return a.name == name; });
  if (it == attrs_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - attrs_.begin());
}

std::size_t Schema::index_of(std::string_view name) const {
  const auto idx = find(name);
  expects(idx.has_value(), "unknown attribute: " + std::string(name));
  return *idx;
}

AttrSet Schema::match_set() const {
  AttrSet s;
  for (std::size_t c = 0; c < attrs_.size(); ++c) {
    if (attrs_[c].kind == AttrKind::kMatch) s.insert(c);
  }
  return s;
}

AttrSet Schema::action_set() const {
  AttrSet s;
  for (std::size_t c = 0; c < attrs_.size(); ++c) {
    if (attrs_[c].kind == AttrKind::kAction) s.insert(c);
  }
  return s;
}

Schema Schema::project(const AttrSet& cols,
                       std::vector<std::size_t>* old_cols) const {
  expects(cols.subset_of(all()), "projection columns outside schema");
  Schema out;
  if (old_cols != nullptr) old_cols->clear();
  for (std::size_t c : cols) {
    out.add(attrs_[c]);
    if (old_cols != nullptr) old_cols->push_back(c);
  }
  return out;
}

std::string Schema::names(const AttrSet& cols) const {
  std::string out;
  bool first = true;
  for (std::size_t c : cols) {
    if (!first) out += ", ";
    out += at(c).name;
    first = false;
  }
  return out;
}

}  // namespace maton::core
