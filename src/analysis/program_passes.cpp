// Program-level passes: rule shadowing (MA1xx), pipeline reachability
// (MA2xx) and read-before-write dataflow hazards (MA3xx). All operate on
// the compiled dp::Program only — no core-model input required.
#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include "analysis/analysis.hpp"
#include "util/format.hpp"

namespace maton::analysis {

namespace {

using detail::Sink;
using detail::describe_rule;

/// Effective single-field constraint of a rule: at most one FieldMatch
/// per field is assumed (the compiler emits exactly one); extra matches
/// on the same field are conjoined conservatively by the callers.
[[nodiscard]] const dp::FieldMatch* find_match(const dp::Rule& rule,
                                               dp::FieldId field) {
  for (const dp::FieldMatch& m : rule.matches) {
    if (m.field == field) return &m;
  }
  return nullptr;
}

/// True when every packet matching `specific` also matches `general`:
/// each constraint of `general` must be implied by `specific`'s
/// constraint on the same field (mask subsumption — exact, prefix and
/// ternary masks all reduce to it).
[[nodiscard]] bool subsumes(const dp::Rule& general,
                            const dp::Rule& specific) {
  for (const dp::FieldMatch& g : general.matches) {
    const dp::FieldMatch* s = find_match(specific, g.field);
    if (s == nullptr) {
      // `specific` leaves the field free; only a no-op constraint is
      // implied.
      if (g.mask != 0) return false;
      if (g.value != 0) return false;
      continue;
    }
    if ((s->mask & g.mask) != g.mask) return false;
    if ((s->value & g.mask) != g.value) return false;
  }
  return true;
}

/// True when some packet can match both rules: on every field both
/// constrain, the fixed bits they share must agree.
[[nodiscard]] bool overlaps(const dp::Rule& a, const dp::Rule& b) {
  for (const dp::FieldMatch& ma : a.matches) {
    const dp::FieldMatch* mb = find_match(b, ma.field);
    if (mb == nullptr) continue;
    if (((ma.value ^ mb->value) & (ma.mask & mb->mask)) != 0) return false;
  }
  return true;
}

/// True when the rule constrains some field twice with incompatible
/// fixed bits (it can never match anything).
[[nodiscard]] std::optional<dp::FieldId> contradictory_field(
    const dp::Rule& rule) {
  for (std::size_t i = 0; i < rule.matches.size(); ++i) {
    for (std::size_t j = i + 1; j < rule.matches.size(); ++j) {
      const dp::FieldMatch& a = rule.matches[i];
      const dp::FieldMatch& b = rule.matches[j];
      if (a.field != b.field) continue;
      if (((a.value ^ b.value) & (a.mask & b.mask)) != 0) return a.field;
    }
  }
  return std::nullopt;
}

[[nodiscard]] bool same_outcome(const dp::Rule& a, const dp::Rule& b) {
  return a.actions == b.actions && a.goto_table == b.goto_table;
}

/// Successor tables a hit in `table` can transfer to.
void append_successors(const dp::TableSpec& table,
                       std::vector<std::size_t>& out) {
  bool any_default = false;
  for (const auto rule : table.rules) {
    if (rule.goto_table.has_value()) {
      out.push_back(*rule.goto_table);
    } else {
      any_default = true;
    }
  }
  if (any_default && table.next.has_value()) out.push_back(*table.next);
}

}  // namespace

void run_shadowing_pass(const Input& input, const Options& options,
                        Report& report) {
  Sink sink("shadowing", options, report);
  if (input.program == nullptr) return;
  sink.mark_ran();

  for (std::size_t t = 0; t < input.program->tables.size(); ++t) {
    const dp::TableSpec& table = input.program->tables[t];
    // The pair-wise helpers below take boundary Rules; one materialization
    // per table keeps them simple (analysis is not the fleet hot path).
    const std::vector<dp::Rule> rules = table.rules.to_rules();
    for (std::size_t j = 0; j < rules.size(); ++j) {
      if (const auto field = contradictory_field(rules[j])) {
        sink.emit({Severity::kWarning, "MA103", "", t, j,
                   "rule in table '" + table.name +
                       "' can never match: contradictory constraints on " +
                       std::string(to_string(*field)),
                   describe_rule(rules[j])});
        continue;
      }
      // Lookup is first-match in vector order (the compiler sorts by
      // priority descending), so only earlier rules can shadow.
      for (std::size_t i = 0; i < j; ++i) {
        if (!subsumes(rules[i], rules[j])) continue;
        sink.emit({Severity::kWarning, "MA101", "", t, j,
                   "rule in table '" + table.name +
                       "' is fully shadowed by rule#" + std::to_string(i),
                   "shadowed: " + describe_rule(rules[j]) +
                       "; shadowing rule#" + std::to_string(i) + ": " +
                       describe_rule(rules[i])});
        break;
      }
      // Ambiguous overlap: same priority, intersecting match sets,
      // different outcome — lookup order decides, which breaks the
      // paper's order-independence requirement at the data-plane level.
      for (std::size_t i = 0; i < j; ++i) {
        if (rules[i].priority != rules[j].priority) continue;
        if (subsumes(rules[i], rules[j]) || subsumes(rules[j], rules[i])) {
          continue;  // already reported as MA101 (or identical)
        }
        if (!overlaps(rules[i], rules[j])) continue;
        if (same_outcome(rules[i], rules[j])) continue;
        sink.emit({Severity::kWarning, "MA102", "", t, j,
                   "rules #" + std::to_string(i) + " and #" +
                       std::to_string(j) + " in table '" + table.name +
                       "' overlap at equal priority with different "
                       "actions (order-dependent lookup)",
                   describe_rule(rules[i]) + " vs " +
                       describe_rule(rules[j])});
        break;
      }
    }
  }
}

void run_reachability_pass(const Input& input, const Options& options,
                           Report& report) {
  Sink sink("reachability", options, report);
  if (input.program == nullptr) return;
  sink.mark_ran();

  const dp::Program& program = *input.program;
  const std::size_t n = program.tables.size();
  if (n == 0) return;

  // Malformed targets first (checked for every table, reachable or not):
  // an out-of-range jump is a hard error wherever it sits.
  bool malformed = false;
  const auto check_target = [&](std::size_t t,
                                std::optional<std::size_t> rule,
                                std::size_t target) {
    if (target < n) return;
    malformed = true;
    sink.emit({Severity::kError, "MA201", "", t, rule,
               "jump target " + std::to_string(target) +
                   " out of range (program has " + std::to_string(n) +
                   " tables)",
               rule.has_value()
                   ? describe_rule(program.tables[t].rules[*rule])
                   : "table default successor"});
  };
  if (program.entry >= n) {
    sink.emit({Severity::kError, "MA201", "", std::nullopt, std::nullopt,
               "program entry " + std::to_string(program.entry) +
                   " out of range",
               ""});
    malformed = true;
  }
  for (std::size_t t = 0; t < n; ++t) {
    const dp::TableSpec& table = program.tables[t];
    if (table.next.has_value()) check_target(t, std::nullopt, *table.next);
    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      if (table.rules[r].goto_table.has_value()) {
        check_target(t, r, *table.rules[r].goto_table);
      }
    }
  }
  if (malformed) return;  // graph traversal below assumes valid indices

  // DFS from the entry: reachability plus back-edge (cycle) detection.
  enum class Color : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<std::size_t> path;  // grey chain for the cycle witness
  // Iterative DFS with an explicit post-visit marker per node.
  std::vector<std::pair<std::size_t, bool>> work;
  work.emplace_back(program.entry, false);
  bool cycle_reported = false;
  while (!work.empty()) {
    const auto [t, post] = work.back();
    work.pop_back();
    if (post) {
      color[t] = Color::kBlack;
      path.pop_back();
      continue;
    }
    if (color[t] != Color::kWhite) continue;
    color[t] = Color::kGrey;
    path.push_back(t);
    work.emplace_back(t, true);
    std::vector<std::size_t> succ;
    append_successors(program.tables[t], succ);
    for (const std::size_t s : succ) {
      if (color[s] == Color::kGrey && !cycle_reported) {
        cycle_reported = true;
        std::string witness = "cycle:";
        const auto it = std::find(path.begin(), path.end(), s);
        for (auto p = it; p != path.end(); ++p) {
          witness.append(" ").append(std::to_string(*p)).append(" ->");
        }
        witness.append(" ").append(std::to_string(s));
        sink.emit({Severity::kError, "MA202", "", t, std::nullopt,
                   "table graph contains a cycle through table '" +
                       program.tables[s].name + "'",
                   witness});
      } else if (color[s] == Color::kWhite) {
        work.emplace_back(s, false);
      }
    }
  }

  for (std::size_t t = 0; t < n; ++t) {
    if (color[t] != Color::kWhite) continue;
    if (program.tables[t].rules.empty()) {
      sink.emit({Severity::kInfo, "MA204", "", t, std::nullopt,
                 "empty table '" + program.tables[t].name +
                     "' is unreachable from the entry",
                 ""});
    } else {
      sink.emit({Severity::kWarning, "MA203", "", t, std::nullopt,
                 "table '" + program.tables[t].name + "' holds " +
                     std::to_string(program.tables[t].rules.size()) +
                     " rule(s) but is unreachable from the entry",
                 "entry=" + std::to_string(program.entry)});
    }
  }
}

void run_dataflow_pass(const Input& input, const Options& options,
                       Report& report) {
  Sink sink("dataflow", options, report);
  if (input.program == nullptr) return;
  sink.mark_ran();

  const dp::Program& program = *input.program;
  const std::size_t n = program.tables.size();
  if (n == 0 || program.entry >= n) return;

  const auto is_meta = [](dp::FieldId f) {
    return f >= dp::FieldId::kMeta0 && f <= dp::FieldId::kMeta3;
  };
  constexpr std::size_t kNumMeta = 4;
  const auto meta_index = [](dp::FieldId f) {
    return dp::field_index(f) - dp::field_index(dp::FieldId::kMeta0);
  };
  const auto width_mask = [](std::uint8_t width) -> std::uint64_t {
    return width >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << width) - 1;
  };

  // Bit-granular may-define dataflow over the metadata fields:
  // in_def[t][f] holds the bits of meta field f that SOME path into t
  // has written (a kSetField of declared width w defines the low w
  // bits). The transfer is a monotone union, so the worklist terminates
  // even on (already-reported) cyclic graphs. A table is only included
  // once reachable.
  using DefBits = std::array<std::uint64_t, kNumMeta>;
  std::vector<DefBits> in_def(n, DefBits{});
  std::vector<bool> reachable(n, false);
  std::vector<std::size_t> work = {program.entry};
  reachable[program.entry] = true;
  while (!work.empty()) {
    const std::size_t t = work.back();
    work.pop_back();
    const dp::TableSpec& table = program.tables[t];
    for (const auto rule : table.rules) {
      DefBits out = in_def[t];
      for (const dp::Action a : rule.actions) {
        if (a.kind == dp::Action::Kind::kSetField && is_meta(a.field)) {
          out[meta_index(a.field)] |=
              width_mask(a.width_bits) & dp::field_full_mask(a.field);
        }
      }
      std::optional<std::size_t> succ =
          rule.goto_table.has_value() ? rule.goto_table : table.next;
      if (!succ.has_value() || *succ >= n) continue;
      DefBits merged = in_def[*succ];
      for (std::size_t f = 0; f < kNumMeta; ++f) merged[f] |= out[f];
      if (!reachable[*succ] || merged != in_def[*succ]) {
        in_def[*succ] = merged;
        reachable[*succ] = true;
        work.push_back(*succ);
      }
    }
  }

  for (std::size_t t = 0; t < n; ++t) {
    if (!reachable[t]) continue;  // dead tables are MA203/MA204 territory
    const dp::TableSpec& table = program.tables[t];
    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      for (const dp::FieldMatch& m : table.rules[r].matches) {
        if (!is_meta(m.field) || m.mask == 0) continue;
        const std::uint64_t defined = in_def[t][meta_index(m.field)];
        if (defined == 0) {
          sink.emit({Severity::kWarning, "MA301", "", t, r,
                     "rule in table '" + table.name + "' matches metadata " +
                         std::string(to_string(m.field)) +
                         " which no upstream action can have set "
                         "(read-before-write; unset metadata reads as 0)",
                     describe_rule(table.rules[r])});
          break;  // one hazard per rule is enough
        }
        // Partially-initialized read: the match mask covers bits no
        // upstream write defines (e.g. a 4-bit tag matched under an
        // 8-bit mask) — those bits always read as 0, silently shrinking
        // the match.
        const std::uint64_t undefined_read = m.mask & ~defined;
        if (undefined_read != 0) {
          sink.emit({Severity::kWarning, "MA302", "", t, r,
                     "rule in table '" + table.name + "' matches metadata " +
                         std::string(to_string(m.field)) + " under mask " +
                         format_hex(m.mask) +
                         " but upstream actions only define bits " +
                         format_hex(defined) +
                         " (partially-initialized read; undefined bits " +
                         format_hex(undefined_read) + " always read as 0)",
                     describe_rule(table.rules[r])});
          break;  // one hazard per rule is enough
        }
      }
    }
  }
}

}  // namespace maton::analysis
