// Symbolic equivalence pass (MA6xx): runs the decision-diagram engine
// (symbolic/engine.hpp) over the analyzer inputs and reports proofs and
// refutations as diagnostics.
//
//   MA601 error    the two lowered programs are inequivalent; the
//                  witness is a concrete flow key the scalar interpreter
//                  confirmed diverges.
//   MA602 info     a slice-isolation proof: the two slices' match
//                  regions are provably disjoint. Escalates to warning
//                  when they provably intersect.
//   MA603 error    a decomposed pipeline computes a different function
//                  than its universal table; witness is a confirmed
//                  counterexample packet.
//   MA604 warning  the solver returned no verdict (node budget, cyclic
//                  program, normalization cap); the note says why.
#include <string>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/symbolic/engine.hpp"

namespace maton::analysis {
namespace {

symbolic::Options solver_options(const Options& options) {
  symbolic::Options solver;
  solver.max_nodes = options.symbolic_max_nodes;
  return solver;
}

void emit_unknown(detail::Sink& sink, const std::string& subject,
                  const std::string& note) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "MA604";
  d.message = "symbolic solver gave no verdict for " + subject;
  d.witness = note;
  sink.emit(std::move(d));
}

}  // namespace

void run_symbolic_pass(const Input& input, const Options& options,
                       Report& report) {
  detail::Sink sink("symbolic", options, report);
  const symbolic::Options solver = solver_options(options);

  if (input.program_pair.has_value() &&
      input.program_pair->left != nullptr &&
      input.program_pair->right != nullptr) {
    sink.mark_ran();
    const Input::ProgramPairCheck& check = *input.program_pair;
    const std::string subject =
        "programs '" + check.left_name + "' vs '" + check.right_name + "'";
    const symbolic::Result result =
        symbolic::check_programs(*check.left, *check.right, solver);
    switch (result.outcome) {
      case symbolic::Outcome::kEquivalent:
        break;  // silence is the proof
      case symbolic::Outcome::kInequivalent: {
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = "MA601";
        d.message = subject + " are not equivalent";
        d.witness = result.counterexample.has_value()
                        ? result.counterexample->description
                        : "";
        sink.emit(std::move(d));
        break;
      }
      case symbolic::Outcome::kUnknown:
        emit_unknown(sink, subject, result.note);
        break;
    }
  }

  for (const Input::SliceIsolationCheck& check : input.slices) {
    sink.mark_ran();
    const std::string subject = "slices '" + check.left_name + "' vs '" +
                                check.right_name + "'";
    switch (symbolic::slices_relation(check.left, check.right, solver)) {
      case symbolic::SliceRelation::kDisjoint: {
        // The positive certificate is reported (like the NF-status
        // lints): isolation is a property callers rely on, so the proof
        // should be visible in the report, not inferred from silence.
        Diagnostic d;
        d.severity = Severity::kInfo;
        d.code = "MA602";
        d.message = subject + " are proven disjoint";
        d.witness = std::to_string(check.left.size()) + " vs " +
                    std::to_string(check.right.size()) + " rules";
        sink.emit(std::move(d));
        break;
      }
      case symbolic::SliceRelation::kIntersecting: {
        Diagnostic d;
        d.severity = Severity::kWarning;
        d.code = "MA602";
        d.message = subject + " match overlapping packet regions";
        d.witness = std::to_string(check.left.size()) + " vs " +
                    std::to_string(check.right.size()) + " rules";
        sink.emit(std::move(d));
        break;
      }
      case symbolic::SliceRelation::kUnknown:
        emit_unknown(sink, subject, "node budget exceeded");
        break;
    }
  }

  if (input.symbolic_decomposition.has_value() &&
      input.symbolic_decomposition->universal != nullptr &&
      input.symbolic_decomposition->pipeline != nullptr) {
    sink.mark_ran();
    const Input::SymbolicDecompositionCheck& check =
        *input.symbolic_decomposition;
    const std::string subject = "decomposition '" + check.name + "'";
    const symbolic::Result result = symbolic::check_table_vs_pipeline(
        *check.universal, *check.pipeline, solver);
    switch (result.outcome) {
      case symbolic::Outcome::kEquivalent:
        break;
      case symbolic::Outcome::kInequivalent: {
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = "MA603";
        d.message =
            subject + " does not reproduce the universal table's function";
        d.witness = result.counterexample.has_value()
                        ? result.counterexample->description
                        : "";
        sink.emit(std::move(d));
        break;
      }
      case symbolic::Outcome::kUnknown:
        emit_unknown(sink, subject, result.note);
        break;
    }
  }
}

}  // namespace maton::analysis
