// Diagnostics for the static program analyzer (maton-analyze).
//
// Every analysis pass reports findings as Diagnostic records carrying a
// stable machine-readable code (MA###, see DESIGN.md §10), a severity, a
// location (table / rule index when applicable), a human-readable message
// and a witness string — concrete evidence (the shadowing rule, the
// violating row pair, the missing dependency) that lets a reader verify
// the finding without re-running the pass.
//
// Code ranges:  MA0xx framework   MA1xx shadowing      MA2xx reachability
//               MA3xx dataflow    MA4xx schema/NF      MA5xx decomposition
//               MA6xx symbolic equivalence (MA601 program pair, MA602
//               slice isolation, MA603 decomposition vs universal, MA604
//               solver gave no verdict)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace maton::analysis {

enum class Severity {
  kInfo,     // stylistic / normal-form status, safe to ignore
  kWarning,  // dead or ambiguous configuration, program still executes
  kError,    // structural breakage: the program is wrong or unprovable
};

[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

/// One finding of one pass.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Stable code, e.g. "MA101". Never renumbered once released.
  std::string code;
  /// Name of the pass that produced the finding.
  std::string pass;
  /// Program table / pipeline stage index, when the finding is localized.
  std::optional<std::size_t> table;
  /// Rule / row index within `table`, when applicable.
  std::optional<std::size_t> rule;
  std::string message;
  /// Concrete evidence: the shadowing rule, violating row pair, ...
  std::string witness;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Per-pass execution record (for the report footer and telemetry).
struct PassStats {
  std::string name;
  std::size_t diagnostics = 0;
  bool ran = false;
};

/// Outcome of one analyzer run over one program.
struct Report {
  std::vector<Diagnostic> diagnostics;
  std::vector<PassStats> passes;

  [[nodiscard]] std::size_t count(Severity severity) const noexcept;
  /// True when no diagnostic at or above `at_least` was reported.
  [[nodiscard]] bool clean(Severity at_least = Severity::kWarning) const
      noexcept;
};

/// Human-readable multi-line rendering:
///   error[MA201] table 3 'lb': goto target 9 out of range
///       witness: rule#0 prio=48 ...
/// followed by a per-pass summary line.
[[nodiscard]] std::string render_text(const Report& report);

/// Deterministic JSON rendering (stable key order, no timing data):
///   {"diagnostics":[{...}],"summary":{"error":0,...},"passes":[...]}
[[nodiscard]] std::string render_json(const Report& report);

}  // namespace maton::analysis
