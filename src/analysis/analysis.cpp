#include "analysis/analysis.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"

namespace maton::analysis {

namespace detail {

Sink::Sink(std::string pass, const Options& options, Report& report)
    : pass_(std::move(pass)), options_(options), report_(report) {}

Sink::~Sink() {
  report_.passes.push_back({pass_, emitted_, ran_});
  obs::MetricRegistry::global()
      .counter("maton_analysis_diagnostics_total", {{"pass", pass_}})
      .add(emitted_);
  if (ran_) {
    obs::MetricRegistry::global()
        .counter("maton_analysis_pass_runs_total", {{"pass", pass_}})
        .add();
  }
}

bool Sink::wants(Severity severity) const noexcept {
  return severity >= options_.min_severity;
}

void Sink::emit(Diagnostic d) {
  if (!wants(d.severity)) return;
  if (emitted_ >= options_.max_diagnostics_per_pass) {
    if (!truncated_) {
      truncated_ = true;
      report_.diagnostics.push_back(
          {Severity::kInfo, "MA001", pass_, std::nullopt, std::nullopt,
           "diagnostics truncated after " +
               std::to_string(options_.max_diagnostics_per_pass) +
               " findings",
           ""});
    }
    return;
  }
  d.pass = pass_;
  report_.diagnostics.push_back(std::move(d));
  ++emitted_;
}

std::string describe_rule(const dp::Rule& rule) {
  std::string out = "prio=" + std::to_string(rule.priority);
  for (const dp::FieldMatch& m : rule.matches) {
    out += " ";
    out += to_string(m.field);
    out += "=";
    out += format_hex(m.value);
    if (m.mask != dp::field_full_mask(m.field)) {
      out += "/";
      out += format_hex(m.mask);
    }
  }
  if (rule.goto_table.has_value()) {
    out += " goto=" + std::to_string(*rule.goto_table);
  }
  return out;
}

}  // namespace detail

Report run(const Input& input, const Options& options) {
  const obs::TraceSpan span("analyze");
  Report report;
  if (options.shadowing) run_shadowing_pass(input, options, report);
  if (options.reachability) run_reachability_pass(input, options, report);
  if (options.dataflow) run_dataflow_pass(input, options, report);
  if (options.schema_nf) run_schema_nf_pass(input, options, report);
  if (options.decomposition) {
    run_decomposition_pass(input, options, report);
  }
  if (options.symbolic) run_symbolic_pass(input, options, report);
  obs::MetricRegistry::global()
      .counter("maton_analysis_runs_total")
      .add();
  return report;
}

}  // namespace maton::analysis
