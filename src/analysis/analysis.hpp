// maton-analyze: static analysis of match-action programs.
//
// The analyzer checks, without running a single packet, that a compiled
// dataplane::Program (and the core relational model it was lowered from)
// is well-formed: no rule is dead (shadowing), every table is reachable
// and the stage graph is acyclic (reachability), no stage matches a
// metadata field that no upstream action can have set (dataflow), the
// declared functional dependencies hold and the tables sit where they
// should in the normal-form hierarchy (schema/NF), and a decomposed
// program's join is provably lossless via FD closure — Theorem 1 checked
// symbolically, without materializing the join (decomposition).
//
// Passes run over a shared immutable Input and append Diagnostics to a
// Report. The suite is cheap enough to run after every control-plane
// compile (see cp::AnalyzeMode): all passes are polynomial, and the
// info-severity normal-form status lints (which need instance FD mining)
// are skipped entirely when Options::min_severity filters them out.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/fd.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "dataplane/program.hpp"

namespace maton::analysis {

/// What to analyze. All pointers are borrowed and must outlive run();
/// every part is optional — passes that lack their input are skipped
/// (reported with ran = false in the pass stats).
struct Input {
  /// Compiled program: shadowing, reachability and dataflow passes.
  const dp::Program* program = nullptr;

  /// Core-side relational view: schema/NF conformance lints.
  struct TableCheck {
    const core::Table* table = nullptr;
    /// Declared (model-level) dependencies that must hold in the
    /// instance; may be null when only structural 1NF checks apply.
    const core::FdSet* declared_fds = nullptr;
  };
  std::vector<TableCheck> tables;

  /// Decomposition-safety: prove via FD closure that re-joining the
  /// component schemas reproduces the original relation (Theorem 1).
  struct DecompositionCheck {
    /// Schema of the original (universal) relation.
    const core::Schema* schema = nullptr;
    /// Dependencies the proof may use (declared model FDs plus the
    /// match-key dependency; instance-mined sets also work).
    const core::FdSet* fds = nullptr;
    /// Component attribute sets over `schema`, in pipeline order.
    std::vector<core::AttrSet> components;
    /// Name used in diagnostics (e.g. the program or pipeline name).
    std::string name;
  };
  std::optional<DecompositionCheck> decomposition;

  /// Symbolic equivalence of two lowered programs (MA601): proves or
  /// refutes that both compute the same (hit, out_port) function, with a
  /// concrete counterexample key on refutation.
  struct ProgramPairCheck {
    const dp::Program* left = nullptr;
    const dp::Program* right = nullptr;
    std::string left_name;
    std::string right_name;
  };
  std::optional<ProgramPairCheck> program_pair;

  /// Slice-isolation proof (MA602): are the packet regions of two rule
  /// slices provably disjoint? Spans are borrowed views.
  struct SliceIsolationCheck {
    std::span<const dp::Rule> left;
    std::span<const dp::Rule> right;
    std::string left_name;
    std::string right_name;
  };
  std::vector<SliceIsolationCheck> slices;

  /// Decomposition equivalence proof (MA603): the universal table
  /// against its decomposed pipeline, on the evaluate() observable —
  /// the semantic complement of the FD-closure proof (MA5xx).
  struct SymbolicDecompositionCheck {
    const core::Table* universal = nullptr;
    const core::Pipeline* pipeline = nullptr;
    std::string name;
  };
  std::optional<SymbolicDecompositionCheck> symbolic_decomposition;
};

struct Options {
  /// Diagnostics below this severity are neither reported nor computed
  /// (the info-only NF-status lints skip their FD mining entirely).
  Severity min_severity = Severity::kInfo;
  /// Per-pass cap; a truncation notice (MA001) is appended when hit.
  std::size_t max_diagnostics_per_pass = 64;
  /// Pass toggles.
  bool shadowing = true;
  bool reachability = true;
  bool dataflow = true;
  bool schema_nf = true;
  bool decomposition = true;
  bool symbolic = true;
  /// Node budget per symbolic solve; exhaustion reports MA604 (unknown),
  /// never a wrong verdict.
  std::size_t symbolic_max_nodes = std::size_t{1} << 22;
};

/// Runs every enabled pass whose input is present. Deterministic: equal
/// inputs yield equal reports. Wall time is recorded as an "analyze"
/// TraceSpan and per-pass counters in the global MetricRegistry.
[[nodiscard]] Report run(const Input& input, const Options& options = {});

// Individual passes, exposed for targeted testing. Each appends to
// `report.diagnostics` honoring `options`, and pushes its PassStats.
void run_shadowing_pass(const Input& input, const Options& options,
                        Report& report);
void run_reachability_pass(const Input& input, const Options& options,
                           Report& report);
void run_dataflow_pass(const Input& input, const Options& options,
                       Report& report);
void run_schema_nf_pass(const Input& input, const Options& options,
                        Report& report);
void run_decomposition_pass(const Input& input, const Options& options,
                            Report& report);
void run_symbolic_pass(const Input& input, const Options& options,
                       Report& report);

namespace detail {

/// Shared per-pass diagnostic sink: severity filter + truncation cap.
class Sink {
 public:
  Sink(std::string pass, const Options& options, Report& report);
  /// Pushes the pass stats line; called once per pass at scope exit.
  ~Sink();
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  void mark_ran() noexcept { ran_ = true; }
  [[nodiscard]] bool ran() const noexcept { return ran_; }

  /// True when `severity` passes the report filter (passes use this to
  /// skip computing expensive witnesses for filtered-out lints).
  [[nodiscard]] bool wants(Severity severity) const noexcept;

  void emit(Diagnostic d);

 private:
  std::string pass_;
  const Options& options_;
  Report& report_;
  std::size_t emitted_ = 0;
  bool truncated_ = false;
  bool ran_ = false;
};

/// "ip_dst=0xc0000201/0xffffffff tcp_dst=0x50" rendering of a rule's
/// matches (witness strings).
[[nodiscard]] std::string describe_rule(const dp::Rule& rule);

}  // namespace detail

}  // namespace maton::analysis
