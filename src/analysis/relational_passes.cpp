// Relational passes over the core model: schema / normal-form
// conformance lints (MA4xx) and the decomposition-safety check (MA5xx).
//
// The NF lints reuse the core machinery (fd mining, candidate keys,
// NfReport) and attach instance witnesses — the actual violating row
// pair — to every hard finding. The decomposition check proves lossless
// join symbolically via FD closure (Theorem 1 / Heath), never
// materializing the join.
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/keys.hpp"
#include "core/normal_forms.hpp"

namespace maton::analysis {

namespace {

using detail::Sink;

/// "row#3 (ip_dst=198.19.0.7, tcp_dst=80)" — one row restricted to
/// `cols`, rendered with each attribute's codec.
[[nodiscard]] std::string describe_row(const core::Table& table,
                                       std::size_t row,
                                       const core::AttrSet& cols) {
  std::string out = "row#" + std::to_string(row) + " (";
  bool first = true;
  for (std::size_t c : cols) {
    if (!first) out += ", ";
    first = false;
    const core::Attribute& attr = table.schema().at(c);
    out += attr.name + "=" + core::format_value(attr, table.at(row, c));
  }
  out += ")";
  return out;
}

[[nodiscard]] std::string describe_row_pair(
    const core::Table& table, std::pair<std::size_t, std::size_t> rows,
    const core::AttrSet& cols) {
  return describe_row(table, rows.first, cols) + " vs " +
         describe_row(table, rows.second, cols);
}

}  // namespace

void run_schema_nf_pass(const Input& input, const Options& options,
                        Report& report) {
  Sink sink("schema_nf", options, report);
  if (input.tables.empty()) return;
  sink.mark_ran();

  for (std::size_t ti = 0; ti < input.tables.size(); ++ti) {
    const Input::TableCheck& check = input.tables[ti];
    if (check.table == nullptr) continue;
    const core::Table& table = *check.table;
    const core::Schema& schema = table.schema();
    const core::AttrSet match = schema.match_set();

    // 1NF / order independence: duplicate match keys make lookup
    // results depend on rule order — a hard error in this model.
    const auto dup = table.duplicate_on(match);
    if (dup.has_value()) {
      sink.emit({Severity::kError, "MA401", "", ti, std::nullopt,
                 "table '" + table.name() +
                     "' is not order-independent: two entries share the "
                     "match key {" +
                     schema.names(match) + "}",
                 describe_row_pair(table, *dup, schema.all())});
    }

    // Declared model-level dependencies must hold in the instance.
    if (check.declared_fds != nullptr) {
      for (const core::Fd& fd : check.declared_fds->fds()) {
        const auto violation = fd_violation_witness(table, fd);
        if (!violation.has_value()) continue;
        sink.emit({Severity::kError, "MA402", "", ti, std::nullopt,
                   "table '" + table.name() + "' violates declared FD " +
                       core::to_string(fd, schema),
                   describe_row_pair(table, *violation, fd.lhs | fd.rhs)});
      }
    }

    // Normal-form status lints are informational (a deliberately
    // denormalized universal table is the paper's Fig. 1a baseline, not
    // a defect) and need instance FD mining — skip both when filtered.
    if (!sink.wants(Severity::kInfo) || dup.has_value() || table.empty()) {
      continue;
    }
    const core::NfReport nf = core::analyze(table);
    for (const core::AttrSet& key : nf.keys) {
      if (!key.proper_subset_of(match)) continue;
      sink.emit({Severity::kInfo, "MA403", "", ti, std::nullopt,
                 "table '" + table.name() + "' match key {" +
                     schema.names(match) +
                     "} is non-minimal: {" + schema.names(key) +
                     "} already identifies every entry",
                 "candidate key: {" + schema.names(key) + "}"});
      break;
    }
    if (!nf.partial_dependencies.empty()) {
      sink.emit({Severity::kInfo, "MA404", "", ti, std::nullopt,
                 "table '" + table.name() +
                     "' is below 2NF: partial dependency " +
                     core::to_string(nf.partial_dependencies.front(),
                                     schema),
                 "keys: " + std::to_string(nf.keys.size()) +
                     ", partial dependencies: " +
                     std::to_string(nf.partial_dependencies.size())});
    }
    if (!nf.transitive_dependencies.empty()) {
      sink.emit({Severity::kInfo, "MA405", "", ti, std::nullopt,
                 "table '" + table.name() +
                     "' is below 3NF: transitive dependency " +
                     core::to_string(nf.transitive_dependencies.front(),
                                     schema),
                 "transitive dependencies: " +
                     std::to_string(nf.transitive_dependencies.size())});
    }
    if (!nf.bcnf_violations.empty()) {
      sink.emit({Severity::kInfo, "MA406", "", ti, std::nullopt,
                 "table '" + table.name() + "' is below BCNF: " +
                     core::to_string(nf.bcnf_violations.front(), schema) +
                     " has a non-superkey determinant",
                 "BCNF violations: " +
                     std::to_string(nf.bcnf_violations.size())});
    }
  }
}

void run_decomposition_pass(const Input& input, const Options& options,
                            Report& report) {
  Sink sink("decomposition", options, report);
  if (!input.decomposition.has_value()) return;
  const Input::DecompositionCheck& check = *input.decomposition;
  if (check.schema == nullptr || check.fds == nullptr) return;
  sink.mark_ran();

  const core::Schema& schema = *check.schema;
  const core::AttrSet universe = schema.all();

  // Coverage: every attribute of the original relation must appear in
  // some component, or the join cannot reproduce it at all.
  core::AttrSet covered;
  for (const core::AttrSet& component : check.components) {
    covered |= component;
  }
  if (covered != universe) {
    sink.emit({Severity::kError, "MA502", "", std::nullopt, std::nullopt,
               "decomposition '" + check.name +
                   "' does not cover the schema: {" +
                   schema.names(universe - covered) +
                   "} appears in no component",
               "components: " + std::to_string(check.components.size())});
    return;
  }
  if (check.components.empty()) return;  // empty schema, trivially fine

  // Theorem 1, applied pairwise in pipeline order (Heath): joining the
  // accumulated schema S with the next component C is lossless when the
  // shared attributes X = S ∩ C determine all of S or all of C under
  // the dependency closure. Purely symbolic — no rows touched.
  core::AttrSet joined = check.components.front();
  for (std::size_t i = 1; i < check.components.size(); ++i) {
    const core::AttrSet& component = check.components[i];
    const core::AttrSet shared = joined & component;
    const core::AttrSet closure = check.fds->closure(shared);
    if (!joined.subset_of(closure) && !component.subset_of(closure)) {
      sink.emit(
          {Severity::kError, "MA501", "", i, std::nullopt,
           "decomposition '" + check.name +
               "' is not provably lossless: joining {" +
               schema.names(component) + "} on shared attributes {" +
               schema.names(shared) +
               "} — their closure determines neither side (Theorem 1)",
           "closure({" + schema.names(shared) + "}) = {" +
               schema.names(closure) + "}"});
    }
    joined |= component;
  }
}

}  // namespace maton::analysis
