// Shared plumbing of the symbolic front-ends: the translation bail-out
// and the guarded runner that turns budget/bail exceptions into
// kUnknown results and records the obs span + counters.
//
// Internal to src/analysis/symbolic/ — not part of the engine API.
#pragma once

#include <functional>
#include <string>

#include "analysis/symbolic/engine.hpp"

namespace maton::analysis::symbolic::detail {

/// Thrown by a front-end when translation cannot proceed for a
/// non-budget reason (cyclic table graph, jump out of range, NetKAT
/// normalization cap). Caught by run_guarded; never escapes the API.
struct TranslationBail {
  std::string note;
};

/// Runs `body` with a fresh store under the engine's exception contract:
/// NodeBudgetExceeded and TranslationBail become kUnknown results. Wraps
/// the run in a "symbolic_solve" trace span and feeds the
/// maton_symbolic_* counters; `what` labels the solve counter.
[[nodiscard]] Result run_guarded(
    std::string_view what, const Options& options,
    const std::function<Result(DiagramStore&)>& body);

}  // namespace maton::analysis::symbolic::detail
