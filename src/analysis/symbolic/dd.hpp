// Hash-consed decision diagrams over packet headers — the engine behind
// the symbolic equivalence checks (DESIGN.md §15).
//
// A DiagramStore interns three node kinds in one arena:
//
//   Leaf(payload)            terminal; payload meaning is the caller's
//                            (booleans, interned verdicts)
//   Bit(var, lo, hi)         binary branch on one bit of one dp field;
//                            var = field_index * 64 + MSB-first offset
//   Value(var, edges, def)   n-way branch on a whole attribute value;
//                            `def` covers every value no edge names
//
// Nodes are reduced on construction (a branch whose children coincide is
// never materialized; value edges pointing at the default child are
// dropped) and hash-consed, so diagrams are canonical by construction:
// two roots denote the same packet function iff their NodeIds are equal.
// All operators preserve the global variable order (smaller var closer
// to the root) and never mix node kinds on one variable; in particular
// ite() — the sequence/composition workhorse — interleaves its operands
// by variable rather than grafting subtrees, so composing a table with a
// successor that re-tests an already-matched field stays canonical.
//
// Every node creation checks the store's node budget; exceeding it
// throws NodeBudgetExceeded, which the engine API layer translates into
// an "unknown" outcome — the budget can cost an answer, never make one
// wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace maton::analysis::symbolic {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Branch label of a value node's default edge in diff paths.
inline constexpr std::uint64_t kDefaultBranch = ~std::uint64_t{0};

/// Internal control-flow exception for the node budget; callers of the
/// engine entry points (engine.hpp) never see it.
struct NodeBudgetExceeded {};

/// Work tallies of one store's lifetime, surfaced in engine results and
/// the maton_symbolic_* counters.
struct StoreStats {
  std::size_t nodes = 0;         ///< unique nodes interned
  std::size_t memo_hits = 0;     ///< operator cache hits
  std::size_t memo_lookups = 0;  ///< operator cache probes
};

/// One bit constraint of a ternary cube, ascending-var order.
struct CubeBit {
  std::uint32_t var = 0;
  bool one = false;
};

/// One exact value constraint of a value-universe cube, ascending-var.
struct CubeValue {
  std::uint32_t var = 0;
  std::uint64_t value = 0;
};

/// One step of a root-to-leaf path (counterexample extraction).
struct PathStep {
  std::uint32_t var = 0;
  std::uint64_t branch = 0;  ///< bit 0/1, edge value, or kDefaultBranch
  bool is_default = false;   ///< took a value node's default edge
};

class DiagramStore {
 public:
  explicit DiagramStore(std::size_t max_nodes);

  /// Reserved boolean leaves, interned by the constructor.
  [[nodiscard]] NodeId false_leaf() const noexcept { return false_; }
  [[nodiscard]] NodeId true_leaf() const noexcept { return true_; }

  [[nodiscard]] NodeId leaf(std::uint64_t payload);
  [[nodiscard]] bool is_leaf(NodeId id) const noexcept;
  [[nodiscard]] std::uint64_t leaf_payload(NodeId id) const;

  /// Reduced, interned binary node; returns `lo` when lo == hi.
  [[nodiscard]] NodeId bit_node(std::uint32_t var, NodeId lo, NodeId hi);

  /// Reduced, interned n-way node. `edges` must be sorted by value with
  /// no duplicates; edges whose child equals `def` are elided, and the
  /// node collapses to `def` when no edge survives.
  [[nodiscard]] NodeId value_node(
      std::uint32_t var,
      std::vector<std::pair<std::uint64_t, NodeId>> edges, NodeId def);

  /// Predicate diagram of a ternary cube (true inside, false outside).
  [[nodiscard]] NodeId cube(std::span<const CubeBit> bits);
  /// Predicate diagram of an exact-match value cube.
  [[nodiscard]] NodeId value_cube(std::span<const CubeValue> values);

  // -- Set operators over predicate diagrams ---------------------------

  [[nodiscard]] NodeId b_and(NodeId a, NodeId b);  ///< intersect
  [[nodiscard]] NodeId b_or(NodeId a, NodeId b);   ///< union
  [[nodiscard]] NodeId b_not(NodeId a);            ///< negate
  /// a ∩ b = ∅, for slice-region proofs.
  [[nodiscard]] bool disjoint(NodeId a, NodeId b) {
    return b_and(a, b) == false_;
  }

  // -- Composition ------------------------------------------------------

  /// If-then-else over a predicate `p` and two diagrams, interleaved in
  /// variable order. ite(cube(rule), successor, acc) over rules in
  /// reverse match-preference order builds a table's first-match
  /// composition; this is the engine's sequence operator.
  [[nodiscard]] NodeId ite(NodeId p, NodeId t, NodeId e);

  /// Left-biased union of two partial functions: wherever `a` reaches a
  /// leaf other than `identity`, `a` wins; elsewhere `b` shows through.
  /// Folding disjoint per-row diagrams (identity = the miss verdict)
  /// unions a whole exact-match table in O(result) without the
  /// per-insert edge copying a sequential ite loop would cost.
  [[nodiscard]] NodeId overlay_first(NodeId a, NodeId b, NodeId identity);

  /// Rewrites every leaf payload through `fn` (action effects on
  /// interned verdicts: output defaults, action-binding accumulation).
  [[nodiscard]] NodeId map_leaves(
      NodeId root, const std::function<std::uint64_t(std::uint64_t)>& fn);

  /// Cofactor: fixes every var for which `fixed` returns a value (the
  /// bit for bit vars, the branch value for value vars) — the effect of
  /// a set-field / metadata-write action on the downstream diagram.
  [[nodiscard]] NodeId restrict_with(
      NodeId root,
      const std::function<std::optional<std::uint64_t>(std::uint32_t)>&
          fixed);

  /// Cofactor onto the default branch of every value var selected by
  /// `select`: semantically, fixes those vars to a fresh value no edge
  /// in the diagram tests (initial metadata registers are "bound to a
  /// value no rule can match").
  [[nodiscard]] NodeId restrict_default(
      NodeId root, const std::function<bool(std::uint32_t)>& select);

  // -- Counterexample extraction ---------------------------------------

  /// First path on which two canonical diagrams (same store, same
  /// universe) reach different leaves, with the two leaf payloads.
  /// nullopt iff a == b.
  struct Divergence {
    std::vector<PathStep> path;
    std::uint64_t left = 0;
    std::uint64_t right = 0;
  };
  [[nodiscard]] std::optional<Divergence> first_divergence(NodeId a,
                                                           NodeId b);

  /// Largest edge value tested on `var` anywhere in the diagram (for
  /// materializing fresh default-branch values); nullopt when the
  /// diagram never branches on `var`.
  [[nodiscard]] std::optional<std::uint64_t> max_edge_value(
      NodeId root, std::uint32_t var) const;

  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }

 private:
  enum class Kind : std::uint8_t { kLeaf, kBit, kValue };
  struct Node {
    Kind kind = Kind::kLeaf;
    std::uint32_t var = 0;
    NodeId lo = 0;  ///< bit: 0-branch; value: default child
    NodeId hi = 0;  ///< bit: 1-branch
    std::uint64_t payload = 0;
    std::uint32_t edges_begin = 0;
    std::uint32_t edges_count = 0;
  };
  /// Memo key of a ternary operator application: {tag, a, b, c}.
  struct OpKey {
    std::uint32_t tag = 0;
    NodeId a = 0;
    NodeId b = 0;
    NodeId c = 0;
    friend bool operator==(const OpKey&, const OpKey&) = default;
  };
  struct OpKeyHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::uint64_t h = k.tag;
      for (const std::uint64_t v : {k.a, k.b, k.c}) {
        h = (h ^ (v + 0x9e3779b97f4a7c15ULL)) * 0xff51afd7ed558ccdULL;
      }
      return static_cast<std::size_t>(h ^ (h >> 33));
    }
  };

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
  /// Variable of a node for ordering; leaves sort after every variable.
  [[nodiscard]] std::uint32_t var_of(NodeId id) const noexcept;
  /// Cofactor of `id` under (var = branch); `id` itself when it does not
  /// branch on `var`.
  [[nodiscard]] NodeId cofactor(NodeId id, std::uint32_t var,
                                std::uint64_t branch_value,
                                bool take_default) const;
  [[nodiscard]] std::span<const std::pair<std::uint64_t, NodeId>> edges_of(
      const Node& n) const noexcept;
  /// Sorted union of the edge values the operands test on `var`.
  [[nodiscard]] std::vector<std::uint64_t> branch_values(
      std::initializer_list<NodeId> ids, std::uint32_t var) const;
  [[nodiscard]] NodeId intern(Node n);
  void check_budget() const;

  [[nodiscard]] NodeId apply_bool(NodeId a, NodeId b, bool is_and);
  bool find_divergence(NodeId a, NodeId b, std::vector<PathStep>& path,
                       Divergence& out);

  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  std::vector<std::pair<std::uint64_t, NodeId>> edge_pool_;
  /// Unique table: content hash → candidate ids (collisions verified).
  std::unordered_map<std::uint64_t, std::vector<NodeId>> unique_;
  /// Operator memo table, shared by the tagged global operators.
  std::unordered_map<OpKey, NodeId, OpKeyHash> op_memo_;
  StoreStats stats_;
  NodeId false_ = 0;
  NodeId true_ = 0;
};

}  // namespace maton::analysis::symbolic
