// Symbolic packet-set equivalence engine (DESIGN.md §15): decides
// whether two match-action programs implement the same packet function
// by translating both into one canonical decision-diagram store
// (see dd.hpp) and comparing roots — equivalence is NodeId equality, no
// packet enumeration.
//
// Front-ends cover the four program representations:
//   check_programs           lowered dp::Program vs dp::Program
//   check_pipelines          core::Pipeline vs core::Pipeline
//   check_table_vs_pipeline  universal core::Table vs its decomposition
//   check_policies           NetKAT local-policy fragment
//
// Contract:
//  * kEquivalent / kInequivalent verdicts are exact over the checked
//    domain (all fully-assigned header keys for dp programs; all packets
//    binding the matched header attributes — and no initial metadata —
//    for core pipelines; all packets over the policies' field alphabets
//    for NetKAT).
//  * Every kInequivalent result carries a concrete counterexample packet
//    extracted from the first divergent diagram path and re-confirmed by
//    the scalar interpreter (execute_reference / Pipeline::evaluate /
//    netkat::eval) before being reported. If confirmation ever fails the
//    engine answers kUnknown, not a wrong verdict.
//  * Exceeding Options::max_nodes (or the NetKAT normalization caps)
//    yields kUnknown with a note — budgets can cost an answer, never
//    correctness.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "analysis/symbolic/dd.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "dataplane/program.hpp"
#include "netkat/policy.hpp"

namespace maton::analysis::symbolic {

struct Options {
  /// Node budget of the diagram store backing one check.
  std::size_t max_nodes = std::size_t{1} << 22;
  /// Cap on the NetKAT star-free normal form (atoms per policy pair) and,
  /// scaled by 1024, on the diagram-build work counter.
  std::size_t max_netkat_atoms = 4096;
};

enum class Outcome { kEquivalent, kInequivalent, kUnknown };

[[nodiscard]] std::string_view to_string(Outcome outcome) noexcept;

/// Concrete packet on which the two programs diverge; exactly one of
/// `key` / `packet` is set depending on the front-end's universe.
struct Counterexample {
  std::optional<dp::FlowKey> key;           ///< dp front-end
  std::optional<core::PacketState> packet;  ///< core / netkat front-ends
  /// Human-readable "input → left observable vs right observable".
  std::string description;
};

struct Result {
  Outcome outcome = Outcome::kUnknown;
  std::optional<Counterexample> counterexample;
  StoreStats stats;
  /// Why the outcome is kUnknown (budget, cyclic program, ...); empty
  /// for definite verdicts.
  std::string note;

  [[nodiscard]] bool equivalent() const noexcept {
    return outcome == Outcome::kEquivalent;
  }
};

/// Proves or refutes ∀key: execute_reference(a, key) ≡ execute_reference
/// (b, key) on the (hit, out_port) observable.
[[nodiscard]] Result check_programs(const dp::Program& a,
                                    const dp::Program& b,
                                    const Options& options = {});

/// Proves or refutes ∀packet: a.evaluate(packet) ≡ b.evaluate(packet) on
/// the (hit, actions) observable, over packets that bind the matched
/// header attributes and carry no initial metadata.
[[nodiscard]] Result check_pipelines(const core::Pipeline& a,
                                     const core::Pipeline& b,
                                     const Options& options = {});

/// Decomposition soundness: the universal table (as a one-stage
/// pipeline) against its decomposed pipeline.
[[nodiscard]] Result check_table_vs_pipeline(const core::Table& universal,
                                             const core::Pipeline& pipeline,
                                             const Options& options = {});

/// NetKAT policy equivalence over the star-free local fragment, on the
/// packet-set observable of netkat::eval.
[[nodiscard]] Result check_policies(const netkat::PolicyPtr& a,
                                    const netkat::PolicyPtr& b,
                                    const Options& options = {});

/// Relation between the packet regions two dp rule slices can match.
enum class SliceRelation { kDisjoint, kIntersecting, kUnknown };

[[nodiscard]] std::string_view to_string(SliceRelation relation) noexcept;

/// Proves whether the union of `a`'s match regions intersects the union
/// of `b`'s (the MA602 slice-isolation proof and the incremental
/// compiler's VIP-collision guard). kUnknown only on budget exhaustion.
[[nodiscard]] SliceRelation slices_relation(std::span<const dp::Rule> a,
                                            std::span<const dp::Rule> b,
                                            const Options& options = {});

}  // namespace maton::analysis::symbolic
