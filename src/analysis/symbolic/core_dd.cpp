// core::Pipeline / core::Table front-end: value-universe diagrams over
// the matched attribute names of both sides, deciding equivalence on
// Pipeline::evaluate's (hit, actions) observable.
//
// Universe semantics: one Value variable per matched attribute name
// (metadata names ranked first — a metadata write then substitutes at
// the successor diagram's root). A value node's default branch stands
// for "any value no edge tests", which is also how unbound attributes
// behave: every row of an exact-match stage requires some concrete
// value, so an unbound (or never-written metadata) attribute misses the
// stage exactly like a fresh value does. Roots are cofactored onto the
// default branch of every metadata variable, modeling the empty initial
// metadata state.
#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/symbolic/engine.hpp"
#include "analysis/symbolic/internal.hpp"
#include "util/contract.hpp"

namespace maton::analysis::symbolic {
namespace {

constexpr std::uint64_t kVerdictTag = std::uint64_t{1} << 63;

/// Interned observable of one pipeline execution: EvalResult's (hit,
/// actions) with the action bindings sorted by name.
struct CoreVerdict {
  bool hit = false;
  std::vector<std::pair<std::string, core::Value>> actions;

  friend auto operator<=>(const CoreVerdict&, const CoreVerdict&) = default;
};

/// Metadata names order before header names so metadata writes
/// substitute near the successor root; within a group, lexicographic.
bool universe_less(const std::string& a, const std::string& b) {
  const bool ma = core::is_metadata_name(a);
  const bool mb = core::is_metadata_name(b);
  if (ma != mb) return ma;
  return a < b;
}

struct CoreContext {
  explicit CoreContext(DiagramStore& store) : dd(store) {}

  DiagramStore& dd;
  std::vector<std::string> universe;  // var → attribute name
  std::map<std::string, std::uint32_t, std::less<>> vars;
  std::vector<CoreVerdict> verdicts;
  std::map<CoreVerdict, std::uint32_t> verdict_ids;
  NodeId miss = kInvalidNode;  // verdict (false, {})

  std::uint64_t payload(CoreVerdict v) {
    const auto it = verdict_ids.find(v);
    if (it != verdict_ids.end()) return kVerdictTag | it->second;
    const auto id = static_cast<std::uint32_t>(verdicts.size());
    verdicts.push_back(v);
    verdict_ids.emplace(std::move(v), id);
    return kVerdictTag | id;
  }
  NodeId leaf(CoreVerdict v) { return dd.leaf(payload(std::move(v))); }
  [[nodiscard]] const CoreVerdict& of(std::uint64_t p) const {
    return verdicts[p & ~kVerdictTag];
  }

  void build_universe(std::set<std::string>& names) {
    universe.assign(names.begin(), names.end());
    std::sort(universe.begin(), universe.end(), universe_less);
    for (std::uint32_t v = 0; v < universe.size(); ++v) {
      vars.emplace(universe[v], v);
    }
    miss = leaf(CoreVerdict{});
  }
};

void collect_match_names(const core::Pipeline& pipeline,
                         std::set<std::string>& names) {
  for (const core::Stage& stage : pipeline.stages()) {
    const core::Schema& schema = stage.table.schema();
    for (const std::size_t c : schema.match_set()) {
      names.insert(schema.at(c).name);
    }
  }
}

class PipelineTranslator {
 public:
  PipelineTranslator(CoreContext& ctx, const core::Pipeline& pipeline)
      : ctx_(ctx),
        dd_(ctx.dd),
        pipeline_(pipeline),
        cache_(pipeline.num_stages(), kInvalidNode),
        visiting_(pipeline.num_stages(), 0) {}

  NodeId root() {
    if (pipeline_.stages().empty()) return ctx_.miss;
    check_target(pipeline_.entry());
    const NodeId raw = stage_diagram(pipeline_.entry());
    // Initial packets carry no metadata: fix every metadata variable to
    // its default ("a value no rule matches") branch.
    return dd_.restrict_default(raw, [this](std::uint32_t var) {
      return core::is_metadata_name(ctx_.universe[var]);
    });
  }

 private:
  void check_target(std::size_t stage) const {
    if (stage >= pipeline_.num_stages()) {
      throw detail::TranslationBail{"pipeline jump out of range"};
    }
  }

  NodeId stage_diagram(std::size_t idx) {
    if (cache_[idx] != kInvalidNode) return cache_[idx];
    if (visiting_[idx] != 0) {
      throw detail::TranslationBail{"pipeline stage graph contains a cycle"};
    }
    visiting_[idx] = 1;
    const core::Stage& st = pipeline_.stage(idx);
    const core::Table& table = st.table;
    const core::Schema& schema = table.schema();
    if (st.uses_goto() && st.goto_targets.size() < table.num_rows()) {
      throw detail::TranslationBail{"goto targets not parallel to rows"};
    }

    // (var, column) of each match column, ascending by universe var.
    std::vector<std::pair<std::uint32_t, std::size_t>> match_cols;
    for (const std::size_t c : schema.match_set()) {
      match_cols.emplace_back(ctx_.vars.at(schema.at(c).name), c);
    }
    std::sort(match_cols.begin(), match_cols.end());
    std::vector<std::size_t> action_cols;
    for (const std::size_t c : schema.action_set()) action_cols.push_back(c);

    std::vector<NodeId> row_dds;
    row_dds.reserve(table.num_rows());
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      const std::optional<std::size_t> target =
          st.uses_goto() ? std::optional{st.goto_targets[r]} : st.next;
      NodeId c = ctx_.dd.false_leaf();
      if (target.has_value()) {
        check_target(*target);
        c = stage_diagram(*target);
      } else {
        c = ctx_.leaf({true, {}});
      }

      // Action writes feed downstream matching (metadata join, header
      // rewrites): cofactor the successor on every written universe var.
      std::map<std::uint32_t, core::Value> writes;
      for (const std::size_t col : action_cols) {
        const auto var = ctx_.vars.find(schema.at(col).name);
        if (var != ctx_.vars.end()) {
          writes.emplace(var->second, table.at(r, col));
        }
      }
      if (!writes.empty()) {
        c = dd_.restrict_with(
            c, [&writes](std::uint32_t var) -> std::optional<std::uint64_t> {
              const auto it = writes.find(var);
              if (it == writes.end()) return std::nullopt;
              return it->second;
            });
      }

      // Observable bindings accumulate add-if-absent onto downstream
      // verdicts — a later stage's write of the same name wins, exactly
      // as evaluate's pending_actions overwrite does.
      std::vector<std::pair<std::string, core::Value>> adds;
      for (const std::size_t col : action_cols) {
        const std::string& name = schema.at(col).name;
        if (!core::is_metadata_name(name)) {
          adds.emplace_back(name, table.at(r, col));
        }
      }
      if (!adds.empty()) {
        c = dd_.map_leaves(c, [this, &adds](std::uint64_t p) {
          CoreVerdict merged = ctx_.of(p);  // copy: interning may realloc
          if (!merged.hit) return p;        // miss discards all actions
          for (const auto& [name, value] : adds) {
            const auto it = std::lower_bound(
                merged.actions.begin(), merged.actions.end(), name,
                [](const auto& e, const std::string& n) {
                  return e.first < n;
                });
            if (it == merged.actions.end() || it->first != name) {
              merged.actions.emplace(it, name, value);
            }
          }
          return ctx_.payload(std::move(merged));
        });
      }

      std::vector<CubeValue> cube;
      cube.reserve(match_cols.size());
      for (const auto& [var, col] : match_cols) {
        cube.push_back({var, table.at(r, col)});
      }
      row_dds.push_back(dd_.ite(dd_.value_cube(cube), c, ctx_.miss));
    }

    // Left-biased balanced union: earlier rows win on duplicate keys
    // (find_row's first-ascending-match), merge cost O(n log n) edges.
    while (row_dds.size() > 1) {
      std::vector<NodeId> next;
      next.reserve((row_dds.size() + 1) / 2);
      for (std::size_t i = 0; i < row_dds.size(); i += 2) {
        next.push_back(i + 1 < row_dds.size()
                           ? dd_.overlay_first(row_dds[i], row_dds[i + 1],
                                               ctx_.miss)
                           : row_dds[i]);
      }
      row_dds = std::move(next);
    }
    const NodeId result = row_dds.empty() ? ctx_.miss : row_dds[0];
    visiting_[idx] = 0;
    cache_[idx] = result;
    return result;
  }

  CoreContext& ctx_;
  DiagramStore& dd_;
  const core::Pipeline& pipeline_;
  std::vector<NodeId> cache_;
  std::vector<char> visiting_;
};

core::PacketState packet_from_path(CoreContext& ctx,
                                   std::span<const PathStep> path,
                                   NodeId ra, NodeId rb) {
  core::PacketState packet;
  std::set<std::uint32_t> assigned;
  for (const PathStep& step : path) {
    const std::string& name = ctx.universe[step.var];
    if (step.is_default) {
      // Any value no edge on this var tests reaches the same leaf.
      std::uint64_t fresh = 0;
      if (const auto m = ctx.dd.max_edge_value(ra, step.var)) {
        fresh = std::max(fresh, *m + 1);
      }
      if (const auto m = ctx.dd.max_edge_value(rb, step.var)) {
        fresh = std::max(fresh, *m + 1);
      }
      packet[name] = fresh;
    } else {
      packet[name] = step.branch;
    }
    assigned.insert(step.var);
  }
  // Vars the divergence path never branched on are don't-care for both
  // diagrams; bind them so evaluate() sees a fully-assigned header.
  for (std::uint32_t v = 0; v < ctx.universe.size(); ++v) {
    if (!assigned.contains(v) && !core::is_metadata_name(ctx.universe[v])) {
      packet[ctx.universe[v]] = 0;
    }
  }
  return packet;
}

std::string describe_eval(const core::EvalResult& r) {
  if (!r.hit) return "miss";
  std::ostringstream os;
  os << "hit{";
  bool first = true;
  for (const auto& [name, value] : r.actions) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value;
  }
  os << "}";
  return os.str();
}

std::string describe_packet(const core::PacketState& packet) {
  std::ostringstream os;
  os << "packet{";
  bool first = true;
  for (const auto& [name, value] : packet) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value;
  }
  os << "}";
  return os.str();
}

}  // namespace

Result check_pipelines(const core::Pipeline& a, const core::Pipeline& b,
                       const Options& options) {
  return detail::run_guarded(
      "pipelines", options, [&](DiagramStore& dd) {
        CoreContext ctx(dd);
        std::set<std::string> names;
        collect_match_names(a, names);
        collect_match_names(b, names);
        ctx.build_universe(names);

        const NodeId ra = PipelineTranslator(ctx, a).root();
        const NodeId rb = PipelineTranslator(ctx, b).root();
        Result result;
        if (ra == rb) {
          result.outcome = Outcome::kEquivalent;
          return result;
        }
        const auto div = dd.first_divergence(ra, rb);
        ensures(div.has_value(), "divergent roots without a divergence");
        const core::PacketState packet =
            packet_from_path(ctx, div->path, ra, rb);
        const core::EvalResult ea = a.evaluate(packet);
        const core::EvalResult eb = b.evaluate(packet);
        if (ea.hit == eb.hit && (!ea.hit || ea.actions == eb.actions)) {
          result.outcome = Outcome::kUnknown;
          result.note = "counterexample failed scalar confirmation";
          return result;
        }
        result.outcome = Outcome::kInequivalent;
        Counterexample cex;
        cex.packet = packet;
        cex.description = describe_packet(packet) + " -> left " +
                          describe_eval(ea) + " vs right " +
                          describe_eval(eb);
        result.counterexample = std::move(cex);
        return result;
      });
}

Result check_table_vs_pipeline(const core::Table& universal,
                               const core::Pipeline& pipeline,
                               const Options& options) {
  return check_pipelines(core::Pipeline::single(universal), pipeline,
                         options);
}

}  // namespace maton::analysis::symbolic
