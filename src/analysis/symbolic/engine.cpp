#include "analysis/symbolic/engine.hpp"

#include <string>

#include "analysis/symbolic/internal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace maton::analysis::symbolic {

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kEquivalent:
      return "equivalent";
    case Outcome::kInequivalent:
      return "inequivalent";
    case Outcome::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string_view to_string(SliceRelation relation) noexcept {
  switch (relation) {
    case SliceRelation::kDisjoint:
      return "disjoint";
    case SliceRelation::kIntersecting:
      return "intersecting";
    case SliceRelation::kUnknown:
      return "unknown";
  }
  return "unknown";
}

namespace detail {

Result run_guarded(std::string_view what, const Options& options,
                   const std::function<Result(DiagramStore&)>& body) {
  const obs::TraceSpan span("symbolic_solve");
  DiagramStore store(options.max_nodes);
  Result result;
  try {
    result = body(store);
  } catch (const NodeBudgetExceeded&) {
    result = {};
    result.outcome = Outcome::kUnknown;
    result.note = "node budget exceeded (" +
                  std::to_string(options.max_nodes) + " nodes)";
  } catch (const TranslationBail& bail) {
    result = {};
    result.outcome = Outcome::kUnknown;
    result.note = bail.note;
  }
  result.stats = store.stats();

  auto& registry = obs::MetricRegistry::global();
  registry
      .counter("maton_symbolic_solves_total",
               {{"check", std::string(what)},
                {"outcome", std::string(to_string(result.outcome))}})
      .add(1);
  static obs::Counter& nodes =
      registry.counter("maton_symbolic_nodes_total");
  static obs::Counter& memo_hits =
      registry.counter("maton_symbolic_memo_hits_total");
  static obs::Counter& memo_lookups =
      registry.counter("maton_symbolic_memo_lookups_total");
  nodes.add(result.stats.nodes);
  memo_hits.add(result.stats.memo_hits);
  memo_lookups.add(result.stats.memo_lookups);
  return result;
}

}  // namespace detail
}  // namespace maton::analysis::symbolic
