#include "analysis/symbolic/dd.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace maton::analysis::symbolic {
namespace {

/// Sentinel ordering variable of leaves: after every real variable.
constexpr std::uint32_t kLeafVar = std::numeric_limits<std::uint32_t>::max();

/// Operator tags for the shared memo table.
enum OpTag : std::uint32_t {
  kOpAnd = 1,
  kOpOr = 2,
  kOpNot = 3,
  kOpIte = 4,
  kOpOverlay = 5,
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

DiagramStore::DiagramStore(std::size_t max_nodes) : max_nodes_(max_nodes) {
  expects(max_nodes_ >= 2, "DiagramStore: budget too small for leaves");
  nodes_.reserve(std::min<std::size_t>(max_nodes_, 1u << 16));
  false_ = leaf(0);
  true_ = leaf(1);
}

NodeId DiagramStore::leaf(std::uint64_t payload) {
  Node n;
  n.kind = Kind::kLeaf;
  n.var = kLeafVar;
  n.payload = payload;
  return intern(std::move(n));
}

bool DiagramStore::is_leaf(NodeId id) const noexcept {
  return nodes_[id].kind == Kind::kLeaf;
}

std::uint64_t DiagramStore::leaf_payload(NodeId id) const {
  expects(is_leaf(id), "leaf_payload on an inner node");
  return nodes_[id].payload;
}

NodeId DiagramStore::bit_node(std::uint32_t var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;
  expects(var < var_of(lo) && var < var_of(hi),
          "bit_node: children must branch on larger vars");
  Node n;
  n.kind = Kind::kBit;
  n.var = var;
  n.lo = lo;
  n.hi = hi;
  return intern(std::move(n));
}

NodeId DiagramStore::value_node(
    std::uint32_t var, std::vector<std::pair<std::uint64_t, NodeId>> edges,
    NodeId def) {
  std::erase_if(edges, [def](const auto& e) { return e.second == def; });
  if (edges.empty()) return def;
  expects(std::is_sorted(edges.begin(), edges.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         }),
          "value_node: edges must be sorted by value");
  expects(var < var_of(def), "value_node: default must branch on larger var");
  Node n;
  n.kind = Kind::kValue;
  n.var = var;
  n.lo = def;
  n.edges_begin = static_cast<std::uint32_t>(edge_pool_.size());
  n.edges_count = static_cast<std::uint32_t>(edges.size());
  for (const auto& e : edges) {
    expects(var < var_of(e.second),
            "value_node: children must branch on larger vars");
    edge_pool_.push_back(e);
  }
  const std::size_t before = nodes_.size();
  const NodeId id = intern(std::move(n));
  if (nodes_.size() == before) {
    edge_pool_.resize(edge_pool_.size() - edges.size());  // duplicate node
  }
  return id;
}

NodeId DiagramStore::cube(std::span<const CubeBit> bits) {
  NodeId acc = true_;
  for (std::size_t i = bits.size(); i-- > 0;) {
    const auto& b = bits[i];
    acc = b.one ? bit_node(b.var, false_, acc) : bit_node(b.var, acc, false_);
  }
  return acc;
}

NodeId DiagramStore::value_cube(std::span<const CubeValue> values) {
  NodeId acc = true_;
  for (std::size_t i = values.size(); i-- > 0;) {
    acc = value_node(values[i].var, {{values[i].value, acc}}, false_);
  }
  return acc;
}

NodeId DiagramStore::b_and(NodeId a, NodeId b) { return apply_bool(a, b, true); }
NodeId DiagramStore::b_or(NodeId a, NodeId b) { return apply_bool(a, b, false); }

NodeId DiagramStore::apply_bool(NodeId a, NodeId b, bool is_and) {
  if (a == b) return a;
  if (is_and) {
    if (a == false_ || b == false_) return false_;
    if (a == true_) return b;
    if (b == true_) return a;
  } else {
    if (a == true_ || b == true_) return true_;
    if (a == false_) return b;
    if (b == false_) return a;
  }
  expects(!is_leaf(a) && !is_leaf(b),
          "boolean operator over non-boolean leaves");
  const OpKey key{is_and ? kOpAnd : kOpOr, std::min(a, b), std::max(a, b), 0};
  ++stats_.memo_lookups;
  if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const std::uint32_t var = std::min(var_of(a), var_of(b));
  const Kind kind =
      var_of(a) == var ? nodes_[a].kind : nodes_[b].kind;
  NodeId result = kInvalidNode;
  if (kind == Kind::kBit) {
    const NodeId lo = apply_bool(cofactor(a, var, 0, false),
                                 cofactor(b, var, 0, false), is_and);
    const NodeId hi = apply_bool(cofactor(a, var, 1, false),
                                 cofactor(b, var, 1, false), is_and);
    result = bit_node(var, lo, hi);
  } else {
    const NodeId def = apply_bool(cofactor(a, var, 0, true),
                                  cofactor(b, var, 0, true), is_and);
    std::vector<std::pair<std::uint64_t, NodeId>> edges;
    for (const std::uint64_t v : branch_values({a, b}, var)) {
      edges.emplace_back(v, apply_bool(cofactor(a, var, v, false),
                                       cofactor(b, var, v, false), is_and));
    }
    result = value_node(var, std::move(edges), def);
  }
  op_memo_.emplace(key, result);
  return result;
}

NodeId DiagramStore::b_not(NodeId a) {
  if (a == false_) return true_;
  if (a == true_) return false_;
  expects(!is_leaf(a), "negation over a non-boolean leaf");
  const OpKey key{kOpNot, a, 0, 0};
  ++stats_.memo_lookups;
  if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const std::uint32_t var = nodes_[a].var;
  NodeId result = kInvalidNode;
  if (nodes_[a].kind == Kind::kBit) {
    result = bit_node(var, b_not(nodes_[a].lo), b_not(nodes_[a].hi));
  } else {
    const NodeId def = b_not(nodes_[a].lo);
    std::vector<std::pair<std::uint64_t, NodeId>> edges;
    for (const auto& e : edges_of(nodes_[a])) {
      edges.emplace_back(e.first, b_not(e.second));
    }
    result = value_node(var, std::move(edges), def);
  }
  op_memo_.emplace(key, result);
  return result;
}

NodeId DiagramStore::ite(NodeId p, NodeId t, NodeId e) {
  if (p == true_) return t;
  if (p == false_) return e;
  if (t == e) return t;
  expects(!is_leaf(p), "ite predicate must be boolean");
  const OpKey key{kOpIte, p, t, e};
  ++stats_.memo_lookups;
  if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const std::uint32_t var =
      std::min({var_of(p), var_of(t), var_of(e)});
  Kind kind = Kind::kLeaf;
  for (const NodeId id : {p, t, e}) {
    if (var_of(id) == var) {
      kind = nodes_[id].kind;
      break;
    }
  }
  NodeId result = kInvalidNode;
  if (kind == Kind::kBit) {
    const NodeId lo =
        ite(cofactor(p, var, 0, false), cofactor(t, var, 0, false),
            cofactor(e, var, 0, false));
    const NodeId hi =
        ite(cofactor(p, var, 1, false), cofactor(t, var, 1, false),
            cofactor(e, var, 1, false));
    result = bit_node(var, lo, hi);
  } else {
    const NodeId def =
        ite(cofactor(p, var, 0, true), cofactor(t, var, 0, true),
            cofactor(e, var, 0, true));
    std::vector<std::pair<std::uint64_t, NodeId>> edges;
    for (const std::uint64_t v : branch_values({p, t, e}, var)) {
      edges.emplace_back(
          v, ite(cofactor(p, var, v, false), cofactor(t, var, v, false),
                 cofactor(e, var, v, false)));
    }
    result = value_node(var, std::move(edges), def);
  }
  op_memo_.emplace(key, result);
  return result;
}

NodeId DiagramStore::overlay_first(NodeId a, NodeId b, NodeId identity) {
  if (a == identity) return b;
  if (b == identity || a == b) return a;
  if (is_leaf(a)) return a;  // total on this region: left wins
  const OpKey key{kOpOverlay, a, b, identity};
  ++stats_.memo_lookups;
  if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const std::uint32_t var = std::min(var_of(a), var_of(b));
  const Kind kind = var_of(a) == var ? nodes_[a].kind : nodes_[b].kind;
  NodeId result = kInvalidNode;
  if (kind == Kind::kBit) {
    const NodeId lo = overlay_first(cofactor(a, var, 0, false),
                                    cofactor(b, var, 0, false), identity);
    const NodeId hi = overlay_first(cofactor(a, var, 1, false),
                                    cofactor(b, var, 1, false), identity);
    result = bit_node(var, lo, hi);
  } else {
    const NodeId def = overlay_first(cofactor(a, var, 0, true),
                                     cofactor(b, var, 0, true), identity);
    std::vector<std::pair<std::uint64_t, NodeId>> edges;
    for (const std::uint64_t v : branch_values({a, b}, var)) {
      edges.emplace_back(
          v, overlay_first(cofactor(a, var, v, false),
                           cofactor(b, var, v, false), identity));
    }
    result = value_node(var, std::move(edges), def);
  }
  op_memo_.emplace(key, result);
  return result;
}

NodeId DiagramStore::map_leaves(
    NodeId root, const std::function<std::uint64_t(std::uint64_t)>& fn) {
  std::unordered_map<NodeId, NodeId> memo;
  const std::function<NodeId(NodeId)> go = [&](NodeId id) -> NodeId {
    if (const auto it = memo.find(id); it != memo.end()) return it->second;
    const Node& n = nodes_[id];
    NodeId result = kInvalidNode;
    if (n.kind == Kind::kLeaf) {
      result = leaf(fn(n.payload));
    } else if (n.kind == Kind::kBit) {
      result = bit_node(n.var, go(n.lo), go(n.hi));
    } else {
      const NodeId def = go(n.lo);
      std::vector<std::pair<std::uint64_t, NodeId>> edges;
      for (const auto& e : edges_of(n)) {
        edges.emplace_back(e.first, go(e.second));
      }
      result = value_node(n.var, std::move(edges), def);
    }
    memo.emplace(id, result);
    return result;
  };
  return go(root);
}

NodeId DiagramStore::restrict_with(
    NodeId root,
    const std::function<std::optional<std::uint64_t>(std::uint32_t)>& fixed) {
  std::unordered_map<NodeId, NodeId> memo;
  const std::function<NodeId(NodeId)> go = [&](NodeId id) -> NodeId {
    const Node& n = nodes_[id];
    if (n.kind == Kind::kLeaf) return id;
    if (const auto it = memo.find(id); it != memo.end()) return it->second;
    NodeId result = kInvalidNode;
    if (const std::optional<std::uint64_t> v = fixed(n.var)) {
      result = go(cofactor(id, n.var, *v, false));
    } else if (n.kind == Kind::kBit) {
      result = bit_node(n.var, go(n.lo), go(n.hi));
    } else {
      const NodeId def = go(n.lo);
      std::vector<std::pair<std::uint64_t, NodeId>> edges;
      for (const auto& e : edges_of(n)) {
        edges.emplace_back(e.first, go(e.second));
      }
      result = value_node(n.var, std::move(edges), def);
    }
    memo.emplace(id, result);
    return result;
  };
  return go(root);
}

NodeId DiagramStore::restrict_default(
    NodeId root, const std::function<bool(std::uint32_t)>& select) {
  std::unordered_map<NodeId, NodeId> memo;
  const std::function<NodeId(NodeId)> go = [&](NodeId id) -> NodeId {
    const Node& n = nodes_[id];
    if (n.kind == Kind::kLeaf) return id;
    if (const auto it = memo.find(id); it != memo.end()) return it->second;
    NodeId result = kInvalidNode;
    if (select(n.var)) {
      expects(n.kind == Kind::kValue,
              "restrict_default selected a bit variable");
      result = go(n.lo);
    } else if (n.kind == Kind::kBit) {
      result = bit_node(n.var, go(n.lo), go(n.hi));
    } else {
      const NodeId def = go(n.lo);
      std::vector<std::pair<std::uint64_t, NodeId>> edges;
      for (const auto& e : edges_of(n)) {
        edges.emplace_back(e.first, go(e.second));
      }
      result = value_node(n.var, std::move(edges), def);
    }
    memo.emplace(id, result);
    return result;
  };
  return go(root);
}

std::optional<DiagramStore::Divergence> DiagramStore::first_divergence(
    NodeId a, NodeId b) {
  if (a == b) return std::nullopt;
  Divergence out;
  std::vector<PathStep> path;
  const bool found = find_divergence(a, b, path, out);
  ensures(found, "canonical diagrams differ but no divergence found");
  return out;
}

bool DiagramStore::find_divergence(NodeId a, NodeId b,
                                   std::vector<PathStep>& path,
                                   Divergence& out) {
  if (a == b) return false;
  if (is_leaf(a) && is_leaf(b)) {
    out.path = path;
    out.left = nodes_[a].payload;
    out.right = nodes_[b].payload;
    return true;
  }
  const std::uint32_t var = std::min(var_of(a), var_of(b));
  const Kind kind = var_of(a) == var ? nodes_[a].kind : nodes_[b].kind;
  if (kind == Kind::kBit) {
    for (const std::uint64_t bit : {std::uint64_t{0}, std::uint64_t{1}}) {
      path.push_back({var, bit, false});
      if (find_divergence(cofactor(a, var, bit, false),
                          cofactor(b, var, bit, false), path, out)) {
        return true;
      }
      path.pop_back();
    }
    return false;
  }
  for (const std::uint64_t v : branch_values({a, b}, var)) {
    path.push_back({var, v, false});
    if (find_divergence(cofactor(a, var, v, false),
                        cofactor(b, var, v, false), path, out)) {
      return true;
    }
    path.pop_back();
  }
  path.push_back({var, kDefaultBranch, true});
  if (find_divergence(cofactor(a, var, 0, true), cofactor(b, var, 0, true),
                      path, out)) {
    return true;
  }
  path.pop_back();
  return false;
}

std::optional<std::uint64_t> DiagramStore::max_edge_value(
    NodeId root, std::uint32_t var) const {
  std::optional<std::uint64_t> best;
  std::vector<NodeId> stack{root};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen.contains(id)) continue;
    seen.emplace(id, true);
    const Node& n = nodes_[id];
    if (n.kind == Kind::kLeaf || n.var > var) continue;  // children larger
    if (n.kind == Kind::kValue && n.var == var) {
      for (const auto& e : edges_of(n)) {
        if (!best || e.first > *best) best = e.first;
      }
      continue;
    }
    if (n.kind == Kind::kBit) {
      stack.push_back(n.lo);
      stack.push_back(n.hi);
      continue;
    }
    stack.push_back(n.lo);
    for (const auto& e : edges_of(n)) stack.push_back(e.second);
  }
  return best;
}

std::uint32_t DiagramStore::var_of(NodeId id) const noexcept {
  return nodes_[id].var;
}

NodeId DiagramStore::cofactor(NodeId id, std::uint32_t var,
                              std::uint64_t branch_value,
                              bool take_default) const {
  const Node& n = nodes_[id];
  if (n.var != var) return id;
  if (n.kind == Kind::kBit) return branch_value != 0 ? n.hi : n.lo;
  if (take_default) return n.lo;
  const auto edges = edges_of(n);
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), branch_value,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  if (it != edges.end() && it->first == branch_value) return it->second;
  return n.lo;
}

std::span<const std::pair<std::uint64_t, NodeId>> DiagramStore::edges_of(
    const Node& n) const noexcept {
  return {edge_pool_.data() + n.edges_begin, n.edges_count};
}

std::vector<std::uint64_t> DiagramStore::branch_values(
    std::initializer_list<NodeId> ids, std::uint32_t var) const {
  std::vector<std::uint64_t> values;
  for (const NodeId id : ids) {
    const Node& n = nodes_[id];
    if (n.var != var || n.kind != Kind::kValue) continue;
    for (const auto& e : edges_of(n)) values.push_back(e.first);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

NodeId DiagramStore::intern(Node n) {
  std::uint64_t h = static_cast<std::uint64_t>(n.kind);
  h = mix(h, n.var);
  if (n.kind == Kind::kLeaf) {
    h = mix(h, n.payload);
  } else {
    h = mix(h, n.lo);
    h = mix(h, n.hi);
    for (std::uint32_t i = 0; i < n.edges_count; ++i) {
      const auto& e = edge_pool_[n.edges_begin + i];
      h = mix(h, e.first);
      h = mix(h, e.second);
    }
  }
  auto& bucket = unique_[h];
  for (const NodeId cand : bucket) {
    const Node& c = nodes_[cand];
    if (c.kind != n.kind || c.var != n.var) continue;
    if (n.kind == Kind::kLeaf) {
      if (c.payload == n.payload) return cand;
      continue;
    }
    if (c.lo != n.lo || c.hi != n.hi || c.edges_count != n.edges_count) {
      continue;
    }
    if (std::equal(edge_pool_.begin() + c.edges_begin,
                   edge_pool_.begin() + c.edges_begin + c.edges_count,
                   edge_pool_.begin() + n.edges_begin)) {
      return cand;
    }
  }
  check_budget();
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  ++stats_.nodes;
  bucket.push_back(id);
  return id;
}

void DiagramStore::check_budget() const {
  if (nodes_.size() >= max_nodes_) throw NodeBudgetExceeded{};
}

}  // namespace maton::analysis::symbolic
