// dp::Program front-end: translates lowered programs (priorities, masks,
// goto/next edges, miss-drop) into bit-universe diagrams and decides
// equivalence on the (hit, out_port) observable of execute_reference.
#include <array>
#include <bit>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/symbolic/engine.hpp"
#include "analysis/symbolic/internal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace maton::analysis::symbolic {
namespace {

using dp::FieldId;

// Variable-order heuristic. Metadata registers come first so a set-field
// during composition substitutes at the successor diagram's root in
// O(register width) instead of rebuilding the whole header spine below
// it; then high-cardinality destination-side exact fields (VIP, port)
// before coarse source-side prefix fields — a low-information field near
// the root duplicates every distinct subfunction beneath it.
constexpr std::array<std::uint32_t, dp::kNumFields> kFieldRank = {
    4,   // kInPort
    14,  // kEthSrc
    13,  // kEthDst
    5,   // kEthType
    6,   // kVlan
    12,  // kIpSrc
    7,   // kIpDst
    10,  // kIpProto
    11,  // kIpTtl
    9,   // kTcpSrc
    8,   // kTcpDst
    0,   // kMeta0
    1,   // kMeta1
    2,   // kMeta2
    3,   // kMeta3
};

/// var = rank * 64 + MSB-first bit offset: all 64 value bits of every
/// field are modeled, so masks reaching past the wire width still
/// translate exactly.
constexpr std::uint32_t var_for(FieldId field, unsigned bit) {
  return kFieldRank[dp::field_index(field)] * 64 + (63 - bit);
}

FieldId field_of_rank(std::uint32_t rank) {
  for (std::size_t f = 0; f < dp::kNumFields; ++f) {
    if (kFieldRank[f] == rank) return static_cast<FieldId>(f);
  }
  expects(false, "unmapped diagram variable rank");
  return FieldId::kInPort;
}

constexpr std::uint64_t kVerdictTag = std::uint64_t{1} << 63;

/// Interned observable of one program execution. kHitUnset (hit, no
/// output action applied) is kept distinct during construction and
/// normalized to kHit/out=0 at each program root, matching
/// execute_reference's zero-initialized out_port.
struct DpVerdicts {
  enum State : int { kMiss = 0, kHitUnset = 1, kHit = 2 };

  DiagramStore& dd;
  std::vector<std::pair<int, std::uint64_t>> table;
  std::map<std::pair<int, std::uint64_t>, std::uint32_t> ids;

  std::uint64_t payload(int state, std::uint64_t out) {
    const std::pair<int, std::uint64_t> v{state, out};
    const auto it = ids.find(v);
    if (it != ids.end()) return kVerdictTag | it->second;
    const auto id = static_cast<std::uint32_t>(table.size());
    table.push_back(v);
    ids.emplace(v, id);
    return kVerdictTag | id;
  }
  NodeId leaf(int state, std::uint64_t out = 0) {
    return dd.leaf(payload(state, out));
  }
  [[nodiscard]] std::pair<int, std::uint64_t> of(std::uint64_t p) const {
    return table[p & ~kVerdictTag];
  }
};

/// Ternary cube of one rule's match vector; nullopt when the rule can
/// never match (a value bit outside its mask, or two matches requiring
/// different values of one bit). Accepts both the flattened MatchRange
/// and the boundary std::vector<FieldMatch>.
template <typename MatchList>
std::optional<std::vector<CubeBit>> rule_cube(const MatchList& matches) {
  std::map<std::uint32_t, bool> need;
  for (const dp::FieldMatch m : matches) {
    if ((m.value & ~m.mask) != 0) return std::nullopt;
    for (std::uint64_t rest = m.mask; rest != 0; rest &= rest - 1) {
      const auto bit = static_cast<unsigned>(std::countr_zero(rest));
      const bool one = ((m.value >> bit) & 1) != 0;
      const auto [it, inserted] = need.emplace(var_for(m.field, bit), one);
      if (!inserted && it->second != one) return std::nullopt;
    }
  }
  std::vector<CubeBit> cube;
  cube.reserve(need.size());
  for (const auto& [var, one] : need) cube.push_back({var, one});
  return cube;
}

class ProgramTranslator {
 public:
  ProgramTranslator(DpVerdicts& verdicts, const dp::Program& program)
      : verdicts_(verdicts),
        dd_(verdicts.dd),
        program_(program),
        cache_(program.tables.size(), kInvalidNode),
        visiting_(program.tables.size(), 0) {}

  /// Diagram of the whole program on the normalized (hit, out_port)
  /// observable.
  NodeId root() {
    if (program_.tables.empty()) {
      return verdicts_.leaf(DpVerdicts::kMiss);
    }
    check_target(program_.entry);
    const NodeId raw = table_diagram(program_.entry);
    return dd_.map_leaves(raw, [this](std::uint64_t p) {
      return verdicts_.of(p).first == DpVerdicts::kHitUnset
                 ? verdicts_.payload(DpVerdicts::kHit, 0)
                 : p;
    });
  }

 private:
  void check_target(std::size_t table) const {
    if (table >= program_.tables.size()) {
      throw detail::TranslationBail{"program jump out of range"};
    }
  }

  NodeId table_diagram(std::size_t ti) {
    if (cache_[ti] != kInvalidNode) return cache_[ti];
    if (visiting_[ti] != 0) {
      throw detail::TranslationBail{"program table graph contains a cycle"};
    }
    visiting_[ti] = 1;
    const dp::TableSpec& spec = program_.tables[ti];
    // First-match fold: stored order is the scan order, so insert rules
    // back-to-front and let each earlier rule's cube overwrite.
    NodeId acc = verdicts_.leaf(DpVerdicts::kMiss);
    for (std::size_t i = spec.rules.size(); i-- > 0;) {
      const dp::RuleView rule = spec.rules[i];
      const std::optional<std::vector<CubeBit>> cube =
          rule_cube(rule.matches);
      if (!cube.has_value()) continue;  // can never match
      acc = dd_.ite(dd_.cube(*cube), continuation(spec, rule), acc);
    }
    visiting_[ti] = 0;
    cache_[ti] = acc;
    return acc;
  }

  /// Diagram of "this rule hit": successor program transformed by the
  /// rule's actions, applied in reverse so earlier writes see the
  /// downstream function they feed.
  NodeId continuation(const dp::TableSpec& spec, const dp::RuleView& rule) {
    const std::optional<std::size_t> next =
        rule.goto_table.has_value() ? rule.goto_table : spec.next;
    NodeId c = verdicts_.leaf(DpVerdicts::kHitUnset);
    if (next.has_value()) {
      check_target(*next);
      c = table_diagram(*next);
    }
    for (std::size_t j = rule.actions.size(); j-- > 0;) {
      const dp::Action action = rule.actions[j];
      if (action.kind == dp::Action::Kind::kOutput) {
        // Applies only where no later output took effect; a downstream
        // miss still drops the packet (miss leaves stay miss).
        c = dd_.map_leaves(c, [this, &action](std::uint64_t p) {
          return verdicts_.of(p).first == DpVerdicts::kHitUnset
                     ? verdicts_.payload(DpVerdicts::kHit, action.value)
                     : p;
        });
      } else {
        // set-field: the downstream function sees `value` on all 64
        // bits of the register (execute_reference stores the full
        // value).
        const std::uint32_t base =
            kFieldRank[dp::field_index(action.field)] * 64;
        const std::uint64_t value = action.value;
        c = dd_.restrict_with(
            c, [base, value](std::uint32_t var)
                   -> std::optional<std::uint64_t> {
              if (var < base || var >= base + 64) return std::nullopt;
              return (value >> (63 - (var - base))) & 1;
            });
      }
    }
    return c;
  }

  DpVerdicts& verdicts_;
  DiagramStore& dd_;
  const dp::Program& program_;
  std::vector<NodeId> cache_;
  std::vector<char> visiting_;
};

dp::FlowKey key_from_path(std::span<const PathStep> path) {
  dp::FlowKey key;
  std::array<std::uint64_t, dp::kNumFields> values{};
  for (const PathStep& step : path) {
    // Bit universe: every step is a concrete 0/1 branch.
    if (step.branch == 0) continue;
    const FieldId field = field_of_rank(step.var / 64);
    values[dp::field_index(field)] |= std::uint64_t{1}
                                      << (63 - (step.var % 64));
  }
  for (std::size_t f = 0; f < dp::kNumFields; ++f) {
    key.set(static_cast<FieldId>(f), values[f]);
  }
  return key;
}

std::string describe_exec(const dp::ExecResult& r) {
  if (!r.hit) return "miss";
  return "hit out=" + std::to_string(r.out_port);
}

std::string describe_key(const dp::FlowKey& key) {
  std::ostringstream os;
  os << "key{";
  bool first = true;
  for (std::size_t f = 0; f < dp::kNumFields; ++f) {
    if (key.values[f] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << dp::to_string(static_cast<FieldId>(f)) << "=0x" << std::hex
       << key.values[f] << std::dec;
  }
  os << "}";
  return os.str();
}

}  // namespace

Result check_programs(const dp::Program& a, const dp::Program& b,
                      const Options& options) {
  return detail::run_guarded(
      "programs", options, [&](DiagramStore& dd) {
        DpVerdicts verdicts{dd};
        const NodeId ra = ProgramTranslator(verdicts, a).root();
        const NodeId rb = ProgramTranslator(verdicts, b).root();
        Result result;
        if (ra == rb) {
          result.outcome = Outcome::kEquivalent;
          return result;
        }
        const auto div = dd.first_divergence(ra, rb);
        ensures(div.has_value(), "divergent roots without a divergence");
        const dp::FlowKey key = key_from_path(div->path);
        const dp::ExecResult ea = dp::execute_reference(a, key);
        const dp::ExecResult eb = dp::execute_reference(b, key);
        if (ea.hit == eb.hit &&
            (!ea.hit || ea.out_port == eb.out_port)) {
          // The diagrams disagree but the interpreter does not: report
          // no verdict rather than a wrong one.
          result.outcome = Outcome::kUnknown;
          result.note = "counterexample failed scalar confirmation";
          return result;
        }
        result.outcome = Outcome::kInequivalent;
        Counterexample cex;
        cex.key = key;
        cex.description = describe_key(key) + " -> left " +
                          describe_exec(ea) + " vs right " +
                          describe_exec(eb);
        result.counterexample = std::move(cex);
        return result;
      });
}

SliceRelation slices_relation(std::span<const dp::Rule> a,
                              std::span<const dp::Rule> b,
                              const Options& options) {
  const obs::TraceSpan span("symbolic_solve");
  DiagramStore dd(options.max_nodes);
  SliceRelation relation = SliceRelation::kUnknown;
  try {
    const auto region = [&dd](std::span<const dp::Rule> rules) {
      NodeId acc = dd.false_leaf();
      for (const dp::Rule& rule : rules) {
        const std::optional<std::vector<CubeBit>> cube =
            rule_cube(rule.matches);
        if (!cube.has_value()) continue;  // can never match
        acc = dd.b_or(acc, dd.cube(*cube));
      }
      return acc;
    };
    relation = dd.disjoint(region(a), region(b))
                   ? SliceRelation::kDisjoint
                   : SliceRelation::kIntersecting;
  } catch (const NodeBudgetExceeded&) {
    relation = SliceRelation::kUnknown;
  }
  auto& registry = obs::MetricRegistry::global();
  registry
      .counter("maton_symbolic_solves_total",
               {{"check", "slices"},
                {"outcome", std::string(to_string(relation))}})
      .add(1);
  static obs::Counter& nodes =
      registry.counter("maton_symbolic_nodes_total");
  nodes.add(dd.stats().nodes);
  return relation;
}

}  // namespace maton::analysis::symbolic
