// NetKAT front-end: normalizes the star-free local fragment into a
// test/write atom sum, then builds value-universe diagrams whose leaves
// are the canonicalized sets of write maps a packet region produces.
//
// Region semantics: one variable per field named by either policy; its
// alphabet is every value the pair tests or writes. A concrete branch
// f=v stands for "input binds f to v"; the default branch stands for
// "f absent or bound to a value outside the alphabet" — both fail every
// test on f (netkat::eval fails a test on an absent field) and neither
// makes any write an identity, so they are observationally one region.
// On edge f=v a write f←v is dropped (identity on that region), which
// makes the leaf write-sets canonical: two distinct canonical maps yield
// distinct output packets everywhere in the region, so leaf equality is
// exactly packet-set equality there.
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/symbolic/engine.hpp"
#include "analysis/symbolic/internal.hpp"
#include "netkat/eval.hpp"
#include "util/contract.hpp"

namespace maton::analysis::symbolic {
namespace {

constexpr std::uint64_t kVerdictTag = std::uint64_t{1} << 63;

using Bindings = std::map<std::string, core::Value, std::less<>>;

/// One summand of the star-free normal form: "if all tests pass, emit
/// the input overridden by writes".
struct Atom {
  Bindings tests;
  Bindings writes;
};

class Normalizer {
 public:
  explicit Normalizer(const Options& options)
      : max_atoms_(options.max_netkat_atoms),
        work_budget_(options.max_netkat_atoms * 1024) {}

  std::vector<Atom> run(const netkat::PolicyPtr& policy) {
    expects(policy != nullptr, "null NetKAT policy");
    switch (policy->kind()) {
      case netkat::Policy::Kind::kDrop:
        return {};
      case netkat::Policy::Kind::kId:
        return {Atom{}};
      case netkat::Policy::Kind::kTest: {
        Atom atom;
        atom.tests.emplace(policy->field(), policy->value());
        return {atom};
      }
      case netkat::Policy::Kind::kMod: {
        Atom atom;
        atom.writes.emplace(policy->field(), policy->value());
        return {atom};
      }
      case netkat::Policy::Kind::kPar: {
        std::vector<Atom> atoms = run(policy->left());
        std::vector<Atom> rhs = run(policy->right());
        atoms.insert(atoms.end(), std::make_move_iterator(rhs.begin()),
                     std::make_move_iterator(rhs.end()));
        check_atoms(atoms.size());
        return atoms;
      }
      case netkat::Policy::Kind::kSeq: {
        const std::vector<Atom> lhs = run(policy->left());
        const std::vector<Atom> rhs = run(policy->right());
        std::vector<Atom> atoms;
        for (const Atom& a : lhs) {
          for (const Atom& b : rhs) {
            spend();
            std::optional<Atom> merged = combine(a, b);
            if (merged.has_value()) {
              atoms.push_back(std::move(*merged));
              check_atoms(atoms.size());
            }
          }
        }
        return atoms;
      }
    }
    expects(false, "unhandled NetKAT policy kind");
    return {};
  }

 private:
  /// Sequences atom `a` before atom `b`; nullopt when `b`'s tests
  /// contradict what `a` guarantees about the intermediate packet.
  static std::optional<Atom> combine(const Atom& a, const Atom& b) {
    Atom merged = a;
    for (const auto& [field, value] : b.tests) {
      if (const auto w = a.writes.find(field); w != a.writes.end()) {
        if (w->second != value) return std::nullopt;  // write shadows test
        continue;
      }
      const auto [it, inserted] = merged.tests.emplace(field, value);
      if (!inserted && it->second != value) return std::nullopt;
    }
    for (const auto& [field, value] : b.writes) {
      merged.writes[field] = value;  // later write wins
    }
    return merged;
  }

  void check_atoms(std::size_t count) const {
    if (count > max_atoms_) {
      throw detail::TranslationBail{"NetKAT normal form exceeds atom cap"};
    }
  }
  void spend() {
    if (work_budget_ == 0) {
      throw detail::TranslationBail{"NetKAT normalization work cap hit"};
    }
    --work_budget_;
  }

  std::size_t max_atoms_;
  std::size_t work_budget_;
};

void collect_alphabet(const netkat::PolicyPtr& policy,
                      std::map<std::string, std::set<core::Value>,
                               std::less<>>& alphabet) {
  if (policy == nullptr) return;
  switch (policy->kind()) {
    case netkat::Policy::Kind::kDrop:
    case netkat::Policy::Kind::kId:
      return;
    case netkat::Policy::Kind::kTest:
    case netkat::Policy::Kind::kMod:
      alphabet[std::string(policy->field())].insert(policy->value());
      return;
    case netkat::Policy::Kind::kSeq:
    case netkat::Policy::Kind::kPar:
      collect_alphabet(policy->left(), alphabet);
      collect_alphabet(policy->right(), alphabet);
      return;
  }
}

/// Builds the diagram of one atom list over a shared field universe,
/// interning leaf write-sets in a shared table so equal packet functions
/// get equal roots.
class PolicyBuilder {
 public:
  PolicyBuilder(DiagramStore& dd, std::vector<std::string> fields,
                std::vector<std::vector<core::Value>> alphabets,
                std::size_t work_budget)
      : dd_(dd),
        fields_(std::move(fields)),
        alphabets_(std::move(alphabets)),
        work_budget_(work_budget) {}

  NodeId build(const std::vector<Atom>& atoms) {
    std::vector<std::size_t> alive(atoms.size());
    for (std::size_t i = 0; i < atoms.size(); ++i) alive[i] = i;
    Bindings path;
    return descend(atoms, alive, 0, path);
  }

  [[nodiscard]] const std::vector<std::string>& fields() const {
    return fields_;
  }
  [[nodiscard]] const std::set<Bindings>& write_set(std::uint64_t p) const {
    return write_sets_[p & ~kVerdictTag];
  }

 private:
  NodeId descend(const std::vector<Atom>& atoms,
                 const std::vector<std::size_t>& alive, std::size_t i,
                 Bindings& path) {
    spend();
    if (i == fields_.size()) return leaf(atoms, alive, path);
    const std::string& field = fields_[i];
    std::vector<std::pair<std::uint64_t, NodeId>> edges;
    edges.reserve(alphabets_[i].size());
    for (const core::Value value : alphabets_[i]) {
      std::vector<std::size_t> survive;
      for (const std::size_t a : alive) {
        const auto t = atoms[a].tests.find(field);
        if (t == atoms[a].tests.end() || t->second == value) {
          survive.push_back(a);
        }
      }
      path[field] = value;
      edges.emplace_back(value, descend(atoms, survive, i + 1, path));
      path.erase(field);
    }
    // Default region: field absent (or outside the alphabet) — every
    // test on it fails, every write on it is non-identity.
    std::vector<std::size_t> survive;
    for (const std::size_t a : alive) {
      if (!atoms[a].tests.contains(field)) survive.push_back(a);
    }
    const NodeId def = descend(atoms, survive, i + 1, path);
    return dd_.value_node(static_cast<std::uint32_t>(i), std::move(edges),
                          def);
  }

  NodeId leaf(const std::vector<Atom>& atoms,
              const std::vector<std::size_t>& alive, const Bindings& path) {
    std::set<Bindings> outputs;
    for (const std::size_t a : alive) {
      Bindings canonical;
      for (const auto& [field, value] : atoms[a].writes) {
        const auto bound = path.find(field);
        if (bound != path.end() && bound->second == value) {
          continue;  // identity write on this region
        }
        canonical.emplace(field, value);
      }
      outputs.insert(std::move(canonical));
    }
    const auto it = write_set_ids_.find(outputs);
    std::uint32_t id = 0;
    if (it != write_set_ids_.end()) {
      id = it->second;
    } else {
      id = static_cast<std::uint32_t>(write_sets_.size());
      write_sets_.push_back(outputs);
      write_set_ids_.emplace(std::move(outputs), id);
    }
    return dd_.leaf(kVerdictTag | id);
  }

  void spend() {
    if (work_budget_ == 0) {
      throw detail::TranslationBail{"NetKAT diagram work cap hit"};
    }
    --work_budget_;
  }

  DiagramStore& dd_;
  std::vector<std::string> fields_;
  std::vector<std::vector<core::Value>> alphabets_;
  std::vector<std::set<Bindings>> write_sets_;
  std::map<std::set<Bindings>, std::uint32_t> write_set_ids_;
  std::size_t work_budget_;
};

netkat::Packet packet_from_path(const std::vector<std::string>& fields,
                                std::span<const PathStep> path) {
  // Default-branch and untouched fields stay absent: that is the region
  // the default edge models, and eval fails tests on absent fields.
  netkat::Packet packet;
  for (const PathStep& step : path) {
    if (!step.is_default) packet[fields[step.var]] = step.branch;
  }
  return packet;
}

std::string describe_packet_set(const netkat::PacketSet& set) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const netkat::Packet& packet : set) {
    if (!first) os << ", ";
    first = false;
    os << "[";
    bool inner_first = true;
    for (const auto& [field, value] : packet) {
      if (!inner_first) os << " ";
      inner_first = false;
      os << field << "=" << value;
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace

Result check_policies(const netkat::PolicyPtr& a, const netkat::PolicyPtr& b,
                      const Options& options) {
  return detail::run_guarded(
      "policies", options, [&](DiagramStore& dd) {
        Normalizer normalizer(options);
        const std::vector<Atom> atoms_a = normalizer.run(a);
        const std::vector<Atom> atoms_b = normalizer.run(b);

        std::map<std::string, std::set<core::Value>, std::less<>> alphabet;
        collect_alphabet(a, alphabet);
        collect_alphabet(b, alphabet);
        std::vector<std::string> fields;
        std::vector<std::vector<core::Value>> alphabets;
        for (const auto& [field, values] : alphabet) {
          fields.push_back(field);
          alphabets.emplace_back(values.begin(), values.end());
        }

        PolicyBuilder builder(dd, std::move(fields), std::move(alphabets),
                              options.max_netkat_atoms * 1024);
        const NodeId ra = builder.build(atoms_a);
        const NodeId rb = builder.build(atoms_b);
        Result result;
        if (ra == rb) {
          result.outcome = Outcome::kEquivalent;
          return result;
        }
        const auto div = dd.first_divergence(ra, rb);
        ensures(div.has_value(), "divergent roots without a divergence");
        const netkat::Packet packet =
            packet_from_path(builder.fields(), div->path);
        const netkat::PacketSet ea = netkat::eval(a, packet);
        const netkat::PacketSet eb = netkat::eval(b, packet);
        if (ea == eb) {
          result.outcome = Outcome::kUnknown;
          result.note = "counterexample failed scalar confirmation";
          return result;
        }
        result.outcome = Outcome::kInequivalent;
        Counterexample cex;
        cex.packet = packet;
        std::ostringstream os;
        os << "packet[";
        bool first = true;
        for (const auto& [field, value] : packet) {
          if (!first) os << " ";
          first = false;
          os << field << "=" << value;
        }
        os << "] -> left " << describe_packet_set(ea) << " vs right "
           << describe_packet_set(eb);
        cex.description = os.str();
        result.counterexample = std::move(cex);
        return result;
      });
}

}  // namespace maton::analysis::symbolic
