#include "analysis/diagnostic.hpp"

#include <algorithm>

namespace maton::analysis {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::size_t Report::count(Severity severity) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

bool Report::clean(Severity at_least) const noexcept {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [at_least](const Diagnostic& d) {
                        return d.severity >= at_least;
                      });
}

namespace {

void append_location(const Diagnostic& d, std::string& out) {
  if (d.table.has_value()) {
    out += " table ";
    out += std::to_string(*d.table);
    if (d.rule.has_value()) {
      out += " rule#";
      out += std::to_string(*d.rule);
    }
  }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void append_json_string(std::string_view s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string render_text(const Report& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += to_string(d.severity);
    out += "[";
    out += d.code;
    out += "]";
    append_location(d, out);
    out += ": ";
    out += d.message;
    out += "\n";
    if (!d.witness.empty()) {
      out += "    witness: ";
      out += d.witness;
      out += "\n";
    }
  }
  out += "analysis: ";
  out += std::to_string(report.count(Severity::kError));
  out += " error(s), ";
  out += std::to_string(report.count(Severity::kWarning));
  out += " warning(s), ";
  out += std::to_string(report.count(Severity::kInfo));
  out += " info(s) from";
  for (const PassStats& p : report.passes) {
    if (!p.ran) continue;
    out += " ";
    out += p.name;
    out += "(";
    out += std::to_string(p.diagnostics);
    out += ")";
  }
  out += "\n";
  return out;
}

std::string render_json(const Report& report) {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "{\"severity\":";
    append_json_string(to_string(d.severity), out);
    out += ",\"code\":";
    append_json_string(d.code, out);
    out += ",\"pass\":";
    append_json_string(d.pass, out);
    if (d.table.has_value()) {
      out += ",\"table\":";
      out += std::to_string(*d.table);
    }
    if (d.rule.has_value()) {
      out += ",\"rule\":";
      out += std::to_string(*d.rule);
    }
    out += ",\"message\":";
    append_json_string(d.message, out);
    out += ",\"witness\":";
    append_json_string(d.witness, out);
    out += "}";
  }
  out += "],\"summary\":{\"error\":";
  out += std::to_string(report.count(Severity::kError));
  out += ",\"warning\":";
  out += std::to_string(report.count(Severity::kWarning));
  out += ",\"info\":";
  out += std::to_string(report.count(Severity::kInfo));
  out += "},\"passes\":[";
  first = true;
  for (const PassStats& p : report.passes) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    append_json_string(p.name, out);
    out += ",\"ran\":";
    out += p.ran ? "true" : "false";
    out += ",\"diagnostics\":";
    out += std::to_string(p.diagnostics);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace maton::analysis
