#include "workloads/l3fwd.hpp"

#include <set>

#include "util/contract.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace maton::workloads {

using core::AttrSet;
using core::Schema;
using core::Table;
using core::Value;
using core::ValueCodec;

namespace {

constexpr Value kEthIpv4 = 0x0800;
constexpr Value kTtlDecrement = 1;

Schema universal_schema() {
  Schema schema;
  schema.add_match("eth_type", ValueCodec::kPlain, 16);
  schema.add_match("ip_dst", ValueCodec::kIpv4Prefix, 32);
  schema.add_action("mod_ttl", ValueCodec::kPlain, 8);
  schema.add_action("mod_smac", ValueCodec::kMac, 48);
  schema.add_action("mod_dmac", ValueCodec::kMac, 48);
  schema.add_action("out", ValueCodec::kPort, 16);
  return schema;
}

core::FdSet model_dependencies() {
  core::FdSet fds;
  fds.add(AttrSet::single(kL3ModDmac),
          AttrSet{kL3ModTtl, kL3ModSmac, kL3Out});
  fds.add(AttrSet::single(kL3Out), AttrSet::single(kL3ModSmac));
  // Constants: determined by the empty set.
  fds.add(AttrSet{}, AttrSet{kL3EthType, kL3ModTtl});
  return fds;
}

constexpr Value prefix_token(std::uint32_t addr, unsigned len) {
  return (static_cast<Value>(addr) << 8) | len;
}

constexpr Value port_smac(std::size_t port) {
  return 0x02'00'00'00'00'00ULL | (static_cast<Value>(port) << 8);
}

constexpr Value nexthop_dmac(std::size_t hop) {
  return 0x06'00'00'00'00'00ULL | (static_cast<Value>(hop) << 8);
}

}  // namespace

L3Fwd make_l3fwd(const L3Config& config) {
  expects(config.num_prefixes > 0, "l3fwd needs at least one prefix");
  expects(config.num_nexthops > 0 &&
              config.num_nexthops <= config.num_prefixes,
          "next-hop count must be in [1, num_prefixes]");
  expects(config.num_ports > 0 && config.num_ports <= config.num_nexthops,
          "port count must be in [1, num_nexthops]");

  Rng rng(config.seed);
  L3Fwd l3;
  l3.universal = Table("l3.universal", universal_schema());
  l3.model_fds = model_dependencies();

  std::set<std::uint32_t> used;
  for (std::size_t p = 0; p < config.num_prefixes; ++p) {
    // Disjoint /24s out of 10.0.0.0/8.
    std::uint32_t base;
    do {
      base = ipv4(10, static_cast<unsigned>(rng.uniform(0, 255)),
                  static_cast<unsigned>(rng.uniform(0, 255)), 0);
    } while (!used.insert(base).second);

    // Ensure every next-hop is used at least once, then spread randomly;
    // next-hop h sits on port h % num_ports.
    const std::size_t hop =
        p < config.num_nexthops ? p : rng.index(config.num_nexthops);
    const std::size_t port = hop % config.num_ports;
    l3.universal.add_row({kEthIpv4, prefix_token(base, 24), kTtlDecrement,
                          port_smac(port), nexthop_dmac(hop),
                          static_cast<Value>(port + 1)});
  }
  return l3;
}

L3Fwd make_paper_l3_example() {
  L3Fwd l3;
  l3.universal = Table("l3.universal", universal_schema());
  l3.model_fds = model_dependencies();

  const Value p1 = prefix_token(ipv4(10, 1, 0, 0), 16);
  const Value p2 = prefix_token(ipv4(10, 2, 0, 0), 16);
  const Value p3 = prefix_token(ipv4(10, 3, 0, 0), 16);
  const Value p4 = prefix_token(ipv4(10, 4, 0, 0), 16);

  const Value d1 = nexthop_dmac(1);
  const Value d2 = nexthop_dmac(2);
  const Value d3 = nexthop_dmac(3);
  const Value smac_port1 = port_smac(1);
  const Value smac_port2 = port_smac(2);

  // P1, P4 → D1 (group 1); P2 → D2 (group 2); P3 → D3 (group 3).
  // Groups 1 and 2 leave on port 1 (same source MAC), group 3 on port 2.
  l3.universal.add_row({kEthIpv4, p1, kTtlDecrement, smac_port1, d1, 1});
  l3.universal.add_row({kEthIpv4, p2, kTtlDecrement, smac_port1, d2, 1});
  l3.universal.add_row({kEthIpv4, p3, kTtlDecrement, smac_port2, d3, 2});
  l3.universal.add_row({kEthIpv4, p4, kTtlDecrement, smac_port1, d1, 1});
  return l3;
}

}  // namespace maton::workloads
