#include "workloads/sdx.hpp"

#include "util/format.hpp"

namespace maton::workloads {

using core::Schema;
using core::Table;
using core::Value;
using core::ValueCodec;

namespace {

constexpr Value prefix_token(std::uint32_t addr, unsigned len) {
  return (static_cast<Value>(addr) << 8) | len;
}

const Value kP1 = prefix_token(ipv4(11, 1, 0, 0), 16);
const Value kP2 = prefix_token(ipv4(11, 2, 0, 0), 16);
constexpr Value kHttp = 80;
constexpr Value kOtherPort = 0;

// Announcement sets encoded as bitmasks: bit 0 = C, bit 1 = D.
constexpr Value kAnnCAndD = 0b11;
constexpr Value kAnnDOnly = 0b10;

// Member choice carried between the outbound and inbound stages.
constexpr Value kMemberC = 100;
constexpr Value kMemberD = 101;

}  // namespace

Sdx make_sdx_example() {
  Sdx sdx;

  // --- Fig. 5a: the collapsed universal policy table. ---
  Schema uni;
  uni.add_match("ip_dst", ValueCodec::kIpv4Prefix, 32);
  uni.add_match("tcp_dst", ValueCodec::kPort, 16);
  uni.add_match("hash", ValueCodec::kPlain, 1);
  uni.add_action("out", ValueCodec::kPort, 16);
  sdx.universal = Table("sdx.universal", std::move(uni));
  // A prefers C for HTTP to prefixes C announces (P1); C balances its
  // ingress across C1/C2 on the hash bit; everything else goes to D.
  sdx.universal.add_row({kP1, kHttp, 0, kSdxC1});
  sdx.universal.add_row({kP1, kHttp, 1, kSdxC2});
  sdx.universal.add_row({kP1, kOtherPort, 0, kSdxD});
  sdx.universal.add_row({kP1, kOtherPort, 1, kSdxD});
  sdx.universal.add_row({kP2, kHttp, 0, kSdxD});
  sdx.universal.add_row({kP2, kHttp, 1, kSdxD});
  sdx.universal.add_row({kP2, kOtherPort, 0, kSdxD});
  sdx.universal.add_row({kP2, kOtherPort, 1, kSdxD});

  // --- Fig. 5b chained naively: incorrect. ---
  // T_an and T_out are fine, but C's inbound table, written on its own,
  // must decide between "balance to C1/C2" and "this is really D's
  // traffic" with no knowledge of the outbound choice: duplicate match
  // keys, not order-independent.
  {
    Schema an;
    an.add_match("ip_dst", ValueCodec::kIpv4Prefix, 32);
    an.add_action("meta.an", ValueCodec::kPlain, 8);
    Table t_an("sdx.an", std::move(an));
    t_an.add_row({kP1, kAnnCAndD});
    t_an.add_row({kP2, kAnnDOnly});

    Schema out;
    out.add_match("meta.an", ValueCodec::kPlain, 8);
    out.add_match("tcp_dst", ValueCodec::kPort, 16);
    Table t_out("sdx.out", std::move(out));
    t_out.add_row({kAnnCAndD, kHttp});
    t_out.add_row({kAnnCAndD, kOtherPort});
    t_out.add_row({kAnnDOnly, kHttp});
    t_out.add_row({kAnnDOnly, kOtherPort});

    Schema in;
    in.add_match("ip_dst", ValueCodec::kIpv4Prefix, 32);
    in.add_match("hash", ValueCodec::kPlain, 1);
    in.add_action("out", ValueCodec::kPort, 16);
    Table t_in("sdx.in", std::move(in));
    t_in.add_row({kP1, 0, kSdxC1});  // C's balancing view of P1...
    t_in.add_row({kP1, 1, kSdxC2});
    t_in.add_row({kP1, 0, kSdxD});   // ...collides with the BGP default
    t_in.add_row({kP1, 1, kSdxD});
    t_in.add_row({kP2, 0, kSdxD});
    t_in.add_row({kP2, 1, kSdxD});

    const std::size_t s0 = sdx.broken.add_stage({std::move(t_an), {}, {}});
    const std::size_t s1 = sdx.broken.add_stage({std::move(t_out), {}, {}});
    const std::size_t s2 = sdx.broken.add_stage({std::move(t_in), {}, {}});
    sdx.broken.stage(s0).next = s1;
    sdx.broken.stage(s1).next = s2;
    sdx.broken.set_entry(s0);
  }

  // --- Fig. 5c: the metadata repair. ---
  // The outbound stage materializes its member choice into an explicit
  // field the inbound stage can match on.
  {
    Schema an;
    an.add_match("ip_dst", ValueCodec::kIpv4Prefix, 32);
    an.add_action("meta.an", ValueCodec::kPlain, 8);
    Table t_an("sdx.an", std::move(an));
    t_an.add_row({kP1, kAnnCAndD});
    t_an.add_row({kP2, kAnnDOnly});

    Schema out;
    out.add_match("meta.an", ValueCodec::kPlain, 8);
    out.add_match("tcp_dst", ValueCodec::kPort, 16);
    out.add_action("meta.member", ValueCodec::kPlain, 8);
    Table t_out("sdx.out", std::move(out));
    t_out.add_row({kAnnCAndD, kHttp, kMemberC});
    t_out.add_row({kAnnCAndD, kOtherPort, kMemberD});
    t_out.add_row({kAnnDOnly, kHttp, kMemberD});
    t_out.add_row({kAnnDOnly, kOtherPort, kMemberD});

    Schema in;
    in.add_match("meta.member", ValueCodec::kPlain, 8);
    in.add_match("hash", ValueCodec::kPlain, 1);
    in.add_action("out", ValueCodec::kPort, 16);
    Table t_in("sdx.in", std::move(in));
    t_in.add_row({kMemberC, 0, kSdxC1});
    t_in.add_row({kMemberC, 1, kSdxC2});
    t_in.add_row({kMemberD, 0, kSdxD});
    t_in.add_row({kMemberD, 1, kSdxD});

    const std::size_t s0 = sdx.repaired.add_stage({std::move(t_an), {}, {}});
    const std::size_t s1 = sdx.repaired.add_stage({std::move(t_out), {}, {}});
    const std::size_t s2 = sdx.repaired.add_stage({std::move(t_in), {}, {}});
    sdx.repaired.stage(s0).next = s1;
    sdx.repaired.stage(s1).next = s2;
    sdx.repaired.set_entry(s0);
  }

  return sdx;
}

}  // namespace maton::workloads
