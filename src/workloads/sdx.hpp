// The Software-Defined Internet eXchange use case of the appendix
// (Fig. 5): redundancy *beyond* the third normal form.
//
// Member A receives prefixes P1, P2; member C announces P1 only, member
// D announces both. A's outbound policy prefers C for HTTP traffic to
// prefixes C actually announces; C's inbound policy balances across its
// two edge routers C1, C2; everything else follows BGP ranking (D wins).
//
// The natural three-way split into announcement / outbound / inbound
// tables is a *join dependency* (4NF/5NF territory), not derivable from
// functional dependencies — and the naive pipeline T_an ≫ T_out ≫ T_in is
// incorrect because T_in is not order-independent. Communicating the
// candidate set forward in an explicit metadata field (the "all" field of
// Fig. 5c, generalized in MacDavid et al.) repairs it; this module builds
// both the broken and the repaired pipelines so tests and benches can
// demonstrate the phenomenon.
#pragma once

#include "core/pipeline.hpp"
#include "core/table.hpp"

namespace maton::workloads {

/// Column order of the universal SDX table.
inline constexpr std::size_t kSdxIpDst = 0;    // destination prefix token
inline constexpr std::size_t kSdxTcpDst = 1;   // 80 = HTTP, 0 = other
inline constexpr std::size_t kSdxHash = 2;     // load-balancing bit
inline constexpr std::size_t kSdxOut = 3;      // egress router

/// Egress router ids.
inline constexpr core::Value kSdxC1 = 1;
inline constexpr core::Value kSdxC2 = 2;
inline constexpr core::Value kSdxD = 3;

struct Sdx {
  /// The collapsed single-table policy of Fig. 5a.
  core::Table universal;
  /// The incorrect T_an ≫ T_out ≫ T_in pipeline (Fig. 5b chained
  /// naively): its last table is not order-independent.
  core::Pipeline broken;
  /// The repaired pipeline carrying the announcement set in an explicit
  /// metadata field (Fig. 5c).
  core::Pipeline repaired;
};

[[nodiscard]] Sdx make_sdx_example();

}  // namespace maton::workloads
