#include "workloads/vlan.hpp"

namespace maton::workloads {

using core::AttrSet;
using core::Schema;
using core::Table;
using core::ValueCodec;

Table make_vlan_example() {
  Schema schema;
  schema.add_match("in_port", ValueCodec::kPort, 16);
  schema.add_match("vlan", ValueCodec::kPlain, 12);
  schema.add_action("out", ValueCodec::kPort, 16);

  Table table("vlan.universal", std::move(schema));
  table.add_row({1, 1, 1});
  table.add_row({1, 2, 2});
  table.add_row({2, 1, 1});
  table.add_row({3, 1, 3});
  return table;
}

core::Fd vlan_action_to_match_fd() {
  return {AttrSet::single(kVlanOut), AttrSet::single(kVlanVlan)};
}

}  // namespace maton::workloads
