// The cloud access-gateway & load-balancer workload of Fig. 1 (§2) and of
// the evaluation (§5: N = 20 random services, M = 8 backends each).
//
// Routes tenants' services, addressed by public VIP:port pairs, to the
// backend VMs running the workload; load is split across backends by
// disjoint source-IP prefixes. Emits the universal single-table
// representation plus the three hand-built decompositions of Fig. 1b–d,
// and the model-level dependency set (ip_dst → tcp_dst: "a service lives
// on exactly one port of its VIP").
#pragma once

#include <cstdint>
#include <vector>

#include "core/fd.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"

namespace maton::workloads {

struct GwlbConfig {
  std::size_t num_services = 20;
  /// Backends per service; must be a power of two (equal-weight split by
  /// source prefixes of length log2(M)).
  std::size_t num_backends = 8;
  std::uint64_t seed = 1;
};

/// One tenant service: a VIP:port pair load-balanced over backends.
struct GwlbService {
  std::uint32_t vip = 0;
  std::uint16_t port = 0;
  /// Source-prefix tokens ((addr << 8) | prefix_len) splitting the load.
  std::vector<std::uint64_t> src_prefixes;
  /// Output port (VM) per backend, parallel to src_prefixes.
  std::vector<std::uint64_t> backends;
};

struct Gwlb {
  std::vector<GwlbService> services;
  /// Fig. 1a: the universal table over (ip_src, ip_dst, tcp_dst | out).
  core::Table universal;
  /// Model dependency: ip_dst → tcp_dst (each VIP hosts one service).
  core::FdSet model_fds;
};

/// Column order of the universal gwlb table.
inline constexpr std::size_t kGwlbIpSrc = 0;
inline constexpr std::size_t kGwlbIpDst = 1;
inline constexpr std::size_t kGwlbTcpDst = 2;
inline constexpr std::size_t kGwlbOut = 3;

/// Randomized instance with the given shape (§5 uses 20 services × 8
/// backends).
[[nodiscard]] Gwlb make_gwlb(const GwlbConfig& config);

/// The exact six-entry instance of Fig. 1a: three tenants at
/// 192.0.2.1:80, 192.0.2.2:443 and 192.0.2.3:22 with 2, 3 (weights
/// 1:1:2) and 1 backends.
[[nodiscard]] Gwlb make_paper_example();

// Per-table schemas and per-service row emitters. The pipeline builders
// below are defined in terms of these, and the incremental intent
// compiler (controlplane/compiler) re-emits exactly one service's slice
// through them to patch a compiled program in place — the two paths
// cannot drift because they share the emitters.

[[nodiscard]] core::Schema gwlb_universal_schema();
[[nodiscard]] core::Schema gwlb_goto_service_schema();
[[nodiscard]] core::Schema gwlb_goto_lb_schema();
[[nodiscard]] core::Schema gwlb_metadata_service_schema();
[[nodiscard]] core::Schema gwlb_metadata_lb_schema();
[[nodiscard]] core::Schema gwlb_rematch_service_schema();
[[nodiscard]] core::Schema gwlb_rematch_lb_schema();

/// Universal-table rows of one service: {src_prefix, vip, port, backend}
/// per backend, in backend order. Empty for a removed service.
[[nodiscard]] std::vector<core::Row> gwlb_universal_rows(
    const GwlbService& svc);

/// First-stage entry of one (live) service: {vip, port}.
[[nodiscard]] core::Row gwlb_goto_service_row(const GwlbService& svc);
/// Per-service LB-table rows: {src_prefix, backend} per backend.
[[nodiscard]] std::vector<core::Row> gwlb_goto_lb_rows(
    const GwlbService& svc);

/// First-stage entry tagging service `s`: {vip, port, s}.
[[nodiscard]] core::Row gwlb_metadata_service_row(const GwlbService& svc,
                                                  std::size_t s);
/// Shared-LB rows of service `s`: {s, src_prefix, backend} per backend.
[[nodiscard]] std::vector<core::Row> gwlb_metadata_lb_rows(
    const GwlbService& svc, std::size_t s);

/// First-stage entry of one (live) service: {vip, port}.
[[nodiscard]] core::Row gwlb_rematch_service_row(const GwlbService& svc);
/// Re-matching LB rows: {src_prefix, vip, backend} per backend.
[[nodiscard]] std::vector<core::Row> gwlb_rematch_lb_rows(
    const GwlbService& svc);

/// Fig. 1b: first stage matches (ip_dst, tcp_dst) and jumps to a
/// per-service load-balancer table via goto_table.
[[nodiscard]] core::Pipeline gwlb_goto_pipeline(const Gwlb& gwlb);

/// Fig. 1c: the service stage writes an opaque tenant tag (meta.tenant);
/// a single second stage matches the tag plus ip_src.
[[nodiscard]] core::Pipeline gwlb_metadata_pipeline(const Gwlb& gwlb);

/// Fig. 1d: the second stage simply re-matches ip_dst next to ip_src.
[[nodiscard]] core::Pipeline gwlb_rematch_pipeline(const Gwlb& gwlb);

}  // namespace maton::workloads
