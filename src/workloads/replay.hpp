// Traffic replay harnesses for the data-plane benchmarks: scalar,
// batched, and multi-queue (sharded across util::ThreadPool workers —
// the software analogue of RSS spreading one port's traffic over
// per-core datapaths). Multi-queue replay shares one switch instance
// across queues when the model supports it (configure_queues):
// classifiers are shared read-only and rule counters shard per queue;
// models that decline (OVS's per-packet cache mutation) fall back to
// one private instance per queue.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "dataplane/switch.hpp"
#include "util/quantile.hpp"

namespace maton::util {
class ThreadPool;
}

namespace maton::workloads {

struct ReplayStats {
  std::uint64_t packets = 0;
  std::uint64_t hits = 0;
  /// Wall-clock time of the replay loop only (models loaded outside).
  double seconds = 0.0;
  /// Threaded replay only: true when all queues shared one switch
  /// instance (sharded counters), false on the per-instance fallback.
  bool shared_switch = false;
  /// Per-process_batch-call wall time in microseconds (batch paths only;
  /// replay_threaded folds one recorder per queue via LatencyRecorder::
  /// merge). Empty for scalar replay and when built with MATON_OBS_OFF.
  LatencyRecorder batch_latency_us;

  [[nodiscard]] double packets_per_second() const noexcept {
    return seconds > 0.0 ? static_cast<double>(packets) / seconds : 0.0;
  }
};

/// Builds one switch instance per replay queue.
using ModelFactory = std::function<std::unique_ptr<dp::SwitchModel>()>;

/// How replay_threaded distributes keys over queues.
enum class ShardMode {
  /// Queue q replays the contiguous slice [q·per, (q+1)·per).
  kContiguous,
  /// RSS-style: each key goes to queue hash(key) mod queues, so packets
  /// of one flow always land on the same queue regardless of their
  /// position in the trace (the hardware-NIC spreading model). Shard
  /// sizes follow the flow distribution instead of being equal.
  kFlowHash,
};

/// One packet at a time through SwitchModel::process, `rounds` passes
/// over `keys`.
[[nodiscard]] ReplayStats replay_scalar(dp::SwitchModel& sw,
                                        std::span<const dp::FlowKey> keys,
                                        std::size_t rounds);

/// Batched replay through SwitchModel::process_batch in slices of
/// `batch` keys.
[[nodiscard]] ReplayStats replay_batch(dp::SwitchModel& sw,
                                       std::span<const dp::FlowKey> keys,
                                       std::size_t rounds,
                                       std::size_t batch);

/// Multi-queue replay: `keys` is sharded across `queues` replay queues
/// running concurrently on `pool` (util::ThreadPool::shared() when
/// null) using the batch path. One switch instance is built by
/// `factory` and, when its configure_queues accepts, shared by every
/// queue (process_batch_queue; rule counters shard per queue and merge
/// deterministically on read); models that decline get one private
/// instance per queue, built and loaded up front. The union of the
/// per-queue replays covers every key exactly once per round in either
/// shard mode. Wall-clock covers the parallel region, so
/// packets_per_second reports aggregate multi-queue throughput. Each
/// queue's pass records one "replay_queue" span on its worker thread.
///
/// Pass a dedicated pool when replay runs concurrently with other
/// parallel work (the shared pool rejects concurrent parallel_for
/// submissions — the soak harness replays while the churn thread's FD
/// re-mines fan out on the shared pool).
[[nodiscard]] ReplayStats replay_threaded(
    const ModelFactory& factory, const dp::Program& program,
    std::span<const dp::FlowKey> keys, std::size_t rounds,
    std::size_t queues, std::size_t batch,
    ShardMode mode = ShardMode::kContiguous,
    util::ThreadPool* pool = nullptr);

/// Shared-instance multi-queue replay over a caller-owned switch that
/// has already loaded its program: requires the model to accept
/// configure_queues(queues) (counters re-shard and zero). The caller
/// keeps the instance, so merged rule counters can be read after — the
/// sharded-counter acceptance path. Sharding, pool, and stats semantics
/// match replay_threaded.
[[nodiscard]] ReplayStats replay_threaded_shared(
    dp::SwitchModel& sw, std::span<const dp::FlowKey> keys,
    std::size_t rounds, std::size_t queues, std::size_t batch,
    ShardMode mode = ShardMode::kContiguous,
    util::ThreadPool* pool = nullptr);

}  // namespace maton::workloads
