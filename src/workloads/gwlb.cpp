#include "workloads/gwlb.hpp"

#include <bit>
#include <set>

#include "util/contract.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace maton::workloads {

using core::AttrKind;
using core::Row;
using core::Schema;
using core::Table;
using core::Value;
using core::ValueCodec;

namespace {

/// Packs an IPv4 prefix into the exact-match token the core layer uses.
constexpr Value prefix_token(std::uint32_t addr, unsigned len) {
  return (static_cast<Value>(addr) << 8) | len;
}

Gwlb assemble(std::vector<GwlbService> services) {
  Gwlb gwlb;
  gwlb.services = std::move(services);
  gwlb.universal = Table("gwlb.universal", gwlb_universal_schema());
  std::size_t total_rows = 0;
  for (const GwlbService& svc : gwlb.services) {
    total_rows += svc.src_prefixes.size();
  }
  gwlb.universal.reserve_rows(total_rows);
  for (const GwlbService& svc : gwlb.services) {
    for (Row& row : gwlb_universal_rows(svc)) {
      gwlb.universal.add_row(std::move(row));
    }
  }
  gwlb.model_fds.add(core::AttrSet::single(kGwlbIpDst),
                     core::AttrSet::single(kGwlbTcpDst));
  return gwlb;
}

}  // namespace

Schema gwlb_universal_schema() {
  Schema schema;
  schema.add_match("ip_src", ValueCodec::kIpv4Prefix, 32);
  schema.add_match("ip_dst", ValueCodec::kIpv4, 32);
  schema.add_match("tcp_dst", ValueCodec::kPort, 16);
  schema.add_action("out", ValueCodec::kPort, 16);
  return schema;
}

Schema gwlb_goto_service_schema() {
  Schema schema;
  schema.add_match("ip_dst", ValueCodec::kIpv4, 32);
  schema.add_match("tcp_dst", ValueCodec::kPort, 16);
  return schema;
}

Schema gwlb_goto_lb_schema() {
  Schema schema;
  schema.add_match("ip_src", ValueCodec::kIpv4Prefix, 32);
  schema.add_action("out", ValueCodec::kPort, 16);
  return schema;
}

Schema gwlb_metadata_service_schema() {
  Schema schema;
  schema.add_match("ip_dst", ValueCodec::kIpv4, 32);
  schema.add_match("tcp_dst", ValueCodec::kPort, 16);
  schema.add_action("meta.tenant", ValueCodec::kPlain, 16);
  return schema;
}

Schema gwlb_metadata_lb_schema() {
  Schema schema;
  schema.add_match("meta.tenant", ValueCodec::kPlain, 16);
  schema.add_match("ip_src", ValueCodec::kIpv4Prefix, 32);
  schema.add_action("out", ValueCodec::kPort, 16);
  return schema;
}

Schema gwlb_rematch_service_schema() {
  Schema schema;
  schema.add_match("ip_dst", ValueCodec::kIpv4, 32);
  schema.add_match("tcp_dst", ValueCodec::kPort, 16);
  return schema;
}

Schema gwlb_rematch_lb_schema() {
  Schema schema;
  schema.add_match("ip_src", ValueCodec::kIpv4Prefix, 32);
  schema.add_match("ip_dst", ValueCodec::kIpv4, 32);
  schema.add_action("out", ValueCodec::kPort, 16);
  return schema;
}

std::vector<Row> gwlb_universal_rows(const GwlbService& svc) {
  std::vector<Row> rows;
  rows.reserve(svc.src_prefixes.size());
  for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
    rows.push_back({svc.src_prefixes[b], svc.vip, svc.port,
                    svc.backends[b]});
  }
  return rows;
}

Row gwlb_goto_service_row(const GwlbService& svc) {
  return {svc.vip, svc.port};
}

std::vector<Row> gwlb_goto_lb_rows(const GwlbService& svc) {
  std::vector<Row> rows;
  rows.reserve(svc.src_prefixes.size());
  for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
    rows.push_back({svc.src_prefixes[b], svc.backends[b]});
  }
  return rows;
}

Row gwlb_metadata_service_row(const GwlbService& svc, std::size_t s) {
  return {svc.vip, svc.port, static_cast<Value>(s)};
}

std::vector<Row> gwlb_metadata_lb_rows(const GwlbService& svc,
                                       std::size_t s) {
  std::vector<Row> rows;
  rows.reserve(svc.src_prefixes.size());
  for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
    rows.push_back({static_cast<Value>(s), svc.src_prefixes[b],
                    svc.backends[b]});
  }
  return rows;
}

Row gwlb_rematch_service_row(const GwlbService& svc) {
  return {svc.vip, svc.port};
}

std::vector<Row> gwlb_rematch_lb_rows(const GwlbService& svc) {
  std::vector<Row> rows;
  rows.reserve(svc.src_prefixes.size());
  for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
    rows.push_back({svc.src_prefixes[b], svc.vip, svc.backends[b]});
  }
  return rows;
}

Gwlb make_gwlb(const GwlbConfig& config) {
  expects(config.num_services > 0, "gwlb needs at least one service");
  expects(config.num_backends > 0 &&
              std::has_single_bit(config.num_backends),
          "gwlb backend count must be a power of two");

  Rng rng(config.seed);
  const unsigned split_len =
      static_cast<unsigned>(std::countr_zero(config.num_backends));

  // The randomized 198.18.0.0/16 draw below has only 256*254 = 65024
  // distinct VIPs; rejection sampling degenerates (and then livelocks)
  // as the fleet approaches that. Past half the space, switch to a
  // dense deterministic allocation over 10.0.0.0/8 instead. Small
  // fleets keep the exact historical draw sequence, so every seeded
  // instance used by tests and recorded benchmarks is unchanged.
  const bool dense_vips = config.num_services > 32000;

  std::set<std::uint32_t> used_vips;
  std::vector<GwlbService> services;
  services.reserve(config.num_services);
  std::uint64_t next_vm = 1;
  for (std::size_t s = 0; s < config.num_services; ++s) {
    GwlbService svc;
    if (dense_vips) {
      svc.vip = ipv4(10, 0, 0, 0) + static_cast<std::uint32_t>(s) + 1;
    } else {
      // Unique public VIP in 198.18.0.0/15 (benchmark address space).
      do {
        svc.vip = ipv4(198, 18, static_cast<unsigned>(rng.uniform(0, 255)),
                       static_cast<unsigned>(rng.uniform(1, 254)));
      } while (!used_vips.insert(svc.vip).second);
    }
    svc.port = static_cast<std::uint16_t>(rng.uniform(1, 65535));

    for (std::size_t b = 0; b < config.num_backends; ++b) {
      const std::uint32_t base =
          split_len == 0
              ? 0
              : static_cast<std::uint32_t>(b) << (32 - split_len);
      svc.src_prefixes.push_back(prefix_token(base, split_len));
      svc.backends.push_back(next_vm++);
    }
    services.push_back(std::move(svc));
  }
  return assemble(std::move(services));
}

Gwlb make_paper_example() {
  std::vector<GwlbService> services(3);

  // Tenant 1: web service at 192.0.2.1:80, two equal backends.
  services[0].vip = ipv4(192, 0, 2, 1);
  services[0].port = 80;
  services[0].src_prefixes = {prefix_token(0x00000000, 1),
                              prefix_token(0x80000000, 1)};
  services[0].backends = {1, 2};  // vm1, vm2

  // Tenant 2: HTTPS at 192.0.2.2:443, three backends in proportion 1:1:2.
  services[1].vip = ipv4(192, 0, 2, 2);
  services[1].port = 443;
  services[1].src_prefixes = {prefix_token(0x00000000, 2),
                              prefix_token(0x40000000, 2),
                              prefix_token(0x80000000, 1)};
  services[1].backends = {3, 4, 5};  // vm3, vm4, vm5

  // Tenant 3: SSH at 192.0.2.3:22, a single backend (no split).
  services[2].vip = ipv4(192, 0, 2, 3);
  services[2].port = 22;
  services[2].src_prefixes = {prefix_token(0x00000000, 0)};
  services[2].backends = {6};  // vm6

  return assemble(std::move(services));
}

core::Pipeline gwlb_goto_pipeline(const Gwlb& gwlb) {
  core::Pipeline pipeline;

  Table t0("gwlb.services", gwlb_goto_service_schema());
  const std::size_t first = pipeline.add_stage({std::move(t0), {}, {}});

  // Removed services (no backends) keep their (empty, unreachable) LB
  // table so stage indices stay stable across control-plane updates, but
  // get no service entry.
  std::vector<std::size_t> targets;
  for (std::size_t s = 0; s < gwlb.services.size(); ++s) {
    const GwlbService& svc = gwlb.services[s];
    Table lb("gwlb.lb" + std::to_string(s), gwlb_goto_lb_schema());
    for (Row& row : gwlb_goto_lb_rows(svc)) lb.add_row(std::move(row));
    const std::size_t stage = pipeline.add_stage({std::move(lb), {}, {}});
    if (!svc.src_prefixes.empty()) {
      pipeline.stage(first).table.add_row(gwlb_goto_service_row(svc));
      targets.push_back(stage);
    }
  }
  pipeline.stage(first).goto_targets = std::move(targets);
  pipeline.set_entry(first);
  return pipeline;
}

core::Pipeline gwlb_metadata_pipeline(const Gwlb& gwlb) {
  core::Pipeline pipeline;

  Table t0("gwlb.services", gwlb_metadata_service_schema());
  for (std::size_t s = 0; s < gwlb.services.size(); ++s) {
    if (gwlb.services[s].src_prefixes.empty()) continue;  // removed
    t0.add_row(gwlb_metadata_service_row(gwlb.services[s], s));
  }

  Table t1("gwlb.lb", gwlb_metadata_lb_schema());
  for (std::size_t s = 0; s < gwlb.services.size(); ++s) {
    for (Row& row : gwlb_metadata_lb_rows(gwlb.services[s], s)) {
      t1.add_row(std::move(row));
    }
  }

  const std::size_t first = pipeline.add_stage({std::move(t0), {}, {}});
  const std::size_t second = pipeline.add_stage({std::move(t1), {}, {}});
  pipeline.stage(first).next = second;
  pipeline.set_entry(first);
  return pipeline;
}

core::Pipeline gwlb_rematch_pipeline(const Gwlb& gwlb) {
  core::Pipeline pipeline;

  Table t0("gwlb.services", gwlb_rematch_service_schema());
  for (const GwlbService& svc : gwlb.services) {
    if (svc.src_prefixes.empty()) continue;  // removed service
    t0.add_row(gwlb_rematch_service_row(svc));
  }

  Table t1("gwlb.lb", gwlb_rematch_lb_schema());
  for (const GwlbService& svc : gwlb.services) {
    for (Row& row : gwlb_rematch_lb_rows(svc)) t1.add_row(std::move(row));
  }

  const std::size_t first = pipeline.add_stage({std::move(t0), {}, {}});
  const std::size_t second = pipeline.add_stage({std::move(t1), {}, {}});
  pipeline.stage(first).next = second;
  pipeline.set_entry(first);
  return pipeline;
}

}  // namespace maton::workloads
