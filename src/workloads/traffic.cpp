#include "workloads/traffic.hpp"

#include "util/contract.hpp"
#include "util/rng.hpp"

namespace maton::workloads {

namespace {

dp::FrameSpec random_frame_spec(const Gwlb& gwlb, Rng& rng,
                                double hit_fraction) {
  dp::FrameSpec spec;
  spec.ip_src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
  if (rng.chance(hit_fraction)) {
    const GwlbService& svc = gwlb.services[rng.index(gwlb.services.size())];
    spec.ip_dst = svc.vip;
    spec.tcp_dst = svc.port;
  } else {
    spec.ip_dst = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    spec.tcp_dst = static_cast<std::uint16_t>(rng.uniform(0, 65535));
  }
  spec.tcp_src = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
  return spec;
}

}  // namespace

std::vector<dp::RawPacket> make_gwlb_traffic(const Gwlb& gwlb,
                                             const TrafficConfig& config) {
  expects(!gwlb.services.empty(), "traffic needs at least one service");
  Rng rng(config.seed);
  std::vector<dp::RawPacket> packets;
  packets.reserve(config.num_packets);
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    packets.push_back(
        dp::build_frame(random_frame_spec(gwlb, rng, config.hit_fraction)));
  }
  return packets;
}

std::vector<dp::FlowKey> make_gwlb_keys(const Gwlb& gwlb,
                                        const TrafficConfig& config) {
  std::vector<dp::FlowKey> keys;
  keys.reserve(config.num_packets);
  for (const dp::RawPacket& packet : make_gwlb_traffic(gwlb, config)) {
    const auto key = dp::parse(packet);
    ensures(key.has_value(), "generated frame failed to parse");
    keys.push_back(*key);
  }
  return keys;
}

}  // namespace maton::workloads
