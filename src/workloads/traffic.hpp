// Traffic generation for the data-plane benchmarks: 64-byte TCP frames
// aimed at the gwlb services (the §5 measurement workload).
#pragma once

#include <vector>

#include "dataplane/packet.hpp"
#include "workloads/gwlb.hpp"

namespace maton::workloads {

struct TrafficConfig {
  std::size_t num_packets = 4096;
  /// Fraction of packets addressed to a live service (the rest miss).
  double hit_fraction = 1.0;
  std::uint64_t seed = 8;
};

/// Random 64-byte frames: uniformly chosen service VIP:port, uniformly
/// random source address (exercising all backend prefixes).
[[nodiscard]] std::vector<dp::RawPacket> make_gwlb_traffic(
    const Gwlb& gwlb, const TrafficConfig& config);

/// Pre-parsed flow keys for the same distribution (skips per-packet
/// parsing when a benchmark wants to isolate classification cost).
[[nodiscard]] std::vector<dp::FlowKey> make_gwlb_keys(
    const Gwlb& gwlb, const TrafficConfig& config);

}  // namespace maton::workloads
