// The VLAN table of Fig. 3 (§4): the canonical example of an
// action → match dependency (out → vlan) whose naive decomposition
// produces sub-tables that violate 1NF and must therefore be rejected.
#pragma once

#include "core/fd.hpp"
#include "core/table.hpp"

namespace maton::workloads {

/// Column order of the Fig. 3 table.
inline constexpr std::size_t kVlanInPort = 0;
inline constexpr std::size_t kVlanVlan = 1;
inline constexpr std::size_t kVlanOut = 2;

/// Fig. 3a verbatim: rows (in_port, vlan | out) =
/// (1,1|1), (1,2|2), (2,1|1), (3,1|3). The dependency out → vlan holds.
[[nodiscard]] core::Table make_vlan_example();

/// The out → vlan dependency of Fig. 3.
[[nodiscard]] core::Fd vlan_action_to_match_fd();

}  // namespace maton::workloads
