// The L3 forwarding pipeline of Fig. 2 (§3, "Third normal form").
//
// A classic single-table IP router: check eth_type, longest-prefix match
// on ip_dst, then decrement TTL, rewrite source/destination MACs and
// forward. Redundancy structure:
//   * eth_type and mod_ttl are constant → factor out (Cartesian product);
//   * mod_dmac → (mod_ttl, mod_smac, out): several prefixes share a
//     next-hop (violates 2NF; decomposition reproduces the OpenFlow
//     group-table / OS neighbor-table shape);
//   * out → mod_smac: groups on the same port share the source MAC
//     (transitive dependency, violates 3NF).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fd.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"

namespace maton::workloads {

struct L3Config {
  std::size_t num_prefixes = 32;
  /// Distinct next-hops (each with its own destination MAC).
  std::size_t num_nexthops = 8;
  /// Physical ports; each next-hop hangs off one port, each port has one
  /// source MAC. Must be <= num_nexthops.
  std::size_t num_ports = 4;
  std::uint64_t seed = 2;
};

struct L3Fwd {
  /// Fig. 2a: (eth_type, ip_dst | mod_ttl, mod_smac, mod_dmac, out).
  core::Table universal;
  /// Model dependencies: mod_dmac → (mod_ttl, mod_smac, out) and
  /// out → mod_smac (plus ip_dst → everything).
  core::FdSet model_fds;
};

/// Column order of the universal L3 table.
inline constexpr std::size_t kL3EthType = 0;
inline constexpr std::size_t kL3IpDst = 1;
inline constexpr std::size_t kL3ModTtl = 2;
inline constexpr std::size_t kL3ModSmac = 3;
inline constexpr std::size_t kL3ModDmac = 4;
inline constexpr std::size_t kL3Out = 5;

[[nodiscard]] L3Fwd make_l3fwd(const L3Config& config);

/// The exact Fig. 2a flavour: four prefixes P1–P4, next-hops D1–D3 with
/// P1, P4 → D1; D1, D2 on port 1 (same source MAC), D3 on port 2.
[[nodiscard]] L3Fwd make_paper_l3_example();

}  // namespace maton::workloads
