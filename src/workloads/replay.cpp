#include "workloads/replay.hpp"

#include <atomic>
#include <chrono>
#include <vector>

#include "dataplane/classifier_detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace maton::workloads {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void count_replayed(const char* mode, std::uint64_t packets) {
  if constexpr (obs::kEnabled) {
    obs::MetricRegistry::global()
        .counter("maton_replay_packets_total", {{"mode", mode}})
        .add(packets);
  }
}

/// Drives `rounds` passes of `keys` through `process` (any callable
/// with process_batch's signature) in `batch`-sized slices.
template <typename ProcessBatch>
[[nodiscard]] std::uint64_t run_batches(ProcessBatch&& process,
                                        std::span<const dp::FlowKey> keys,
                                        std::size_t rounds,
                                        std::size_t batch,
                                        std::vector<dp::ExecResult>& results,
                                        LatencyRecorder& latency_us) {
  std::uint64_t hits = 0;
  results.resize(std::min(batch, keys.size()));
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t base = 0; base < keys.size(); base += batch) {
      const std::size_t n = std::min(batch, keys.size() - base);
      if constexpr (obs::kEnabled) {
        const auto call_start = Clock::now();
        process(keys.subspan(base, n), std::span(results.data(), n));
        latency_us.add(seconds_since(call_start) * 1e6);
      } else {
        process(keys.subspan(base, n), std::span(results.data(), n));
      }
      for (std::size_t i = 0; i < n; ++i) {
        hits += results[i].hit ? 1 : 0;
      }
    }
  }
  return hits;
}

/// The threaded replay core shared by the shared-instance and
/// per-instance modes: shards keys, fans queues out on the pool, and
/// merges stats. `queue_process(q)` returns the process_batch-shaped
/// callable that queue `q` drives.
template <typename QueueProcess>
[[nodiscard]] ReplayStats run_threaded(std::span<const dp::FlowKey> keys,
                                       std::size_t rounds,
                                       std::size_t queues,
                                       std::size_t batch, ShardMode mode,
                                       util::ThreadPool* pool,
                                       QueueProcess&& queue_process) {
  const std::size_t per = (keys.size() + queues - 1) / queues;

  // Flow-hash sharding materializes per-queue key vectors up front (the
  // software analogue of the NIC writing each flow's packets into one RX
  // ring); the hash covers every parsed field, so all packets of a flow
  // — and only they — share a queue. Done outside the timed region, as
  // the NIC does it for free in hardware.
  std::vector<std::vector<dp::FlowKey>> shards;
  if (mode == ShardMode::kFlowHash) {
    shards.resize(queues);
    for (auto& shard : shards) shard.reserve(per);
    for (const dp::FlowKey& key : keys) {
      shards[dp::detail::hash_words(key.values) % queues].push_back(key);
    }
  }

  std::atomic<std::uint64_t> hits{0};
  std::vector<std::vector<dp::ExecResult>> results(queues);
  std::vector<LatencyRecorder> latencies(queues);
  const auto start = Clock::now();
  util::ThreadPool& workers =
      pool != nullptr ? *pool : util::ThreadPool::shared();
  workers.parallel_for(
      queues, queues, [&](std::size_t q, std::size_t /*worker*/) {
        // One span per queue pass, recorded into the worker thread's own
        // trace ring — the merged export shows the per-queue lanes.
        const obs::TraceSpan span("replay_queue");
        std::span<const dp::FlowKey> mine_keys;
        if (mode == ShardMode::kFlowHash) {
          mine_keys = shards[q];
        } else {
          const std::size_t lo = std::min(q * per, keys.size());
          const std::size_t hi = std::min(lo + per, keys.size());
          mine_keys = keys.subspan(lo, hi - lo);
        }
        if (mine_keys.empty()) return;
        const std::uint64_t mine =
            run_batches(queue_process(q), mine_keys, rounds, batch,
                        results[q], latencies[q]);
        hits.fetch_add(mine, std::memory_order_relaxed);
      });

  ReplayStats stats;
  stats.seconds = seconds_since(start);
  stats.packets = static_cast<std::uint64_t>(keys.size()) * rounds;
  stats.hits = hits.load(std::memory_order_relaxed);
  for (const LatencyRecorder& queue_latency : latencies) {
    stats.batch_latency_us.merge(queue_latency);
  }
  count_replayed("threaded", stats.packets);
  return stats;
}

}  // namespace

ReplayStats replay_scalar(dp::SwitchModel& sw,
                          std::span<const dp::FlowKey> keys,
                          std::size_t rounds) {
  ReplayStats stats;
  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const dp::FlowKey& key : keys) {
      stats.hits += sw.process(key).hit ? 1 : 0;
    }
  }
  stats.seconds = seconds_since(start);
  stats.packets = static_cast<std::uint64_t>(keys.size()) * rounds;
  count_replayed("scalar", stats.packets);
  return stats;
}

ReplayStats replay_batch(dp::SwitchModel& sw,
                         std::span<const dp::FlowKey> keys,
                         std::size_t rounds, std::size_t batch) {
  expects(batch > 0, "replay batch size must be positive");
  ReplayStats stats;
  std::vector<dp::ExecResult> results;
  const auto start = Clock::now();
  stats.hits = run_batches(
      [&sw](std::span<const dp::FlowKey> chunk,
            std::span<dp::ExecResult> out) { sw.process_batch(chunk, out); },
      keys, rounds, batch, results, stats.batch_latency_us);
  stats.seconds = seconds_since(start);
  stats.packets = static_cast<std::uint64_t>(keys.size()) * rounds;
  count_replayed("batch", stats.packets);
  return stats;
}

ReplayStats replay_threaded_shared(dp::SwitchModel& sw,
                                   std::span<const dp::FlowKey> keys,
                                   std::size_t rounds, std::size_t queues,
                                   std::size_t batch, ShardMode mode,
                                   util::ThreadPool* pool) {
  expects(queues > 0, "replay needs at least one queue");
  expects(batch > 0, "replay batch size must be positive");
  const bool configured = sw.configure_queues(queues);
  expects(configured, "model declined shared multi-queue replay");
  ReplayStats stats = run_threaded(
      keys, rounds, queues, batch, mode, pool, [&sw](std::size_t q) {
        return [&sw, q](std::span<const dp::FlowKey> chunk,
                        std::span<dp::ExecResult> out) {
          sw.process_batch_queue(q, chunk, out);
        };
      });
  stats.shared_switch = true;
  return stats;
}

ReplayStats replay_threaded(const ModelFactory& factory,
                            const dp::Program& program,
                            std::span<const dp::FlowKey> keys,
                            std::size_t rounds, std::size_t queues,
                            std::size_t batch, ShardMode mode,
                            util::ThreadPool* pool) {
  expects(queues > 0, "replay needs at least one queue");
  expects(batch > 0, "replay batch size must be positive");

  // Shared-instance mode first: one switch, shared classifiers, rule
  // counters sharded per queue. Models that cannot share (OVS mutates
  // its megaflow cache per packet) decline and get the per-instance
  // fallback below. Build and load happen outside the timed region
  // either way.
  std::unique_ptr<dp::SwitchModel> first = factory();
  {
    const Status loaded = first->load(program);
    expects(loaded.is_ok(), "replay queue failed to load program");
  }
  if (first->configure_queues(queues)) {
    dp::SwitchModel& sw = *first;
    ReplayStats stats = run_threaded(
        keys, rounds, queues, batch, mode, pool, [&sw](std::size_t q) {
          return [&sw, q](std::span<const dp::FlowKey> chunk,
                          std::span<dp::ExecResult> out) {
            sw.process_batch_queue(q, chunk, out);
          };
        });
    stats.shared_switch = true;
    return stats;
  }

  std::vector<std::unique_ptr<dp::SwitchModel>> switches;
  switches.reserve(queues);
  switches.push_back(std::move(first));
  for (std::size_t q = 1; q < queues; ++q) {
    switches.push_back(factory());
    const Status loaded = switches.back()->load(program);
    expects(loaded.is_ok(), "replay queue failed to load program");
  }
  return run_threaded(
      keys, rounds, queues, batch, mode, pool, [&switches](std::size_t q) {
        dp::SwitchModel& sw = *switches[q];
        return [&sw](std::span<const dp::FlowKey> chunk,
                     std::span<dp::ExecResult> out) {
          sw.process_batch(chunk, out);
        };
      });
}

}  // namespace maton::workloads
