#include "netkat/table_codec.hpp"

#include <set>
#include <vector>

#include "util/contract.hpp"
#include "util/rng.hpp"

namespace maton::netkat {

using core::AttrSet;
using core::Schema;
using core::Table;

namespace {

/// The entry policy of one row: match tests then action modifications.
PolicyPtr row_policy(const Table& table, std::size_t row) {
  const Schema& schema = table.schema();
  std::vector<PolicyPtr> parts;
  for (std::size_t c : schema.match_set()) {
    parts.push_back(test(schema.at(c).name, table.at(row, c)));
  }
  for (std::size_t c : schema.action_set()) {
    parts.push_back(mod(schema.at(c).name, table.at(row, c)));
  }
  return seq_all(parts);
}

}  // namespace

PolicyPtr from_table(const Table& table) {
  std::vector<PolicyPtr> entries;
  entries.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    entries.push_back(row_policy(table, r));
  }
  return par_all(entries);
}

PolicyPtr from_pipeline(const core::Pipeline& pipeline) {
  if (pipeline.num_stages() == 0) return drop();
  expects(pipeline.validate().is_ok(),
          "from_pipeline requires a validated (acyclic) pipeline");

  std::vector<PolicyPtr> memo(pipeline.num_stages());
  auto build = [&](auto&& self, std::size_t i) -> PolicyPtr {
    if (memo[i] != nullptr) return memo[i];
    const core::Stage& st = pipeline.stage(i);
    std::vector<PolicyPtr> entries;
    entries.reserve(st.table.num_rows());
    for (std::size_t r = 0; r < st.table.num_rows(); ++r) {
      PolicyPtr entry = row_policy(st.table, r);
      if (st.uses_goto()) {
        entry = seq(std::move(entry), self(self, st.goto_targets[r]));
      }
      entries.push_back(std::move(entry));
    }
    PolicyPtr policy = par_all(entries);
    if (!st.uses_goto() && st.next.has_value()) {
      policy = seq(std::move(policy), self(self, *st.next));
    }
    memo[i] = std::move(policy);
    return memo[i];
  };
  return build(build, pipeline.entry());
}

namespace {

/// Removes pipeline-internal metadata fields before comparing packets.
Packet strip_metadata(const Packet& packet) {
  Packet out;
  for (const auto& [name, value] : packet) {
    if (!core::is_metadata_name(name)) out.emplace(name, value);
  }
  return out;
}

PacketSet strip_metadata(const PacketSet& set) {
  PacketSet out;
  for (const Packet& p : set) out.insert(strip_metadata(p));
  return out;
}

std::string describe(const Packet& packet) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : packet) {
    if (!first) out += ", ";
    out += name + "=" + std::to_string(value);
    first = false;
  }
  return out + "}";
}

}  // namespace

VerifyReport verify_against_netkat(const Table& table,
                                   const core::Pipeline& pipeline,
                                   const VerifyOptions& opts) {
  VerifyReport report;
  const PolicyPtr table_policy = from_table(table);
  const PolicyPtr pipeline_policy = from_pipeline(pipeline);

  // Probe set: each entry's own packet plus randomized active-domain
  // probes (with one out-of-domain value per field).
  std::vector<Packet> probes;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    probes.push_back(core::packet_for_row(table, r));
  }
  const Schema& schema = table.schema();
  const std::vector<std::size_t> match_cols = [&] {
    const AttrSet m = schema.match_set();
    return std::vector<std::size_t>(m.begin(), m.end());
  }();
  std::vector<std::vector<Value>> domain(match_cols.size());
  for (std::size_t k = 0; k < match_cols.size(); ++k) {
    std::set<Value> seen;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      seen.insert(table.at(r, match_cols[k]));
    }
    Value fresh = 0;
    while (seen.contains(fresh)) ++fresh;
    domain[k].assign(seen.begin(), seen.end());
    domain[k].push_back(fresh);
  }
  Rng rng(opts.seed);
  for (std::size_t i = 0; i < opts.random_probes; ++i) {
    Packet p;
    for (std::size_t k = 0; k < match_cols.size(); ++k) {
      p[schema.at(match_cols[k]).name] = domain[k][rng.index(domain[k].size())];
    }
    probes.push_back(std::move(p));
  }

  for (const Packet& probe : probes) {
    ++report.packets_checked;
    const PacketSet nk_table = strip_metadata(eval(table_policy, probe));
    const PacketSet nk_pipe = strip_metadata(eval(pipeline_policy, probe));
    if (nk_table != nk_pipe) {
      report.consistent = false;
      report.counterexample = "NetKAT semantics diverge on " + describe(probe);
      return report;
    }
    // Cross-check the core evaluator against the denotational semantics.
    const core::EvalResult core_result = pipeline.evaluate(probe);
    if (core_result.hit != !nk_pipe.empty()) {
      report.consistent = false;
      report.counterexample =
          "core evaluator hit/miss disagrees with NetKAT on " +
          describe(probe);
      return report;
    }
    if (core_result.hit) {
      ensures(nk_pipe.size() == 1,
              "1NF pipelines must be deterministic under NetKAT");
      const Packet& nk_out = *nk_pipe.begin();
      for (const auto& [name, value] : core_result.actions) {
        const auto it = nk_out.find(name);
        if (it == nk_out.end() || it->second != value) {
          report.consistent = false;
          report.counterexample = "action " + name +
                                  " disagrees with NetKAT on " +
                                  describe(probe);
          return report;
        }
      }
    }
  }
  return report;
}

}  // namespace maton::netkat
