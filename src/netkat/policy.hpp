// A local-policy fragment of NetKAT (Anderson et al.), the formalism §3
// of the paper adopts: predicates filter packets, modifications update
// header fields, and policies compose sequentially (a; b) or in parallel
// (a + b). We restrict to per-switch policies — no dup, no Kleene star —
// which is exactly the fragment match-action tables need (Eq. 1).
//
// Policies are immutable trees shared by shared_ptr; construction
// functions are the only way to build them.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"  // for core::Value / PacketState

namespace maton::netkat {

using Value = core::Value;

class Policy;
using PolicyPtr = std::shared_ptr<const Policy>;

/// Immutable NetKAT policy node.
class Policy {
 public:
  enum class Kind {
    kDrop,  // 0   — rejects every packet
    kId,    // 1   — passes every packet unchanged
    kTest,  // f = v
    kMod,   // f ← v
    kSeq,   // a ; b
    kPar,   // a + b
  };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& field() const noexcept { return field_; }
  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] const PolicyPtr& left() const noexcept { return left_; }
  [[nodiscard]] const PolicyPtr& right() const noexcept { return right_; }

  // Construction goes through the free functions below.
  struct Internal {};
  Policy(Internal, Kind kind, std::string field, Value value, PolicyPtr left,
         PolicyPtr right)
      : kind_(kind),
        field_(std::move(field)),
        value_(value),
        left_(std::move(left)),
        right_(std::move(right)) {}

 private:
  Kind kind_;
  std::string field_;
  Value value_ = 0;
  PolicyPtr left_;
  PolicyPtr right_;
};

/// The `0` policy (drop).
[[nodiscard]] PolicyPtr drop();
/// The `1` policy (identity / skip).
[[nodiscard]] PolicyPtr id();
/// The predicate f = v.
[[nodiscard]] PolicyPtr test(std::string field, Value v);
/// The modification f ← v.
[[nodiscard]] PolicyPtr mod(std::string field, Value v);
/// Sequential composition a ; b.
[[nodiscard]] PolicyPtr seq(PolicyPtr a, PolicyPtr b);
/// Parallel composition a + b.
[[nodiscard]] PolicyPtr par(PolicyPtr a, PolicyPtr b);

/// Folds a list into a sequence; empty list is `id`.
[[nodiscard]] PolicyPtr seq_all(std::span<const PolicyPtr> policies);
/// Folds a list into a parallel sum; empty list is `drop`.
[[nodiscard]] PolicyPtr par_all(std::span<const PolicyPtr> policies);

/// "(ip_dst = 3; out <- 1) + ..." rendering.
[[nodiscard]] std::string to_string(const PolicyPtr& policy);

/// Node count of the policy tree (size measure used in tests/benches).
[[nodiscard]] std::size_t policy_size(const PolicyPtr& policy);

}  // namespace maton::netkat
