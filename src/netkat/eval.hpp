// Packet-set denotational semantics of the NetKAT fragment:
//   ⟦p⟧ : Packet → P(Packet)
// drop ↦ ∅; id ↦ {pkt}; (f = v) ↦ {pkt} if pkt.f = v else ∅ (an absent
// field fails the test); (f ← v) ↦ {pkt[f := v]}; (a; b) ↦ ⋃ ⟦b⟧ over
// ⟦a⟧; (a + b) ↦ ⟦a⟧ ∪ ⟦b⟧.
#pragma once

#include <cstdint>
#include <set>
#include <span>

#include "core/probe_oracle.hpp"
#include "netkat/policy.hpp"

namespace maton::netkat {

/// A packet is a record of field → value bindings (shared with the core
/// pipeline layer).
using Packet = core::PacketState;
using PacketSet = std::set<Packet>;

/// Evaluates `policy` on one input packet.
[[nodiscard]] PacketSet eval(const PolicyPtr& policy, const Packet& packet);

/// Semantic equivalence over a finite probe universe: ⟦a⟧(pkt) = ⟦b⟧(pkt)
/// for every probe packet.
[[nodiscard]] bool equivalent_on(const PolicyPtr& a, const PolicyPtr& b,
                                 std::span<const Packet> probes);

/// Same check over `probes` packets drawn from the shared probe oracle:
/// sparse packets over the two policies' field universe, values from the
/// tested/written alphabet plus one fresh value.
[[nodiscard]] bool equivalent_on(const PolicyPtr& a, const PolicyPtr& b,
                                 std::size_t probes,
                                 std::uint64_t seed = core::kProbeSeed);

}  // namespace maton::netkat
