#include "netkat/eval.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/contract.hpp"

namespace maton::netkat {

PacketSet eval(const PolicyPtr& policy, const Packet& packet) {
  expects(policy != nullptr, "eval of null policy");
  switch (policy->kind()) {
    case Policy::Kind::kDrop:
      return {};
    case Policy::Kind::kId:
      return {packet};
    case Policy::Kind::kTest: {
      const auto it = packet.find(policy->field());
      if (it != packet.end() && it->second == policy->value()) {
        return {packet};
      }
      return {};
    }
    case Policy::Kind::kMod: {
      Packet out = packet;
      out[policy->field()] = policy->value();
      return {std::move(out)};
    }
    case Policy::Kind::kSeq: {
      PacketSet result;
      for (const Packet& mid : eval(policy->left(), packet)) {
        PacketSet rhs = eval(policy->right(), mid);
        result.merge(rhs);
      }
      return result;
    }
    case Policy::Kind::kPar: {
      PacketSet result = eval(policy->left(), packet);
      PacketSet rhs = eval(policy->right(), packet);
      result.merge(rhs);
      return result;
    }
  }
  return {};
}

bool equivalent_on(const PolicyPtr& a, const PolicyPtr& b,
                   std::span<const Packet> probes) {
  for (const Packet& p : probes) {
    if (eval(a, p) != eval(b, p)) return false;
  }
  return true;
}

namespace {

void collect_universe(const PolicyPtr& policy,
                      std::set<std::string>& fields, Value& max_value) {
  if (policy == nullptr) return;
  switch (policy->kind()) {
    case Policy::Kind::kDrop:
    case Policy::Kind::kId:
      return;
    case Policy::Kind::kTest:
    case Policy::Kind::kMod:
      fields.insert(std::string(policy->field()));
      max_value = std::max(max_value, policy->value());
      return;
    case Policy::Kind::kSeq:
    case Policy::Kind::kPar:
      collect_universe(policy->left(), fields, max_value);
      collect_universe(policy->right(), fields, max_value);
      return;
  }
}

}  // namespace

bool equivalent_on(const PolicyPtr& a, const PolicyPtr& b,
                   std::size_t probes, std::uint64_t seed) {
  std::set<std::string> field_set;
  Value max_value = 0;
  collect_universe(a, field_set, max_value);
  collect_universe(b, field_set, max_value);
  const std::vector<std::string> fields(field_set.begin(), field_set.end());
  // max_value + 1 puts one fresh value outside both alphabets in reach.
  return equivalent_on(
      a, b, core::draw_field_probes(fields, probes, max_value + 1, 0.85,
                                    seed));
}

}  // namespace maton::netkat
