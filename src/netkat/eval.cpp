#include "netkat/eval.hpp"

#include "util/contract.hpp"

namespace maton::netkat {

PacketSet eval(const PolicyPtr& policy, const Packet& packet) {
  expects(policy != nullptr, "eval of null policy");
  switch (policy->kind()) {
    case Policy::Kind::kDrop:
      return {};
    case Policy::Kind::kId:
      return {packet};
    case Policy::Kind::kTest: {
      const auto it = packet.find(policy->field());
      if (it != packet.end() && it->second == policy->value()) {
        return {packet};
      }
      return {};
    }
    case Policy::Kind::kMod: {
      Packet out = packet;
      out[policy->field()] = policy->value();
      return {std::move(out)};
    }
    case Policy::Kind::kSeq: {
      PacketSet result;
      for (const Packet& mid : eval(policy->left(), packet)) {
        PacketSet rhs = eval(policy->right(), mid);
        result.merge(rhs);
      }
      return result;
    }
    case Policy::Kind::kPar: {
      PacketSet result = eval(policy->left(), packet);
      PacketSet rhs = eval(policy->right(), packet);
      result.merge(rhs);
      return result;
    }
  }
  return {};
}

bool equivalent_on(const PolicyPtr& a, const PolicyPtr& b,
                   std::span<const Packet> probes) {
  for (const Packet& p : probes) {
    if (eval(a, p) != eval(b, p)) return false;
  }
  return true;
}

}  // namespace maton::netkat
