#include "netkat/axioms.hpp"

#include "util/contract.hpp"

namespace maton::netkat::axioms {

Law ka_plus_comm(PolicyPtr a, PolicyPtr b) {
  return {par(a, b), par(b, a)};
}

Law ka_plus_assoc(PolicyPtr a, PolicyPtr b, PolicyPtr c) {
  return {par(a, par(b, c)), par(par(a, b), c)};
}

Law ka_plus_idem(PolicyPtr a) { return {par(a, a), a}; }

Law ka_plus_zero(PolicyPtr a) { return {par(a, drop()), a}; }

Law ka_seq_assoc(PolicyPtr a, PolicyPtr b, PolicyPtr c) {
  return {seq(a, seq(b, c)), seq(seq(a, b), c)};
}

Law ka_one_seq(PolicyPtr a) { return {seq(id(), a), a}; }

Law ka_seq_zero(PolicyPtr a) { return {seq(drop(), a), drop()}; }

Law ka_seq_dist_l(PolicyPtr a, PolicyPtr b, PolicyPtr c) {
  return {seq(a, par(b, c)), par(seq(a, b), seq(a, c))};
}

Law ka_seq_dist_r(PolicyPtr a, PolicyPtr b, PolicyPtr c) {
  return {seq(par(a, b), c), par(seq(a, c), seq(b, c))};
}

Law ba_seq_comm(const std::string& f, Value v, const std::string& g,
                Value w) {
  return {seq(test(f, v), test(g, w)), seq(test(g, w), test(f, v))};
}

Law ba_seq_idem(const std::string& f, Value v) {
  return {seq(test(f, v), test(f, v)), test(f, v)};
}

Law ba_contra(const std::string& f, Value v, Value w) {
  expects(v != w, "BA-Contra requires two distinct values");
  return {seq(test(f, v), test(f, w)), drop()};
}

Law pa_mod_filter(const std::string& f, Value v) {
  return {seq(mod(f, v), test(f, v)), mod(f, v)};
}

Law pa_filter_mod(const std::string& f, Value v) {
  return {seq(test(f, v), mod(f, v)), test(f, v)};
}

Law pa_mod_mod(const std::string& f, Value v, Value w) {
  return {seq(mod(f, v), mod(f, w)), mod(f, w)};
}

Law pa_mod_comm(const std::string& f, Value v, const std::string& g,
                Value w) {
  expects(f != g, "PA-Mod-Comm requires distinct fields");
  return {seq(mod(f, v), test(g, w)), seq(test(g, w), mod(f, v))};
}

bool holds(const Law& law, std::span<const Packet> probes) {
  return equivalent_on(law.first, law.second, probes);
}

}  // namespace maton::netkat::axioms
