// Semantic checkers for the NetKAT axioms used in the proof of Theorem 1
// (§4 of the paper): each function returns the two policies that the
// axiom equates, so tests and the Theorem-1 replay can verify the
// equality under the packet-set semantics.
//
// Axiom names follow the paper/NetKAT report:
//   KA-Plus-Comm    a + b        = b + a
//   KA-Plus-Assoc   a + (b + c)  = (a + b) + c
//   KA-Plus-Idem    a + a        = a
//   KA-Plus-Zero    a + 0        = a
//   KA-Seq-Assoc    a; (b; c)    = (a; b); c
//   KA-One-Seq      1; a         = a
//   KA-Seq-Zero     0; a         = 0
//   KA-Seq-Dist-L   a; (b + c)   = a; b + a; c
//   KA-Seq-Dist-R   (a + b); c   = a; c + b; c
//   BA-Seq-Comm     (f=v); (g=w) = (g=w); (f=v)        (tests commute)
//   BA-Seq-Idem     (f=v); (f=v) = (f=v)
//   BA-Contra       (f=v); (f=w) = 0   for v ≠ w
//   PA-Mod-Filter   (f←v); (f=v) = (f←v)
//   PA-Filter-Mod   (f=v); (f←v) = (f=v)
//   PA-Mod-Mod      (f←v); (f←w) = (f←w)
//   PA-Mod-Comm     (f←v); (g=w) = (g=w); (f←v)  for f ≠ g
#pragma once

#include <utility>

#include "netkat/eval.hpp"

namespace maton::netkat::axioms {

/// A pair of policies an axiom asserts equal.
using Law = std::pair<PolicyPtr, PolicyPtr>;

[[nodiscard]] Law ka_plus_comm(PolicyPtr a, PolicyPtr b);
[[nodiscard]] Law ka_plus_assoc(PolicyPtr a, PolicyPtr b, PolicyPtr c);
[[nodiscard]] Law ka_plus_idem(PolicyPtr a);
[[nodiscard]] Law ka_plus_zero(PolicyPtr a);
[[nodiscard]] Law ka_seq_assoc(PolicyPtr a, PolicyPtr b, PolicyPtr c);
[[nodiscard]] Law ka_one_seq(PolicyPtr a);
[[nodiscard]] Law ka_seq_zero(PolicyPtr a);
[[nodiscard]] Law ka_seq_dist_l(PolicyPtr a, PolicyPtr b, PolicyPtr c);
[[nodiscard]] Law ka_seq_dist_r(PolicyPtr a, PolicyPtr b, PolicyPtr c);

[[nodiscard]] Law ba_seq_comm(const std::string& f, Value v,
                              const std::string& g, Value w);
[[nodiscard]] Law ba_seq_idem(const std::string& f, Value v);
[[nodiscard]] Law ba_contra(const std::string& f, Value v, Value w);

[[nodiscard]] Law pa_mod_filter(const std::string& f, Value v);
[[nodiscard]] Law pa_filter_mod(const std::string& f, Value v);
[[nodiscard]] Law pa_mod_mod(const std::string& f, Value v, Value w);
[[nodiscard]] Law pa_mod_comm(const std::string& f, Value v,
                              const std::string& g, Value w);

/// Checks one law over a probe universe.
[[nodiscard]] bool holds(const Law& law, std::span<const Packet> probes);

}  // namespace maton::netkat::axioms
