#include "netkat/policy.hpp"

#include "util/contract.hpp"

namespace maton::netkat {

namespace {

PolicyPtr make(Policy::Kind kind, std::string field = {}, Value value = 0,
               PolicyPtr left = nullptr, PolicyPtr right = nullptr) {
  return std::make_shared<const Policy>(Policy::Internal{}, kind,
                                        std::move(field), value,
                                        std::move(left), std::move(right));
}

}  // namespace

PolicyPtr drop() {
  static const PolicyPtr instance = make(Policy::Kind::kDrop);
  return instance;
}

PolicyPtr id() {
  static const PolicyPtr instance = make(Policy::Kind::kId);
  return instance;
}

PolicyPtr test(std::string field, Value v) {
  expects(!field.empty(), "test field must be named");
  return make(Policy::Kind::kTest, std::move(field), v);
}

PolicyPtr mod(std::string field, Value v) {
  expects(!field.empty(), "mod field must be named");
  return make(Policy::Kind::kMod, std::move(field), v);
}

PolicyPtr seq(PolicyPtr a, PolicyPtr b) {
  expects(a != nullptr && b != nullptr, "seq of null policy");
  return make(Policy::Kind::kSeq, {}, 0, std::move(a), std::move(b));
}

PolicyPtr par(PolicyPtr a, PolicyPtr b) {
  expects(a != nullptr && b != nullptr, "par of null policy");
  return make(Policy::Kind::kPar, {}, 0, std::move(a), std::move(b));
}

PolicyPtr seq_all(std::span<const PolicyPtr> policies) {
  if (policies.empty()) return id();
  PolicyPtr acc = policies.front();
  for (std::size_t i = 1; i < policies.size(); ++i) {
    acc = seq(std::move(acc), policies[i]);
  }
  return acc;
}

PolicyPtr par_all(std::span<const PolicyPtr> policies) {
  if (policies.empty()) return drop();
  PolicyPtr acc = policies.front();
  for (std::size_t i = 1; i < policies.size(); ++i) {
    acc = par(std::move(acc), policies[i]);
  }
  return acc;
}

std::string to_string(const PolicyPtr& policy) {
  expects(policy != nullptr, "to_string of null policy");
  switch (policy->kind()) {
    case Policy::Kind::kDrop: return "0";
    case Policy::Kind::kId: return "1";
    case Policy::Kind::kTest:
      return policy->field() + " = " + std::to_string(policy->value());
    case Policy::Kind::kMod:
      return policy->field() + " <- " + std::to_string(policy->value());
    case Policy::Kind::kSeq:
      return "(" + to_string(policy->left()) + "; " +
             to_string(policy->right()) + ")";
    case Policy::Kind::kPar:
      return "(" + to_string(policy->left()) + " + " +
             to_string(policy->right()) + ")";
  }
  return "?";
}

std::size_t policy_size(const PolicyPtr& policy) {
  expects(policy != nullptr, "policy_size of null policy");
  switch (policy->kind()) {
    case Policy::Kind::kDrop:
    case Policy::Kind::kId:
    case Policy::Kind::kTest:
    case Policy::Kind::kMod:
      return 1;
    case Policy::Kind::kSeq:
    case Policy::Kind::kPar:
      return 1 + policy_size(policy->left()) + policy_size(policy->right());
  }
  return 1;
}

}  // namespace maton::netkat
