// Encoding match-action tables and pipelines as NetKAT policies (Eq. 1)
// and verifying core-level transformations against the NetKAT semantics.
//
// A 1NF table becomes the sum of its entries, each the sequence of its
// match tests followed by its action modifications:
//   T = Σ_i (f1 = x_i1; …; fk = x_ik; a_i1; …; a_in)
// A pipeline becomes the stage policies chained by inlining: a stage's
// entry policy sequences into its successor's policy (per-entry for the
// goto join). Metadata joins need no special handling — metadata columns
// are ordinary fields of the NetKAT packet.
#pragma once

#include "core/equivalence.hpp"
#include "netkat/eval.hpp"

namespace maton::netkat {

/// Eq. 1: the sum-of-entries policy of a 1NF table.
[[nodiscard]] PolicyPtr from_table(const core::Table& table);

/// The policy of a whole pipeline, with successor stages inlined.
/// The pipeline must be acyclic (Pipeline::validate()).
[[nodiscard]] PolicyPtr from_pipeline(const core::Pipeline& pipeline);

struct VerifyOptions {
  std::size_t random_probes = 128;
  std::uint64_t seed = 0x6e6574ULL;
};

/// Cross-checks the core pipeline evaluator against the NetKAT
/// denotational semantics: for probe packets drawn from the table's
/// active domain, ⟦from_table(T)⟧ and ⟦from_pipeline(P)⟧ agree, and both
/// agree with core::Pipeline::evaluate on hit/miss and action bindings.
struct VerifyReport {
  bool consistent = true;
  std::size_t packets_checked = 0;
  std::string counterexample;
};

[[nodiscard]] VerifyReport verify_against_netkat(
    const core::Table& table, const core::Pipeline& pipeline,
    const VerifyOptions& opts = {});

}  // namespace maton::netkat
