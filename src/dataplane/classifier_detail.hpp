// Shared helpers for the classifier templates (internal header).
#pragma once

#include <cstdint>
#include <span>

#include "dataplane/flow_key.hpp"

namespace maton::dp::detail {

/// FNV-1a over a span of 64-bit words.
[[nodiscard]] inline std::uint64_t hash_words(
    std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t w : words) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Smallest power of two >= n (and >= 8).
[[nodiscard]] inline std::size_t table_capacity(std::size_t n) noexcept {
  std::size_t cap = 8;
  while (cap < n * 2) cap <<= 1;
  return cap;
}

/// Read-prefetch hint: pulls the cache line holding `p` towards L1 while
/// the batch kernels work on other keys. A no-op on compilers without the
/// builtin — correctness never depends on it.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Batch kernels process keys in fixed-size chunks: big enough to put
/// several independent memory accesses in flight (prefetch distance),
/// small enough that per-chunk scratch stays in L1.
inline constexpr std::size_t kBatchChunk = 64;

}  // namespace maton::dp::detail
