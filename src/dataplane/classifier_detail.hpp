// Shared helpers for the classifier templates (internal header).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_key.hpp"
#include "dataplane/simd.hpp"

namespace maton::dp::detail {

/// FNV-1a over a span of 64-bit words.
[[nodiscard]] inline std::uint64_t hash_words(
    std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t w : words) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Smallest power of two >= n (and >= 8).
[[nodiscard]] inline std::size_t table_capacity(std::size_t n) noexcept {
  std::size_t cap = 8;
  while (cap < n * 2) cap <<= 1;
  return cap;
}

/// Read-prefetch hint: pulls the cache line holding `p` towards L1 while
/// the batch kernels work on other keys. A no-op on compilers without the
/// builtin — correctness never depends on it.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Batch kernels process keys in fixed-size chunks: big enough to put
/// several independent memory accesses in flight (prefetch distance),
/// small enough that per-chunk scratch stays in L1.
inline constexpr std::size_t kBatchChunk = 64;

/// Per-chunk SoA (structure-of-arrays) scratch for the batch kernels:
/// word `f` of key `i` lives at `lanes[f * kBatchChunk + i]`, so one
/// field's words for the whole chunk are contiguous and 64-byte
/// aligned — the layout the dp::simd kernels stream over. One block is
/// kNumFields * kBatchChunk * 8 = 7.5 KiB; a kernel's working set
/// (lanes + masked + hashes) stays L1-resident.
struct LaneBlock {
  alignas(64) std::array<std::uint64_t, kBatchChunk * kNumFields> words;

  [[nodiscard]] std::uint64_t* data() noexcept { return words.data(); }
  [[nodiscard]] const std::uint64_t* data() const noexcept {
    return words.data();
  }
};

/// Transposes `n` keys (n <= kBatchChunk) into SoA lanes over the
/// classifier's field set. Built once per chunk and reused by every
/// subtable/group probe of that chunk.
inline void transpose_chunk(std::span<const FlowKey> keys, std::size_t base,
                            std::size_t n, std::span<const FieldId> fields,
                            std::uint64_t* lanes) noexcept {
  for (std::size_t f = 0; f < fields.size(); ++f) {
    std::uint64_t* lane = lanes + f * kBatchChunk;
    for (std::size_t i = 0; i < n; ++i) {
      lane[i] = keys[base + i].get(fields[f]);
    }
  }
}

/// One mask-vector group of a tuple-space index: rules sharing a mask
/// vector over the classifier's field set, resolved by one exact-match
/// hash probe with an open chain for bucket collisions. Shared by
/// TssClassifier (groups probed in decreasing best-priority order) and
/// LinearClassifier's batch index (groups probed in ascending minimum-
/// rule order); both order keys are maintained unconditionally so the
/// same structure serves either probe discipline.
struct MaskedGroup {
  static constexpr std::size_t kNone = ~std::size_t{0};

  struct Entry {
    std::vector<std::uint64_t> values;
    std::size_t rule = 0;
    std::uint32_t priority = 0;
    std::size_t overflow = kNone;  // chain into MaskedGroup::spill
  };

  std::vector<std::uint64_t> masks;
  std::unordered_map<std::uint64_t, Entry> entries;
  std::vector<Entry> spill;
  /// Highest rule priority in the group (TSS early-exit bound).
  std::uint32_t best_priority = 0;
  /// Smallest rule index in the group (first-match early-exit bound).
  std::size_t min_rule = kNone;
  /// Whether any insertion was dropped as a complete-overlap duplicate.
  /// When set, point updates must decline: the shadowed rule would have
  /// to surface, which only a rebuild can decide.
  bool dropped_duplicate = false;

  /// Inserts a masked value vector. Two rules with identical masked
  /// values overlap completely, so the first insertion — rule order =
  /// priority order — wins and later duplicates are dropped.
  void insert(const std::vector<std::uint64_t>& values, std::size_t rule,
              std::uint32_t priority) {
    auto [it, inserted] =
        entries.try_emplace(hash_words(values), Entry{values, rule, priority,
                                                      kNone});
    if (!inserted) {
      Entry* e = &it->second;
      while (true) {
        if (e->values == values) {  // duplicate key: first wins
          dropped_duplicate = true;
          break;
        }
        if (e->overflow == kNone) {
          e->overflow = spill.size();
          spill.push_back(Entry{values, rule, priority, kNone});
          break;
        }
        e = &spill[e->overflow];
      }
    }
    best_priority = std::max(best_priority, priority);
    min_rule = std::min(min_rule, rule);
  }

  /// Point update for an in-place rule modification (same rule index,
  /// same priority): moves `rule`'s entry from `old_values` to
  /// `new_values`. Returns false — caller must rebuild — when the group
  /// ever dropped a duplicate, the old entry is missing or owned by a
  /// different rule, or the new key already exists. The unlinked spill
  /// slot (if any) leaks until the next rebuild; bounded by the number
  /// of point updates applied.
  [[nodiscard]] bool replace_values(
      const std::vector<std::uint64_t>& old_values,
      const std::vector<std::uint64_t>& new_values, std::size_t rule,
      std::uint32_t priority) {
    if (old_values == new_values) return true;  // action-only modify
    if (dropped_duplicate) return false;
    if (find(new_values) != nullptr) return false;
    const auto it = entries.find(hash_words(old_values));
    if (it == entries.end()) return false;
    Entry* prev = nullptr;
    Entry* e = &it->second;
    while (e != nullptr && e->values != old_values) {
      prev = e;
      e = e->overflow == kNone ? nullptr : &spill[e->overflow];
    }
    if (e == nullptr || e->rule != rule) return false;
    if (prev == nullptr) {
      const std::size_t next = e->overflow;
      if (next == kNone) {
        entries.erase(it);
      } else {
        it->second = spill[next];  // chain entries share the hash key
      }
    } else {
      prev->overflow = e->overflow;
    }
    insert(new_values, rule, priority);
    return true;
  }

  /// Exact probe with the pre-masked key words; nullptr on miss.
  [[nodiscard]] const Entry* find(
      std::span<const std::uint64_t> masked) const {
    const auto it = entries.find(hash_words(masked));
    if (it == entries.end()) return nullptr;
    const Entry* e = &it->second;
    while (e != nullptr) {
      if (std::equal(masked.begin(), masked.end(), e->values.begin())) {
        return e;
      }
      e = e->overflow == kNone ? nullptr : &spill[e->overflow];
    }
    return nullptr;
  }

  /// Exact probe against SoA chunk storage: the key's masked word `f`
  /// lives at `masked[f * stride]` and `hash` was computed by the batch
  /// kernel (simd::mask_hash_lanes) over exactly those words. Bit-
  /// identical to find(): same hash, same chain walk, same compares —
  /// only the key layout is strided.
  [[nodiscard]] const Entry* find_lanes(std::uint64_t hash,
                                        const std::uint64_t* masked,
                                        std::size_t stride) const {
    const auto it = entries.find(hash);
    if (it == entries.end()) return nullptr;
    const Entry* e = &it->second;
    while (e != nullptr) {
      if (simd::equal_lanes(e->values.data(), masked, stride,
                            masks.size())) {
        return e;
      }
      e = e->overflow == kNone ? nullptr : &spill[e->overflow];
    }
    return nullptr;
  }
};

/// Returns the group holding `mask_vec`, creating it if absent. Linear
/// scan: classifiers have few distinct mask vectors, and this only runs
/// at build time.
[[nodiscard]] inline MaskedGroup& find_or_add_group(
    std::vector<MaskedGroup>& groups,
    const std::vector<std::uint64_t>& mask_vec) {
  for (MaskedGroup& group : groups) {
    if (group.masks == mask_vec) return group;
  }
  groups.emplace_back();
  groups.back().masks = mask_vec;
  return groups.back();
}

}  // namespace maton::dp::detail
