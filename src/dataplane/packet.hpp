// Raw packet crafting and parsing for the data-plane substrate.
//
// The evaluation (§5) measures 64-byte packets; we build real
// Ethernet/IPv4/TCP frames (with a correct IPv4 header checksum) and
// parse them back into FlowKeys, so the measured per-packet work includes
// genuine header extraction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "dataplane/flow_key.hpp"

namespace maton::dp {

/// Minimum Ethernet frame (without FCS): 14 (eth) + 20 (IPv4) + 20 (TCP)
/// + 10 padding = 64 bytes.
inline constexpr std::size_t kFrameSize = 64;

/// One wire frame plus receive-side metadata (ingress port).
struct RawPacket {
  std::array<std::uint8_t, kFrameSize> bytes{};
  std::uint16_t in_port = 0;
};

/// Fields used to craft a test frame.
struct FrameSpec {
  std::uint64_t eth_src = 0x02'00'00'00'00'01ULL;
  std::uint64_t eth_dst = 0x02'00'00'00'00'02ULL;
  std::uint16_t vlan = 0;        // 0 = untagged (no 802.1Q header)
  std::uint32_t ip_src = 0;
  std::uint32_t ip_dst = 0;
  std::uint8_t ip_ttl = 64;
  std::uint16_t tcp_src = 0;
  std::uint16_t tcp_dst = 0;
  std::uint16_t in_port = 1;
};

/// Builds a 64-byte TCP/IPv4 frame. VLAN-tagged frames use 802.1Q
/// (squeezing 4 bytes out of the padding).
[[nodiscard]] RawPacket build_frame(const FrameSpec& spec);

/// Parses a frame into a FlowKey. Returns nullopt for frames that are
/// not IPv4/TCP (the substrate's parse graph) or fail the IPv4 checksum.
[[nodiscard]] std::optional<FlowKey> parse(const RawPacket& packet);

/// The Internet checksum (RFC 1071) over `len` bytes.
[[nodiscard]] std::uint16_t internet_checksum(const std::uint8_t* data,
                                              std::size_t len);

}  // namespace maton::dp
