// Packet classifier templates.
//
// §5 attributes ESwitch's normalization gains to datapath specialization:
// "the first table will be compiled to the very fast exact-match template
// and the second table to an efficient longest-prefix-matching template".
// This header defines the classifier interface; concrete templates live
// in exact_match / lpm_trie / tss / linear translation units, and
// select_classifier() implements the ESwitch-style template choice.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "dataplane/program.hpp"

namespace maton::dp {

/// Immutable lookup structure over one table's rules. Returns the index
/// of the winning (highest-priority) rule, or nullopt on miss.
class Classifier {
 public:
  virtual ~Classifier() = default;
  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  [[nodiscard]] virtual std::optional<std::size_t> lookup(
      const FlowKey& key) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

 protected:
  Classifier() = default;
};

/// Builds the most specialized template the rule set admits:
/// all-exact → hash, single-prefix → per-exact-group LPM tries,
/// otherwise tuple-space search (or linear for tiny tables).
[[nodiscard]] std::unique_ptr<Classifier> select_classifier(
    const TableSpec& table);

/// ESwitch's actual template inventory (§5 and [24]): exact-match on a
/// field set, LPM on a *single* field, or the slow generic wildcard
/// processor (linear). A universal table mixing a prefix column with
/// exact columns fits no fast template and degrades to the wildcard
/// path — the very effect behind Table 1's 1.5× normalization gain.
[[nodiscard]] std::unique_ptr<Classifier> select_classifier_eswitch(
    const TableSpec& table);

/// Individual template constructors (exposed for tests/benchmarks).
[[nodiscard]] std::unique_ptr<Classifier> make_exact_match(
    const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_lpm(const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_tss(const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_linear(const TableSpec& table);

}  // namespace maton::dp
