// Packet classifier templates.
//
// §5 attributes ESwitch's normalization gains to datapath specialization:
// "the first table will be compiled to the very fast exact-match template
// and the second table to an efficient longest-prefix-matching template".
// This header defines the classifier interface; concrete templates live
// in exact_match / lpm_trie / tss / linear translation units, and
// select_classifier() implements the ESwitch-style template choice.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "dataplane/program.hpp"

namespace maton::dp {

/// Miss sentinel for batch lookups (out-of-band of any rule index).
inline constexpr std::size_t kNoRule = ~std::size_t{0};

/// Immutable lookup structure over one table's rules. Returns the index
/// of the winning (highest-priority) rule, or nullopt on miss.
class Classifier {
 public:
  virtual ~Classifier() = default;
  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  [[nodiscard]] virtual std::optional<std::size_t> lookup(
      const FlowKey& key) const = 0;

  /// Batch lookup: out[i] = winning rule index for keys[i], or kNoRule on
  /// miss — bit-identical to calling lookup() per key. The base
  /// implementation is the scalar loop; templates override it where
  /// batching pays (software prefetch of hash buckets, level-synchronous
  /// trie walks, per-subtable mask hoisting). Requires
  /// out.size() >= keys.size().
  virtual void lookup_batch(std::span<const FlowKey> keys,
                            std::span<std::size_t> out) const {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto r = lookup(keys[i]);
      out[i] = r.has_value() ? *r : kNoRule;
    }
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Delta maintenance for an in-place rule modification: the rule at
  /// `index` of `table` was replaced without changing position or
  /// priority; `old_matches` is the match vector it had before. Returns
  /// true when the classifier's index now reflects the table again;
  /// false when this template cannot patch the change incrementally, in
  /// which case the caller must rebuild the classifier. The base
  /// implementation always declines.
  [[nodiscard]] virtual bool apply_modify(
      const TableSpec& table, std::size_t index,
      const std::vector<FieldMatch>& old_matches) {
    (void)table;
    (void)index;
    (void)old_matches;
    return false;
  }

 protected:
  Classifier() = default;
};

/// Builds the most specialized template the rule set admits:
/// all-exact → hash, single-prefix → per-exact-group LPM tries,
/// otherwise tuple-space search (or linear for tiny tables).
[[nodiscard]] std::unique_ptr<Classifier> select_classifier(
    const TableSpec& table);

/// ESwitch's actual template inventory (§5 and [24]): exact-match on a
/// field set, LPM on a *single* field, or the slow generic wildcard
/// processor (linear). A universal table mixing a prefix column with
/// exact columns fits no fast template and degrades to the wildcard
/// path — the very effect behind Table 1's 1.5× normalization gain.
[[nodiscard]] std::unique_ptr<Classifier> select_classifier_eswitch(
    const TableSpec& table);

/// Individual template constructors (exposed for tests/benchmarks).
[[nodiscard]] std::unique_ptr<Classifier> make_exact_match(
    const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_lpm(const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_tss(const TableSpec& table);
[[nodiscard]] std::unique_ptr<Classifier> make_linear(const TableSpec& table);

}  // namespace maton::dp
