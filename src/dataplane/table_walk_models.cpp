// ESwitch- and Lagopus-style switch models: both walk the table pipeline
// per packet; they differ in how each table's classifier is instantiated
// and in the fixed per-packet framework overhead.
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dataplane/switch.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Common pipeline walker over per-table classifiers.
class TableWalkSwitch : public SwitchModel {
 public:
  Status load(Program program) override {
    program_ = std::move(program);
    classifiers_.clear();
    classifiers_.reserve(program_.tables.size());
    for (const TableSpec& table : program_.tables) {
      classifiers_.push_back(instantiate(table));
    }
    counters_.reset(program_);
    recompute_mutates();
    resolve_metrics();
    return Status::ok();
  }

  ExecResult process(const FlowKey& key) override {
    ExecResult result;
    if (program_.tables.empty()) return result;

    FlowKey state = key;
    std::optional<std::size_t> current = program_.entry;
    while (current.has_value()) {
      const std::size_t idx = *current;
      expects(idx < program_.tables.size(), "jump out of range");
      expects(result.tables_visited <= program_.tables.size(),
              "table graph cycle during processing");
      ++result.tables_visited;

      const auto rule_idx = classifiers_[idx]->lookup(state);
      if (!rule_idx.has_value()) {
        stage_metrics_[idx].misses->add();
        result.hit = false;
        result.out_port = 0;
        return result;
      }
      stage_metrics_[idx].hits->add();
      counters_.bump(idx, *rule_idx);
      const TableSpec& table = program_.tables[idx];
      const RuleView rule = table.rules[*rule_idx];
      for (const Action action : rule.actions) {
        if (action.kind == Action::Kind::kOutput) {
          result.out_port = action.value;
        } else {
          state.set(action.field, action.value);
        }
      }
      current = rule.goto_table.has_value() ? rule.goto_table : table.next;
    }
    result.hit = true;
    return result;
  }

  /// Stage-hoisted batch execution: packets advance through the table
  /// graph grouped by their current table, one lookup_batch dispatch per
  /// occupied table, so per-packet virtual dispatch disappears and the
  /// classifier kernels get whole chunks to prefetch over. Occupied
  /// tables are tracked on a FIFO worklist — a table is visited only when
  /// packets actually sit in its bucket, so deep pipelines never pay an
  /// every-round scan over all tables. Counter bumps are the same
  /// multiset as the scalar path (increments commute), and results are
  /// bit-identical.
  void process_batch(std::span<const FlowKey> keys,
                     std::span<ExecResult> results) override {
    expects(results.size() >= keys.size(),
            "process_batch result span too small");
    const std::size_t num_tables = program_.tables.size();
    for (std::size_t i = 0; i < keys.size(); ++i) results[i] = ExecResult{};
    if (num_tables == 0 || keys.empty()) return;

    expects(program_.entry < num_tables, "program entry out of range");
    // Programs without set-field actions never mutate packet state, so
    // the walker can classify straight out of the caller's key array
    // instead of copying every FlowKey into the scratch buffer.
    if (mutates_) states_.assign(keys.begin(), keys.end());
    const FlowKey* state_base = mutates_ ? states_.data() : keys.data();
    buckets_.resize(num_tables);
    for (auto& bucket : buckets_) bucket.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      buckets_[program_.entry].push_back(static_cast<std::uint32_t>(i));
    }
    worklist_.clear();
    queued_.assign(num_tables, 0);
    worklist_.push_back(static_cast<std::uint32_t>(program_.entry));
    queued_[program_.entry] = 1;

    // FIFO over occupied buckets. The pipeline graph is acyclic, so a
    // table re-enqueued while another drains terminates; each pop visits
    // a non-empty bucket exactly once.
    for (std::size_t head = 0; head < worklist_.size(); ++head) {
      const std::size_t t = worklist_[head];
      queued_[t] = 0;
      {
        moving_.swap(buckets_[t]);
        buckets_[t].clear();

        // Skip the gather copy when the bucket is a contiguous run of
        // packet indices (the common case: whole batches advance through
        // a linear pipeline together) — the classifier can read the
        // states array in place.
        bool contiguous = true;
        for (std::size_t m = 1; m < moving_.size(); ++m) {
          if (moving_[m] != moving_[m - 1] + 1) {
            contiguous = false;
            break;
          }
        }
        std::span<const FlowKey> stage_keys;
        if (contiguous) {
          stage_keys = {state_base + moving_.front(), moving_.size()};
        } else {
          gather_.clear();
          gather_.reserve(moving_.size());
          for (const std::uint32_t p : moving_) {
            gather_.push_back(state_base[p]);
          }
          stage_keys = gather_;
        }
        rule_out_.resize(moving_.size());
        // Telemetry per stage dispatch, not per packet: two clock reads
        // and a handful of relaxed adds amortized over the whole chunk.
        std::uint64_t lookup_start = 0;
        if constexpr (obs::kEnabled) lookup_start = now_ns();
        classifiers_[t]->lookup_batch(stage_keys, rule_out_);
        if constexpr (obs::kEnabled) {
          stage_metrics_[t].lookup_ns->observe(
              static_cast<double>(now_ns() - lookup_start));
          stage_metrics_[t].chunks->add();
          batch_chunk_size_->observe(static_cast<double>(moving_.size()));
        }
        std::uint64_t stage_hits = 0;
        std::uint64_t stage_misses = 0;

        const TableSpec& table = program_.tables[t];
        for (std::size_t m = 0; m < moving_.size(); ++m) {
          const std::uint32_t p = moving_[m];
          ExecResult& result = results[p];
          expects(result.tables_visited <= num_tables,
                  "table graph cycle during batch processing");
          ++result.tables_visited;
          if (rule_out_[m] == kNoRule) {
            ++stage_misses;
            result.hit = false;
            result.out_port = 0;
            continue;  // miss: packet leaves the pipeline
          }
          ++stage_hits;
          counters_.bump(t, rule_out_[m]);
          const RuleView rule = table.rules[rule_out_[m]];
          for (const Action action : rule.actions) {
            if (action.kind == Action::Kind::kOutput) {
              result.out_port = action.value;
            } else {
              states_[p].set(action.field, action.value);
            }
          }
          const std::optional<std::size_t> next =
              rule.goto_table.has_value() ? rule.goto_table : table.next;
          if (next.has_value()) {
            expects(*next < num_tables, "jump out of range");
            buckets_[*next].push_back(p);
            if (queued_[*next] == 0) {
              queued_[*next] = 1;
              worklist_.push_back(static_cast<std::uint32_t>(*next));
            }
          } else {
            result.hit = true;
          }
        }
        if (stage_hits != 0) stage_metrics_[t].hits->add(stage_hits);
        if (stage_misses != 0) stage_metrics_[t].misses->add(stage_misses);
        moving_.clear();
      }
    }
  }

  /// Batched update application: structural mutation and counter
  /// carry-over run per update in order (exact scalar semantics,
  /// including mid-sequence failures); the per-table index maintenance
  /// is delta-scoped. A same-priority modify first offers the change to
  /// the table's classifier via apply_modify — when the template can
  /// patch its index in place (value rewrite, point re-hash) no rebuild
  /// happens at all. Tables whose classifier declines, or that saw
  /// structural edits (insert/remove/re-position), are recompiled once
  /// per *touched table* instead of once per update.
  Status apply_updates(std::span<const RuleUpdate> updates) override {
    Status result = Status::ok();
    touched_.assign(program_.tables.size(), 0);
    bool delta_maintained = false;
    for (const RuleUpdate& update : updates) {
      ApplyOutcome outcome;
      if (Status s = apply_update_to_program(program_, update, &outcome);
          !s.is_ok()) {
        result = s;
        break;
      }
      apply_counters(update.table, outcome);
      if (touched_[update.table] == 1) continue;  // rebuild already owed
      if (outcome.kind == ApplyOutcome::Kind::kModifiedInPlace &&
          classifiers_[update.table]->apply_modify(
              program_.tables[update.table], outcome.index, update.target)) {
        touched_[update.table] = 2;  // index patched in place
        delta_maintained = true;
      } else {
        touched_[update.table] = 1;
      }
    }
    bool rebuilt = false;
    for (std::size_t t = 0; t < touched_.size(); ++t) {
      if (touched_[t] != 1) continue;
      classifiers_[t] = instantiate(program_.tables[t]);
      rebuilt = true;
    }
    if (rebuilt) {
      recompute_mutates();
      // Recompiling can change the chosen classifier template, which is
      // a metric label; re-resolve the handles.
      resolve_metrics();
    } else if (delta_maintained) {
      for (const RuleUpdate& update : updates) widen_mutates(update.rule);
    }
    return result;
  }

  Status apply_update(const RuleUpdate& update) override {
    ApplyOutcome outcome;
    if (Status s = apply_update_to_program(program_, update, &outcome);
        !s.is_ok()) {
      return s;
    }
    // Flow stats carry over per OpenFlow semantics (modify inherits).
    apply_counters(update.table, outcome);
    if (outcome.kind == ApplyOutcome::Kind::kModifiedInPlace &&
        classifiers_[update.table]->apply_modify(
            program_.tables[update.table], outcome.index, update.target)) {
      widen_mutates(update.rule);
      return Status::ok();
    }
    // Recompile the affected table's datapath classifier; the chosen
    // template is a metric label, so re-resolve the handles.
    classifiers_[update.table] = instantiate(program_.tables[update.table]);
    recompute_mutates();
    resolve_metrics();
    return Status::ok();
  }

  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override {
    return counters_.read(program_, table, target);
  }

 protected:
  [[nodiscard]] virtual std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const = 0;

 private:
  /// Per-table metric handles, resolved once per (re)load so the packet
  /// path records through raw pointers without touching the registry.
  struct StageMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Histogram* lookup_ns = nullptr;
    /// Chunks dispatched, labeled by the classifier template serving the
    /// table (exact/lpm/tss/linear) — shows which kernels carry traffic.
    obs::Counter* chunks = nullptr;
  };

  void resolve_metrics() {
    auto& registry = obs::MetricRegistry::global();
    const std::string model(name());
    stage_metrics_.clear();
    stage_metrics_.reserve(program_.tables.size());
    for (std::size_t t = 0; t < program_.tables.size(); ++t) {
      const obs::Labels labels{{"model", model},
                               {"table", program_.tables[t].name}};
      StageMetrics m;
      m.hits = &registry.counter("maton_dp_table_hits_total", labels);
      m.misses = &registry.counter("maton_dp_table_misses_total", labels);
      m.lookup_ns = &registry.histogram("maton_dp_table_lookup_ns", labels);
      m.chunks = &registry.counter(
          "maton_dp_classifier_chunks_total",
          {{"model", model},
           {"template", std::string(classifiers_[t]->name())}});
      stage_metrics_.push_back(m);
    }
    batch_chunk_size_ =
        &registry.histogram("maton_dp_batch_chunk_size", {{"model", model}});
  }

  void apply_counters(std::size_t table, const ApplyOutcome& outcome) {
    switch (outcome.kind) {
      case ApplyOutcome::Kind::kInserted:
        counters_.on_insert(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kRemoved:
        counters_.on_remove(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kModifiedInPlace:
        break;  // position unchanged; the rule inherits its count
      case ApplyOutcome::Kind::kModifiedMoved:
        counters_.on_move(table, outcome.index, outcome.moved_to);
        break;
    }
  }

  void recompute_mutates() {
    mutates_ = false;
    for (const TableSpec& table : program_.tables) {
      for (const auto rule : table.rules) {
        for (const Action action : rule.actions) {
          mutates_ = mutates_ || action.kind == Action::Kind::kSetField;
        }
      }
    }
  }

  /// Delta-scoped mutates_ maintenance: a patched-in-place rule can only
  /// *add* set-field work. Widening is always safe (it merely re-enables
  /// the key copy in process_batch); narrowing would need a full scan,
  /// which the next rebuild performs anyway.
  void widen_mutates(const Rule& rule) {
    for (const Action& action : rule.actions) {
      mutates_ = mutates_ || action.kind == Action::Kind::kSetField;
    }
  }

  Program program_;
  std::vector<std::unique_ptr<Classifier>> classifiers_;
  RuleCounters counters_;
  std::vector<StageMetrics> stage_metrics_;
  obs::Histogram* batch_chunk_size_ = nullptr;
  /// Whether any loaded rule carries a set-field action; when false the
  /// batch walker skips copying keys into states_.
  bool mutates_ = false;

  // Batch-walker scratch, reused across process_batch calls so the
  // steady-state path performs no allocations.
  std::vector<FlowKey> states_;
  std::vector<std::vector<std::uint32_t>> buckets_;  // per-table frontier
  std::vector<std::uint32_t> moving_;
  std::vector<FlowKey> gather_;
  std::vector<std::size_t> rule_out_;
  std::vector<std::uint32_t> worklist_;  // FIFO of occupied buckets
  std::vector<std::uint8_t> queued_;     // table ∈ worklist_[head..)
  std::vector<std::uint8_t> touched_;    // apply_updates scratch
};

class ESwitchModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "eswitch";
  }
  /// ESwitch is a lean DPDK datapath; classifier work dominates.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 45.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // Datapath specialization from ESwitch's template inventory.
    return select_classifier_eswitch(table);
  }
};

class LagopusModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lagopus";
  }
  /// Lagopus spends most of a packet's budget in generic framework code
  /// (dispatch, metadata copies); that fixed cost is why Table 1 shows it
  /// agnostic to the representation.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 660.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // One generic wildcard lookup path for everything.
    return make_tss(table);
  }
};

}  // namespace

std::unique_ptr<SwitchModel> make_eswitch_model() {
  return std::make_unique<ESwitchModel>();
}

std::unique_ptr<SwitchModel> make_lagopus_model() {
  return std::make_unique<LagopusModel>();
}

}  // namespace maton::dp
