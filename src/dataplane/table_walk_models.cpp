// ESwitch- and Lagopus-style switch models: both walk the table pipeline
// per packet; they differ in how each table's classifier is instantiated
// and in the fixed per-packet framework overhead.
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dataplane/switch.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Common pipeline walker over per-table classifiers.
class TableWalkSwitch : public SwitchModel {
 public:
  TableWalkSwitch() { ensure_scratch(); }

  Status load(Program program) override {
    program_ = std::move(program);
    classifiers_.clear();
    classifiers_.reserve(program_.tables.size());
    for (const TableSpec& table : program_.tables) {
      classifiers_.push_back(instantiate(table));
    }
    counters_.reset(program_, queues_);
    ensure_scratch();
    recompute_mutates();
    resolve_metrics();
    return Status::ok();
  }

  /// Table-walk models share one instance across replay queues: the
  /// classifiers' lookup paths are const, every queue gets its own
  /// heap-allocated scratch context, and the rule counters re-shard one
  /// shard per queue (zeroing them). Stage metrics are already sharded
  /// atomics. Rule updates must be quiesced relative to concurrent
  /// queue processing (the classifier rebuild is not).
  [[nodiscard]] bool configure_queues(std::size_t queues) override {
    expects(queues > 0, "need at least one replay queue");
    queues_ = queues;
    ensure_scratch();
    counters_.reset(program_, queues_);
    return true;
  }

  ExecResult process(const FlowKey& key) override {
    ExecResult result;
    if (program_.tables.empty()) return result;

    FlowKey state = key;
    std::optional<std::size_t> current = program_.entry;
    while (current.has_value()) {
      const std::size_t idx = *current;
      expects(idx < program_.tables.size(), "jump out of range");
      expects(result.tables_visited <= program_.tables.size(),
              "table graph cycle during processing");
      ++result.tables_visited;

      const auto rule_idx = classifiers_[idx]->lookup(state);
      if (!rule_idx.has_value()) {
        stage_metrics_[idx].misses->add();
        result.hit = false;
        result.out_port = 0;
        return result;
      }
      stage_metrics_[idx].hits->add();
      counters_.bump(idx, *rule_idx);
      const TableSpec& table = program_.tables[idx];
      const RuleView rule = table.rules[*rule_idx];
      for (const Action action : rule.actions) {
        if (action.kind == Action::Kind::kOutput) {
          result.out_port = action.value;
        } else {
          state.set(action.field, action.value);
        }
      }
      current = rule.goto_table.has_value() ? rule.goto_table : table.next;
    }
    result.hit = true;
    return result;
  }

  /// Stage-hoisted batch execution: packets advance through the table
  /// graph grouped by their current table, one lookup_batch dispatch per
  /// occupied table, so per-packet virtual dispatch disappears and the
  /// classifier kernels get whole chunks to prefetch over. Occupied
  /// tables are tracked on a FIFO worklist — a table is visited only when
  /// packets actually sit in its bucket, so deep pipelines never pay an
  /// every-round scan over all tables. Counter bumps are the same
  /// multiset as the scalar path (increments commute), and results are
  /// bit-identical.
  void process_batch(std::span<const FlowKey> keys,
                     std::span<ExecResult> results) override {
    process_batch_queue(0, keys, results);
  }

  void process_batch_queue(std::size_t queue,
                           std::span<const FlowKey> keys,
                           std::span<ExecResult> results) override {
    expects(queue < queues_, "replay queue not configured");
    run_batch(queue, *scratch_[queue], keys, results);
  }

  /// Batched update application: structural mutation and counter
  /// carry-over run per update in order (exact scalar semantics,
  /// including mid-sequence failures); the per-table index maintenance
  /// is delta-scoped. A same-priority modify first offers the change to
  /// the table's classifier via apply_modify — when the template can
  /// patch its index in place (value rewrite, point re-hash) no rebuild
  /// happens at all. Tables whose classifier declines, or that saw
  /// structural edits (insert/remove/re-position), are recompiled once
  /// per *touched table* instead of once per update.
  Status apply_updates(std::span<const RuleUpdate> updates) override {
    Status result = Status::ok();
    touched_.assign(program_.tables.size(), 0);
    bool delta_maintained = false;
    for (const RuleUpdate& update : updates) {
      ApplyOutcome outcome;
      if (Status s = apply_update_to_program(program_, update, &outcome);
          !s.is_ok()) {
        result = s;
        break;
      }
      apply_counters(update.table, outcome);
      if (touched_[update.table] == 1) continue;  // rebuild already owed
      if (outcome.kind == ApplyOutcome::Kind::kModifiedInPlace &&
          classifiers_[update.table]->apply_modify(
              program_.tables[update.table], outcome.index, update.target)) {
        touched_[update.table] = 2;  // index patched in place
        delta_maintained = true;
      } else {
        touched_[update.table] = 1;
      }
    }
    bool rebuilt = false;
    for (std::size_t t = 0; t < touched_.size(); ++t) {
      if (touched_[t] != 1) continue;
      classifiers_[t] = instantiate(program_.tables[t]);
      rebuilt = true;
    }
    if (rebuilt) {
      recompute_mutates();
      // Recompiling can change the chosen classifier template, which is
      // a metric label; re-resolve the handles.
      resolve_metrics();
    } else if (delta_maintained) {
      for (const RuleUpdate& update : updates) widen_mutates(update.rule);
    }
    return result;
  }

  Status apply_update(const RuleUpdate& update) override {
    ApplyOutcome outcome;
    if (Status s = apply_update_to_program(program_, update, &outcome);
        !s.is_ok()) {
      return s;
    }
    // Flow stats carry over per OpenFlow semantics (modify inherits).
    apply_counters(update.table, outcome);
    if (outcome.kind == ApplyOutcome::Kind::kModifiedInPlace &&
        classifiers_[update.table]->apply_modify(
            program_.tables[update.table], outcome.index, update.target)) {
      widen_mutates(update.rule);
      return Status::ok();
    }
    // Recompile the affected table's datapath classifier; the chosen
    // template is a metric label, so re-resolve the handles.
    classifiers_[update.table] = instantiate(program_.tables[update.table]);
    recompute_mutates();
    resolve_metrics();
    return Status::ok();
  }

  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override {
    return counters_.read(program_, table, target);
  }

 protected:
  [[nodiscard]] virtual std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const = 0;

 private:
  /// Per-table metric handles, resolved once per (re)load so the packet
  /// path records through raw pointers without touching the registry.
  struct StageMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Histogram* lookup_ns = nullptr;
    /// Chunks dispatched, labeled by the classifier template serving the
    /// table (exact/lpm/tss/linear) — shows which kernels carry traffic.
    obs::Counter* chunks = nullptr;
  };

  void resolve_metrics() {
    auto& registry = obs::MetricRegistry::global();
    const std::string model(name());
    stage_metrics_.clear();
    stage_metrics_.reserve(program_.tables.size());
    for (std::size_t t = 0; t < program_.tables.size(); ++t) {
      const obs::Labels labels{{"model", model},
                               {"table", program_.tables[t].name}};
      StageMetrics m;
      m.hits = &registry.counter("maton_dp_table_hits_total", labels);
      m.misses = &registry.counter("maton_dp_table_misses_total", labels);
      m.lookup_ns = &registry.histogram("maton_dp_table_lookup_ns", labels);
      m.chunks = &registry.counter(
          "maton_dp_classifier_chunks_total",
          {{"model", model},
           {"template", std::string(classifiers_[t]->name())}});
      stage_metrics_.push_back(m);
    }
    batch_chunk_size_ =
        &registry.histogram("maton_dp_batch_chunk_size", {{"model", model}});
  }

  void apply_counters(std::size_t table, const ApplyOutcome& outcome) {
    switch (outcome.kind) {
      case ApplyOutcome::Kind::kInserted:
        counters_.on_insert(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kRemoved:
        counters_.on_remove(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kModifiedInPlace:
        break;  // position unchanged; the rule inherits its count
      case ApplyOutcome::Kind::kModifiedMoved:
        counters_.on_move(table, outcome.index, outcome.moved_to);
        break;
    }
  }

  void recompute_mutates() {
    mutates_ = false;
    for (const TableSpec& table : program_.tables) {
      for (const auto rule : table.rules) {
        for (const Action action : rule.actions) {
          mutates_ = mutates_ || action.kind == Action::Kind::kSetField;
        }
      }
    }
  }

  /// Delta-scoped mutates_ maintenance: a patched-in-place rule can only
  /// *add* set-field work. Widening is always safe (it merely re-enables
  /// the key copy in process_batch); narrowing would need a full scan,
  /// which the next rebuild performs anyway.
  void widen_mutates(const Rule& rule) {
    for (const Action& action : rule.actions) {
      mutates_ = mutates_ || action.kind == Action::Kind::kSetField;
    }
  }

  /// Batch-walker scratch, one context per configured replay queue and
  /// reused across process_batch_queue calls so the steady-state path
  /// performs no allocations. Each context is heap-allocated separately
  /// so two queues' scratch never shares cache lines.
  struct QueueScratch {
    std::vector<FlowKey> states;
    std::vector<std::vector<std::uint32_t>> buckets;  // per-table frontier
    std::vector<std::uint32_t> moving;
    std::vector<FlowKey> gather;
    std::vector<std::size_t> rule_out;
    std::vector<std::uint32_t> worklist;  // FIFO of occupied buckets
    std::vector<std::uint8_t> queued;     // table ∈ worklist[head..)
  };

  void ensure_scratch() {
    scratch_.resize(queues_);
    for (auto& s : scratch_) {
      if (!s) s = std::make_unique<QueueScratch>();
    }
  }

  /// The stage-hoisted batch walker (see process_batch doc), bound to
  /// one queue's scratch and counter shard.
  void run_batch(std::size_t queue, QueueScratch& s,
                 std::span<const FlowKey> keys,
                 std::span<ExecResult> results) {
    expects(results.size() >= keys.size(),
            "process_batch result span too small");
    const std::size_t num_tables = program_.tables.size();
    for (std::size_t i = 0; i < keys.size(); ++i) results[i] = ExecResult{};
    if (num_tables == 0 || keys.empty()) return;

    expects(program_.entry < num_tables, "program entry out of range");
    // Programs without set-field actions never mutate packet state, so
    // the walker can classify straight out of the caller's key array
    // instead of copying every FlowKey into the scratch buffer.
    if (mutates_) s.states.assign(keys.begin(), keys.end());
    const FlowKey* state_base = mutates_ ? s.states.data() : keys.data();
    s.buckets.resize(num_tables);
    for (auto& bucket : s.buckets) bucket.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      s.buckets[program_.entry].push_back(static_cast<std::uint32_t>(i));
    }
    s.worklist.clear();
    s.queued.assign(num_tables, 0);
    s.worklist.push_back(static_cast<std::uint32_t>(program_.entry));
    s.queued[program_.entry] = 1;

    // FIFO over occupied buckets. The pipeline graph is acyclic, so a
    // table re-enqueued while another drains terminates; each pop visits
    // a non-empty bucket exactly once.
    for (std::size_t head = 0; head < s.worklist.size(); ++head) {
      const std::size_t t = s.worklist[head];
      s.queued[t] = 0;
      {
        s.moving.swap(s.buckets[t]);
        s.buckets[t].clear();

        // Skip the gather copy when the bucket is a contiguous run of
        // packet indices (the common case: whole batches advance through
        // a linear pipeline together) — the classifier can read the
        // states array in place.
        bool contiguous = true;
        for (std::size_t m = 1; m < s.moving.size(); ++m) {
          if (s.moving[m] != s.moving[m - 1] + 1) {
            contiguous = false;
            break;
          }
        }
        std::span<const FlowKey> stage_keys;
        if (contiguous) {
          stage_keys = {state_base + s.moving.front(), s.moving.size()};
        } else {
          s.gather.clear();
          s.gather.reserve(s.moving.size());
          for (const std::uint32_t p : s.moving) {
            s.gather.push_back(state_base[p]);
          }
          stage_keys = s.gather;
        }
        s.rule_out.resize(s.moving.size());
        // Telemetry per stage dispatch, not per packet: two clock reads
        // and a handful of relaxed adds amortized over the whole chunk.
        std::uint64_t lookup_start = 0;
        if constexpr (obs::kEnabled) lookup_start = now_ns();
        classifiers_[t]->lookup_batch(stage_keys, s.rule_out);
        if constexpr (obs::kEnabled) {
          stage_metrics_[t].lookup_ns->observe(
              static_cast<double>(now_ns() - lookup_start));
          stage_metrics_[t].chunks->add();
          batch_chunk_size_->observe(static_cast<double>(s.moving.size()));
        }
        std::uint64_t stage_hits = 0;
        std::uint64_t stage_misses = 0;

        const TableSpec& table = program_.tables[t];
        for (std::size_t m = 0; m < s.moving.size(); ++m) {
          const std::uint32_t p = s.moving[m];
          ExecResult& result = results[p];
          expects(result.tables_visited <= num_tables,
                  "table graph cycle during batch processing");
          ++result.tables_visited;
          if (s.rule_out[m] == kNoRule) {
            ++stage_misses;
            result.hit = false;
            result.out_port = 0;
            continue;  // miss: packet leaves the pipeline
          }
          ++stage_hits;
          counters_.bump(t, s.rule_out[m], queue);
          const RuleView rule = table.rules[s.rule_out[m]];
          for (const Action action : rule.actions) {
            if (action.kind == Action::Kind::kOutput) {
              result.out_port = action.value;
            } else {
              s.states[p].set(action.field, action.value);
            }
          }
          const std::optional<std::size_t> next =
              rule.goto_table.has_value() ? rule.goto_table : table.next;
          if (next.has_value()) {
            expects(*next < num_tables, "jump out of range");
            s.buckets[*next].push_back(p);
            if (s.queued[*next] == 0) {
              s.queued[*next] = 1;
              s.worklist.push_back(static_cast<std::uint32_t>(*next));
            }
          } else {
            result.hit = true;
          }
        }
        if (stage_hits != 0) stage_metrics_[t].hits->add(stage_hits);
        if (stage_misses != 0) stage_metrics_[t].misses->add(stage_misses);
        s.moving.clear();
      }
    }
  }

  Program program_;
  std::vector<std::unique_ptr<Classifier>> classifiers_;
  RuleCounters counters_;
  std::vector<StageMetrics> stage_metrics_;
  obs::Histogram* batch_chunk_size_ = nullptr;
  /// Whether any loaded rule carries a set-field action; when false the
  /// batch walker skips copying keys into states_.
  bool mutates_ = false;

  std::size_t queues_ = 1;
  std::vector<std::unique_ptr<QueueScratch>> scratch_;
  std::vector<std::uint8_t> touched_;  // apply_updates scratch
};

class ESwitchModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "eswitch";
  }
  /// ESwitch is a lean DPDK datapath; classifier work dominates.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 45.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // Datapath specialization from ESwitch's template inventory.
    return select_classifier_eswitch(table);
  }
};

class LagopusModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lagopus";
  }
  /// Lagopus spends most of a packet's budget in generic framework code
  /// (dispatch, metadata copies); that fixed cost is why Table 1 shows it
  /// agnostic to the representation.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 660.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // One generic wildcard lookup path for everything.
    return make_tss(table);
  }
};

}  // namespace

std::unique_ptr<SwitchModel> make_eswitch_model() {
  return std::make_unique<ESwitchModel>();
}

std::unique_ptr<SwitchModel> make_lagopus_model() {
  return std::make_unique<LagopusModel>();
}

}  // namespace maton::dp
