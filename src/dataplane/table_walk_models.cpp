// ESwitch- and Lagopus-style switch models: both walk the table pipeline
// per packet; they differ in how each table's classifier is instantiated
// and in the fixed per-packet framework overhead.
#include <vector>

#include "dataplane/switch.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

/// Common pipeline walker over per-table classifiers.
class TableWalkSwitch : public SwitchModel {
 public:
  Status load(Program program) override {
    program_ = std::move(program);
    classifiers_.clear();
    classifiers_.reserve(program_.tables.size());
    for (const TableSpec& table : program_.tables) {
      classifiers_.push_back(instantiate(table));
    }
    counters_.reset(program_);
    return Status::ok();
  }

  ExecResult process(const FlowKey& key) override {
    ExecResult result;
    if (program_.tables.empty()) return result;

    FlowKey state = key;
    std::optional<std::size_t> current = program_.entry;
    while (current.has_value()) {
      const std::size_t idx = *current;
      expects(idx < program_.tables.size(), "jump out of range");
      expects(result.tables_visited <= program_.tables.size(),
              "table graph cycle during processing");
      ++result.tables_visited;

      const auto rule_idx = classifiers_[idx]->lookup(state);
      if (!rule_idx.has_value()) {
        result.hit = false;
        result.out_port = 0;
        return result;
      }
      counters_.bump(idx, *rule_idx);
      const TableSpec& table = program_.tables[idx];
      const Rule& rule = table.rules[*rule_idx];
      for (const Action& action : rule.actions) {
        if (action.kind == Action::Kind::kOutput) {
          result.out_port = action.value;
        } else {
          state.set(action.field, action.value);
        }
      }
      current = rule.goto_table.has_value() ? rule.goto_table : table.next;
    }
    result.hit = true;
    return result;
  }

  Status apply_update(const RuleUpdate& update) override {
    const std::vector<Rule> old_rules =
        update.table < program_.tables.size()
            ? program_.tables[update.table].rules
            : std::vector<Rule>{};
    if (Status s = apply_update_to_program(program_, update); !s.is_ok()) {
      return s;
    }
    // Recompile the affected table's datapath classifier; flow stats
    // carry over per OpenFlow semantics.
    classifiers_[update.table] = instantiate(program_.tables[update.table]);
    counters_.carry_over(update.table, old_rules,
                         program_.tables[update.table].rules, update);
    return Status::ok();
  }

  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override {
    return counters_.read(program_, table, target);
  }

 protected:
  [[nodiscard]] virtual std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const = 0;

 private:
  Program program_;
  std::vector<std::unique_ptr<Classifier>> classifiers_;
  RuleCounters counters_;
};

class ESwitchModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "eswitch";
  }
  /// ESwitch is a lean DPDK datapath; classifier work dominates.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 45.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // Datapath specialization from ESwitch's template inventory.
    return select_classifier_eswitch(table);
  }
};

class LagopusModel final : public TableWalkSwitch {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lagopus";
  }
  /// Lagopus spends most of a packet's budget in generic framework code
  /// (dispatch, metadata copies); that fixed cost is why Table 1 shows it
  /// agnostic to the representation.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 660.0;
  }

 protected:
  std::unique_ptr<Classifier> instantiate(
      const TableSpec& table) const override {
    // One generic wildcard lookup path for everything.
    return make_tss(table);
  }
};

}  // namespace

std::unique_ptr<SwitchModel> make_eswitch_model() {
  return std::make_unique<ESwitchModel>();
}

std::unique_ptr<SwitchModel> make_lagopus_model() {
  return std::make_unique<LagopusModel>();
}

}  // namespace maton::dp
