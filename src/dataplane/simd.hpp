// Word-parallel batch kernels for the classifier hot paths.
//
// The batch classifiers transpose each chunk of keys into a
// structure-of-arrays (SoA) "lane" layout: word `f` of key `i` lives at
// `lanes[f * stride + i]`, so one field's words for the whole chunk are
// contiguous. The kernels below mask, hash, and compare across that
// layout four keys at a time under AVX2, with a portable scalar
// fallback that is the semantic reference.
//
// Dispatch contract (DESIGN.md §14):
//   - Every kernel is bit-identical across levels. The hash is exactly
//     detail::hash_words (FNV-1a, sequential fold per key); AVX2 runs
//     the same fold on four independent keys using an exact 64x64-bit
//     multiply mod 2^64 built from 32-bit partial products.
//   - The active level is resolved once at startup: AVX2 when the CPU
//     reports it (and the build can emit it), else scalar. MATON_SIMD
//     in the environment ("scalar"/"off") pins the scalar path.
//   - force_dispatch() overrides the level for tests and microbenches.
//     It is not synchronized against concurrently running kernels; call
//     it only from single-threaded setup code.
#pragma once

#include <cstddef>
#include <cstdint>

namespace maton::dp::simd {

enum class Level : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// Level the kernels currently run at.
[[nodiscard]] Level active_level() noexcept;

/// True when the host CPU (and compiler) can run the AVX2 kernels.
[[nodiscard]] bool avx2_supported() noexcept;

/// Pins the dispatch level (tests/benches only; see header comment).
/// Forcing kAvx2 on a host without AVX2 support keeps scalar and
/// returns false.
bool force_dispatch(Level level) noexcept;

/// Restores the startup-resolved dispatch level.
void reset_dispatch() noexcept;

/// masked[f * stride + i] = lanes[f * stride + i] & masks[f]
/// for f in [0, fields), i in [0, n). `stride` is the lane stride of
/// both `lanes` and `masked` (buffers may alias only if identical).
void mask_lanes(const std::uint64_t* lanes, std::size_t stride,
                const std::uint64_t* masks, std::size_t fields,
                std::size_t n, std::uint64_t* masked);

/// hashes[i] = detail::hash_words over key i's `fields` lane words.
void hash_lanes(const std::uint64_t* lanes, std::size_t stride,
                std::size_t fields, std::size_t n, std::uint64_t* hashes);

/// Fused mask + hash: writes both the masked lanes and the FNV-1a hash
/// of each key's masked words. One pass over the chunk — this is the
/// TSS / masked-group probe kernel.
void mask_hash_lanes(const std::uint64_t* lanes, std::size_t stride,
                     const std::uint64_t* masks, std::size_t fields,
                     std::size_t n, std::uint64_t* masked,
                     std::uint64_t* hashes);

/// True when key `i`'s masked lane words equal the packed entry words:
/// entry[f] == lanes[f * stride + i] for all f. The strided gather is
/// the probe-confirm step against SoA chunk storage.
[[nodiscard]] bool equal_lanes(const std::uint64_t* entry,
                               const std::uint64_t* lanes,
                               std::size_t stride,
                               std::size_t fields) noexcept;

}  // namespace maton::dp::simd
