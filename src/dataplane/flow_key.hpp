// FlowKey: the parsed header-field vector switch models classify on.
//
// A fixed field registry keeps lookups branch-free: a FlowKey is an array
// of 64-bit values indexed by FieldId plus a validity mask. Metadata
// registers (meta0..meta3) model OpenFlow metadata / P4 user metadata and
// carry values between pipeline stages.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace maton::dp {

enum class FieldId : std::uint8_t {
  kInPort,
  kEthSrc,
  kEthDst,
  kEthType,
  kVlan,
  kIpSrc,
  kIpDst,
  kIpProto,
  kIpTtl,
  kTcpSrc,
  kTcpDst,
  kMeta0,
  kMeta1,
  kMeta2,
  kMeta3,
  kCount,
};

inline constexpr std::size_t kNumFields =
    static_cast<std::size_t>(FieldId::kCount);

[[nodiscard]] constexpr std::size_t field_index(FieldId id) noexcept {
  return static_cast<std::size_t>(id);
}

[[nodiscard]] std::string_view to_string(FieldId id) noexcept;

/// Bit width of each field on the wire (used to build prefix masks).
[[nodiscard]] constexpr unsigned field_width(FieldId id) noexcept {
  switch (id) {
    case FieldId::kEthSrc:
    case FieldId::kEthDst:
      return 48;
    case FieldId::kIpSrc:
    case FieldId::kIpDst:
      return 32;
    case FieldId::kInPort:
    case FieldId::kEthType:
    case FieldId::kTcpSrc:
    case FieldId::kTcpDst:
    case FieldId::kMeta0:
    case FieldId::kMeta1:
    case FieldId::kMeta2:
    case FieldId::kMeta3:
      return 16;
    case FieldId::kVlan:
      return 12;
    case FieldId::kIpProto:
    case FieldId::kIpTtl:
      return 8;
    case FieldId::kCount:
      return 0;
  }
  return 0;
}

/// All-ones match mask covering the field's wire width.
[[nodiscard]] constexpr std::uint64_t field_full_mask(FieldId id) noexcept {
  const unsigned w = field_width(id);
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

struct alignas(64) FlowKey {
  // 64-byte aligned (sizeof is already 128): key arrays start on a
  // cache line, so the batch SoA transpose reads exactly two lines per
  // key and kernel loads never split a line.
  std::array<std::uint64_t, kNumFields> values{};
  /// Bit i set ⇔ field i carries a parsed/assigned value.
  std::uint32_t valid = 0;

  [[nodiscard]] std::uint64_t get(FieldId id) const noexcept {
    return values[field_index(id)];
  }
  void set(FieldId id, std::uint64_t v) noexcept {
    values[field_index(id)] = v;
    valid |= (1u << field_index(id));
  }
  [[nodiscard]] bool has(FieldId id) const noexcept {
    return (valid >> field_index(id)) & 1u;
  }

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

}  // namespace maton::dp
