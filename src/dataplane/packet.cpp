#include "dataplane/packet.hpp"

#include <cstring>

#include "util/contract.hpp"

namespace maton::dp {

namespace {

constexpr std::uint16_t kEthTypeIpv4 = 0x0800;
constexpr std::uint16_t kEthTypeVlan = 0x8100;
constexpr std::uint8_t kProtoTcp = 6;

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void put_mac(std::uint8_t* p, std::uint64_t mac) {
  for (int i = 0; i < 6; ++i) {
    p[i] = static_cast<std::uint8_t>(mac >> (8 * (5 - i)));
  }
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t get_mac(const std::uint8_t* p) {
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) mac = (mac << 8) | p[i];
  return mac;
}

}  // namespace

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(get16(data + i));
  }
  if (len % 2 != 0) {
    sum += static_cast<std::uint32_t>(data[len - 1]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

RawPacket build_frame(const FrameSpec& spec) {
  RawPacket pkt;
  pkt.in_port = spec.in_port;
  std::uint8_t* p = pkt.bytes.data();

  put_mac(p, spec.eth_dst);
  put_mac(p + 6, spec.eth_src);
  std::size_t l3 = 14;
  if (spec.vlan != 0) {
    put16(p + 12, kEthTypeVlan);
    put16(p + 14, spec.vlan & 0x0fff);
    put16(p + 16, kEthTypeIpv4);
    l3 = 18;
  } else {
    put16(p + 12, kEthTypeIpv4);
  }

  std::uint8_t* ip = p + l3;
  const std::uint16_t ip_total =
      static_cast<std::uint16_t>(kFrameSize - l3);
  ip[0] = 0x45;  // v4, IHL 5
  ip[1] = 0;     // DSCP/ECN
  put16(ip + 2, ip_total);
  put16(ip + 4, 0x1234);  // identification
  put16(ip + 6, 0x4000);  // DF
  ip[8] = spec.ip_ttl;
  ip[9] = kProtoTcp;
  put16(ip + 10, 0);  // checksum placeholder
  put32(ip + 12, spec.ip_src);
  put32(ip + 16, spec.ip_dst);
  put16(ip + 10, internet_checksum(ip, 20));

  std::uint8_t* tcp = ip + 20;
  put16(tcp, spec.tcp_src);
  put16(tcp + 2, spec.tcp_dst);
  put32(tcp + 4, 1);       // seq
  put32(tcp + 8, 0);       // ack
  tcp[12] = 0x50;          // data offset 5
  tcp[13] = 0x02;          // SYN
  put16(tcp + 14, 0xffff); // window
  // TCP checksum left zero: the substrate does not validate L4 sums.
  return pkt;
}

std::optional<FlowKey> parse(const RawPacket& packet) {
  const std::uint8_t* p = packet.bytes.data();
  FlowKey key;
  key.set(FieldId::kInPort, packet.in_port);
  key.set(FieldId::kEthDst, get_mac(p));
  key.set(FieldId::kEthSrc, get_mac(p + 6));

  std::uint16_t eth_type = get16(p + 12);
  std::size_t l3 = 14;
  if (eth_type == kEthTypeVlan) {
    key.set(FieldId::kVlan, get16(p + 14) & 0x0fff);
    eth_type = get16(p + 16);
    l3 = 18;
  }
  key.set(FieldId::kEthType, eth_type);
  if (eth_type != kEthTypeIpv4) return std::nullopt;

  const std::uint8_t* ip = p + l3;
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || l3 + ihl + 20 > kFrameSize) return std::nullopt;
  if (internet_checksum(ip, ihl) != 0) return std::nullopt;

  key.set(FieldId::kIpTtl, ip[8]);
  key.set(FieldId::kIpProto, ip[9]);
  key.set(FieldId::kIpSrc, get32(ip + 12));
  key.set(FieldId::kIpDst, get32(ip + 16));
  if (ip[9] != kProtoTcp) return std::nullopt;

  const std::uint8_t* tcp = ip + ihl;
  key.set(FieldId::kTcpSrc, get16(tcp));
  key.set(FieldId::kTcpDst, get16(tcp + 2));
  return key;
}

}  // namespace maton::dp
