// Tuple-space search classifier: rules grouped by their mask vector, one
// exact hash per group, probing groups in decreasing best-priority order
// with early exit — the OVS megaflow lookup structure (§5, [28]).
#include <algorithm>
#include <bit>
#include <array>
#include <unordered_map>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/classifier_detail.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

class TssClassifier final : public Classifier {
 public:
  explicit TssClassifier(const TableSpec& table) : fields_(table.fields) {
    // Group rules by their full mask vector over the declared fields
    // (absent field match ⇒ mask 0, i.e. wildcard).
    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      std::vector<std::uint64_t> mask_vec(fields_.size(), 0);
      std::vector<std::uint64_t> value_vec(fields_.size(), 0);
      pack(table.rules[r].matches, mask_vec, value_vec);
      detail::find_or_add_group(subtables_, mask_vec)
          .insert(value_vec, r, table.rules.priority_of(r));
    }
    std::sort(subtables_.begin(), subtables_.end(),
              [](const detail::MaskedGroup& a, const detail::MaskedGroup& b) {
                return a.best_priority > b.best_priority;
              });
  }

  /// Delta maintenance: a value-only modify (mask vector unchanged) is a
  /// point re-hash inside the rule's subtable — no group rebuild, no
  /// re-sort (the priority is unchanged by contract, so the probe order
  /// bounds stay valid). A mask change moves the rule across subtables
  /// and declines.
  [[nodiscard]] bool apply_modify(
      const TableSpec& table, std::size_t index,
      const std::vector<FieldMatch>& old_matches) override {
    std::vector<std::uint64_t> old_mask(fields_.size(), 0);
    std::vector<std::uint64_t> old_val(fields_.size(), 0);
    pack(old_matches, old_mask, old_val);
    std::vector<std::uint64_t> new_mask(fields_.size(), 0);
    std::vector<std::uint64_t> new_val(fields_.size(), 0);
    const RuleView rule = table.rules[index];
    pack(rule.matches, new_mask, new_val);
    if (old_mask != new_mask) return false;
    for (detail::MaskedGroup& sub : subtables_) {
      if (sub.masks == old_mask) {
        return sub.replace_values(old_val, new_val, index, rule.priority);
      }
    }
    return false;
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    std::optional<std::size_t> best;
    std::uint32_t best_priority = 0;
    std::uint64_t masked[kNumFields];
    for (const detail::MaskedGroup& sub : subtables_) {
      if (best.has_value() && best_priority >= sub.best_priority) break;
      for (std::size_t f = 0; f < fields_.size(); ++f) {
        masked[f] = key.get(fields_[f]) & sub.masks[f];
      }
      const auto* e = sub.find({masked, fields_.size()});
      if (e != nullptr && (!best.has_value() || e->priority > best_priority)) {
        best = e->rule;
        best_priority = e->priority;
      }
    }
    return best;
  }

  /// Chunked batch lookup with the tuple probe hoisted: each chunk of
  /// keys is transposed once into SoA lanes (detail::LaneBlock), then
  /// every subtable's mask-and-hash runs across the whole chunk through
  /// the word-parallel dp::simd kernel. Keys drop out of the active set
  /// as soon as the scalar path's early-exit condition holds for them,
  /// and the kernel's hash/compare are exactly the scalar probe's, so
  /// results stay bit-identical on every dispatch level.
  void lookup_batch(std::span<const FlowKey> keys,
                    std::span<std::size_t> out) const override {
    const std::size_t nf = fields_.size();
    detail::LaneBlock lanes;
    detail::LaneBlock masked;
    alignas(64) std::array<std::uint64_t, detail::kBatchChunk> hashes;
    std::array<std::size_t, detail::kBatchChunk> best;
    std::array<std::uint32_t, detail::kBatchChunk> best_pri;
    std::array<std::uint32_t, detail::kBatchChunk> active;
    std::uint64_t tmp[kNumFields];
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      detail::transpose_chunk(keys, base, n, fields_, lanes.data());
      for (std::size_t i = 0; i < n; ++i) {
        best[i] = kNoRule;
        best_pri[i] = 0;
        active[i] = static_cast<std::uint32_t>(i);
      }
      std::size_t live = n;
      for (const detail::MaskedGroup& sub : subtables_) {
        // Scalar early exit, per key: a match at or above this (and every
        // later) subtable's best priority can no longer be beaten.
        std::size_t still = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t i = active[a];
          if (best[i] != kNoRule && best_pri[i] >= sub.best_priority) {
            continue;
          }
          active[still++] = i;
        }
        live = still;
        if (live == 0) break;
        if (simd::active_level() != simd::Level::kScalar &&
            live * 4 >= n) {
          // Chunk-wide fused mask+hash: the 4-lane kernel covers the
          // whole chunk in ~n/4 steps, cheaper than live scalar probes
          // once at least a quarter of the chunk is still undecided.
          simd::mask_hash_lanes(lanes.data(), detail::kBatchChunk,
                                sub.masks.data(), nf, n, masked.data(),
                                hashes.data());
          for (std::size_t a = 0; a < live; ++a) {
            const std::uint32_t i = active[a];
            const auto* e = sub.find_lanes(hashes[i], masked.data() + i,
                                           detail::kBatchChunk);
            if (e != nullptr &&
                (best[i] == kNoRule || e->priority > best_pri[i])) {
              best[i] = e->rule;
              best_pri[i] = e->priority;
            }
          }
        } else {
          for (std::size_t a = 0; a < live; ++a) {
            const std::uint32_t i = active[a];
            for (std::size_t f = 0; f < nf; ++f) {
              tmp[f] = lanes.data()[f * detail::kBatchChunk + i] &
                       sub.masks[f];
            }
            const auto* e = sub.find({tmp, nf});
            if (e != nullptr &&
                (best[i] == kNoRule || e->priority > best_pri[i])) {
              best[i] = e->rule;
              best_pri[i] = e->priority;
            }
          }
        }
      }
      for (std::size_t i = 0; i < n; ++i) out[base + i] = best[i];
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "tss";
  }

 private:
  template <typename MatchSeq>
  void pack(const MatchSeq& matches, std::vector<std::uint64_t>& mask_vec,
            std::vector<std::uint64_t>& value_vec) const {
    for (const FieldMatch m : matches) {
      for (std::size_t f = 0; f < fields_.size(); ++f) {
        if (fields_[f] == m.field) {
          mask_vec[f] = m.mask;
          value_vec[f] = m.value;
        }
      }
    }
  }

  std::vector<FieldId> fields_;
  std::vector<detail::MaskedGroup> subtables_;
};

class LinearClassifier final : public Classifier {
 public:
  explicit LinearClassifier(const TableSpec& table)
      : nrules_(table.rules.size()) {
    build_flat(table.rules);
    build_groups(table.rules);
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    for (std::size_t r = 0; r < nrules_; ++r) {  // priority-sorted
      const FlatMatch* fm = flat_.data() + flat_begin_[r];
      const std::size_t nm = flat_begin_[r + 1] - flat_begin_[r];
      bool ok = true;
      for (std::size_t m = 0; m < nm; ++m) {
        if ((key.values[fm[m].index] & fm[m].mask) != fm[m].value) {
          ok = false;
          break;
        }
      }
      if (ok) return r;
    }
    return std::nullopt;
  }

  /// Delta maintenance: a modify that keeps the rule's match count and
  /// group mask vector rewrites the flat predicate span in place and
  /// point-updates the masked-group index. Anything structural (new
  /// fields, mask changes, satisfiability flips) declines.
  [[nodiscard]] bool apply_modify(
      const TableSpec& table, std::size_t index,
      const std::vector<FieldMatch>& old_matches) override {
    const RuleView rule = table.rules[index];
    const std::size_t off = flat_begin_[index];
    const std::size_t old_n = flat_begin_[index + 1] - off;
    if (rule.matches.size() != old_n) return false;  // span widths fixed
    for (const FieldMatch m : rule.matches) {
      if (std::find(fields_.begin(), fields_.end(), m.field) ==
          fields_.end()) {
        return false;  // new field: the group index would have to regrow
      }
    }
    std::vector<std::uint64_t> old_mask(fields_.size(), 0);
    std::vector<std::uint64_t> old_val(fields_.size(), 0);
    std::vector<std::uint64_t> new_mask(fields_.size(), 0);
    std::vector<std::uint64_t> new_val(fields_.size(), 0);
    if (!pack_group(old_matches, old_mask, old_val) ||
        !pack_group(rule.matches, new_mask, new_val)) {
      return false;  // (un)satisfiable rules are absent from the index
    }
    if (old_mask != new_mask) return false;
    for (detail::MaskedGroup& group : groups_) {
      if (group.masks != old_mask) continue;
      if (!group.replace_values(old_val, new_val, index,
                                table.rules.priority_of(index))) {
        return false;
      }
      for (std::size_t m = 0; m < old_n; ++m) {
        const FieldMatch fm = rule.matches[m];
        flat_[off + m] = {fm.mask, fm.value,
                          static_cast<std::uint32_t>(field_index(fm.field))};
      }
      return true;
    }
    return false;
  }

  /// Batch kernel. The scalar path above is the paper-faithful linear
  /// wildcard processor (its per-packet cost is exactly what Table 1
  /// charges ESwitch for the universal representation); the batch path
  /// is free to spend construction time on a better-indexed probe as
  /// long as the results stay bit-identical. Large tables use a
  /// masked-group index — the §5 tuple-space structure resolved by
  /// minimum rule index, i.e. first-match order — with the per-mask
  /// probe hoisted across the chunk. Tiny tables scan faster than they
  /// hash, so they take a rules-outer scan over a flattened predicate
  /// array instead.
  void lookup_batch(std::span<const FlowKey> keys,
                    std::span<std::size_t> out) const override {
    if (nrules_ <= kScanThreshold) {
      scan_batch(keys, out);
    } else {
      group_batch(keys, out);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "linear";
  }

 private:
  /// Below this rule count the flat scan beats the hashed group probe.
  static constexpr std::size_t kScanThreshold = 8;

  struct FlatMatch {
    std::uint64_t mask = 0;
    std::uint64_t value = 0;
    std::uint32_t index = 0;  // field_index(field) into FlowKey::values
  };

  /// Flattens every rule's predicates into one contiguous array so the
  /// small-table scan streams through memory instead of chasing per-rule
  /// indirection.
  void build_flat(const FlatRules& rules) {
    flat_begin_.reserve(rules.size() + 1);
    flat_begin_.push_back(0);
    for (const auto rule : rules) {
      for (const FieldMatch m : rule.matches) {
        flat_.push_back({m.mask, m.value,
                         static_cast<std::uint32_t>(field_index(m.field))});
      }
      flat_begin_.push_back(static_cast<std::uint32_t>(flat_.size()));
    }
  }

  /// Packs a rule's matches into (mask, value) vectors over fields_,
  /// folding repeated matches on one field. Returns false when the rule
  /// is unsatisfiable (it can never match and is left out of the index).
  template <typename MatchSeq>
  [[nodiscard]] bool pack_group(const MatchSeq& matches,
                                std::vector<std::uint64_t>& mask_vec,
                                std::vector<std::uint64_t>& value_vec) const {
    for (const FieldMatch m : matches) {
      if ((m.value & ~m.mask) != 0) {
        return false;  // requires bits the mask clears
      }
      const std::size_t f = static_cast<std::size_t>(
          std::find(fields_.begin(), fields_.end(), m.field) -
          fields_.begin());
      // Conjunction of two masked equalities on one field: consistent
      // on the shared mask bits ⇒ union of masks/values, else the rule
      // can never match.
      const std::uint64_t overlap = mask_vec[f] & m.mask;
      if ((value_vec[f] & overlap) != (m.value & overlap)) return false;
      mask_vec[f] |= m.mask;
      value_vec[f] |= m.value;
    }
    return true;
  }

  /// Groups rules by their mask vector over the union of matched fields.
  /// Within a group two rules overlap only if their masked values are
  /// identical, so keeping the first (insertion order = rule order)
  /// preserves first-match semantics; across groups the probe takes the
  /// minimum matching rule index.
  void build_groups(const FlatRules& rules) {
    for (const auto rule : rules) {
      for (const FieldMatch m : rule.matches) {
        if (std::find(fields_.begin(), fields_.end(), m.field) ==
            fields_.end()) {
          fields_.push_back(m.field);
        }
      }
    }
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::vector<std::uint64_t> mask_vec(fields_.size(), 0);
      std::vector<std::uint64_t> value_vec(fields_.size(), 0);
      if (!pack_group(rules[r].matches, mask_vec, value_vec)) continue;
      detail::find_or_add_group(groups_, mask_vec)
          .insert(value_vec, r, rules.priority_of(r));
    }
    // Ascending min_rule lets the probe stop as soon as the current best
    // match precedes every remaining group.
    std::sort(groups_.begin(), groups_.end(),
              [](const detail::MaskedGroup& a, const detail::MaskedGroup& b) {
                return a.min_rule < b.min_rule;
              });
  }

  /// Rules-outer batch scan over the flattened predicates; keys leave
  /// the active set at their first — lowest-index — hit.
  void scan_batch(std::span<const FlowKey> keys,
                  std::span<std::size_t> out) const {
    std::array<std::uint32_t, detail::kBatchChunk> active;
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      for (std::size_t i = 0; i < n; ++i) {
        out[base + i] = kNoRule;
        active[i] = static_cast<std::uint32_t>(i);
      }
      std::size_t live = n;
      for (std::size_t r = 0; r < nrules_ && live > 0; ++r) {
        const FlatMatch* fm = flat_.data() + flat_begin_[r];
        const std::size_t nm = flat_begin_[r + 1] - flat_begin_[r];
        std::size_t still = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t i = active[a];
          const std::uint64_t* kv = keys[base + i].values.data();
          bool ok = true;
          for (std::size_t m = 0; m < nm; ++m) {
            if ((kv[fm[m].index] & fm[m].mask) != fm[m].value) {
              ok = false;
              break;
            }
          }
          if (ok) {
            out[base + i] = r;
          } else {
            active[still++] = i;
          }
        }
        live = still;
      }
    }
  }

  /// Masked-group probe hoisted across the chunk: the chunk is
  /// transposed once into SoA lanes, then every group's mask-and-hash
  /// runs chunk-wide through the dp::simd kernel (same kernel as the
  /// TSS probe, first-match order instead of priority order).
  void group_batch(std::span<const FlowKey> keys,
                   std::span<std::size_t> out) const {
    const std::size_t nf = fields_.size();
    detail::LaneBlock lanes;
    detail::LaneBlock masked;
    alignas(64) std::array<std::uint64_t, detail::kBatchChunk> hashes;
    std::array<std::size_t, detail::kBatchChunk> best;
    std::array<std::uint32_t, detail::kBatchChunk> active;
    std::uint64_t tmp[kNumFields];
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      detail::transpose_chunk(keys, base, n, fields_, lanes.data());
      for (std::size_t i = 0; i < n; ++i) {
        best[i] = kNoRule;
        active[i] = static_cast<std::uint32_t>(i);
      }
      std::size_t live = n;
      for (const detail::MaskedGroup& group : groups_) {
        // A key whose best match precedes this group's smallest rule
        // index is decided (groups are sorted by min_rule).
        std::size_t still = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t i = active[a];
          if (best[i] < group.min_rule) continue;
          active[still++] = i;
        }
        live = still;
        if (live == 0) break;
        if (simd::active_level() != simd::Level::kScalar &&
            live * 4 >= n) {
          simd::mask_hash_lanes(lanes.data(), detail::kBatchChunk,
                                group.masks.data(), nf, n, masked.data(),
                                hashes.data());
          for (std::size_t a = 0; a < live; ++a) {
            const std::uint32_t i = active[a];
            const auto* e = group.find_lanes(hashes[i], masked.data() + i,
                                             detail::kBatchChunk);
            if (e != nullptr) best[i] = std::min(best[i], e->rule);
          }
        } else {
          for (std::size_t a = 0; a < live; ++a) {
            const std::uint32_t i = active[a];
            for (std::size_t f = 0; f < nf; ++f) {
              tmp[f] = lanes.data()[f * detail::kBatchChunk + i] &
                       group.masks[f];
            }
            const auto* e = group.find({tmp, nf});
            if (e != nullptr) best[i] = std::min(best[i], e->rule);
          }
        }
      }
      for (std::size_t i = 0; i < n; ++i) out[base + i] = best[i];
    }
  }

  std::size_t nrules_ = 0;
  std::vector<FlatMatch> flat_;
  std::vector<std::uint32_t> flat_begin_;
  std::vector<FieldId> fields_;  // union of matched fields, batch index
  std::vector<detail::MaskedGroup> groups_;
};

}  // namespace

std::unique_ptr<Classifier> make_tss(const TableSpec& table) {
  return std::make_unique<TssClassifier>(table);
}

std::unique_ptr<Classifier> make_linear(const TableSpec& table) {
  return std::make_unique<LinearClassifier>(table);
}

std::unique_ptr<Classifier> select_classifier(const TableSpec& table) {
  switch (table.profile()) {
    case MatchProfile::kAllExact:
      return make_exact_match(table);
    case MatchProfile::kSinglePrefix:
      return make_lpm(table);
    case MatchProfile::kTernary:
      // Tiny ternary tables scan faster than they hash.
      if (table.rules.size() <= 8) return make_linear(table);
      return make_tss(table);
  }
  return make_linear(table);
}

std::unique_ptr<Classifier> select_classifier_eswitch(
    const TableSpec& table) {
  switch (table.profile()) {
    case MatchProfile::kAllExact:
      return make_exact_match(table);
    case MatchProfile::kSinglePrefix:
      // ESwitch only has a single-field LPM template; a prefix column
      // mixed with other match fields falls through to the wildcard
      // processor.
      if (table.fields.size() == 1) return make_lpm(table);
      return make_linear(table);
    case MatchProfile::kTernary:
      return make_linear(table);
  }
  return make_linear(table);
}

}  // namespace maton::dp
