// Tuple-space search classifier: rules grouped by their mask vector, one
// exact hash per group, probing groups in decreasing best-priority order
// with early exit — the OVS megaflow lookup structure (§5, [28]).
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/classifier_detail.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

class TssClassifier final : public Classifier {
 public:
  explicit TssClassifier(const TableSpec& table) : fields_(table.fields) {
    // Group rules by their full mask vector over the declared fields
    // (absent field match ⇒ mask 0, i.e. wildcard).
    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      std::vector<std::uint64_t> mask_vec(fields_.size(), 0);
      std::vector<std::uint64_t> value_vec(fields_.size(), 0);
      for (const FieldMatch& m : table.rules[r].matches) {
        for (std::size_t f = 0; f < fields_.size(); ++f) {
          if (fields_[f] == m.field) {
            mask_vec[f] = m.mask;
            value_vec[f] = m.value;
          }
        }
      }
      SubTable* sub = nullptr;
      for (auto& candidate : subtables_) {
        if (candidate.masks == mask_vec) {
          sub = &candidate;
          break;
        }
      }
      if (sub == nullptr) {
        subtables_.push_back({});
        sub = &subtables_.back();
        sub->masks = mask_vec;
      }
      const std::uint32_t priority = table.rules[r].priority;
      auto [it, inserted] = sub->entries.try_emplace(
          detail::hash_words(value_vec), Entry{value_vec, r, priority});
      if (!inserted) {
        // Hash bucket occupied: chain.
        Entry* e = &it->second;
        while (true) {
          if (e->values == value_vec) break;  // duplicate key: keep first
          if (e->overflow == kNone) {
            e->overflow = sub->spill.size();
            sub->spill.push_back(Entry{value_vec, r, priority});
            break;
          }
          e = &sub->spill[e->overflow];
        }
      }
      sub->best_priority = std::max(sub->best_priority, priority);
    }
    std::sort(subtables_.begin(), subtables_.end(),
              [](const SubTable& a, const SubTable& b) {
                return a.best_priority > b.best_priority;
              });
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    std::optional<std::size_t> best;
    std::uint32_t best_priority = 0;
    std::uint64_t masked[kNumFields];
    for (const SubTable& sub : subtables_) {
      if (best.has_value() && best_priority >= sub.best_priority) break;
      for (std::size_t f = 0; f < fields_.size(); ++f) {
        masked[f] = key.get(fields_[f]) & sub.masks[f];
      }
      const std::span<const std::uint64_t> view(masked, fields_.size());
      const auto it = sub.entries.find(detail::hash_words(view));
      if (it == sub.entries.end()) continue;
      const Entry* e = &it->second;
      while (e != nullptr) {
        bool equal = true;
        for (std::size_t f = 0; f < fields_.size(); ++f) {
          if (e->values[f] != masked[f]) {
            equal = false;
            break;
          }
        }
        if (equal) {
          if (!best.has_value() || e->priority > best_priority) {
            best = e->rule;
            best_priority = e->priority;
          }
          break;
        }
        e = e->overflow == kNone ? nullptr : &sub.spill[e->overflow];
      }
    }
    return best;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "tss";
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  struct Entry {
    std::vector<std::uint64_t> values;
    std::size_t rule = 0;
    std::uint32_t priority = 0;
    std::size_t overflow = kNone;  // chain into SubTable::spill
  };
  struct SubTable {
    std::vector<std::uint64_t> masks;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::vector<Entry> spill;
    std::uint32_t best_priority = 0;
  };

  std::vector<FieldId> fields_;
  std::vector<SubTable> subtables_;
};

class LinearClassifier final : public Classifier {
 public:
  explicit LinearClassifier(const TableSpec& table) : rules_(table.rules) {}

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    for (std::size_t r = 0; r < rules_.size(); ++r) {  // priority-sorted
      if (rules_[r].matches_key(key)) return r;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "linear";
  }

 private:
  std::vector<Rule> rules_;
};

}  // namespace

std::unique_ptr<Classifier> make_tss(const TableSpec& table) {
  return std::make_unique<TssClassifier>(table);
}

std::unique_ptr<Classifier> make_linear(const TableSpec& table) {
  return std::make_unique<LinearClassifier>(table);
}

std::unique_ptr<Classifier> select_classifier(const TableSpec& table) {
  switch (table.profile()) {
    case MatchProfile::kAllExact:
      return make_exact_match(table);
    case MatchProfile::kSinglePrefix:
      return make_lpm(table);
    case MatchProfile::kTernary:
      // Tiny ternary tables scan faster than they hash.
      if (table.rules.size() <= 8) return make_linear(table);
      return make_tss(table);
  }
  return make_linear(table);
}

std::unique_ptr<Classifier> select_classifier_eswitch(
    const TableSpec& table) {
  switch (table.profile()) {
    case MatchProfile::kAllExact:
      return make_exact_match(table);
    case MatchProfile::kSinglePrefix:
      // ESwitch only has a single-field LPM template; a prefix column
      // mixed with other match fields falls through to the wildcard
      // processor.
      if (table.fields.size() == 1) return make_lpm(table);
      return make_linear(table);
    case MatchProfile::kTernary:
      return make_linear(table);
  }
  return make_linear(table);
}

}  // namespace maton::dp
