// Exact-match classifier: open-addressing hash table over the packed
// field vector — the "very fast exact-match template" of ESwitch (§5).
#include <algorithm>
#include <array>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/classifier_detail.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

class ExactMatchClassifier final : public Classifier {
 public:
  explicit ExactMatchClassifier(const TableSpec& table)
      : fields_(table.fields),
        capacity_(detail::table_capacity(table.rules.size() + 1)),
        slots_(capacity_, kEmpty) {
    expects(table.profile() == MatchProfile::kAllExact,
            "exact-match template requires an all-exact rule set");
    keys_.reserve(table.rules.size() * fields_.size());

    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      // Pack the rule's values in declared field order.
      std::vector<std::uint64_t> packed(fields_.size(), 0);
      pack_matches(table.rules[r].matches, packed);
      insert(packed, r);
    }
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    std::uint64_t packed[kNumFields];
    for (std::size_t f = 0; f < fields_.size(); ++f) {
      packed[f] = key.get(fields_[f]);
    }
    const std::span<const std::uint64_t> view(packed, fields_.size());
    std::size_t slot = detail::hash_words(view) & (capacity_ - 1);
    while (slots_[slot] != kEmpty) {
      const std::size_t entry = slots_[slot];
      if (entry != kTombstone && equals(entry, view)) return rule_of_[entry];
      slot = (slot + 1) & (capacity_ - 1);
    }
    return std::nullopt;
  }

  /// Delta maintenance: an all-exact modify re-packs the rule's key and
  /// moves its hash entry — the old slot is tombstoned, the key payload
  /// is overwritten in place, and the entry re-probes to a fresh slot.
  /// Declines when duplicates were dropped at build (a shadowed rule
  /// could surface), when the new rule is no longer all-exact (template
  /// change), or when accumulated tombstones warrant a rebuild.
  [[nodiscard]] bool apply_modify(
      const TableSpec& table, std::size_t index,
      const std::vector<FieldMatch>& old_matches) override {
    if (dups_ || tombstones_ * 4 > capacity_) return false;
    const RuleView rule = table.rules[index];
    for (const FieldMatch m : rule.matches) {
      if (m.mask != field_full_mask(m.field)) return false;
      if (std::find(fields_.begin(), fields_.end(), m.field) ==
          fields_.end()) {
        return false;
      }
    }
    std::vector<std::uint64_t> old_key(fields_.size(), 0);
    std::vector<std::uint64_t> new_key(fields_.size(), 0);
    pack_matches(old_matches, old_key);
    pack_matches(rule.matches, new_key);
    if (old_key == new_key) return true;  // action-only modify
    // Locate the old entry (unique: no dropped duplicates).
    std::size_t old_slot = detail::hash_words(old_key) & (capacity_ - 1);
    std::size_t entry = kEmpty;
    while (slots_[old_slot] != kEmpty) {
      const std::size_t e = slots_[old_slot];
      if (e != kTombstone && equals(e, old_key)) {
        entry = e;
        break;
      }
      old_slot = (old_slot + 1) & (capacity_ - 1);
    }
    if (entry == kEmpty || rule_of_[entry] != index) return false;
    // Walk the new key's chain: any live equal entry means a collision
    // (rebuild decides the winner); remember the first reusable slot.
    std::size_t ins = kEmpty;
    std::size_t slot = detail::hash_words(new_key) & (capacity_ - 1);
    while (slots_[slot] != kEmpty) {
      const std::size_t e = slots_[slot];
      if (e == kTombstone) {
        if (ins == kEmpty) ins = slot;
      } else if (equals(e, new_key)) {
        return false;
      }
      slot = (slot + 1) & (capacity_ - 1);
    }
    const bool reused_tombstone = ins != kEmpty;
    if (ins == kEmpty) ins = slot;
    slots_[old_slot] = kTombstone;
    ++tombstones_;
    std::copy(new_key.begin(), new_key.end(),
              keys_.begin() +
                  static_cast<std::ptrdiff_t>(entry * fields_.size()));
    slots_[ins] = entry;
    if (reused_tombstone) --tombstones_;
    return true;
  }

  /// Two-pass chunked probe: pass 1 transposes the chunk into SoA lanes
  /// and runs the word-parallel dp::simd hash kernel (bit-identical
  /// FNV-1a, four keys per step), issuing a prefetch for every key's
  /// home bucket; pass 2 probes with the bucket lines already in
  /// flight, comparing the packed entry words against the key's strided
  /// lane words.
  void lookup_batch(std::span<const FlowKey> keys,
                    std::span<std::size_t> out) const override {
    const std::size_t nf = fields_.size();
    detail::LaneBlock lanes;
    alignas(64) std::array<std::uint64_t, detail::kBatchChunk> hashes;
    std::array<std::size_t, detail::kBatchChunk> home;
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      detail::transpose_chunk(keys, base, n, fields_, lanes.data());
      simd::hash_lanes(lanes.data(), detail::kBatchChunk, nf, n,
                       hashes.data());
      for (std::size_t i = 0; i < n; ++i) {
        home[i] = hashes[i] & (capacity_ - 1);
        detail::prefetch_read(&slots_[home[i]]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t slot = home[i];
        std::size_t found = kNoRule;
        while (slots_[slot] != kEmpty) {
          const std::size_t entry = slots_[slot];
          if (entry != kTombstone &&
              simd::equal_lanes(keys_.data() + entry * nf,
                                lanes.data() + i, detail::kBatchChunk,
                                nf)) {
            found = rule_of_[entry];
            break;
          }
          slot = (slot + 1) & (capacity_ - 1);
        }
        out[base + i] = found;
      }
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "exact";
  }

 private:
  static constexpr std::size_t kEmpty = ~std::size_t{0};
  static constexpr std::size_t kTombstone = kEmpty - 1;

  [[nodiscard]] bool equals(std::size_t entry,
                            std::span<const std::uint64_t> key) const {
    const std::uint64_t* stored = keys_.data() + entry * fields_.size();
    for (std::size_t f = 0; f < key.size(); ++f) {
      if (stored[f] != key[f]) return false;
    }
    return true;
  }

  template <typename MatchSeq>
  void pack_matches(const MatchSeq& matches,
                    std::vector<std::uint64_t>& packed) const {
    for (const FieldMatch m : matches) {
      for (std::size_t f = 0; f < fields_.size(); ++f) {
        if (fields_[f] == m.field) packed[f] = m.value;
      }
    }
  }

  void insert(const std::vector<std::uint64_t>& packed, std::size_t rule) {
    std::size_t slot = detail::hash_words(packed) & (capacity_ - 1);
    while (slots_[slot] != kEmpty) {
      if (equals(slots_[slot], packed)) {  // keep higher priority
        dups_ = true;
        return;
      }
      slot = (slot + 1) & (capacity_ - 1);
    }
    const std::size_t entry = rule_of_.size();
    keys_.insert(keys_.end(), packed.begin(), packed.end());
    rule_of_.push_back(rule);
    slots_[slot] = entry;
  }

  std::vector<FieldId> fields_;
  std::size_t capacity_;
  std::vector<std::size_t> slots_;     // slot → entry index or kEmpty
  std::vector<std::uint64_t> keys_;    // entry-major packed keys
  std::vector<std::size_t> rule_of_;   // entry → rule index
  bool dups_ = false;                  // build dropped a duplicate key
  std::size_t tombstones_ = 0;         // dead slots left by apply_modify
};

}  // namespace

std::unique_ptr<Classifier> make_exact_match(const TableSpec& table) {
  return std::make_unique<ExactMatchClassifier>(table);
}

}  // namespace maton::dp
