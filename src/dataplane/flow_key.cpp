#include "dataplane/flow_key.hpp"

namespace maton::dp {

std::string_view to_string(FieldId id) noexcept {
  switch (id) {
    case FieldId::kInPort: return "in_port";
    case FieldId::kEthSrc: return "eth_src";
    case FieldId::kEthDst: return "eth_dst";
    case FieldId::kEthType: return "eth_type";
    case FieldId::kVlan: return "vlan";
    case FieldId::kIpSrc: return "ip_src";
    case FieldId::kIpDst: return "ip_dst";
    case FieldId::kIpProto: return "ip_proto";
    case FieldId::kIpTtl: return "ip_ttl";
    case FieldId::kTcpSrc: return "tcp_src";
    case FieldId::kTcpDst: return "tcp_dst";
    case FieldId::kMeta0: return "meta0";
    case FieldId::kMeta1: return "meta1";
    case FieldId::kMeta2: return "meta2";
    case FieldId::kMeta3: return "meta3";
    case FieldId::kCount: return "count";
  }
  return "unknown";
}

}  // namespace maton::dp
