// Data-plane programs: the lowered form of a core::Pipeline that switch
// models load and execute.
//
// A Program is a list of TableSpecs. Each table declares the fields it
// matches (with per-rule masks supporting exact, prefix and wildcard
// matching), its rules in priority order, and per-rule actions (output,
// set-field for header rewrites and metadata tags, goto-table).
//
// Rule storage is flattened: a TableSpec holds one contiguous SoA match
// pool (field / value / mask arrays), one packed action pool, and a
// 20-byte ref per rule carrying (offset, count) spans into the pools —
// no per-rule heap vectors. `Rule` remains the boundary type for
// constructing and exchanging single rules; `FlatRules` yields
// `RuleView` proxies whose members mirror `Rule` so consumers read
// `rule.priority` / `rule.matches` / `rule.actions` / `rule.goto_table`
// unchanged.
//
// The compiler maps core attribute names onto the FieldId registry:
// well-known header names map directly, `meta.*` attributes are assigned
// to metadata registers, `out` becomes the output action, `mod_<field>`
// becomes a set-field action, and ValueCodec::kIpv4Prefix tokens are
// unpacked into value/mask prefix matches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dataplane/flow_key.hpp"
#include "util/small_vector.hpp"
#include "util/status.hpp"

namespace maton::dp {

/// Masked single-field match: key.get(field) & mask == value.
struct FieldMatch {
  FieldId field = FieldId::kInPort;
  std::uint64_t value = 0;
  std::uint64_t mask = ~std::uint64_t{0};

  [[nodiscard]] bool matches(const FlowKey& key) const noexcept {
    return (key.get(field) & mask) == value;
  }
  friend bool operator==(const FieldMatch&, const FieldMatch&) = default;
};

struct Action {
  enum class Kind { kOutput, kSetField };
  Kind kind = Kind::kOutput;
  FieldId field = FieldId::kMeta0;  // for kSetField
  std::uint64_t value = 0;          // port for kOutput, new value otherwise
  /// Declared width of a kSetField write in bits: only the low
  /// `width_bits` bits of `field` are defined after the write. Lowering
  /// sets it from the source attribute; the dataflow pass uses it to
  /// catch reads of partially-initialized metadata (MA302). 64 means
  /// "whole field" and is the conservative default.
  std::uint8_t width_bits = 64;

  friend bool operator==(const Action&, const Action&) = default;
};

struct Rule {
  std::uint32_t priority = 0;
  std::vector<FieldMatch> matches;
  std::vector<Action> actions;
  /// Next table index on hit; nullopt falls through to the table default.
  std::optional<std::size_t> goto_table;

  [[nodiscard]] bool matches_key(const FlowKey& key) const noexcept {
    for (const FieldMatch& m : matches) {
      if (!m.matches(key)) return false;
    }
    return true;
  }
  friend bool operator==(const Rule&, const Rule&) = default;
};

/// View over one rule's span of the SoA match pool. Iteration and
/// indexing yield `FieldMatch` by value; an implicit conversion
/// materializes a `std::vector<FieldMatch>` where the boundary type is
/// needed (RuleUpdate targets, diff pairing). Views are transient: any
/// mutation of the owning FlatRules invalidates them.
class MatchRange {
 public:
  MatchRange() = default;
  /// `mask_id` indexes into the owning table's interned `mask_pool`;
  /// masks repeat heavily (exact matches share one all-ones entry), so
  /// the per-match footprint is a 2-byte id, not an 8-byte mask.
  MatchRange(const std::uint8_t* field, const std::uint64_t* value,
             const std::uint16_t* mask_id, const std::uint64_t* mask_pool,
             std::size_t count) noexcept
      : field_(field), value_(value), mask_id_(mask_id),
        mask_pool_(mask_pool), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] FieldMatch operator[](std::size_t i) const noexcept {
    return {static_cast<FieldId>(field_[i]), value_[i],
            mask_pool_[mask_id_[i]]};
  }

  class iterator {
   public:
    using value_type = FieldMatch;
    using difference_type = std::ptrdiff_t;
    iterator() = default;
    iterator(const MatchRange* r, std::size_t i) noexcept : r_(r), i_(i) {}
    FieldMatch operator*() const noexcept { return (*r_)[i_]; }
    iterator& operator++() noexcept { ++i_; return *this; }
    iterator operator++(int) noexcept { iterator t = *this; ++i_; return t; }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.i_ == b.i_;
    }
   private:
    const MatchRange* r_ = nullptr;
    std::size_t i_ = 0;
  };
  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {this, count_}; }

  // NOLINTNEXTLINE(google-explicit-constructor): intentional bridge to
  // the boundary type so assignment sites stay mechanical.
  operator std::vector<FieldMatch>() const {
    std::vector<FieldMatch> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    return out;
  }

  [[nodiscard]] bool matches_key(const FlowKey& key) const noexcept {
    for (std::size_t i = 0; i < count_; ++i) {
      if ((key.values[field_[i]] & mask_pool_[mask_id_[i]]) != value_[i]) {
        return false;
      }
    }
    return true;
  }

  friend bool operator==(const MatchRange& a, const MatchRange& b) noexcept {
    if (a.count_ != b.count_) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const MatchRange& a,
                         const std::vector<FieldMatch>& b) noexcept {
    if (a.count_ != b.size()) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  const std::uint8_t* field_ = nullptr;
  const std::uint64_t* value_ = nullptr;
  const std::uint16_t* mask_id_ = nullptr;
  const std::uint64_t* mask_pool_ = nullptr;
  std::size_t count_ = 0;
};

/// 16-byte pooled action entry (vs 24 bytes for the boundary Action).
struct PackedAction {
  std::uint64_t value = 0;
  std::uint8_t kind = 0;  // Action::Kind
  std::uint8_t field = 0;
  std::uint8_t width_bits = 64;

  [[nodiscard]] Action unpack() const noexcept {
    return {static_cast<Action::Kind>(kind), static_cast<FieldId>(field),
            value, width_bits};
  }
};

/// View over one rule's span of the packed action pool; yields `Action`
/// by value.
class ActionRange {
 public:
  ActionRange() = default;
  ActionRange(const PackedAction* p, std::size_t count) noexcept
      : p_(p), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] Action operator[](std::size_t i) const noexcept {
    return p_[i].unpack();
  }

  class iterator {
   public:
    using value_type = Action;
    using difference_type = std::ptrdiff_t;
    iterator() = default;
    explicit iterator(const PackedAction* p) noexcept : p_(p) {}
    Action operator*() const noexcept { return p_->unpack(); }
    iterator& operator++() noexcept { ++p_; return *this; }
    iterator operator++(int) noexcept { iterator t = *this; ++p_; return t; }
    friend bool operator==(const iterator&, const iterator&) = default;
   private:
    const PackedAction* p_ = nullptr;
  };
  [[nodiscard]] iterator begin() const noexcept { return iterator(p_); }
  [[nodiscard]] iterator end() const noexcept {
    return iterator(p_ + count_);
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::vector<Action>() const {
    std::vector<Action> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    return out;
  }

  friend bool operator==(const ActionRange& a, const ActionRange& b) noexcept {
    if (a.count_ != b.count_) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const ActionRange& a,
                         const std::vector<Action>& b) noexcept {
    if (a.count_ != b.size()) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  const PackedAction* p_ = nullptr;
  std::size_t count_ = 0;
};

/// Proxy for one flattened rule, mirroring `Rule`'s members so consumer
/// code reads fields identically. Constructed on access (cheap);
/// invalidated by mutation of the owning FlatRules.
struct RuleView {
  std::uint32_t priority = 0;
  MatchRange matches;
  ActionRange actions;
  std::optional<std::size_t> goto_table;

  [[nodiscard]] bool matches_key(const FlowKey& key) const noexcept {
    return matches.matches_key(key);
  }

  [[nodiscard]] Rule to_rule() const {
    return {priority, matches, actions, goto_table};
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator Rule() const { return to_rule(); }

  friend bool operator==(const RuleView& a, const RuleView& b) noexcept {
    return a.priority == b.priority && a.goto_table == b.goto_table &&
           a.matches == b.matches && a.actions == b.actions;
  }
  friend bool operator==(const RuleView& a, const Rule& b) noexcept {
    return a.priority == b.priority && a.goto_table == b.goto_table &&
           a.matches == b.matches && a.actions == b.actions;
  }
};

/// Flattened rule container: SoA match pools (with masks interned into a
/// per-table dictionary — a 2-byte id per match) + packed action pool +
/// per-rule (offset, count) refs. Mutations append to the pools and
/// compact when erased spans accumulate; rule order is carried entirely
/// by the ref array, so a priority sort moves 20-byte refs, not rule
/// payloads. Equality is logical (per-rule content), independent of pool
/// layout, interning order, or garbage.
class FlatRules {
 public:
  static constexpr std::size_t kNpos = ~std::size_t{0};

  FlatRules() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): lets vector<Rule>
  // literals and aggregate TableSpec initializers keep working.
  FlatRules(const std::vector<Rule>& rules) {
    std::size_t matches = 0;
    std::size_t actions = 0;
    for (const Rule& r : rules) {
      matches += r.matches.size();
      actions += r.actions.size();
    }
    reserve(rules.size(), matches, actions);
    for (const Rule& r : rules) push_back(r);
  }
  FlatRules(std::initializer_list<Rule> rules) {
    reserve(rules.size());
    for (const Rule& r : rules) push_back(r);
  }

  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return refs_.empty(); }
  void clear() noexcept;
  /// Pre-sizes the ref array and, when the totals are known, the match
  /// and action pools — bulk builds then carry no growth slack.
  void reserve(std::size_t rules, std::size_t matches = 0,
               std::size_t actions = 0);

  [[nodiscard]] RuleView operator[](std::size_t i) const noexcept {
    const Ref& r = refs_[i];
    return {r.priority,
            MatchRange(mfield_.data() + r.match_off,
                       mvalue_.data() + r.match_off,
                       mmask_.data() + r.match_off, mask_pool_.data(),
                       r.match_count),
            ActionRange(acts_.data() + r.action_off, r.action_count),
            r.goto_plus1 == 0
                ? std::nullopt
                : std::optional<std::size_t>{r.goto_plus1 - 1}};
  }
  [[nodiscard]] RuleView front() const noexcept { return (*this)[0]; }
  [[nodiscard]] RuleView back() const noexcept {
    return (*this)[refs_.size() - 1];
  }

  [[nodiscard]] std::uint32_t priority_of(std::size_t i) const noexcept {
    return refs_[i].priority;
  }

  class iterator {
   public:
    using value_type = RuleView;
    using difference_type = std::ptrdiff_t;
    iterator() = default;
    iterator(const FlatRules* o, std::size_t i) noexcept : o_(o), i_(i) {}
    RuleView operator*() const noexcept { return (*o_)[i_]; }
    iterator& operator++() noexcept { ++i_; return *this; }
    iterator operator++(int) noexcept { iterator t = *this; ++i_; return t; }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.i_ == b.i_;
    }
   private:
    const FlatRules* o_ = nullptr;
    std::size_t i_ = 0;
  };
  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {this, size()}; }

  /// Appends a rule built from pool-ready pieces (no boundary Rule).
  void append(std::uint32_t priority, std::span<const FieldMatch> matches,
              std::span<const Action> actions,
              std::optional<std::size_t> goto_table);
  void push_back(const Rule& r) {
    append(r.priority, r.matches, r.actions, r.goto_table);
  }

  /// Replaces the rule at `pos` in place (position and index stable).
  void replace(std::size_t pos, const Rule& r);
  /// Inserts before `pos`; positions at/after `pos` shift by one.
  void insert(std::size_t pos, const Rule& r);
  /// Erases the rule at `pos`; later positions shift down by one.
  void erase(std::size_t pos);

  /// Inserts `r` where a stable priority-descending sort would place it
  /// (after existing equal-priority rules); returns the position.
  /// Requires the table to already be in compiled order.
  std::size_t insert_sorted(const Rule& r);
  /// Re-slots the (possibly just-replaced) rule at `pos` to the position
  /// a stable priority-descending sort would give it; returns the new
  /// position. O(shift) ref moves, pool payloads untouched.
  std::size_t reposition(std::size_t pos);

  /// Stable-sorts rule refs by priority descending (the compiled table
  /// order). Pool payloads do not move.
  void stable_sort_by_priority();

  /// Index of the first rule whose match vector equals `target`, or
  /// kNpos. Amortized O(1): a lazy open-addressing index over match
  /// vectors, point-maintained across replace/push_back and rebuilt
  /// after structural edits. Falls back to a linear scan when duplicate
  /// match vectors exist (first-match semantics).
  [[nodiscard]] std::size_t find_by_match(
      std::span<const FieldMatch> target) const;

  /// Materializes the boundary representation (legacy layout).
  [[nodiscard]] std::vector<Rule> to_rules() const;

  /// Heap bytes of refs and pools (capacity-based, like the table's
  /// accounting), including pool garbage not yet compacted.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  friend bool operator==(const FlatRules& a, const FlatRules& b) noexcept {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  struct Ref {
    std::uint32_t priority = 0;
    std::uint32_t match_off = 0;
    std::uint32_t action_off = 0;
    std::uint16_t match_count = 0;
    std::uint16_t action_count = 0;
    std::uint32_t goto_plus1 = 0;  // 0 = none
  };
  static_assert(sizeof(Ref) == 20);

  void maybe_compact();
  void compact();
  [[nodiscard]] std::uint16_t intern_mask(std::uint64_t mask);
  [[nodiscard]] std::uint64_t hash_match_span(
      std::span<const FieldMatch> m) const noexcept;
  [[nodiscard]] std::uint64_t hash_rule_matches(std::size_t pos)
      const noexcept;
  void build_index() const;
  void index_insert(std::size_t pos) const;
  void index_remove(std::size_t pos) const;
  [[nodiscard]] bool match_equals(std::size_t pos,
                                  std::span<const FieldMatch> m)
      const noexcept;

  std::vector<Ref> refs_;
  std::vector<std::uint8_t> mfield_;
  std::vector<std::uint64_t> mvalue_;
  std::vector<std::uint16_t> mmask_;   // ids into mask_pool_
  std::vector<std::uint64_t> mask_pool_;  // interned distinct masks
  std::vector<PackedAction> acts_;
  std::size_t match_garbage_ = 0;
  std::size_t action_garbage_ = 0;

  // Lazy match-vector index: slot = pos + 1, 0 empty, kTombstone dead.
  mutable std::vector<std::uint64_t> index_;
  mutable bool index_dirty_ = true;
  mutable bool index_dups_ = false;
  mutable std::size_t index_live_ = 0;
  mutable std::size_t index_dead_ = 0;
};

/// How a table's lookup should behave structurally (derived, not chosen).
enum class MatchProfile {
  kAllExact,       // every rule masks every declared field fully
  kSinglePrefix,   // exactly one field varies by prefix, rest exact
  kTernary,        // anything else
};

struct TableSpec {
  std::string name;
  /// Fields this table may match on (union over rules).
  std::vector<FieldId> fields;
  FlatRules rules;
  /// Default successor after a hit when the rule has no goto (linear
  /// chaining); nullopt ends the pipeline.
  std::optional<std::size_t> next;

  [[nodiscard]] MatchProfile profile() const;
  friend bool operator==(const TableSpec&, const TableSpec&) = default;
};

struct Program {
  std::vector<TableSpec> tables;
  std::size_t entry = 0;

  [[nodiscard]] std::size_t total_rules() const noexcept;
  /// Heap bytes of all tables' flattened rule storage.
  [[nodiscard]] std::size_t rule_memory_bytes() const noexcept;
  friend bool operator==(const Program&, const Program&) = default;
};

/// Heap bytes the same program costs in the legacy vector-of-Rule
/// layout (sizeof(Rule) per slot plus each rule's match/action vector
/// capacities), measured by materializing it — the honest same-run
/// baseline for `dp_bytes_per_rule`.
[[nodiscard]] std::size_t legacy_rule_bytes(const Program& program);

/// Attribute-name → FieldId assignment a compilation settled on. Builtin
/// header names resolve implicitly; the map records the metadata-register
/// assignments (`meta.*` and other non-wire attributes). Re-lowering a
/// single row against the map reproduces the compiler's output for that
/// row, which is what the incremental intent compiler patches with.
using FieldMap = std::map<std::string, FieldId, std::less<>>;

/// Lowers a core pipeline into a data-plane program.
/// Fails (kInvalidArgument) when an attribute name cannot be mapped and
/// no metadata register is free. When `field_map` is non-null it receives
/// the attribute→field assignment the compilation used.
[[nodiscard]] Result<Program> compile(const core::Pipeline& pipeline,
                                      FieldMap* field_map = nullptr);

/// Lowers one row of `schema` into a Rule exactly as compile() would:
/// masked matches in match-column order, specificity priority, actions in
/// action-column order ("out" → output action), and the given goto
/// target. Non-builtin attribute names must be present in `field_map`.
[[nodiscard]] Result<Rule> lower_row(
    const core::Schema& schema, const core::Row& row,
    const FieldMap& field_map,
    std::optional<std::size_t> goto_target = std::nullopt);

/// Result of pushing one packet through a switch model.
struct ExecResult {
  bool hit = false;
  std::uint64_t out_port = 0;
  std::uint32_t tables_visited = 0;
};

/// (table index, rule index) of one matched entry along an execution.
struct MatchedRule {
  std::size_t table = 0;
  std::size_t rule = 0;
};

/// Per-packet matched-rule scratch: one entry per pipeline stage, inline
/// up to 8 stages (deeper than any program the compiler emits), heap
/// beyond — so the counter path never allocates per packet.
using MatchedBuf = util::SmallVector<MatchedRule, 8>;

/// Reference executor: straightforward interpretation of the program
/// (linear scans). Switch models must agree with this on every packet.
/// When `matched` is non-null it receives the (table, rule) pairs the
/// packet hit, in order.
[[nodiscard]] ExecResult execute_reference(const Program& program,
                                           const FlowKey& key,
                                           MatchedBuf* matched = nullptr);

}  // namespace maton::dp
