// Data-plane programs: the lowered form of a core::Pipeline that switch
// models load and execute.
//
// A Program is a list of TableSpecs. Each table declares the fields it
// matches (with per-rule masks supporting exact, prefix and wildcard
// matching), its rules in priority order, and per-rule actions (output,
// set-field for header rewrites and metadata tags, goto-table).
//
// The compiler maps core attribute names onto the FieldId registry:
// well-known header names map directly, `meta.*` attributes are assigned
// to metadata registers, `out` becomes the output action, `mod_<field>`
// becomes a set-field action, and ValueCodec::kIpv4Prefix tokens are
// unpacked into value/mask prefix matches.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dataplane/flow_key.hpp"
#include "util/small_vector.hpp"
#include "util/status.hpp"

namespace maton::dp {

/// Masked single-field match: key.get(field) & mask == value.
struct FieldMatch {
  FieldId field = FieldId::kInPort;
  std::uint64_t value = 0;
  std::uint64_t mask = ~std::uint64_t{0};

  [[nodiscard]] bool matches(const FlowKey& key) const noexcept {
    return (key.get(field) & mask) == value;
  }
  friend bool operator==(const FieldMatch&, const FieldMatch&) = default;
};

struct Action {
  enum class Kind { kOutput, kSetField };
  Kind kind = Kind::kOutput;
  FieldId field = FieldId::kMeta0;  // for kSetField
  std::uint64_t value = 0;          // port for kOutput, new value otherwise
  /// Declared width of a kSetField write in bits: only the low
  /// `width_bits` bits of `field` are defined after the write. Lowering
  /// sets it from the source attribute; the dataflow pass uses it to
  /// catch reads of partially-initialized metadata (MA302). 64 means
  /// "whole field" and is the conservative default.
  std::uint8_t width_bits = 64;

  friend bool operator==(const Action&, const Action&) = default;
};

struct Rule {
  std::uint32_t priority = 0;
  std::vector<FieldMatch> matches;
  std::vector<Action> actions;
  /// Next table index on hit; nullopt falls through to the table default.
  std::optional<std::size_t> goto_table;

  [[nodiscard]] bool matches_key(const FlowKey& key) const noexcept {
    for (const FieldMatch& m : matches) {
      if (!m.matches(key)) return false;
    }
    return true;
  }
  friend bool operator==(const Rule&, const Rule&) = default;
};

/// How a table's lookup should behave structurally (derived, not chosen).
enum class MatchProfile {
  kAllExact,       // every rule masks every declared field fully
  kSinglePrefix,   // exactly one field varies by prefix, rest exact
  kTernary,        // anything else
};

struct TableSpec {
  std::string name;
  /// Fields this table may match on (union over rules).
  std::vector<FieldId> fields;
  std::vector<Rule> rules;
  /// Default successor after a hit when the rule has no goto (linear
  /// chaining); nullopt ends the pipeline.
  std::optional<std::size_t> next;

  [[nodiscard]] MatchProfile profile() const;
  friend bool operator==(const TableSpec&, const TableSpec&) = default;
};

struct Program {
  std::vector<TableSpec> tables;
  std::size_t entry = 0;

  [[nodiscard]] std::size_t total_rules() const noexcept;
  friend bool operator==(const Program&, const Program&) = default;
};

/// Attribute-name → FieldId assignment a compilation settled on. Builtin
/// header names resolve implicitly; the map records the metadata-register
/// assignments (`meta.*` and other non-wire attributes). Re-lowering a
/// single row against the map reproduces the compiler's output for that
/// row, which is what the incremental intent compiler patches with.
using FieldMap = std::map<std::string, FieldId, std::less<>>;

/// Lowers a core pipeline into a data-plane program.
/// Fails (kInvalidArgument) when an attribute name cannot be mapped and
/// no metadata register is free. When `field_map` is non-null it receives
/// the attribute→field assignment the compilation used.
[[nodiscard]] Result<Program> compile(const core::Pipeline& pipeline,
                                      FieldMap* field_map = nullptr);

/// Lowers one row of `schema` into a Rule exactly as compile() would:
/// masked matches in match-column order, specificity priority, actions in
/// action-column order ("out" → output action), and the given goto
/// target. Non-builtin attribute names must be present in `field_map`.
[[nodiscard]] Result<Rule> lower_row(
    const core::Schema& schema, const core::Row& row,
    const FieldMap& field_map,
    std::optional<std::size_t> goto_target = std::nullopt);

/// Result of pushing one packet through a switch model.
struct ExecResult {
  bool hit = false;
  std::uint64_t out_port = 0;
  std::uint32_t tables_visited = 0;
};

/// (table index, rule index) of one matched entry along an execution.
struct MatchedRule {
  std::size_t table = 0;
  std::size_t rule = 0;
};

/// Per-packet matched-rule scratch: one entry per pipeline stage, inline
/// up to 8 stages (deeper than any program the compiler emits), heap
/// beyond — so the counter path never allocates per packet.
using MatchedBuf = util::SmallVector<MatchedRule, 8>;

/// Reference executor: straightforward interpretation of the program
/// (linear scans). Switch models must agree with this on every packet.
/// When `matched` is non-null it receives the (table, rule) pairs the
/// packet hit, in order.
[[nodiscard]] ExecResult execute_reference(const Program& program,
                                           const FlowKey& key,
                                           MatchedBuf* matched = nullptr);

}  // namespace maton::dp
