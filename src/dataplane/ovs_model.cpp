// OVS-style flow-cache model.
//
// §5: "the [OVS] datapath collapses OpenFlow tables into a single flow
// cache; in other words, OVS explicitly denormalizes the pipeline prior
// to encoding it into the datapath." The model runs the multi-table
// program only on the slow path; the traversal accumulates the megaflow
// mask (the union of header bits the decision depended on) and installs a
// collapsed single-lookup cache entry. Subsequent packets of the flow hit
// the cache, so steady-state cost is one masked lookup regardless of the
// pipeline representation.
#include <algorithm>
#include <array>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/classifier_detail.hpp"
#include "dataplane/switch.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

/// A dynamic tuple-space cache of collapsed megaflow entries.
class MegaflowCache {
 public:
  struct Entry {
    std::array<std::uint64_t, kNumFields> values{};
    ExecResult result;
    /// Rules whose lookup this megaflow collapses; their flow counters
    /// are credited on every cache hit (OVS stats attribution).
    std::vector<MatchedRule> contributors;
    /// Ordinal of the subtable holding this entry (probe order); lets
    /// the batch path decide whether a fresh entry shadows a
    /// previously-probed winner without re-running the full probe.
    std::size_t subtable = 0;
  };

  /// Returns the inserted entry; the pointer stays valid until clear()
  /// (entries live in deques, and container moves preserve references).
  const Entry* insert(const std::array<std::uint64_t, kNumFields>& mask,
                      const FlowKey& key, const ExecResult& result,
                      std::span<const MatchedRule> contributors) {
    SubTable* sub = nullptr;
    std::size_t ordinal = 0;
    for (std::size_t s = 0; s < subtables_.size(); ++s) {
      if (subtables_[s].mask == mask) {
        sub = &subtables_[s];
        ordinal = s;
        break;
      }
    }
    if (sub == nullptr) {
      subtables_.push_back({mask, {}});
      sub = &subtables_.back();
      ordinal = subtables_.size() - 1;
    }
    Entry entry;
    for (std::size_t f = 0; f < kNumFields; ++f) {
      entry.values[f] = key.values[f] & mask[f];
    }
    entry.result = result;
    entry.contributors.assign(contributors.begin(), contributors.end());
    entry.subtable = ordinal;
    auto& bucket = sub->entries[detail::hash_words(entry.values)];
    bucket.push_back(std::move(entry));
    ++size_;
    return &bucket.back();
  }

  [[nodiscard]] const Entry* lookup(const FlowKey& key) const {
    std::array<std::uint64_t, kNumFields> masked{};
    for (const SubTable& sub : subtables_) {
      for (std::size_t f = 0; f < kNumFields; ++f) {
        masked[f] = key.values[f] & sub.mask[f];
      }
      const auto it = sub.entries.find(detail::hash_words(masked));
      if (it == sub.entries.end()) continue;
      for (const Entry& entry : it->second) {
        if (entry.values == masked) return &entry;
      }
    }
    return nullptr;
  }

  /// Subtable-hoisted batch probe: each megaflow mask is applied across
  /// the whole batch before moving to the next subtable, so the mask and
  /// its hash-table metadata are fetched once per batch instead of once
  /// per packet. First matching subtable wins per key — the scalar probe
  /// order.
  void lookup_batch(std::span<const FlowKey> keys,
                    std::span<const Entry*> out) const {
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = nullptr;
    std::array<std::uint64_t, kNumFields> masked{};
    for (const SubTable& sub : subtables_) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (out[i] != nullptr) continue;
        for (std::size_t f = 0; f < kNumFields; ++f) {
          masked[f] = keys[i].values[f] & sub.mask[f];
        }
        const auto it = sub.entries.find(detail::hash_words(masked));
        if (it == sub.entries.end()) continue;
        for (const Entry& entry : it->second) {
          if (entry.values == masked) {
            out[i] = &entry;
            break;
          }
        }
      }
    }
  }

  /// Repairs a pre-computed probe after `inserted` joined the cache:
  /// probed[j] is updated for every key the new entry both masked-matches
  /// and out-ranks (an earlier subtable than the current winner, or any
  /// subtable when the probe missed). Restores the invariant
  /// probed[j] == lookup(keys[j]) without re-probing every subtable.
  void reprobe_after_insert(const Entry* inserted,
                            std::span<const FlowKey> keys,
                            std::span<const Entry*> probed) const {
    const auto& mask = subtables_[inserted->subtable].mask;
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (probed[j] != nullptr &&
          probed[j]->subtable <= inserted->subtable) {
        continue;  // current winner probes earlier; cannot be shadowed
      }
      bool match = true;
      for (std::size_t f = 0; f < kNumFields; ++f) {
        if ((keys[j].values[f] & mask[f]) != inserted->values[f]) {
          match = false;
          break;
        }
      }
      if (match) probed[j] = inserted;
    }
  }

  void clear() {
    subtables_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct SubTable {
    std::array<std::uint64_t, kNumFields> mask{};
    /// Deque-backed buckets: growing a bucket must not move existing
    /// entries — the batch path holds Entry pointers across inserts.
    std::unordered_map<std::uint64_t, std::deque<Entry>> entries;
  };
  std::vector<SubTable> subtables_;
  std::size_t size_ = 0;
};

class OvsModel final : public OvsModelInterface {
 public:
  OvsModel() {
    auto& registry = obs::MetricRegistry::global();
    const obs::Labels labels{{"model", "ovs"}};
    mf_hits_ = &registry.counter("maton_dp_megaflow_hits_total", labels);
    mf_misses_ = &registry.counter("maton_dp_megaflow_misses_total", labels);
    mf_flushes_ =
        &registry.counter("maton_dp_megaflow_flushes_total", labels);
    mf_occupancy_ =
        &registry.gauge("maton_dp_megaflow_occupancy", labels);
    chunk_size_ =
        &registry.histogram("maton_dp_batch_chunk_size", labels);
  }

  Status load(Program program) override {
    program_ = std::move(program);
    cache_.clear();
    stats_ = {};
    counters_.reset(program_);
    mf_occupancy_->set(0.0);
    return Status::ok();
  }

  ExecResult process(const FlowKey& key) override {
    if (const auto* cached = cache_.lookup(key)) {
      ++stats_.cache_hits;
      mf_hits_->add();
      counters_.bump_all(cached->contributors);
      ExecResult r = cached->result;
      r.tables_visited = 1;  // one cache lookup
      return r;
    }
    ++stats_.cache_misses;
    mf_misses_->add();
    matched_scratch_.clear();
    const auto [result, mask] = slow_path(key, &matched_scratch_);
    counters_.bump_all(matched_scratch_.span());
    if (result.hit) {
      cache_.insert(mask, key, result, matched_scratch_.span());
      stats_.cache_entries = cache_.size();
      mf_occupancy_->set(static_cast<double>(cache_.size()));
    }
    return result;
  }

  /// Batched execution: the megaflow cache is probed for a whole chunk up
  /// front (subtable-hoisted); packets the probe resolved take the hit
  /// path directly. A slow-path insert could make the pre-computed probe
  /// stale — the fresh entry may shadow (or newly cover) later keys of
  /// the chunk — so after every insert the probe is *repaired* for just
  /// the chunk tail (one masked compare per remaining key) instead of
  /// demoting the tail to scalar probing. This keeps the invariant
  /// probed[j] == lookup(keys[j]) at all times, so results and stats stay
  /// bit-identical to scalar processing while the chunk keeps the hoisted
  /// fast path even across cold-start inserts.
  void process_batch(std::span<const FlowKey> keys,
                     std::span<ExecResult> results) override {
    expects(results.size() >= keys.size(),
            "process_batch result span too small");
    std::array<const MegaflowCache::Entry*, detail::kBatchChunk> probed;
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      cache_.lookup_batch(keys.subspan(base, n), {probed.data(), n});
      chunk_size_->observe(static_cast<double>(n));
      std::uint64_t chunk_hits = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (probed[i] != nullptr) {
          ++stats_.cache_hits;
          ++chunk_hits;
          counters_.bump_all(probed[i]->contributors);
          ExecResult r = probed[i]->result;
          r.tables_visited = 1;
          results[base + i] = r;
          continue;
        }
        // Miss: the probe invariant says a scalar lookup would miss too,
        // so go straight to the slow path.
        ++stats_.cache_misses;
        mf_misses_->add();
        matched_scratch_.clear();
        const auto [result, mask] = slow_path(keys[base + i],
                                              &matched_scratch_);
        counters_.bump_all(matched_scratch_.span());
        results[base + i] = result;
        if (!result.hit) continue;
        const MegaflowCache::Entry* entry = cache_.insert(
            mask, keys[base + i], result, matched_scratch_.span());
        stats_.cache_entries = cache_.size();
        mf_occupancy_->set(static_cast<double>(cache_.size()));
        cache_.reprobe_after_insert(
            entry, keys.subspan(base + i + 1, n - i - 1),
            {probed.data() + i + 1, n - i - 1});
      }
      // Slow-path misses were counted inline; the hoisted fast path
      // credits its hits once per chunk.
      if (chunk_hits != 0) mf_hits_->add(chunk_hits);
    }
  }

  Status apply_update(const RuleUpdate& update) override {
    ApplyOutcome outcome;
    if (Status s = apply_update_to_program(program_, update, &outcome);
        !s.is_ok()) {
      return s;
    }
    carry_counters(update.table, outcome);
    // Revalidation model: any OpenFlow change invalidates the datapath
    // cache wholesale.
    cache_.clear();
    ++stats_.cache_flushes;
    stats_.cache_entries = 0;
    mf_flushes_->add();
    mf_occupancy_->set(0.0);
    return Status::ok();
  }

  /// Batched updates: rule mutation, counter carry-over, and the flush
  /// *statistics* run per update (scalar semantics — each applied update
  /// is one revalidation), but the cache teardown itself happens once for
  /// the whole batch instead of once per update.
  Status apply_updates(std::span<const RuleUpdate> updates) override {
    Status result = Status::ok();
    bool any_applied = false;
    for (const RuleUpdate& update : updates) {
      ApplyOutcome outcome;
      if (Status s = apply_update_to_program(program_, update, &outcome);
          !s.is_ok()) {
        result = s;
        break;
      }
      carry_counters(update.table, outcome);
      ++stats_.cache_flushes;
      mf_flushes_->add();
      any_applied = true;
    }
    if (any_applied) {
      cache_.clear();
      stats_.cache_entries = 0;
      mf_occupancy_->set(0.0);
    }
    return result;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ovs";
  }
  /// Userspace OVS datapath bookkeeping per packet.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 160.0;
  }
  [[nodiscard]] OvsStats stats() const noexcept override { return stats_; }
  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override {
    return counters_.read(program_, table, target);
  }

 private:
  void carry_counters(std::size_t table, const ApplyOutcome& outcome) {
    switch (outcome.kind) {
      case ApplyOutcome::Kind::kInserted:
        counters_.on_insert(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kRemoved:
        counters_.on_remove(table, outcome.index);
        break;
      case ApplyOutcome::Kind::kModifiedInPlace:
        break;  // position unchanged; the rule inherits its count
      case ApplyOutcome::Kind::kModifiedMoved:
        counters_.on_move(table, outcome.index, outcome.moved_to);
        break;
    }
  }

  /// Full pipeline traversal tracking the megaflow mask: bits of the
  /// *original* packet the decision depended on. Matches on fields
  /// rewritten earlier in the pipeline (metadata tags) do not widen the
  /// mask — their information content is already covered by the fields
  /// that determined the rewrite.
  [[nodiscard]] std::pair<ExecResult, std::array<std::uint64_t, kNumFields>>
  slow_path(const FlowKey& key, MatchedBuf* matched) const {
    ExecResult result;
    std::array<std::uint64_t, kNumFields> mask{};
    std::uint32_t written = 0;

    FlowKey state = key;
    std::optional<std::size_t> current =
        program_.tables.empty() ? std::nullopt
                                : std::optional{program_.entry};
    while (current.has_value()) {
      const std::size_t idx = *current;
      expects(idx < program_.tables.size(), "jump out of range");
      expects(result.tables_visited <= program_.tables.size(),
              "table graph cycle during slow path");
      ++result.tables_visited;
      const TableSpec& table = program_.tables[idx];

      std::optional<RuleView> hit;
      for (std::size_t r = 0; r < table.rules.size(); ++r) {
        if (table.rules[r].matches_key(state)) {
          hit = table.rules[r];
          if (matched != nullptr) matched->push_back({idx, r});
          break;
        }
      }
      if (!hit.has_value()) {
        result.hit = false;
        result.out_port = 0;
        return {result, mask};
      }
      for (const FieldMatch m : hit->matches) {
        if (((written >> field_index(m.field)) & 1u) == 0) {
          mask[field_index(m.field)] |= m.mask;
        }
      }
      for (const Action action : hit->actions) {
        if (action.kind == Action::Kind::kOutput) {
          result.out_port = action.value;
        } else {
          state.set(action.field, action.value);
          written |= (1u << field_index(action.field));
        }
      }
      current = hit->goto_table.has_value() ? hit->goto_table : table.next;
    }
    result.hit = true;
    return {result, mask};
  }

  Program program_;
  MegaflowCache cache_;
  OvsStats stats_;
  RuleCounters counters_;
  obs::Counter* mf_hits_ = nullptr;
  obs::Counter* mf_misses_ = nullptr;
  obs::Counter* mf_flushes_ = nullptr;
  obs::Gauge* mf_occupancy_ = nullptr;
  obs::Histogram* chunk_size_ = nullptr;
  /// Reused per packet; inline up to 8 pipeline stages (no allocation).
  MatchedBuf matched_scratch_;
};

}  // namespace

std::unique_ptr<SwitchModel> make_ovs_model() {
  return std::make_unique<OvsModel>();
}

}  // namespace maton::dp
