// OVS-style flow-cache model.
//
// §5: "the [OVS] datapath collapses OpenFlow tables into a single flow
// cache; in other words, OVS explicitly denormalizes the pipeline prior
// to encoding it into the datapath." The model runs the multi-table
// program only on the slow path; the traversal accumulates the megaflow
// mask (the union of header bits the decision depended on) and installs a
// collapsed single-lookup cache entry. Subsequent packets of the flow hit
// the cache, so steady-state cost is one masked lookup regardless of the
// pipeline representation.
#include <unordered_map>
#include <vector>

#include "dataplane/classifier_detail.hpp"
#include "dataplane/switch.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

/// A dynamic tuple-space cache of collapsed megaflow entries.
class MegaflowCache {
 public:
  struct Entry {
    std::array<std::uint64_t, kNumFields> values{};
    ExecResult result;
    /// Rules whose lookup this megaflow collapses; their flow counters
    /// are credited on every cache hit (OVS stats attribution).
    std::vector<MatchedRule> contributors;
  };

  void insert(const std::array<std::uint64_t, kNumFields>& mask,
              const FlowKey& key, const ExecResult& result,
              std::vector<MatchedRule> contributors) {
    SubTable* sub = nullptr;
    for (auto& candidate : subtables_) {
      if (candidate.mask == mask) {
        sub = &candidate;
        break;
      }
    }
    if (sub == nullptr) {
      subtables_.push_back({mask, {}});
      sub = &subtables_.back();
    }
    Entry entry;
    for (std::size_t f = 0; f < kNumFields; ++f) {
      entry.values[f] = key.values[f] & mask[f];
    }
    entry.result = result;
    entry.contributors = std::move(contributors);
    sub->entries[detail::hash_words(entry.values)].push_back(std::move(entry));
    ++size_;
  }

  [[nodiscard]] const Entry* lookup(const FlowKey& key) const {
    std::array<std::uint64_t, kNumFields> masked{};
    for (const SubTable& sub : subtables_) {
      for (std::size_t f = 0; f < kNumFields; ++f) {
        masked[f] = key.values[f] & sub.mask[f];
      }
      const auto it = sub.entries.find(detail::hash_words(masked));
      if (it == sub.entries.end()) continue;
      for (const Entry& entry : it->second) {
        if (entry.values == masked) return &entry;
      }
    }
    return nullptr;
  }

  void clear() {
    subtables_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct SubTable {
    std::array<std::uint64_t, kNumFields> mask{};
    std::unordered_map<std::uint64_t, std::vector<Entry>> entries;
  };
  std::vector<SubTable> subtables_;
  std::size_t size_ = 0;
};

class OvsModel final : public OvsModelInterface {
 public:
  Status load(Program program) override {
    program_ = std::move(program);
    cache_.clear();
    stats_ = {};
    counters_.reset(program_);
    return Status::ok();
  }

  ExecResult process(const FlowKey& key) override {
    if (const auto* cached = cache_.lookup(key)) {
      ++stats_.cache_hits;
      counters_.bump_all(cached->contributors);
      ExecResult r = cached->result;
      r.tables_visited = 1;  // one cache lookup
      return r;
    }
    ++stats_.cache_misses;
    std::vector<MatchedRule> matched;
    const auto [result, mask] = slow_path(key, &matched);
    counters_.bump_all(matched);
    if (result.hit) {
      cache_.insert(mask, key, result, std::move(matched));
      stats_.cache_entries = cache_.size();
    }
    return result;
  }

  Status apply_update(const RuleUpdate& update) override {
    const std::vector<Rule> old_rules =
        update.table < program_.tables.size()
            ? program_.tables[update.table].rules
            : std::vector<Rule>{};
    if (Status s = apply_update_to_program(program_, update); !s.is_ok()) {
      return s;
    }
    counters_.carry_over(update.table, old_rules,
                         program_.tables[update.table].rules, update);
    // Revalidation model: any OpenFlow change invalidates the datapath
    // cache wholesale.
    cache_.clear();
    ++stats_.cache_flushes;
    stats_.cache_entries = 0;
    return Status::ok();
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ovs";
  }
  /// Userspace OVS datapath bookkeeping per packet.
  [[nodiscard]] double per_packet_overhead_ns() const noexcept override {
    return 160.0;
  }
  [[nodiscard]] OvsStats stats() const noexcept override { return stats_; }
  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override {
    return counters_.read(program_, table, target);
  }

 private:
  /// Full pipeline traversal tracking the megaflow mask: bits of the
  /// *original* packet the decision depended on. Matches on fields
  /// rewritten earlier in the pipeline (metadata tags) do not widen the
  /// mask — their information content is already covered by the fields
  /// that determined the rewrite.
  [[nodiscard]] std::pair<ExecResult, std::array<std::uint64_t, kNumFields>>
  slow_path(const FlowKey& key, std::vector<MatchedRule>* matched) const {
    ExecResult result;
    std::array<std::uint64_t, kNumFields> mask{};
    std::uint32_t written = 0;

    FlowKey state = key;
    std::optional<std::size_t> current =
        program_.tables.empty() ? std::nullopt
                                : std::optional{program_.entry};
    while (current.has_value()) {
      const std::size_t idx = *current;
      expects(idx < program_.tables.size(), "jump out of range");
      expects(result.tables_visited <= program_.tables.size(),
              "table graph cycle during slow path");
      ++result.tables_visited;
      const TableSpec& table = program_.tables[idx];

      const Rule* hit = nullptr;
      for (std::size_t r = 0; r < table.rules.size(); ++r) {
        if (table.rules[r].matches_key(state)) {
          hit = &table.rules[r];
          if (matched != nullptr) matched->push_back({idx, r});
          break;
        }
      }
      if (hit == nullptr) {
        result.hit = false;
        result.out_port = 0;
        return {result, mask};
      }
      for (const FieldMatch& m : hit->matches) {
        if (((written >> field_index(m.field)) & 1u) == 0) {
          mask[field_index(m.field)] |= m.mask;
        }
      }
      for (const Action& action : hit->actions) {
        if (action.kind == Action::Kind::kOutput) {
          result.out_port = action.value;
        } else {
          state.set(action.field, action.value);
          written |= (1u << field_index(action.field));
        }
      }
      current = hit->goto_table.has_value() ? hit->goto_table : table.next;
    }
    result.hit = true;
    return {result, mask};
  }

  Program program_;
  MegaflowCache cache_;
  OvsStats stats_;
  RuleCounters counters_;
};

}  // namespace

std::unique_ptr<SwitchModel> make_ovs_model() {
  return std::make_unique<OvsModel>();
}

}  // namespace maton::dp
