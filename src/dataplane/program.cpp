#include "dataplane/program.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>

#include "util/contract.hpp"

namespace maton::dp {

namespace {

[[nodiscard]] constexpr std::uint64_t full_mask(FieldId field) noexcept {
  return field_full_mask(field);
}

/// True when `mask` is a prefix mask within the field's width
/// (contiguous high ones, contiguous low zeros).
[[nodiscard]] bool is_prefix_mask(FieldId field, std::uint64_t mask) {
  const std::uint64_t full = full_mask(field);
  if ((mask & ~full) != 0) return false;
  const std::uint64_t low_zeros = ~mask & full;
  return (low_zeros & (low_zeros + 1)) == 0;
}

/// Maps well-known attribute names onto wire fields.
std::optional<FieldId> builtin_field(std::string_view name) {
  if (name == "in_port") return FieldId::kInPort;
  if (name == "eth_src" || name == "mod_smac") return FieldId::kEthSrc;
  if (name == "eth_dst" || name == "mod_dmac") return FieldId::kEthDst;
  if (name == "eth_type") return FieldId::kEthType;
  if (name == "vlan") return FieldId::kVlan;
  if (name == "ip_src") return FieldId::kIpSrc;
  if (name == "ip_dst") return FieldId::kIpDst;
  if (name == "ip_proto") return FieldId::kIpProto;
  if (name == "ip_ttl" || name == "mod_ttl") return FieldId::kIpTtl;
  if (name == "tcp_src") return FieldId::kTcpSrc;
  if (name == "tcp_dst") return FieldId::kTcpDst;
  return std::nullopt;
}

/// Attribute-name → FieldId assignment shared across the whole program,
/// allocating metadata registers for names without a wire field.
class FieldAllocator {
 public:
  Result<FieldId> resolve(const std::string& name) {
    if (const auto builtin = builtin_field(name)) return *builtin;
    const auto it = assigned_.find(name);
    if (it != assigned_.end()) return it->second;
    if (next_meta_ > field_index(FieldId::kMeta3)) {
      return invalid_argument(
          "out of metadata registers for attribute '" + name + "'");
    }
    const FieldId id = static_cast<FieldId>(next_meta_++);
    assigned_.emplace(name, id);
    return id;
  }

  [[nodiscard]] const FieldMap& assigned() const noexcept {
    return assigned_;
  }

 private:
  FieldMap assigned_;
  std::size_t next_meta_ = field_index(FieldId::kMeta0);
};

/// Converts one core cell into a masked match according to its codec.
FieldMatch lower_match(FieldId field, const core::Attribute& attr,
                       core::Value v) {
  FieldMatch m;
  m.field = field;
  if (attr.codec == core::ValueCodec::kIpv4Prefix) {
    const auto addr = static_cast<std::uint32_t>(v >> 8);
    const unsigned plen = static_cast<unsigned>(v & 0xff);
    const unsigned width = field_width(field);
    expects(plen <= width, "prefix length exceeds field width");
    m.mask = plen == 0
                 ? 0
                 : (full_mask(field) << (width - plen)) & full_mask(field);
    m.value = addr & m.mask;
  } else {
    m.mask = full_mask(field);
    m.value = v & m.mask;
  }
  return m;
}

/// One row → one Rule, given the pre-resolved column→field assignment.
Rule lower_row_resolved(const core::Schema& schema, const core::Row& row,
                        const std::vector<FieldId>& col_field,
                        std::optional<std::size_t> goto_target) {
  Rule rule;
  std::uint32_t specificity = 0;
  for (std::size_t c : schema.match_set()) {
    const FieldMatch m = lower_match(col_field[c], schema.at(c), row[c]);
    specificity += static_cast<std::uint32_t>(std::popcount(m.mask));
    rule.matches.push_back(m);
  }
  // Longest-prefix-first semantics: more specific rules win.
  rule.priority = specificity;

  for (std::size_t c : schema.action_set()) {
    const core::Attribute& attr = schema.at(c);
    if (attr.name == "out") {
      rule.actions.push_back({Action::Kind::kOutput, FieldId::kMeta0, row[c]});
    } else {
      Action set{Action::Kind::kSetField, col_field[c], row[c]};
      // Only the attribute's declared bits are defined by this write;
      // the dataflow pass flags wider reads (MA302).
      set.width_bits = static_cast<std::uint8_t>(std::min<unsigned>(
          attr.width_bits, field_width(col_field[c])));
      rule.actions.push_back(set);
    }
  }
  rule.goto_table = goto_target;
  return rule;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlatRules

void FlatRules::clear() noexcept {
  refs_.clear();
  mfield_.clear();
  mvalue_.clear();
  mmask_.clear();
  mask_pool_.clear();
  acts_.clear();
  match_garbage_ = action_garbage_ = 0;
  index_.clear();
  index_dirty_ = true;
  index_dups_ = false;
  index_live_ = index_dead_ = 0;
}

void FlatRules::reserve(std::size_t rules, std::size_t matches,
                        std::size_t actions) {
  refs_.reserve(rules);
  if (matches > 0) {
    mfield_.reserve(matches);
    mvalue_.reserve(matches);
    mmask_.reserve(matches);
  }
  if (actions > 0) acts_.reserve(actions);
}

std::uint16_t FlatRules::intern_mask(std::uint64_t mask) {
  // Backward scan: real programs use a handful of masks (one all-ones
  // entry for every exact match, a few prefix masks), and the hot mask
  // is almost always the most recent one.
  for (std::size_t i = mask_pool_.size(); i-- > 0;) {
    if (mask_pool_[i] == mask) return static_cast<std::uint16_t>(i);
  }
  expects(mask_pool_.size() < 65536, "FlatRules mask pool overflow");
  mask_pool_.push_back(mask);
  return static_cast<std::uint16_t>(mask_pool_.size() - 1);
}

void FlatRules::append(std::uint32_t priority,
                       std::span<const FieldMatch> matches,
                       std::span<const Action> actions,
                       std::optional<std::size_t> goto_table) {
  Ref ref;
  ref.priority = priority;
  ref.match_off = static_cast<std::uint32_t>(mfield_.size());
  ref.match_count = static_cast<std::uint16_t>(matches.size());
  ref.action_off = static_cast<std::uint32_t>(acts_.size());
  ref.action_count = static_cast<std::uint16_t>(actions.size());
  ref.goto_plus1 =
      goto_table.has_value()
          ? static_cast<std::uint32_t>(*goto_table) + 1
          : 0;
  for (const FieldMatch& m : matches) {
    mfield_.push_back(static_cast<std::uint8_t>(field_index(m.field)));
    mvalue_.push_back(m.value);
    mmask_.push_back(intern_mask(m.mask));
  }
  for (const Action& a : actions) {
    acts_.push_back({a.value, static_cast<std::uint8_t>(a.kind),
                     static_cast<std::uint8_t>(field_index(a.field)),
                     a.width_bits});
  }
  refs_.push_back(ref);
  if (!index_dirty_) index_insert(refs_.size() - 1);
}

void FlatRules::replace(std::size_t pos, const Rule& r) {
  expects(pos < refs_.size(), "FlatRules::replace out of range");
  if (!index_dirty_) index_remove(pos);
  Ref& ref = refs_[pos];
  match_garbage_ += ref.match_count;
  action_garbage_ += ref.action_count;
  ref.priority = r.priority;
  ref.goto_plus1 = r.goto_table.has_value()
                       ? static_cast<std::uint32_t>(*r.goto_table) + 1
                       : 0;
  ref.match_off = static_cast<std::uint32_t>(mfield_.size());
  ref.match_count = static_cast<std::uint16_t>(r.matches.size());
  for (const FieldMatch& m : r.matches) {
    mfield_.push_back(static_cast<std::uint8_t>(field_index(m.field)));
    mvalue_.push_back(m.value);
    mmask_.push_back(intern_mask(m.mask));
  }
  ref.action_off = static_cast<std::uint32_t>(acts_.size());
  ref.action_count = static_cast<std::uint16_t>(r.actions.size());
  for (const Action& a : r.actions) {
    acts_.push_back({a.value, static_cast<std::uint8_t>(a.kind),
                     static_cast<std::uint8_t>(field_index(a.field)),
                     a.width_bits});
  }
  if (!index_dirty_) index_insert(pos);
  maybe_compact();
}

void FlatRules::insert(std::size_t pos, const Rule& r) {
  expects(pos <= refs_.size(), "FlatRules::insert out of range");
  push_back(r);  // appends pool payload + ref at the end
  Ref ref = refs_.back();
  refs_.pop_back();
  refs_.insert(refs_.begin() + static_cast<std::ptrdiff_t>(pos), ref);
  index_dirty_ = true;  // positions after `pos` shifted
}

void FlatRules::erase(std::size_t pos) {
  expects(pos < refs_.size(), "FlatRules::erase out of range");
  match_garbage_ += refs_[pos].match_count;
  action_garbage_ += refs_[pos].action_count;
  refs_.erase(refs_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_dirty_ = true;  // positions after `pos` shifted
  maybe_compact();
}

std::size_t FlatRules::insert_sorted(const Rule& r) {
  // Stable semantics: the new rule lands after every rule with priority
  // >= its own (what push_back + stable_sort produced).
  const auto it = std::upper_bound(
      refs_.begin(), refs_.end(), r.priority,
      [](std::uint32_t p, const Ref& ref) { return p > ref.priority; });
  const std::size_t pos =
      static_cast<std::size_t>(std::distance(refs_.begin(), it));
  insert(pos, r);
  return pos;
}

std::size_t FlatRules::reposition(std::size_t pos) {
  expects(pos < refs_.size(), "FlatRules::reposition out of range");
  const std::uint32_t p = refs_[pos].priority;
  if (p > (pos == 0 ? ~std::uint32_t{0} : refs_[pos - 1].priority)) {
    // Moved up: stable sort puts it after the existing run of rules with
    // priority >= p that precede it.
    const auto it = std::upper_bound(
        refs_.begin(), refs_.begin() + static_cast<std::ptrdiff_t>(pos), p,
        [](std::uint32_t pr, const Ref& ref) { return pr > ref.priority; });
    const std::size_t target =
        static_cast<std::size_t>(std::distance(refs_.begin(), it));
    const Ref moved = refs_[pos];
    std::move_backward(refs_.begin() + static_cast<std::ptrdiff_t>(target),
                       refs_.begin() + static_cast<std::ptrdiff_t>(pos),
                       refs_.begin() + static_cast<std::ptrdiff_t>(pos + 1));
    refs_[target] = moved;
    index_dirty_ = true;
    return target;
  }
  if (pos + 1 < refs_.size() && refs_[pos + 1].priority > p) {
    // Moved down: stable sort puts it before the rules with priority
    // > p that follow, and before the equal-priority run after them.
    const auto it = std::lower_bound(
        refs_.begin() + static_cast<std::ptrdiff_t>(pos + 1), refs_.end(), p,
        [](const Ref& ref, std::uint32_t pr) { return ref.priority > pr; });
    const std::size_t target =
        static_cast<std::size_t>(std::distance(refs_.begin(), it)) - 1;
    const Ref moved = refs_[pos];
    std::move(refs_.begin() + static_cast<std::ptrdiff_t>(pos + 1),
              refs_.begin() + static_cast<std::ptrdiff_t>(target + 1),
              refs_.begin() + static_cast<std::ptrdiff_t>(pos));
    refs_[target] = moved;
    index_dirty_ = true;
    return target;
  }
  return pos;  // already in place
}

void FlatRules::stable_sort_by_priority() {
  std::stable_sort(refs_.begin(), refs_.end(),
                   [](const Ref& a, const Ref& b) {
                     return a.priority > b.priority;
                   });
  index_dirty_ = true;
}

void FlatRules::maybe_compact() {
  const std::size_t live_matches = mfield_.size() - match_garbage_;
  const std::size_t live_actions = acts_.size() - action_garbage_;
  if (match_garbage_ > 1024 + live_matches ||
      action_garbage_ > 1024 + live_actions) {
    compact();
  }
}

void FlatRules::compact() {
  std::vector<std::uint8_t> mf;
  std::vector<std::uint64_t> mv;
  std::vector<std::uint16_t> mm;  // mask_pool_ ids stay valid across compaction
  std::vector<PackedAction> ac;
  mf.reserve(mfield_.size() - match_garbage_);
  mv.reserve(mf.capacity());
  mm.reserve(mf.capacity());
  ac.reserve(acts_.size() - action_garbage_);
  for (Ref& ref : refs_) {
    const std::uint32_t moff = static_cast<std::uint32_t>(mf.size());
    for (std::size_t i = 0; i < ref.match_count; ++i) {
      mf.push_back(mfield_[ref.match_off + i]);
      mv.push_back(mvalue_[ref.match_off + i]);
      mm.push_back(mmask_[ref.match_off + i]);
    }
    ref.match_off = moff;
    const std::uint32_t aoff = static_cast<std::uint32_t>(ac.size());
    for (std::size_t i = 0; i < ref.action_count; ++i) {
      ac.push_back(acts_[ref.action_off + i]);
    }
    ref.action_off = aoff;
  }
  mfield_ = std::move(mf);
  mvalue_ = std::move(mv);
  mmask_ = std::move(mm);
  acts_ = std::move(ac);
  match_garbage_ = action_garbage_ = 0;
  // Rule positions are unchanged, so the match index stays valid.
}

std::uint64_t FlatRules::hash_match_span(
    std::span<const FieldMatch> m) const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const FieldMatch& fm : m) {
    mix(field_index(fm.field));
    mix(fm.value);
    mix(fm.mask);
  }
  return h;
}

std::uint64_t FlatRules::hash_rule_matches(std::size_t pos) const noexcept {
  const Ref& r = refs_[pos];
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::size_t i = 0; i < r.match_count; ++i) {
    mix(mfield_[r.match_off + i]);
    mix(mvalue_[r.match_off + i]);
    mix(mask_pool_[mmask_[r.match_off + i]]);  // hash the mask, not the id
  }
  return h;
}

bool FlatRules::match_equals(std::size_t pos,
                             std::span<const FieldMatch> m) const noexcept {
  const Ref& r = refs_[pos];
  if (r.match_count != m.size()) return false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mfield_[r.match_off + i] !=
            static_cast<std::uint8_t>(field_index(m[i].field)) ||
        mvalue_[r.match_off + i] != m[i].value ||
        mask_pool_[mmask_[r.match_off + i]] != m[i].mask) {
      return false;
    }
  }
  return true;
}

namespace {
constexpr std::uint64_t kSlotEmpty = 0;
constexpr std::uint64_t kSlotDead = ~std::uint64_t{0};
}  // namespace

void FlatRules::build_index() const {
  std::size_t cap = 16;
  while (cap < refs_.size() * 2) cap <<= 1;
  index_.assign(cap, kSlotEmpty);
  index_dups_ = false;
  index_live_ = 0;
  index_dead_ = 0;
  index_dirty_ = false;
  for (std::size_t pos = 0; pos < refs_.size(); ++pos) index_insert(pos);
}

void FlatRules::index_insert(std::size_t pos) const {
  if ((index_live_ + index_dead_ + 1) * 2 > index_.size()) {
    build_index();
    return;
  }
  const std::uint64_t mask = index_.size() - 1;
  std::uint64_t slot = hash_rule_matches(pos) & mask;
  std::size_t first_dead = kNpos;
  while (index_[slot] != kSlotEmpty) {
    if (index_[slot] == kSlotDead) {
      if (first_dead == kNpos) first_dead = slot;
    } else {
      const std::size_t other = index_[slot] - 1;
      const Ref& a = refs_[other];
      const Ref& b = refs_[pos];
      if (a.match_count == b.match_count) {
        bool same = true;
        for (std::size_t i = 0; i < a.match_count; ++i) {
          if (mfield_[a.match_off + i] != mfield_[b.match_off + i] ||
              mvalue_[a.match_off + i] != mvalue_[b.match_off + i] ||
              mmask_[a.match_off + i] != mmask_[b.match_off + i]) {
            same = false;
            break;
          }
        }
        if (same) {
          // Duplicate match vector: first-match semantics need a scan.
          index_dups_ = true;
          return;
        }
      }
    }
    slot = (slot + 1) & mask;
  }
  if (first_dead != kNpos) {
    slot = first_dead;
    --index_dead_;
  }
  index_[slot] = pos + 1;
  ++index_live_;
}

void FlatRules::index_remove(std::size_t pos) const {
  const std::uint64_t mask = index_.size() - 1;
  std::uint64_t slot = hash_rule_matches(pos) & mask;
  while (index_[slot] != kSlotEmpty) {
    if (index_[slot] != kSlotDead && index_[slot] == pos + 1) {
      index_[slot] = kSlotDead;
      --index_live_;
      ++index_dead_;
      return;
    }
    slot = (slot + 1) & mask;
  }
  // Not present (e.g. shadowed by a duplicate) — nothing to do.
}

std::size_t FlatRules::find_by_match(
    std::span<const FieldMatch> target) const {
  if (index_dirty_) build_index();
  if (index_dups_) {
    for (std::size_t pos = 0; pos < refs_.size(); ++pos) {
      if (match_equals(pos, target)) return pos;
    }
    return kNpos;
  }
  const std::uint64_t mask = index_.size() - 1;
  std::uint64_t slot = hash_match_span(target) & mask;
  while (index_[slot] != kSlotEmpty) {
    if (index_[slot] != kSlotDead &&
        match_equals(index_[slot] - 1, target)) {
      return index_[slot] - 1;
    }
    slot = (slot + 1) & mask;
  }
  return kNpos;
}

std::vector<Rule> FlatRules::to_rules() const {
  std::vector<Rule> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

std::size_t FlatRules::memory_bytes() const noexcept {
  return refs_.capacity() * sizeof(Ref) +
         mfield_.capacity() * sizeof(std::uint8_t) +
         mvalue_.capacity() * sizeof(std::uint64_t) +
         mmask_.capacity() * sizeof(std::uint16_t) +
         mask_pool_.capacity() * sizeof(std::uint64_t) +
         acts_.capacity() * sizeof(PackedAction);
}

// ---------------------------------------------------------------------------

MatchProfile TableSpec::profile() const {
  // Which fields ever carry a non-full mask or go unmatched (wildcard)?
  bool any_wildcard = false;
  std::optional<FieldId> prefix_field;
  bool multi_variable = false;

  for (const auto rule : rules) {
    for (const FieldId f : fields) {
      std::optional<FieldMatch> found;
      for (const FieldMatch m : rule.matches) {
        if (m.field == f) {
          found = m;
          break;
        }
      }
      if (!found.has_value()) {
        any_wildcard = true;
        continue;
      }
      if (found->mask == full_mask(f)) continue;
      if (!is_prefix_mask(f, found->mask)) return MatchProfile::kTernary;
      if (prefix_field.has_value() && *prefix_field != f) {
        multi_variable = true;
      }
      prefix_field = f;
    }
  }
  if (multi_variable || (any_wildcard && prefix_field.has_value())) {
    return MatchProfile::kTernary;
  }
  if (any_wildcard) return MatchProfile::kTernary;
  if (prefix_field.has_value()) return MatchProfile::kSinglePrefix;
  return MatchProfile::kAllExact;
}

std::size_t Program::total_rules() const noexcept {
  std::size_t n = 0;
  for (const TableSpec& t : tables) n += t.rules.size();
  return n;
}

std::size_t Program::rule_memory_bytes() const noexcept {
  std::size_t n = 0;
  for (const TableSpec& t : tables) n += t.rules.memory_bytes();
  return n;
}

std::size_t legacy_rule_bytes(const Program& program) {
  std::size_t bytes = 0;
  for (const TableSpec& t : program.tables) {
    std::vector<Rule> legacy = t.rules.to_rules();
    bytes += legacy.capacity() * sizeof(Rule);
    for (const Rule& r : legacy) {
      bytes += r.matches.capacity() * sizeof(FieldMatch) +
               r.actions.capacity() * sizeof(Action);
    }
  }
  return bytes;
}

Result<Program> compile(const core::Pipeline& pipeline, FieldMap* field_map) {
  if (Status s = pipeline.validate(); !s.is_ok()) return s;

  // Husk elision: Pipeline::splice leaves behind zero-column forwarding
  // shells that nothing references once redirection is complete. Follow
  // the goto/next edges from the entry (conservatively, next counts
  // even for empty tables) and drop the *schemaless* stages that are
  // unreachable, so splice shells never reach the switch. Unreachable
  // stages with real schemas are kept as-is — that is an authoring
  // defect for the analyzer (MA203) to report, not for the compiler to
  // silently discard.
  std::vector<bool> keep(pipeline.num_stages(), false);
  {
    std::vector<std::size_t> work{pipeline.entry()};
    while (!work.empty()) {
      const std::size_t i = work.back();
      work.pop_back();
      if (keep[i]) continue;
      keep[i] = true;
      const core::Stage& st = pipeline.stage(i);
      for (const std::size_t t : st.goto_targets) {
        if (!keep[t]) work.push_back(t);
      }
      if (st.next.has_value() && !keep[*st.next]) work.push_back(*st.next);
    }
    for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
      if (pipeline.stage(i).table.num_cols() > 0) keep[i] = true;
    }
    // Kept stages must never reference a dropped one: close over the
    // edges of everything kept so no remapped index dangles.
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
        if (!keep[i]) continue;
        const core::Stage& st = pipeline.stage(i);
        for (const std::size_t t : st.goto_targets) {
          if (!keep[t]) keep[t] = changed = true;
        }
        if (st.next.has_value() && !keep[*st.next]) {
          keep[*st.next] = changed = true;
        }
      }
    }
  }
  std::vector<std::size_t> remap(pipeline.num_stages(), 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    if (keep[i]) remap[i] = kept++;
  }

  Program program;
  program.entry = remap[pipeline.entry()];
  FieldAllocator alloc;

  for (std::size_t si = 0; si < pipeline.num_stages(); ++si) {
    if (!keep[si]) continue;
    const core::Stage& stage = pipeline.stage(si);
    const core::Schema& schema = stage.table.schema();
    TableSpec spec;
    spec.name = stage.table.name();
    if (stage.next.has_value()) spec.next = remap[*stage.next];

    // Resolve every attribute once.
    std::vector<FieldId> col_field(schema.size());
    for (std::size_t c = 0; c < schema.size(); ++c) {
      auto id = alloc.resolve(schema.at(c).name);
      if (!id.is_ok()) return id.status();
      col_field[c] = id.value();
    }
    for (std::size_t c : schema.match_set()) {
      if (std::find(spec.fields.begin(), spec.fields.end(), col_field[c]) ==
          spec.fields.end()) {
        spec.fields.push_back(col_field[c]);
      }
    }

    // Lower straight into the flattened pools: one scratch Rule's worth
    // of matches/actions per row, appended without per-rule heap
    // allocation.
    spec.rules.reserve(stage.table.num_rows(),
                       stage.table.num_rows() * schema.match_set().size(),
                       stage.table.num_rows() * schema.action_set().size());
    util::SmallVector<FieldMatch, 8> matches;
    util::SmallVector<Action, 4> actions;
    core::Row scratch;
    for (std::size_t r = 0; r < stage.table.num_rows(); ++r) {
      stage.table.copy_row_into(r, scratch);
      matches.clear();
      actions.clear();
      std::uint32_t specificity = 0;
      for (std::size_t c : schema.match_set()) {
        const FieldMatch m =
            lower_match(col_field[c], schema.at(c), scratch[c]);
        specificity += static_cast<std::uint32_t>(std::popcount(m.mask));
        matches.push_back(m);
      }
      for (std::size_t c : schema.action_set()) {
        const core::Attribute& attr = schema.at(c);
        if (attr.name == "out") {
          actions.push_back(
              {Action::Kind::kOutput, FieldId::kMeta0, scratch[c]});
        } else {
          Action set{Action::Kind::kSetField, col_field[c], scratch[c]};
          set.width_bits = static_cast<std::uint8_t>(std::min<unsigned>(
              attr.width_bits, field_width(col_field[c])));
          actions.push_back(set);
        }
      }
      spec.rules.append(
          specificity, {matches.data(), matches.size()},
          {actions.data(), actions.size()},
          stage.uses_goto() ? std::optional{remap[stage.goto_targets[r]]}
                            : std::nullopt);
    }

    // Priority order: most specific first; stable to keep insertion order
    // among equals. Sorts the 20-byte refs, not the rule payloads.
    spec.rules.stable_sort_by_priority();
    program.tables.push_back(std::move(spec));
  }
  if (field_map != nullptr) *field_map = alloc.assigned();
  return program;
}

Result<Rule> lower_row(const core::Schema& schema, const core::Row& row,
                       const FieldMap& field_map,
                       std::optional<std::size_t> goto_target) {
  if (row.size() != schema.size()) {
    return invalid_argument("row width does not match schema width");
  }
  std::vector<FieldId> col_field(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) {
    const std::string& name = schema.at(c).name;
    if (const auto builtin = builtin_field(name)) {
      col_field[c] = *builtin;
      continue;
    }
    const auto it = field_map.find(name);
    if (it == field_map.end()) {
      return invalid_argument("attribute '" + name +
                              "' not present in the field map");
    }
    col_field[c] = it->second;
  }
  return lower_row_resolved(schema, row, col_field, goto_target);
}

ExecResult execute_reference(const Program& program, const FlowKey& key,
                             MatchedBuf* matched) {
  ExecResult result;
  if (matched != nullptr) matched->clear();
  if (program.tables.empty()) return result;

  FlowKey state = key;
  std::optional<std::size_t> current = program.entry;
  while (current.has_value()) {
    expects(*current < program.tables.size(),
            "program jump out of range");
    expects(result.tables_visited <= program.tables.size(),
            "program table graph contains a cycle");
    ++result.tables_visited;
    const TableSpec& table = program.tables[*current];

    std::optional<RuleView> hit;
    for (std::size_t r = 0; r < table.rules.size(); ++r) {  // priority order
      if (table.rules[r].matches_key(state)) {
        hit = table.rules[r];
        if (matched != nullptr) matched->push_back({*current, r});
        break;
      }
    }
    if (!hit.has_value()) {
      result.hit = false;
      result.out_port = 0;
      return result;
    }
    for (const Action action : hit->actions) {
      if (action.kind == Action::Kind::kOutput) {
        result.out_port = action.value;
      } else {
        state.set(action.field, action.value);
      }
    }
    current = hit->goto_table.has_value() ? hit->goto_table : table.next;
  }
  result.hit = true;
  return result;
}

}  // namespace maton::dp
