#include "dataplane/program.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "util/contract.hpp"

namespace maton::dp {

namespace {

[[nodiscard]] constexpr std::uint64_t full_mask(FieldId field) noexcept {
  return field_full_mask(field);
}

/// True when `mask` is a prefix mask within the field's width
/// (contiguous high ones, contiguous low zeros).
[[nodiscard]] bool is_prefix_mask(FieldId field, std::uint64_t mask) {
  const std::uint64_t full = full_mask(field);
  if ((mask & ~full) != 0) return false;
  const std::uint64_t low_zeros = ~mask & full;
  return (low_zeros & (low_zeros + 1)) == 0;
}

/// Maps well-known attribute names onto wire fields.
std::optional<FieldId> builtin_field(std::string_view name) {
  if (name == "in_port") return FieldId::kInPort;
  if (name == "eth_src" || name == "mod_smac") return FieldId::kEthSrc;
  if (name == "eth_dst" || name == "mod_dmac") return FieldId::kEthDst;
  if (name == "eth_type") return FieldId::kEthType;
  if (name == "vlan") return FieldId::kVlan;
  if (name == "ip_src") return FieldId::kIpSrc;
  if (name == "ip_dst") return FieldId::kIpDst;
  if (name == "ip_proto") return FieldId::kIpProto;
  if (name == "ip_ttl" || name == "mod_ttl") return FieldId::kIpTtl;
  if (name == "tcp_src") return FieldId::kTcpSrc;
  if (name == "tcp_dst") return FieldId::kTcpDst;
  return std::nullopt;
}

/// Attribute-name → FieldId assignment shared across the whole program,
/// allocating metadata registers for names without a wire field.
class FieldAllocator {
 public:
  Result<FieldId> resolve(const std::string& name) {
    if (const auto builtin = builtin_field(name)) return *builtin;
    const auto it = assigned_.find(name);
    if (it != assigned_.end()) return it->second;
    if (next_meta_ > field_index(FieldId::kMeta3)) {
      return invalid_argument(
          "out of metadata registers for attribute '" + name + "'");
    }
    const FieldId id = static_cast<FieldId>(next_meta_++);
    assigned_.emplace(name, id);
    return id;
  }

  [[nodiscard]] const FieldMap& assigned() const noexcept {
    return assigned_;
  }

 private:
  FieldMap assigned_;
  std::size_t next_meta_ = field_index(FieldId::kMeta0);
};

/// Converts one core cell into a masked match according to its codec.
FieldMatch lower_match(FieldId field, const core::Attribute& attr,
                       core::Value v) {
  FieldMatch m;
  m.field = field;
  if (attr.codec == core::ValueCodec::kIpv4Prefix) {
    const auto addr = static_cast<std::uint32_t>(v >> 8);
    const unsigned plen = static_cast<unsigned>(v & 0xff);
    const unsigned width = field_width(field);
    expects(plen <= width, "prefix length exceeds field width");
    m.mask = plen == 0
                 ? 0
                 : (full_mask(field) << (width - plen)) & full_mask(field);
    m.value = addr & m.mask;
  } else {
    m.mask = full_mask(field);
    m.value = v & m.mask;
  }
  return m;
}

/// One row → one Rule, given the pre-resolved column→field assignment.
Rule lower_row_resolved(const core::Schema& schema, const core::Row& row,
                        const std::vector<FieldId>& col_field,
                        std::optional<std::size_t> goto_target) {
  Rule rule;
  std::uint32_t specificity = 0;
  for (std::size_t c : schema.match_set()) {
    const FieldMatch m = lower_match(col_field[c], schema.at(c), row[c]);
    specificity += static_cast<std::uint32_t>(std::popcount(m.mask));
    rule.matches.push_back(m);
  }
  // Longest-prefix-first semantics: more specific rules win.
  rule.priority = specificity;

  for (std::size_t c : schema.action_set()) {
    const core::Attribute& attr = schema.at(c);
    if (attr.name == "out") {
      rule.actions.push_back({Action::Kind::kOutput, FieldId::kMeta0, row[c]});
    } else {
      Action set{Action::Kind::kSetField, col_field[c], row[c]};
      // Only the attribute's declared bits are defined by this write;
      // the dataflow pass flags wider reads (MA302).
      set.width_bits = static_cast<std::uint8_t>(std::min<unsigned>(
          attr.width_bits, field_width(col_field[c])));
      rule.actions.push_back(set);
    }
  }
  rule.goto_table = goto_target;
  return rule;
}

}  // namespace

MatchProfile TableSpec::profile() const {
  // Which fields ever carry a non-full mask or go unmatched (wildcard)?
  bool any_wildcard = false;
  std::optional<FieldId> prefix_field;
  bool multi_variable = false;

  for (const Rule& rule : rules) {
    for (const FieldId f : fields) {
      const auto it = std::find_if(
          rule.matches.begin(), rule.matches.end(),
          [&](const FieldMatch& m) { return m.field == f; });
      if (it == rule.matches.end()) {
        any_wildcard = true;
        continue;
      }
      if (it->mask == full_mask(f)) continue;
      if (!is_prefix_mask(f, it->mask)) return MatchProfile::kTernary;
      if (prefix_field.has_value() && *prefix_field != f) {
        multi_variable = true;
      }
      prefix_field = f;
    }
  }
  if (multi_variable || (any_wildcard && prefix_field.has_value())) {
    return MatchProfile::kTernary;
  }
  if (any_wildcard) return MatchProfile::kTernary;
  if (prefix_field.has_value()) return MatchProfile::kSinglePrefix;
  return MatchProfile::kAllExact;
}

std::size_t Program::total_rules() const noexcept {
  std::size_t n = 0;
  for (const TableSpec& t : tables) n += t.rules.size();
  return n;
}

Result<Program> compile(const core::Pipeline& pipeline, FieldMap* field_map) {
  if (Status s = pipeline.validate(); !s.is_ok()) return s;

  // Husk elision: Pipeline::splice leaves behind zero-column forwarding
  // shells that nothing references once redirection is complete. Follow
  // the goto/next edges from the entry (conservatively, next counts
  // even for empty tables) and drop the *schemaless* stages that are
  // unreachable, so splice shells never reach the switch. Unreachable
  // stages with real schemas are kept as-is — that is an authoring
  // defect for the analyzer (MA203) to report, not for the compiler to
  // silently discard.
  std::vector<bool> keep(pipeline.num_stages(), false);
  {
    std::vector<std::size_t> work{pipeline.entry()};
    while (!work.empty()) {
      const std::size_t i = work.back();
      work.pop_back();
      if (keep[i]) continue;
      keep[i] = true;
      const core::Stage& st = pipeline.stage(i);
      for (const std::size_t t : st.goto_targets) {
        if (!keep[t]) work.push_back(t);
      }
      if (st.next.has_value() && !keep[*st.next]) work.push_back(*st.next);
    }
    for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
      if (pipeline.stage(i).table.num_cols() > 0) keep[i] = true;
    }
    // Kept stages must never reference a dropped one: close over the
    // edges of everything kept so no remapped index dangles.
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
        if (!keep[i]) continue;
        const core::Stage& st = pipeline.stage(i);
        for (const std::size_t t : st.goto_targets) {
          if (!keep[t]) keep[t] = changed = true;
        }
        if (st.next.has_value() && !keep[*st.next]) {
          keep[*st.next] = changed = true;
        }
      }
    }
  }
  std::vector<std::size_t> remap(pipeline.num_stages(), 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    if (keep[i]) remap[i] = kept++;
  }

  Program program;
  program.entry = remap[pipeline.entry()];
  FieldAllocator alloc;

  for (std::size_t si = 0; si < pipeline.num_stages(); ++si) {
    if (!keep[si]) continue;
    const core::Stage& stage = pipeline.stage(si);
    const core::Schema& schema = stage.table.schema();
    TableSpec spec;
    spec.name = stage.table.name();
    if (stage.next.has_value()) spec.next = remap[*stage.next];

    // Resolve every attribute once.
    std::vector<FieldId> col_field(schema.size());
    for (std::size_t c = 0; c < schema.size(); ++c) {
      auto id = alloc.resolve(schema.at(c).name);
      if (!id.is_ok()) return id.status();
      col_field[c] = id.value();
    }
    for (std::size_t c : schema.match_set()) {
      if (std::find(spec.fields.begin(), spec.fields.end(), col_field[c]) ==
          spec.fields.end()) {
        spec.fields.push_back(col_field[c]);
      }
    }

    spec.rules.reserve(stage.table.num_rows());
    core::Row scratch;
    for (std::size_t r = 0; r < stage.table.num_rows(); ++r) {
      stage.table.copy_row_into(r, scratch);
      spec.rules.push_back(lower_row_resolved(
          schema, scratch, col_field,
          stage.uses_goto() ? std::optional{remap[stage.goto_targets[r]]}
                            : std::nullopt));
    }

    // Priority order: most specific first; stable to keep insertion order
    // among equals.
    std::stable_sort(spec.rules.begin(), spec.rules.end(),
                     [](const Rule& a, const Rule& b) {
                       return a.priority > b.priority;
                     });
    program.tables.push_back(std::move(spec));
  }
  if (field_map != nullptr) *field_map = alloc.assigned();
  return program;
}

Result<Rule> lower_row(const core::Schema& schema, const core::Row& row,
                       const FieldMap& field_map,
                       std::optional<std::size_t> goto_target) {
  if (row.size() != schema.size()) {
    return invalid_argument("row width does not match schema width");
  }
  std::vector<FieldId> col_field(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) {
    const std::string& name = schema.at(c).name;
    if (const auto builtin = builtin_field(name)) {
      col_field[c] = *builtin;
      continue;
    }
    const auto it = field_map.find(name);
    if (it == field_map.end()) {
      return invalid_argument("attribute '" + name +
                              "' not present in the field map");
    }
    col_field[c] = it->second;
  }
  return lower_row_resolved(schema, row, col_field, goto_target);
}

ExecResult execute_reference(const Program& program, const FlowKey& key,
                             MatchedBuf* matched) {
  ExecResult result;
  if (matched != nullptr) matched->clear();
  if (program.tables.empty()) return result;

  FlowKey state = key;
  std::optional<std::size_t> current = program.entry;
  while (current.has_value()) {
    expects(*current < program.tables.size(),
            "program jump out of range");
    expects(result.tables_visited <= program.tables.size(),
            "program table graph contains a cycle");
    ++result.tables_visited;
    const TableSpec& table = program.tables[*current];

    const Rule* hit = nullptr;
    for (std::size_t r = 0; r < table.rules.size(); ++r) {  // priority order
      if (table.rules[r].matches_key(state)) {
        hit = &table.rules[r];
        if (matched != nullptr) matched->push_back({*current, r});
        break;
      }
    }
    if (hit == nullptr) {
      result.hit = false;
      result.out_port = 0;
      return result;
    }
    for (const Action& action : hit->actions) {
      if (action.kind == Action::Kind::kOutput) {
        result.out_port = action.value;
      } else {
        state.set(action.field, action.value);
      }
    }
    current = hit->goto_table.has_value() ? hit->goto_table : table.next;
  }
  result.hit = true;
  return result;
}

}  // namespace maton::dp
