// Longest-prefix-match classifier: rules are grouped by their exact-match
// part (hash), each group owning a binary trie over the single prefix
// field — ESwitch's "efficient longest-prefix-matching template" (§5).
#include <algorithm>
#include <array>
#include <bit>
#include <unordered_map>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/classifier_detail.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

/// Binary trie over one field's prefixes; nodes in a flat vector.
class PrefixTrie {
 public:
  explicit PrefixTrie(unsigned width) : width_(width) { nodes_.push_back({}); }

  void insert(std::uint64_t value, unsigned plen, std::size_t rule) {
    expects(plen <= width_, "prefix length exceeds field width");
    std::size_t node = 0;
    for (unsigned i = 0; i < plen; ++i) {
      const unsigned bit =
          static_cast<unsigned>((value >> (width_ - 1 - i)) & 1);
      if (nodes_[node].child[bit] == kNone) {
        nodes_[node].child[bit] = nodes_.size();
        nodes_.push_back({});
      }
      node = nodes_[node].child[bit];
    }
    if (nodes_[node].rule == kNone) nodes_[node].rule = rule;
  }

  [[nodiscard]] std::optional<std::size_t> lookup(std::uint64_t value) const {
    std::size_t node = 0;
    std::size_t best = nodes_[0].rule;
    for (unsigned i = 0; i < width_; ++i) {
      const unsigned bit =
          static_cast<unsigned>((value >> (width_ - 1 - i)) & 1);
      const std::size_t next = nodes_[node].child[bit];
      if (next == kNone) break;
      node = next;
      if (nodes_[node].rule != kNone) best = nodes_[node].rule;
    }
    if (best == kNone) return std::nullopt;
    return best;
  }

  // Single-step accessors for the batch walker: it descends many tries
  // level-synchronously, keeping one dependent load per key in flight
  // instead of chasing one pointer chain to completion at a time.
  static constexpr std::size_t kNone = ~std::size_t{0};
  [[nodiscard]] std::size_t root_rule() const noexcept {
    return nodes_[0].rule;
  }
  [[nodiscard]] std::size_t child(std::size_t node,
                                  unsigned bit) const noexcept {
    return nodes_[node].child[bit];
  }
  [[nodiscard]] std::size_t rule(std::size_t node) const noexcept {
    return nodes_[node].rule;
  }
  [[nodiscard]] unsigned width() const noexcept { return width_; }
  void prefetch(std::size_t node) const noexcept {
    detail::prefetch_read(&nodes_[node]);
  }

 private:
  struct Node {
    std::size_t child[2] = {kNone, kNone};
    std::size_t rule = kNone;
  };
  unsigned width_;
  std::vector<Node> nodes_;
};

class LpmClassifier final : public Classifier {
 public:
  explicit LpmClassifier(const TableSpec& table) {
    expects(table.profile() == MatchProfile::kSinglePrefix,
            "LPM template requires a single-prefix rule set");

    // Identify the prefix field: the one with any non-full mask.
    prefix_field_ = table.fields.front();
    for (const auto rule : table.rules) {
      for (const FieldMatch m : rule.matches) {
        const unsigned w = field_width(m.field);
        const std::uint64_t full =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        if (m.mask != full) prefix_field_ = m.field;
      }
    }
    prefix_width_ = field_width(prefix_field_);
    for (const FieldId f : table.fields) {
      if (f != prefix_field_) exact_fields_.push_back(f);
    }

    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      std::vector<std::uint64_t> exact_key(exact_fields_.size(), 0);
      std::uint64_t prefix_value = 0;
      unsigned plen = 0;
      for (const FieldMatch& m : table.rules[r].matches) {
        if (m.field == prefix_field_) {
          prefix_value = m.value;
          plen = static_cast<unsigned>(std::popcount(m.mask));
        } else {
          for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
            if (exact_fields_[f] == m.field) exact_key[f] = m.value;
          }
        }
      }
      // Buckets chain on hash collisions across distinct exact keys.
      auto& bucket = groups_[detail::hash_words(exact_key)];
      Group* group = nullptr;
      for (const auto& g : bucket) {
        if (g->exact_key == exact_key) {
          group = g.get();
          break;
        }
      }
      if (group == nullptr) {
        bucket.push_back(std::make_unique<Group>(prefix_width_));
        group = bucket.back().get();
        group->exact_key = exact_key;
      }
      group->trie.insert(prefix_value, plen, r);
    }
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    const Group* group = find_group(key);
    if (group == nullptr) return std::nullopt;
    return group->trie.lookup(key.get(prefix_field_));
  }

  /// Chunked batch lookup: stage 1 resolves each key's exact-match group;
  /// stage 2 walks all tries level-synchronously, prefetching each key's
  /// next trie node before moving to the other keys, so the dependent
  /// node loads of the whole chunk overlap.
  void lookup_batch(std::span<const FlowKey> keys,
                    std::span<std::size_t> out) const override {
    std::array<const PrefixTrie*, detail::kBatchChunk> trie;
    std::array<std::uint64_t, detail::kBatchChunk> value;
    std::array<std::size_t, detail::kBatchChunk> node;
    std::array<std::size_t, detail::kBatchChunk> best;
    std::array<std::uint32_t, detail::kBatchChunk> active;
    for (std::size_t base = 0; base < keys.size();
         base += detail::kBatchChunk) {
      const std::size_t n =
          std::min(detail::kBatchChunk, keys.size() - base);
      std::size_t live = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Group* group = find_group(keys[base + i]);
        if (group == nullptr) {
          out[base + i] = kNoRule;
          continue;
        }
        trie[i] = &group->trie;
        value[i] = keys[base + i].get(prefix_field_);
        node[i] = 0;
        best[i] = group->trie.root_rule();
        trie[i]->prefetch(0);
        active[live++] = static_cast<std::uint32_t>(i);
      }
      for (unsigned depth = 0; live > 0 && depth < prefix_width_; ++depth) {
        std::size_t still = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t i = active[a];
          const unsigned bit = static_cast<unsigned>(
              (value[i] >> (prefix_width_ - 1 - depth)) & 1);
          const std::size_t next = trie[i]->child(node[i], bit);
          if (next == PrefixTrie::kNone) {
            out[base + i] =
                best[i] == PrefixTrie::kNone ? kNoRule : best[i];
            continue;
          }
          node[i] = next;
          trie[i]->prefetch(next);
          if (trie[i]->rule(next) != PrefixTrie::kNone) {
            best[i] = trie[i]->rule(next);
          }
          active[still++] = i;
        }
        live = still;
      }
      // Keys that consumed every prefix bit without falling off the trie.
      for (std::size_t a = 0; a < live; ++a) {
        const std::uint32_t i = active[a];
        out[base + i] = best[i] == PrefixTrie::kNone ? kNoRule : best[i];
      }
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "lpm";
  }

 private:
  struct Group {
    explicit Group(unsigned width) : trie(width) {}
    std::vector<std::uint64_t> exact_key;
    PrefixTrie trie;
  };

  [[nodiscard]] const Group* find_group(const FlowKey& key) const {
    std::uint64_t exact_key[kNumFields];
    for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
      exact_key[f] = key.get(exact_fields_[f]);
    }
    const std::span<const std::uint64_t> view(exact_key,
                                              exact_fields_.size());
    const auto it = groups_.find(detail::hash_words(view));
    if (it == groups_.end()) return nullptr;
    for (const auto& group : it->second) {
      bool equal = true;
      for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
        if (group->exact_key[f] != exact_key[f]) {
          equal = false;
          break;
        }
      }
      if (equal) return group.get();
    }
    return nullptr;
  }

  FieldId prefix_field_ = FieldId::kIpDst;
  unsigned prefix_width_ = 32;
  std::vector<FieldId> exact_fields_;
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Group>>>
      groups_;
};

}  // namespace

std::unique_ptr<Classifier> make_lpm(const TableSpec& table) {
  return std::make_unique<LpmClassifier>(table);
}

}  // namespace maton::dp
