// Longest-prefix-match classifier: rules are grouped by their exact-match
// part (hash), each group owning a binary trie over the single prefix
// field — ESwitch's "efficient longest-prefix-matching template" (§5).
#include <bit>
#include <unordered_map>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/classifier_detail.hpp"
#include "util/contract.hpp"

namespace maton::dp {

namespace {

/// Binary trie over one field's prefixes; nodes in a flat vector.
class PrefixTrie {
 public:
  explicit PrefixTrie(unsigned width) : width_(width) { nodes_.push_back({}); }

  void insert(std::uint64_t value, unsigned plen, std::size_t rule) {
    expects(plen <= width_, "prefix length exceeds field width");
    std::size_t node = 0;
    for (unsigned i = 0; i < plen; ++i) {
      const unsigned bit =
          static_cast<unsigned>((value >> (width_ - 1 - i)) & 1);
      if (nodes_[node].child[bit] == kNone) {
        nodes_[node].child[bit] = nodes_.size();
        nodes_.push_back({});
      }
      node = nodes_[node].child[bit];
    }
    if (nodes_[node].rule == kNone) nodes_[node].rule = rule;
  }

  [[nodiscard]] std::optional<std::size_t> lookup(std::uint64_t value) const {
    std::size_t node = 0;
    std::size_t best = nodes_[0].rule;
    for (unsigned i = 0; i < width_; ++i) {
      const unsigned bit =
          static_cast<unsigned>((value >> (width_ - 1 - i)) & 1);
      const std::size_t next = nodes_[node].child[bit];
      if (next == kNone) break;
      node = next;
      if (nodes_[node].rule != kNone) best = nodes_[node].rule;
    }
    if (best == kNone) return std::nullopt;
    return best;
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  struct Node {
    std::size_t child[2] = {kNone, kNone};
    std::size_t rule = kNone;
  };
  unsigned width_;
  std::vector<Node> nodes_;
};

class LpmClassifier final : public Classifier {
 public:
  explicit LpmClassifier(const TableSpec& table) {
    expects(table.profile() == MatchProfile::kSinglePrefix,
            "LPM template requires a single-prefix rule set");

    // Identify the prefix field: the one with any non-full mask.
    prefix_field_ = table.fields.front();
    for (const Rule& rule : table.rules) {
      for (const FieldMatch& m : rule.matches) {
        const unsigned w = field_width(m.field);
        const std::uint64_t full =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        if (m.mask != full) prefix_field_ = m.field;
      }
    }
    prefix_width_ = field_width(prefix_field_);
    for (const FieldId f : table.fields) {
      if (f != prefix_field_) exact_fields_.push_back(f);
    }

    for (std::size_t r = 0; r < table.rules.size(); ++r) {
      std::vector<std::uint64_t> exact_key(exact_fields_.size(), 0);
      std::uint64_t prefix_value = 0;
      unsigned plen = 0;
      for (const FieldMatch& m : table.rules[r].matches) {
        if (m.field == prefix_field_) {
          prefix_value = m.value;
          plen = static_cast<unsigned>(std::popcount(m.mask));
        } else {
          for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
            if (exact_fields_[f] == m.field) exact_key[f] = m.value;
          }
        }
      }
      // Buckets chain on hash collisions across distinct exact keys.
      auto& bucket = groups_[detail::hash_words(exact_key)];
      Group* group = nullptr;
      for (const auto& g : bucket) {
        if (g->exact_key == exact_key) {
          group = g.get();
          break;
        }
      }
      if (group == nullptr) {
        bucket.push_back(std::make_unique<Group>(prefix_width_));
        group = bucket.back().get();
        group->exact_key = exact_key;
      }
      group->trie.insert(prefix_value, plen, r);
    }
  }

  [[nodiscard]] std::optional<std::size_t> lookup(
      const FlowKey& key) const override {
    std::uint64_t exact_key[kNumFields];
    for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
      exact_key[f] = key.get(exact_fields_[f]);
    }
    const std::span<const std::uint64_t> view(exact_key,
                                              exact_fields_.size());
    const auto it = groups_.find(detail::hash_words(view));
    if (it == groups_.end()) return std::nullopt;
    for (const auto& group : it->second) {
      bool equal = true;
      for (std::size_t f = 0; f < exact_fields_.size(); ++f) {
        if (group->exact_key[f] != exact_key[f]) {
          equal = false;
          break;
        }
      }
      if (equal) return group->trie.lookup(key.get(prefix_field_));
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "lpm";
  }

 private:
  struct Group {
    explicit Group(unsigned width) : trie(width) {}
    std::vector<std::uint64_t> exact_key;
    PrefixTrie trie;
  };

  FieldId prefix_field_ = FieldId::kIpDst;
  unsigned prefix_width_ = 32;
  std::vector<FieldId> exact_fields_;
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Group>>>
      groups_;
};

}  // namespace

std::unique_ptr<Classifier> make_lpm(const TableSpec& table) {
  return std::make_unique<LpmClassifier>(table);
}

}  // namespace maton::dp
