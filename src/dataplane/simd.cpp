#include "dataplane/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

// The AVX2 kernels are compiled per-function via the `target` attribute
// so the translation unit builds without -mavx2 and the binary still
// runs on hosts without AVX2 (the scalar path is taken there).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MATON_SIMD_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define MATON_SIMD_AVX2_KERNELS 0
#endif

namespace maton::dp::simd {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// ---- Scalar reference ----------------------------------------------------

void mask_lanes_scalar(const std::uint64_t* lanes, std::size_t stride,
                       const std::uint64_t* masks, std::size_t fields,
                       std::size_t n, std::uint64_t* masked) {
  for (std::size_t f = 0; f < fields; ++f) {
    const std::uint64_t m = masks[f];
    const std::uint64_t* src = lanes + f * stride;
    std::uint64_t* dst = masked + f * stride;
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] & m;
  }
}

void hash_lanes_scalar(const std::uint64_t* lanes, std::size_t stride,
                       std::size_t fields, std::size_t n,
                       std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t f = 0; f < fields; ++f) {
      h ^= lanes[f * stride + i];
      h *= kFnvPrime;
    }
    hashes[i] = h;
  }
}

void mask_hash_lanes_scalar(const std::uint64_t* lanes, std::size_t stride,
                            const std::uint64_t* masks, std::size_t fields,
                            std::size_t n, std::uint64_t* masked,
                            std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = kFnvOffset;
  for (std::size_t f = 0; f < fields; ++f) {
    const std::uint64_t m = masks[f];
    const std::uint64_t* src = lanes + f * stride;
    std::uint64_t* dst = masked + f * stride;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = src[i] & m;
      dst[i] = w;
      hashes[i] = (hashes[i] ^ w) * kFnvPrime;
    }
  }
}

// ---- AVX2 ----------------------------------------------------------------

#if MATON_SIMD_AVX2_KERNELS

/// Exact 64x64-bit multiply mod 2^64 from 32-bit partial products:
/// a*b = a_lo*b_lo + ((a_hi*b_lo + a_lo*b_hi) << 32)   (mod 2^64).
__attribute__((target("avx2"))) inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

__attribute__((target("avx2"))) void mask_lanes_avx2(
    const std::uint64_t* lanes, std::size_t stride,
    const std::uint64_t* masks, std::size_t fields, std::size_t n,
    std::uint64_t* masked) {
  for (std::size_t f = 0; f < fields; ++f) {
    const __m256i m = _mm256_set1_epi64x(
        static_cast<long long>(masks[f]));
    const std::uint64_t* src = lanes + f * stride;
    std::uint64_t* dst = masked + f * stride;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_and_si256(w, m));
    }
    for (; i < n; ++i) dst[i] = src[i] & masks[f];
  }
}

__attribute__((target("avx2"))) void hash_lanes_avx2(
    const std::uint64_t* lanes, std::size_t stride, std::size_t fields,
    std::size_t n, std::uint64_t* hashes) {
  const __m256i offset =
      _mm256_set1_epi64x(static_cast<long long>(kFnvOffset));
  const __m256i prime =
      _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h = offset;
    for (std::size_t f = 0; f < fields; ++f) {
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lanes + f * stride + i));
      h = mul64(_mm256_xor_si256(h, w), prime);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), h);
  }
  if (i < n) hash_lanes_scalar(lanes + i, stride, fields, n - i, hashes + i);
}

__attribute__((target("avx2"))) void mask_hash_lanes_avx2(
    const std::uint64_t* lanes, std::size_t stride,
    const std::uint64_t* masks, std::size_t fields, std::size_t n,
    std::uint64_t* masked, std::uint64_t* hashes) {
  const __m256i offset =
      _mm256_set1_epi64x(static_cast<long long>(kFnvOffset));
  const __m256i prime =
      _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h = offset;
    for (std::size_t f = 0; f < fields; ++f) {
      const __m256i m = _mm256_set1_epi64x(
          static_cast<long long>(masks[f]));
      const __m256i w = _mm256_and_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(lanes + f * stride + i)),
          m);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(masked + f * stride + i), w);
      h = mul64(_mm256_xor_si256(h, w), prime);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), h);
  }
  if (i < n) {
    mask_hash_lanes_scalar(lanes + i, stride, masks, fields, n - i,
                           masked + i, hashes + i);
  }
}

[[nodiscard]] bool cpu_has_avx2() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

#else  // !MATON_SIMD_AVX2_KERNELS

[[nodiscard]] bool cpu_has_avx2() noexcept { return false; }

#endif

[[nodiscard]] Level resolve_startup_level() noexcept {
  if (const char* env = std::getenv("MATON_SIMD")) {
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0) {
      return Level::kScalar;
    }
  }
  return cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
}

std::atomic<Level>& level_slot() noexcept {
  static std::atomic<Level> level{resolve_startup_level()};
  return level;
}

}  // namespace

Level active_level() noexcept {
  return level_slot().load(std::memory_order_relaxed);
}

bool avx2_supported() noexcept { return cpu_has_avx2(); }

bool force_dispatch(Level level) noexcept {
  if (level == Level::kAvx2 && !cpu_has_avx2()) {
    level_slot().store(Level::kScalar, std::memory_order_relaxed);
    return false;
  }
  level_slot().store(level, std::memory_order_relaxed);
  return true;
}

void reset_dispatch() noexcept {
  level_slot().store(resolve_startup_level(), std::memory_order_relaxed);
}

void mask_lanes(const std::uint64_t* lanes, std::size_t stride,
                const std::uint64_t* masks, std::size_t fields,
                std::size_t n, std::uint64_t* masked) {
#if MATON_SIMD_AVX2_KERNELS
  if (active_level() == Level::kAvx2) {
    mask_lanes_avx2(lanes, stride, masks, fields, n, masked);
    return;
  }
#endif
  mask_lanes_scalar(lanes, stride, masks, fields, n, masked);
}

void hash_lanes(const std::uint64_t* lanes, std::size_t stride,
                std::size_t fields, std::size_t n, std::uint64_t* hashes) {
#if MATON_SIMD_AVX2_KERNELS
  if (active_level() == Level::kAvx2) {
    hash_lanes_avx2(lanes, stride, fields, n, hashes);
    return;
  }
#endif
  hash_lanes_scalar(lanes, stride, fields, n, hashes);
}

void mask_hash_lanes(const std::uint64_t* lanes, std::size_t stride,
                     const std::uint64_t* masks, std::size_t fields,
                     std::size_t n, std::uint64_t* masked,
                     std::uint64_t* hashes) {
#if MATON_SIMD_AVX2_KERNELS
  if (active_level() == Level::kAvx2) {
    mask_hash_lanes_avx2(lanes, stride, masks, fields, n, masked, hashes);
    return;
  }
#endif
  mask_hash_lanes_scalar(lanes, stride, masks, fields, n, masked, hashes);
}

bool equal_lanes(const std::uint64_t* entry, const std::uint64_t* lanes,
                 std::size_t stride, std::size_t fields) noexcept {
  // Strided gather: one word per field row. Entry vectors are short
  // (<= kNumFields) and mismatches show up early, so a scalar
  // short-circuit loop beats gathering into a vector register on every
  // level; keeping one body also keeps both dispatch paths bit-equal by
  // construction.
  for (std::size_t f = 0; f < fields; ++f) {
    if (entry[f] != lanes[f * stride]) return false;
  }
  return true;
}

}  // namespace maton::dp::simd
