#include <algorithm>
#include <numeric>

#include "dataplane/switch.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace maton::dp {

void SwitchModel::process_batch(std::span<const FlowKey> keys,
                                std::span<ExecResult> results) {
  expects(results.size() >= keys.size(),
          "process_batch result span too small");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    results[i] = process(keys[i]);
  }
}

Status SwitchModel::apply_updates(std::span<const RuleUpdate> updates) {
  for (const RuleUpdate& update : updates) {
    if (Status s = apply_update(update); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status apply_update_to_program(Program& program, const RuleUpdate& update) {
  if (update.table >= program.tables.size()) {
    return invalid_argument("update targets a non-existent table");
  }
  TableSpec& table = program.tables[update.table];

  auto find_target = [&]() {
    return std::find_if(table.rules.begin(), table.rules.end(),
                        [&](const Rule& r) {
                          return r.matches == update.target;
                        });
  };

  switch (update.kind) {
    case RuleUpdate::Kind::kInsert: {
      table.rules.push_back(update.rule);
      break;
    }
    case RuleUpdate::Kind::kRemove: {
      const auto it = find_target();
      if (it == table.rules.end()) {
        return not_found("rule to remove not present in table " +
                         table.name);
      }
      table.rules.erase(it);
      return Status::ok();  // no re-sort needed
    }
    case RuleUpdate::Kind::kModify: {
      const auto it = find_target();
      if (it == table.rules.end()) {
        return not_found("rule to modify not present in table " +
                         table.name);
      }
      *it = update.rule;
      break;
    }
  }
  std::stable_sort(
      table.rules.begin(), table.rules.end(),
      [](const Rule& a, const Rule& b) { return a.priority > b.priority; });
  return Status::ok();
}

void RuleCounters::reset(const Program& program) {
  counts_.clear();
  counts_.reserve(program.tables.size());
  for (const TableSpec& table : program.tables) {
    counts_.emplace_back(table.rules.size(), 0);
  }
}

void RuleCounters::bump(std::size_t table, std::size_t rule) {
  expects(table < counts_.size() && rule < counts_[table].size(),
          "counter index out of range");
  ++counts_[table][rule];
}

void RuleCounters::bump_all(std::span<const MatchedRule> matched) {
  for (const MatchedRule& m : matched) bump(m.table, m.rule);
}

void RuleCounters::carry_over(std::size_t table,
                              const std::vector<Rule>& old_rules,
                              const std::vector<Rule>& new_rules,
                              const RuleUpdate& update) {
  expects(table < counts_.size(), "counter table out of range");
  std::vector<std::uint64_t> next(new_rules.size(), 0);
  for (std::size_t n = 0; n < new_rules.size(); ++n) {
    // A modified rule inherits the count of the rule it replaced.
    const std::vector<FieldMatch>& lookup =
        (update.kind == RuleUpdate::Kind::kModify &&
         new_rules[n].matches == update.rule.matches)
            ? update.target
            : new_rules[n].matches;
    for (std::size_t o = 0; o < old_rules.size(); ++o) {
      if (old_rules[o].matches == lookup) {
        next[n] = counts_[table][o];
        break;
      }
    }
  }
  counts_[table] = std::move(next);
}

Result<std::uint64_t> RuleCounters::read(
    const Program& program, std::size_t table,
    const std::vector<FieldMatch>& target) const {
  if (table >= program.tables.size()) {
    return invalid_argument("counter read targets a non-existent table");
  }
  const auto& rules = program.tables[table].rules;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].matches == target) return counts_[table][r];
  }
  return not_found("no rule with the given match vector in table " +
                   program.tables[table].name);
}

HwTcamModel::HwTcamModel() {
  auto& registry = obs::MetricRegistry::global();
  batch_chunks_ = &registry.counter(
      "maton_dp_classifier_chunks_total",
      {{"model", "noviflow-hw"}, {"template", "tcam"}});
  chunk_size_ = &registry.histogram("maton_dp_batch_chunk_size",
                                    {{"model", "noviflow-hw"}});
}

Status HwTcamModel::load(Program program) {
  program_ = std::move(program);
  counters_.reset(program_);
  return Status::ok();
}

ExecResult HwTcamModel::process(const FlowKey& key) {
  // The hardware forwards at line rate regardless of representation; the
  // model only needs functional correctness (and flow stats) here.
  const ExecResult result =
      execute_reference(program_, key, &matched_scratch_);
  counters_.bump_all(matched_scratch_.span());
  return result;
}

void HwTcamModel::process_batch(std::span<const FlowKey> keys,
                                std::span<ExecResult> results) {
  expects(results.size() >= keys.size(),
          "process_batch result span too small");
  const std::size_t num_tables = program_.tables.size();
  for (std::size_t i = 0; i < keys.size(); ++i) results[i] = ExecResult{};
  if (num_tables == 0 || keys.empty()) return;
  expects(program_.entry < num_tables, "program entry out of range");

  states_.assign(keys.begin(), keys.end());
  buckets_.resize(num_tables);
  for (auto& bucket : buckets_) bucket.clear();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    buckets_[program_.entry].push_back(static_cast<std::uint32_t>(i));
  }

  worklist_.clear();
  queued_.assign(num_tables, 0);
  worklist_.push_back(static_cast<std::uint32_t>(program_.entry));
  queued_[program_.entry] = 1;

  // FIFO over occupied buckets: each pop visits a non-empty bucket
  // exactly once instead of re-scanning every table per round. The
  // table graph is acyclic, so the worklist drains.
  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    const std::size_t t = worklist_[head];
    queued_[t] = 0;
    {
      moving_.swap(buckets_[t]);
      buckets_[t].clear();
      if constexpr (obs::kEnabled) {
        batch_chunks_->add();
        chunk_size_->observe(static_cast<double>(moving_.size()));
      }

      const TableSpec& table = program_.tables[t];
      // Rules-outer first-match scan: each rule's match vector is walked
      // once for the whole chunk; a packet that matches leaves the active
      // set, so surviving packets see rules strictly in priority order —
      // the same winner the scalar per-packet scan picks.
      match_rule_.assign(moving_.size(), kNoRule);
      active_.resize(moving_.size());
      std::iota(active_.begin(), active_.end(), std::uint32_t{0});
      std::size_t live = active_.size();
      for (std::size_t r = 0; r < table.rules.size() && live > 0; ++r) {
        const Rule& rule = table.rules[r];
        std::size_t w = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t m = active_[a];
          if (rule.matches_key(states_[moving_[m]])) {
            match_rule_[m] = r;
          } else {
            active_[w++] = m;
          }
        }
        live = w;
      }

      for (std::size_t m = 0; m < moving_.size(); ++m) {
        const std::uint32_t p = moving_[m];
        ExecResult& result = results[p];
        expects(result.tables_visited <= num_tables,
                "table graph cycle during batch processing");
        ++result.tables_visited;
        if (match_rule_[m] == kNoRule) {
          result.hit = false;
          result.out_port = 0;
          continue;  // miss: packet leaves the pipeline
        }
        counters_.bump(t, match_rule_[m]);
        const Rule& rule = table.rules[match_rule_[m]];
        for (const Action& action : rule.actions) {
          if (action.kind == Action::Kind::kOutput) {
            result.out_port = action.value;
          } else {
            states_[p].set(action.field, action.value);
          }
        }
        const std::optional<std::size_t> next =
            rule.goto_table.has_value() ? rule.goto_table : table.next;
        if (next.has_value()) {
          expects(*next < num_tables, "jump out of range");
          buckets_[*next].push_back(p);
          if (queued_[*next] == 0) {
            queued_[*next] = 1;
            worklist_.push_back(static_cast<std::uint32_t>(*next));
          }
        } else {
          result.hit = true;
        }
      }
      moving_.clear();
    }
  }
}

Status HwTcamModel::apply_update(const RuleUpdate& update) {
  const std::vector<Rule> old_rules =
      update.table < program_.tables.size()
          ? program_.tables[update.table].rules
          : std::vector<Rule>{};
  if (Status s = apply_update_to_program(program_, update); !s.is_ok()) {
    return s;
  }
  counters_.carry_over(update.table, old_rules,
                       program_.tables[update.table].rules, update);
  return Status::ok();
}

Result<std::uint64_t> HwTcamModel::read_rule_counter(
    std::size_t table, const std::vector<FieldMatch>& target) const {
  return counters_.read(program_, table, target);
}

std::size_t HwTcamModel::pipeline_depth() const noexcept {
  // Longest table chain from the entry (tables form a DAG by
  // construction; compiled pipelines are validated acyclic).
  std::vector<int> memo(program_.tables.size(), -1);
  auto depth = [&](auto&& self, std::size_t i) -> std::size_t {
    if (memo[i] >= 0) return static_cast<std::size_t>(memo[i]);
    memo[i] = 0;  // break accidental cycles defensively
    const TableSpec& t = program_.tables[i];
    std::size_t best = 0;
    if (t.next.has_value()) best = self(self, *t.next);
    for (const Rule& r : t.rules) {
      if (r.goto_table.has_value()) {
        best = std::max(best, self(self, *r.goto_table));
      }
    }
    memo[i] = static_cast<int>(best + 1);
    return best + 1;
  };
  if (program_.tables.empty()) return 0;
  return depth(depth, program_.entry);
}

}  // namespace maton::dp
