#include <algorithm>

#include "dataplane/switch.hpp"
#include "util/contract.hpp"

namespace maton::dp {

void SwitchModel::process_batch(std::span<const FlowKey> keys,
                                std::span<ExecResult> results) {
  expects(results.size() >= keys.size(),
          "process_batch result span too small");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    results[i] = process(keys[i]);
  }
}

Status apply_update_to_program(Program& program, const RuleUpdate& update) {
  if (update.table >= program.tables.size()) {
    return invalid_argument("update targets a non-existent table");
  }
  TableSpec& table = program.tables[update.table];

  auto find_target = [&]() {
    return std::find_if(table.rules.begin(), table.rules.end(),
                        [&](const Rule& r) {
                          return r.matches == update.target;
                        });
  };

  switch (update.kind) {
    case RuleUpdate::Kind::kInsert: {
      table.rules.push_back(update.rule);
      break;
    }
    case RuleUpdate::Kind::kRemove: {
      const auto it = find_target();
      if (it == table.rules.end()) {
        return not_found("rule to remove not present in table " +
                         table.name);
      }
      table.rules.erase(it);
      return Status::ok();  // no re-sort needed
    }
    case RuleUpdate::Kind::kModify: {
      const auto it = find_target();
      if (it == table.rules.end()) {
        return not_found("rule to modify not present in table " +
                         table.name);
      }
      *it = update.rule;
      break;
    }
  }
  std::stable_sort(
      table.rules.begin(), table.rules.end(),
      [](const Rule& a, const Rule& b) { return a.priority > b.priority; });
  return Status::ok();
}

void RuleCounters::reset(const Program& program) {
  counts_.clear();
  counts_.reserve(program.tables.size());
  for (const TableSpec& table : program.tables) {
    counts_.emplace_back(table.rules.size(), 0);
  }
}

void RuleCounters::bump(std::size_t table, std::size_t rule) {
  expects(table < counts_.size() && rule < counts_[table].size(),
          "counter index out of range");
  ++counts_[table][rule];
}

void RuleCounters::bump_all(std::span<const MatchedRule> matched) {
  for (const MatchedRule& m : matched) bump(m.table, m.rule);
}

void RuleCounters::carry_over(std::size_t table,
                              const std::vector<Rule>& old_rules,
                              const std::vector<Rule>& new_rules,
                              const RuleUpdate& update) {
  expects(table < counts_.size(), "counter table out of range");
  std::vector<std::uint64_t> next(new_rules.size(), 0);
  for (std::size_t n = 0; n < new_rules.size(); ++n) {
    // A modified rule inherits the count of the rule it replaced.
    const std::vector<FieldMatch>& lookup =
        (update.kind == RuleUpdate::Kind::kModify &&
         new_rules[n].matches == update.rule.matches)
            ? update.target
            : new_rules[n].matches;
    for (std::size_t o = 0; o < old_rules.size(); ++o) {
      if (old_rules[o].matches == lookup) {
        next[n] = counts_[table][o];
        break;
      }
    }
  }
  counts_[table] = std::move(next);
}

Result<std::uint64_t> RuleCounters::read(
    const Program& program, std::size_t table,
    const std::vector<FieldMatch>& target) const {
  if (table >= program.tables.size()) {
    return invalid_argument("counter read targets a non-existent table");
  }
  const auto& rules = program.tables[table].rules;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].matches == target) return counts_[table][r];
  }
  return not_found("no rule with the given match vector in table " +
                   program.tables[table].name);
}

Status HwTcamModel::load(Program program) {
  program_ = std::move(program);
  counters_.reset(program_);
  return Status::ok();
}

ExecResult HwTcamModel::process(const FlowKey& key) {
  // The hardware forwards at line rate regardless of representation; the
  // model only needs functional correctness (and flow stats) here.
  const ExecResult result =
      execute_reference(program_, key, &matched_scratch_);
  counters_.bump_all(matched_scratch_.span());
  return result;
}

Status HwTcamModel::apply_update(const RuleUpdate& update) {
  const std::vector<Rule> old_rules =
      update.table < program_.tables.size()
          ? program_.tables[update.table].rules
          : std::vector<Rule>{};
  if (Status s = apply_update_to_program(program_, update); !s.is_ok()) {
    return s;
  }
  counters_.carry_over(update.table, old_rules,
                       program_.tables[update.table].rules, update);
  return Status::ok();
}

Result<std::uint64_t> HwTcamModel::read_rule_counter(
    std::size_t table, const std::vector<FieldMatch>& target) const {
  return counters_.read(program_, table, target);
}

std::size_t HwTcamModel::pipeline_depth() const noexcept {
  // Longest table chain from the entry (tables form a DAG by
  // construction; compiled pipelines are validated acyclic).
  std::vector<int> memo(program_.tables.size(), -1);
  auto depth = [&](auto&& self, std::size_t i) -> std::size_t {
    if (memo[i] >= 0) return static_cast<std::size_t>(memo[i]);
    memo[i] = 0;  // break accidental cycles defensively
    const TableSpec& t = program_.tables[i];
    std::size_t best = 0;
    if (t.next.has_value()) best = self(self, *t.next);
    for (const Rule& r : t.rules) {
      if (r.goto_table.has_value()) {
        best = std::max(best, self(self, *r.goto_table));
      }
    }
    memo[i] = static_cast<int>(best + 1);
    return best + 1;
  };
  if (program_.tables.empty()) return 0;
  return depth(depth, program_.entry);
}

}  // namespace maton::dp
