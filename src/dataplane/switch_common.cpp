#include <algorithm>
#include <numeric>

#include "dataplane/switch.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace maton::dp {

void SwitchModel::process_batch(std::span<const FlowKey> keys,
                                std::span<ExecResult> results) {
  expects(results.size() >= keys.size(),
          "process_batch result span too small");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    results[i] = process(keys[i]);
  }
}

Status SwitchModel::apply_updates(std::span<const RuleUpdate> updates) {
  for (const RuleUpdate& update : updates) {
    if (Status s = apply_update(update); !s.is_ok()) return s;
  }
  return Status::ok();
}

bool SwitchModel::configure_queues(std::size_t queues) {
  return queues == 1;
}

void SwitchModel::process_batch_queue(std::size_t queue,
                                      std::span<const FlowKey> keys,
                                      std::span<ExecResult> results) {
  expects(queue == 0, "model supports a single replay queue");
  process_batch(keys, results);
}

Status apply_update_to_program(Program& program, const RuleUpdate& update,
                               ApplyOutcome* outcome) {
  if (update.table >= program.tables.size()) {
    return invalid_argument("update targets a non-existent table");
  }
  TableSpec& table = program.tables[update.table];
  ApplyOutcome result;

  switch (update.kind) {
    case RuleUpdate::Kind::kInsert: {
      result.kind = ApplyOutcome::Kind::kInserted;
      result.index = table.rules.insert_sorted(update.rule);
      break;
    }
    case RuleUpdate::Kind::kRemove: {
      const std::size_t pos = table.rules.find_by_match(update.target);
      if (pos == FlatRules::kNpos) {
        return not_found("rule to remove not present in table " +
                         table.name);
      }
      table.rules.erase(pos);
      result.kind = ApplyOutcome::Kind::kRemoved;
      result.index = pos;
      break;
    }
    case RuleUpdate::Kind::kModify: {
      const std::size_t pos = table.rules.find_by_match(update.target);
      if (pos == FlatRules::kNpos) {
        return not_found("rule to modify not present in table " +
                         table.name);
      }
      const std::uint32_t old_priority = table.rules.priority_of(pos);
      table.rules.replace(pos, update.rule);
      if (update.rule.priority == old_priority) {
        result.kind = ApplyOutcome::Kind::kModifiedInPlace;
        result.index = pos;
      } else {
        result.kind = ApplyOutcome::Kind::kModifiedMoved;
        result.index = pos;
        result.moved_to = table.rules.reposition(pos);
      }
      break;
    }
  }
  if (outcome != nullptr) *outcome = result;
  return Status::ok();
}

namespace {

/// Counters per cache line; shard strides round up to a multiple so no
/// two queues' shards share a line.
constexpr std::size_t kCountersPerLine = 64 / sizeof(std::uint64_t);

}  // namespace

void RuleCounters::rebuild_layout() {
  offsets_.assign(1, 0);
  for (const std::size_t s : sizes_) offsets_.push_back(offsets_.back() + s);
  stride_ = (offsets_.back() + kCountersPerLine - 1) / kCountersPerLine *
            kCountersPerLine;
  // Vector move-assign swaps buffers without moving elements, so the
  // non-movable atomics are only ever value-initialized (to zero).
  counts_ = std::vector<std::atomic<std::uint64_t>>(stride_ * queues_);
}

void RuleCounters::reset(const Program& program, std::size_t queues) {
  expects(queues > 0, "counters need at least one shard");
  queues_ = queues;
  sizes_.clear();
  sizes_.reserve(program.tables.size());
  for (const TableSpec& table : program.tables) {
    sizes_.push_back(table.rules.size());
  }
  rebuild_layout();
}

void RuleCounters::bump(std::size_t table, std::size_t rule,
                        std::size_t queue) {
  expects(queue < queues_ && table < sizes_.size() && rule < sizes_[table],
          "counter index out of range");
  // Single writer per shard: a plain relaxed load/store increment is
  // race-free and skips the lock-prefixed RMW an fetch_add would pay.
  std::atomic<std::uint64_t>& c = counts_[slot(queue, table, rule)];
  c.store(c.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
}

void RuleCounters::bump_all(std::span<const MatchedRule> matched,
                            std::size_t queue) {
  for (const MatchedRule& m : matched) bump(m.table, m.rule, queue);
}

void RuleCounters::on_insert(std::size_t table, std::size_t pos) {
  expects(table < sizes_.size() && pos <= sizes_[table],
          "counter insert out of range");
  // Structural edits run on the quiesced control path: snapshot, grow
  // the layout, copy back with the table's tail shifted up.
  std::vector<std::uint64_t> old(counts_.size());
  for (std::size_t i = 0; i < old.size(); ++i) {
    old[i] = counts_[i].load(std::memory_order_relaxed);
  }
  const std::vector<std::size_t> old_offsets = offsets_;
  const std::size_t old_stride = stride_;
  ++sizes_[table];
  rebuild_layout();
  for (std::size_t q = 0; q < queues_; ++q) {
    for (std::size_t t = 0; t < sizes_.size(); ++t) {
      const std::size_t old_n = old_offsets[t + 1] - old_offsets[t];
      for (std::size_t r = 0; r < old_n; ++r) {
        const std::size_t to = (t == table && r >= pos) ? r + 1 : r;
        counts_[slot(q, t, to)].store(
            old[q * old_stride + old_offsets[t] + r],
            std::memory_order_relaxed);
      }
    }
  }
}

void RuleCounters::on_remove(std::size_t table, std::size_t pos) {
  expects(table < sizes_.size() && pos < sizes_[table],
          "counter remove out of range");
  std::vector<std::uint64_t> old(counts_.size());
  for (std::size_t i = 0; i < old.size(); ++i) {
    old[i] = counts_[i].load(std::memory_order_relaxed);
  }
  const std::vector<std::size_t> old_offsets = offsets_;
  const std::size_t old_stride = stride_;
  --sizes_[table];
  rebuild_layout();
  for (std::size_t q = 0; q < queues_; ++q) {
    for (std::size_t t = 0; t < sizes_.size(); ++t) {
      const std::size_t old_n = old_offsets[t + 1] - old_offsets[t];
      for (std::size_t r = 0; r < old_n; ++r) {
        if (t == table && r == pos) continue;
        const std::size_t to = (t == table && r > pos) ? r - 1 : r;
        counts_[slot(q, t, to)].store(
            old[q * old_stride + old_offsets[t] + r],
            std::memory_order_relaxed);
      }
    }
  }
}

void RuleCounters::on_move(std::size_t table, std::size_t from,
                           std::size_t to) {
  expects(table < sizes_.size() && from < sizes_[table] &&
              to < sizes_[table],
          "counter move out of range");
  if (from == to) return;
  // Same size, same layout: rotate [from..to] within each shard.
  for (std::size_t q = 0; q < queues_; ++q) {
    const std::uint64_t moved =
        counts_[slot(q, table, from)].load(std::memory_order_relaxed);
    if (from < to) {
      for (std::size_t r = from; r < to; ++r) {
        counts_[slot(q, table, r)].store(
            counts_[slot(q, table, r + 1)].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
    } else {
      for (std::size_t r = from; r > to; --r) {
        counts_[slot(q, table, r)].store(
            counts_[slot(q, table, r - 1)].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
    }
    counts_[slot(q, table, to)].store(moved, std::memory_order_relaxed);
  }
}

std::uint64_t RuleCounters::merged(std::size_t table,
                                   std::size_t rule) const {
  expects(table < sizes_.size() && rule < sizes_[table],
          "counter index out of range");
  // Deterministic merge: fold shards in ascending queue-id order.
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < queues_; ++q) {
    total += counts_[slot(q, table, rule)].load(std::memory_order_relaxed);
  }
  return total;
}

Result<std::uint64_t> RuleCounters::read(
    const Program& program, std::size_t table,
    const std::vector<FieldMatch>& target) const {
  if (table >= program.tables.size()) {
    return invalid_argument("counter read targets a non-existent table");
  }
  const std::size_t pos = program.tables[table].rules.find_by_match(target);
  if (pos == FlatRules::kNpos) {
    return not_found("no rule with the given match vector in table " +
                     program.tables[table].name);
  }
  return merged(table, pos);
}

HwTcamModel::HwTcamModel() {
  auto& registry = obs::MetricRegistry::global();
  batch_chunks_ = &registry.counter(
      "maton_dp_classifier_chunks_total",
      {{"model", "noviflow-hw"}, {"template", "tcam"}});
  chunk_size_ = &registry.histogram("maton_dp_batch_chunk_size",
                                    {{"model", "noviflow-hw"}});
}

Status HwTcamModel::load(Program program) {
  program_ = std::move(program);
  counters_.reset(program_);
  return Status::ok();
}

ExecResult HwTcamModel::process(const FlowKey& key) {
  // The hardware forwards at line rate regardless of representation; the
  // model only needs functional correctness (and flow stats) here.
  const ExecResult result =
      execute_reference(program_, key, &matched_scratch_);
  counters_.bump_all(matched_scratch_.span());
  return result;
}

void HwTcamModel::process_batch(std::span<const FlowKey> keys,
                                std::span<ExecResult> results) {
  expects(results.size() >= keys.size(),
          "process_batch result span too small");
  const std::size_t num_tables = program_.tables.size();
  for (std::size_t i = 0; i < keys.size(); ++i) results[i] = ExecResult{};
  if (num_tables == 0 || keys.empty()) return;
  expects(program_.entry < num_tables, "program entry out of range");

  states_.assign(keys.begin(), keys.end());
  buckets_.resize(num_tables);
  for (auto& bucket : buckets_) bucket.clear();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    buckets_[program_.entry].push_back(static_cast<std::uint32_t>(i));
  }

  worklist_.clear();
  queued_.assign(num_tables, 0);
  worklist_.push_back(static_cast<std::uint32_t>(program_.entry));
  queued_[program_.entry] = 1;

  // FIFO over occupied buckets: each pop visits a non-empty bucket
  // exactly once instead of re-scanning every table per round. The
  // table graph is acyclic, so the worklist drains.
  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    const std::size_t t = worklist_[head];
    queued_[t] = 0;
    {
      moving_.swap(buckets_[t]);
      buckets_[t].clear();
      if constexpr (obs::kEnabled) {
        batch_chunks_->add();
        chunk_size_->observe(static_cast<double>(moving_.size()));
      }

      const TableSpec& table = program_.tables[t];
      // Rules-outer first-match scan: each rule's match vector is walked
      // once for the whole chunk; a packet that matches leaves the active
      // set, so surviving packets see rules strictly in priority order —
      // the same winner the scalar per-packet scan picks.
      match_rule_.assign(moving_.size(), kNoRule);
      active_.resize(moving_.size());
      std::iota(active_.begin(), active_.end(), std::uint32_t{0});
      std::size_t live = active_.size();
      for (std::size_t r = 0; r < table.rules.size() && live > 0; ++r) {
        const RuleView rule = table.rules[r];
        std::size_t w = 0;
        for (std::size_t a = 0; a < live; ++a) {
          const std::uint32_t m = active_[a];
          if (rule.matches_key(states_[moving_[m]])) {
            match_rule_[m] = r;
          } else {
            active_[w++] = m;
          }
        }
        live = w;
      }

      for (std::size_t m = 0; m < moving_.size(); ++m) {
        const std::uint32_t p = moving_[m];
        ExecResult& result = results[p];
        expects(result.tables_visited <= num_tables,
                "table graph cycle during batch processing");
        ++result.tables_visited;
        if (match_rule_[m] == kNoRule) {
          result.hit = false;
          result.out_port = 0;
          continue;  // miss: packet leaves the pipeline
        }
        counters_.bump(t, match_rule_[m]);
        const RuleView rule = table.rules[match_rule_[m]];
        for (const Action action : rule.actions) {
          if (action.kind == Action::Kind::kOutput) {
            result.out_port = action.value;
          } else {
            states_[p].set(action.field, action.value);
          }
        }
        const std::optional<std::size_t> next =
            rule.goto_table.has_value() ? rule.goto_table : table.next;
        if (next.has_value()) {
          expects(*next < num_tables, "jump out of range");
          buckets_[*next].push_back(p);
          if (queued_[*next] == 0) {
            queued_[*next] = 1;
            worklist_.push_back(static_cast<std::uint32_t>(*next));
          }
        } else {
          result.hit = true;
        }
      }
      moving_.clear();
    }
  }
}

Status HwTcamModel::apply_update(const RuleUpdate& update) {
  ApplyOutcome outcome;
  if (Status s = apply_update_to_program(program_, update, &outcome);
      !s.is_ok()) {
    return s;
  }
  switch (outcome.kind) {
    case ApplyOutcome::Kind::kInserted:
      counters_.on_insert(update.table, outcome.index);
      break;
    case ApplyOutcome::Kind::kRemoved:
      counters_.on_remove(update.table, outcome.index);
      break;
    case ApplyOutcome::Kind::kModifiedInPlace:
      break;  // position unchanged; the rule inherits its count
    case ApplyOutcome::Kind::kModifiedMoved:
      counters_.on_move(update.table, outcome.index, outcome.moved_to);
      break;
  }
  return Status::ok();
}

Result<std::uint64_t> HwTcamModel::read_rule_counter(
    std::size_t table, const std::vector<FieldMatch>& target) const {
  return counters_.read(program_, table, target);
}

std::size_t HwTcamModel::pipeline_depth() const noexcept {
  // Longest table chain from the entry (tables form a DAG by
  // construction; compiled pipelines are validated acyclic).
  std::vector<int> memo(program_.tables.size(), -1);
  auto depth = [&](auto&& self, std::size_t i) -> std::size_t {
    if (memo[i] >= 0) return static_cast<std::size_t>(memo[i]);
    memo[i] = 0;  // break accidental cycles defensively
    const TableSpec& t = program_.tables[i];
    std::size_t best = 0;
    if (t.next.has_value()) best = self(self, *t.next);
    for (const auto r : t.rules) {
      if (r.goto_table.has_value()) {
        best = std::max(best, self(self, *r.goto_table));
      }
    }
    memo[i] = static_cast<int>(best + 1);
    return best + 1;
  };
  if (program_.tables.empty()) return 0;
  return depth(depth, program_.entry);
}

}  // namespace maton::dp
