// Switch models: behavioural stand-ins for the four data planes of the
// paper's evaluation (§5) — OVS, ESwitch, Lagopus and the NoviFlow 2128.
//
// Software models (ESwitch/OVS/Lagopus) do real per-packet work — hash
// probes, trie walks, tuple-space probes — so relative performance
// emerges from genuine code paths; a documented per-packet framework
// overhead constant converts measured classifier time into absolute
// packet rates of the right magnitude (see EXPERIMENTS.md). The hardware
// model is analytic: line-rate forwarding plus a TCAM update-stall model.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "dataplane/classifier.hpp"
#include "dataplane/program.hpp"

namespace maton::obs {
class Counter;
class Histogram;
}  // namespace maton::obs

namespace maton::dp {

/// One control-plane rule update applied to a running switch.
struct RuleUpdate {
  enum class Kind { kInsert, kRemove, kModify };
  Kind kind = Kind::kModify;
  std::size_t table = 0;
  /// Identifies the existing rule by its exact match vector
  /// (kRemove / kModify).
  std::vector<FieldMatch> target;
  /// The new rule (kInsert / kModify).
  Rule rule;
};

class SwitchModel {
 public:
  virtual ~SwitchModel() = default;
  SwitchModel(const SwitchModel&) = delete;
  SwitchModel& operator=(const SwitchModel&) = delete;

  [[nodiscard]] virtual Status load(Program program) = 0;
  [[nodiscard]] virtual ExecResult process(const FlowKey& key) = 0;

  /// Batched execution: results[i] = process(keys[i]), in order, with
  /// identical side effects (rule counters, caches, stats). The base
  /// implementation is the scalar loop; software models override it with
  /// stage-hoisted kernels that amortize dispatch and put many memory
  /// accesses in flight. Requires results.size() >= keys.size().
  virtual void process_batch(std::span<const FlowKey> keys,
                             std::span<ExecResult> results);

  /// Declares that `queues` replay queues will drive this one instance
  /// concurrently through process_batch_queue — classifiers are shared
  /// read-only, every queue gets private batch-walker scratch, and the
  /// rule counters re-shard per queue (configuring zeroes them).
  /// Returns false when the model cannot share one instance across
  /// queues (OVS mutates its megaflow cache per packet); callers fall
  /// back to per-queue instances. Rule updates must be quiesced
  /// relative to concurrent queue processing.
  [[nodiscard]] virtual bool configure_queues(std::size_t queues);

  /// process_batch bound to one configured queue: identical results,
  /// with counter bumps landing in the queue's private shard. Safe to
  /// call concurrently across distinct queue ids after a successful
  /// configure_queues. The base implementation supports queue 0 only.
  virtual void process_batch_queue(std::size_t queue,
                                   std::span<const FlowKey> keys,
                                   std::span<ExecResult> results);

  [[nodiscard]] virtual Status apply_update(const RuleUpdate& update) = 0;

  /// Applies `updates` in order, equivalent to calling apply_update per
  /// element (same final rule state, counters, and model stats). The base
  /// implementation is the scalar loop; software models override it to
  /// run the per-table index maintenance — classifier recompilation,
  /// cache-flush bookkeeping — once per touched table instead of once per
  /// update. Stops at the first failure; updates already applied stay
  /// applied (the §2 non-atomicity the inconsistency window measures).
  [[nodiscard]] virtual Status apply_updates(
      std::span<const RuleUpdate> updates);

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Fixed per-packet framework cost (I/O, metadata bookkeeping) added to
  /// the measured classifier time when reporting absolute packet rates.
  [[nodiscard]] virtual double per_packet_overhead_ns() const noexcept {
    return 0.0;
  }

  /// Per-rule packet counter (OpenFlow flow stats): packets that matched
  /// the rule identified by its match vector. Counters survive kModify
  /// (the modified rule inherits the old count) and start at zero for
  /// inserts. This is what §2's monitorability discussion reads.
  [[nodiscard]] virtual Result<std::uint64_t> read_rule_counter(
      std::size_t table, const std::vector<FieldMatch>& target) const = 0;

 protected:
  SwitchModel() = default;
};

/// Per-rule packet counters parallel to a program's tables, with the
/// OpenFlow preservation semantics across rule updates. Shared by the
/// switch model implementations. Counts are positional; the
/// ApplyOutcome of apply_update_to_program says how positions moved, so
/// carrying counters across an update is O(Δ) (or O(shift) for
/// structural edits) instead of a match-vector join.
///
/// Sharded per replay queue: the counter array is replicated once per
/// queue with each shard's stride rounded up to whole cache lines, so
/// concurrent queues never write the same line (no bouncing, no atomic
/// RMW — each shard has a single writer and uses plain relaxed
/// load/store increments). Reads merge shards deterministically by
/// folding them in ascending queue-id order; 64-bit addition is
/// commutative and lossless here, so quiesced merged totals are exact
/// and independent of queue interleaving. Structural ops (reset /
/// on_insert / on_remove / on_move) and merging reads race-free only
/// against bump()s, not against each other — they run on the quiesced
/// control path by contract.
class RuleCounters {
 public:
  /// Re-sizes to match `program` with one shard per queue, zeroing
  /// everything.
  void reset(const Program& program, std::size_t queues = 1);

  [[nodiscard]] std::size_t queues() const noexcept { return queues_; }

  /// Increments rule's counter in `queue`'s shard. Each queue id must
  /// have at most one concurrent writer (the replay queue's thread).
  void bump(std::size_t table, std::size_t rule, std::size_t queue = 0);
  void bump_all(std::span<const MatchedRule> matched,
                std::size_t queue = 0);

  /// A rule was inserted at `pos` (fresh count of zero).
  void on_insert(std::size_t table, std::size_t pos);
  /// The rule at `pos` was removed.
  void on_remove(std::size_t table, std::size_t pos);
  /// The rule at `from` moved to `to` (kModify with a priority change);
  /// it keeps its count — OpenFlow modify inherits the old stats.
  void on_move(std::size_t table, std::size_t from, std::size_t to);

  /// Merged (all-shard) count for the rule with the given match vector.
  [[nodiscard]] Result<std::uint64_t> read(
      const Program& program, std::size_t table,
      const std::vector<FieldMatch>& target) const;

  /// Merged (all-shard) count by position — ascending queue-id fold.
  [[nodiscard]] std::uint64_t merged(std::size_t table,
                                     std::size_t rule) const;

 private:
  void rebuild_layout();
  [[nodiscard]] std::size_t slot(std::size_t queue, std::size_t table,
                                 std::size_t rule) const noexcept {
    return queue * stride_ + offsets_[table] + rule;
  }

  std::vector<std::size_t> sizes_;    // rules per table
  std::vector<std::size_t> offsets_;  // table → flat offset (+ total)
  std::size_t stride_ = 0;  // per-shard slots, cache-line rounded
  std::size_t queues_ = 1;
  std::vector<std::atomic<std::uint64_t>> counts_;  // queues_ * stride_
};

/// ESwitch-style datapath specialization: every table compiled to the
/// most efficient classifier template its rules admit (§5: exact-match /
/// LPM / tuple-space / linear).
[[nodiscard]] std::unique_ptr<SwitchModel> make_eswitch_model();

/// Lagopus-style generic datapath: tuple-space lookup for every table
/// regardless of structure, plus a large fixed per-packet overhead that
/// dominates either representation (which is why Lagopus is agnostic to
/// normalization in Table 1).
[[nodiscard]] std::unique_ptr<SwitchModel> make_lagopus_model();

/// OVS-style flow-cache datapath: the multi-table pipeline runs only on
/// the slow path; the first packet of each megaflow installs a collapsed
/// single-lookup cache entry, explicitly denormalizing the pipeline (§5).
[[nodiscard]] std::unique_ptr<SwitchModel> make_ovs_model();

struct OvsStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_flushes = 0;
};

/// Extended interface of the OVS model, for cache-behaviour tests.
class OvsModelInterface : public SwitchModel {
 public:
  [[nodiscard]] virtual OvsStats stats() const noexcept = 0;
};

/// NoviFlow-2128-style hardware model: analytic line-rate forwarding
/// with per-stage latency and a TCAM update-stall model (drives Fig. 4).
class HwTcamModel final : public SwitchModel {
 public:
  HwTcamModel();

  Status load(Program program) override;
  ExecResult process(const FlowKey& key) override;
  /// Batched reference interpreter: packets advance through the table
  /// graph via a worklist of occupied tables (no full-table re-scan per
  /// round), and each table runs a rules-outer first-match scan
  /// with active-set compaction so one rule's match vector is fetched
  /// once per chunk instead of once per packet. Results, flow counters
  /// and cycle guards are bit-identical to the scalar path.
  void process_batch(std::span<const FlowKey> keys,
                     std::span<ExecResult> results) override;
  Status apply_update(const RuleUpdate& update) override;
  [[nodiscard]] Result<std::uint64_t> read_rule_counter(
      std::size_t table,
      const std::vector<FieldMatch>& target) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "noviflow-hw";
  }

  /// 64-byte line rate of the measured port configuration [Mpps].
  [[nodiscard]] double line_rate_mpps() const noexcept { return 10.75; }

  /// Packet latency [µs] for a pipeline of the given depth:
  /// fixed port/fabric cost plus one TCAM stage per table.
  /// Calibrated so depth 1 → 6.4 µs and depth 2 → 8.4 µs (Table 1).
  [[nodiscard]] double latency_us(std::size_t depth) const noexcept {
    return 4.4 + 2.0 * static_cast<double>(depth);
  }

  /// Pipeline stall caused by installing/modifying `entries_touched`
  /// rules in a table currently holding `table_size` entries. Models
  /// per-entry install cost plus TCAM reorganization proportional to the
  /// table size (priority shuffling), the effect behind Fig. 4's 20×
  /// throughput loss.
  [[nodiscard]] double update_stall_seconds(
      std::size_t entries_touched, std::size_t table_size) const noexcept {
    constexpr double kPerEntrySeconds = 59e-6;
    constexpr double kReorgPerExistingEntrySeconds = 7.05e-6;
    return static_cast<double>(entries_touched) *
           (kPerEntrySeconds +
            kReorgPerExistingEntrySeconds * static_cast<double>(table_size));
  }

  /// Effective throughput [Mpps] under `stall_seconds_per_second` of
  /// accumulated update stalls per wall-clock second.
  [[nodiscard]] double throughput_mpps(double stall_seconds_per_second)
      const noexcept {
    const double available = 1.0 - stall_seconds_per_second;
    return line_rate_mpps() * (available < 0.0 ? 0.0 : available);
  }

  [[nodiscard]] const Program& program() const noexcept { return program_; }
  [[nodiscard]] std::size_t pipeline_depth() const noexcept;

 private:
  Program program_;
  RuleCounters counters_;
  MatchedBuf matched_scratch_;

  // Batch-walker scratch, reused across process_batch calls.
  std::vector<FlowKey> states_;
  std::vector<std::vector<std::uint32_t>> buckets_;  // per-table frontier
  std::vector<std::uint32_t> moving_;
  std::vector<std::uint32_t> active_;
  std::vector<std::size_t> match_rule_;
  std::vector<std::uint32_t> worklist_;  // FIFO of occupied buckets
  std::vector<std::uint8_t> queued_;     // table ∈ worklist_[head..)

  // Telemetry handles (resolved once at construction).
  obs::Counter* batch_chunks_ = nullptr;
  obs::Histogram* chunk_size_ = nullptr;
};

/// How apply_update_to_program changed the table — what index
/// maintenance (counters, classifiers) the caller still owes.
struct ApplyOutcome {
  enum class Kind {
    kInserted,         // new rule at `index`; later rules shifted up
    kRemoved,          // rule at `index` removed; later rules shifted down
    kModifiedInPlace,  // rule at `index` replaced, position unchanged
    kModifiedMoved,    // rule replaced and re-positioned `index` → `moved_to`
  };
  Kind kind = Kind::kModifiedInPlace;
  std::size_t index = 0;
  std::size_t moved_to = 0;  // kModifiedMoved only
};

/// Applies `update` to a program's table in place (shared by the software
/// models). Returns kNotFound when the target rule does not exist.
/// Delta-scoped: the target is found through the table's lazy match
/// index, a same-priority modify replaces in place, and a priority
/// change repositions one 20-byte ref — no full re-sort. Tables are kept
/// in the compiled order (priority descending, stable), matching what a
/// full `stable_sort` of the legacy path produced. When `outcome` is
/// non-null it receives what happened, so callers can delta-scope their
/// own bookkeeping.
[[nodiscard]] Status apply_update_to_program(
    Program& program, const RuleUpdate& update,
    ApplyOutcome* outcome = nullptr);

}  // namespace maton::dp
