// Intent compiler: maps a functional intent onto the rule updates a given
// match-action representation requires, and computes the §2 metrics
// (controllability: updates per intent; monitorability: counters +
// aggregation steps per observation task; atomicity: the inconsistency
// window when updates are not applied atomically).
#pragma once

#include <optional>
#include <vector>

#include "controlplane/intent.hpp"
#include "core/fd_mine.hpp"
#include "dataplane/switch.hpp"
#include "workloads/gwlb.hpp"

namespace maton::cp {

/// The pipeline representations of Fig. 1.
enum class Representation { kUniversal, kGoto, kMetadata, kRematch };

[[nodiscard]] std::string_view to_string(Representation repr) noexcept;

/// Plan for observing one service's aggregate traffic (§2
/// "Monitorability": 3 counters + controller-side aggregation on the
/// universal table vs a single counter on the normalized pipeline).
struct MonitorPlan {
  std::size_t counters = 0;
  /// Additions the controller performs to aggregate the readings.
  std::size_t aggregation_steps = 0;
};

/// Binds the gwlb service model to one concrete representation: builds
/// the data-plane program, compiles intents into rule updates, and keeps
/// its internal service model in sync as intents are applied.
class GwlbBinding {
 public:
  GwlbBinding(workloads::Gwlb gwlb, Representation repr);

  [[nodiscard]] Representation representation() const noexcept {
    return repr_;
  }
  [[nodiscard]] const workloads::Gwlb& gwlb() const noexcept { return gwlb_; }
  [[nodiscard]] const dp::Program& program() const noexcept {
    return program_;
  }

  /// Compiles `intent` into the updates this representation needs and
  /// advances the internal service model. The §2 controllability metric
  /// is the size of the returned vector.
  [[nodiscard]] Result<std::vector<dp::RuleUpdate>> compile_intent(
      const Intent& intent);

  /// §2 monitorability: the plan for measuring one service's aggregate
  /// traffic under this representation.
  [[nodiscard]] MonitorPlan monitor_plan(std::size_t service) const;

  /// Entries that refer to the service's identity (VIP/port) — the state
  /// that can become inconsistent mid-update. The §2 atomicity argument:
  /// an intent touching k entries has an inconsistency window of k − 1
  /// partially-applied states.
  [[nodiscard]] std::size_t identity_entries(std::size_t service) const;

  /// FDs holding in the *current* universal table, re-mined lazily after
  /// each applied intent (§3's transient dependencies tracked live under
  /// churn). The binding keeps a cross-call PartitionCache: an intent
  /// rewrites a few cells of one or two columns, so the next re-mine
  /// reuses every stripped partition whose columns the intent left
  /// untouched instead of recomputing the world per update.
  [[nodiscard]] const core::FdSet& mined_fds();

  /// The partition cache backing mined_fds(), for reuse diagnostics.
  [[nodiscard]] const core::tane::PartitionCache& partition_cache() const
      noexcept {
    return mine_cache_;
  }

 private:
  void rebuild_program();

  workloads::Gwlb gwlb_;
  Representation repr_;
  dp::Program program_;
  core::tane::PartitionCache mine_cache_;
  std::optional<core::FdSet> mined_;  // invalidated by rebuild_program()
};

/// Builds the core pipeline for a representation (universal = single
/// stage).
[[nodiscard]] core::Pipeline pipeline_for(const workloads::Gwlb& gwlb,
                                          Representation repr);

}  // namespace maton::cp
