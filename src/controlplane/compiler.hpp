// Intent compiler: maps a functional intent onto the rule updates a given
// match-action representation requires, and computes the §2 metrics
// (controllability: updates per intent; monitorability: counters +
// aggregation steps per observation task; atomicity: the inconsistency
// window when updates are not applied atomically).
//
// Two compilation paths exist. The *full-rebuild* reference rebuilds the
// whole program from the service model and diffs it against the previous
// one. The *incremental* path (the default) exploits that every intent
// names the single service it touches: it re-emits only that service's
// rule slice per table — through the same per-service emitters the
// pipeline builders use — diffs the slice, and patches the program (and
// the universal table, cell-wise) in place. The two paths are
// differentially tested to be bit-identical over randomized churn traces
// (tests/controlplane/test_incremental_compile.cpp).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/analysis.hpp"
#include "controlplane/intent.hpp"
#include "core/fd_mine.hpp"
#include "dataplane/switch.hpp"
#include "workloads/gwlb.hpp"

namespace maton::cp {

/// The pipeline representations of Fig. 1.
enum class Representation { kUniversal, kGoto, kMetadata, kRematch };

[[nodiscard]] std::string_view to_string(Representation repr) noexcept;

/// Which compilation path a binding uses for intents.
enum class CompileMode {
  /// Delta-scoped: re-emit only the touched service's slice and patch
  /// the program in place; falls back to kFullRebuild per intent when
  /// slice-local diffing would be ambiguous (e.g. duplicate live VIPs).
  kIncremental,
  /// Reference: rebuild the whole program and diff old vs new.
  kFullRebuild,
};

/// Per-binding tally of which path compiled each applied intent, with
/// fallbacks split by cause: VIP collisions whose slices could not be
/// proven disjoint vs slice-validation (provenance) mismatches.
struct IncrementalStats {
  std::size_t hits = 0;       ///< intents compiled by the delta path
  std::size_t fallbacks = 0;  ///< intents demoted to a full rebuild
  std::size_t vip_collision_fallbacks = 0;
  std::size_t slice_validation_fallbacks = 0;
};

/// Whether a binding symbolically verifies each compile: after the
/// initial build and every applied intent, prove the live (possibly
/// patched-in-place) program equivalent to a freshly rebuilt reference
/// using the decision-diagram engine — drift is caught as a semantic
/// difference, not just a bit difference.
enum class VerifyMode { kOff, kSymbolic };

/// Tally of post-compile symbolic verifications.
struct VerifyStats {
  std::size_t verified = 0;  ///< proofs of equivalence
  std::size_t failed = 0;    ///< refutations (drift!) — must stay 0
  std::size_t unknown = 0;   ///< solver bailed (budget)
};

/// Whether a binding re-runs the static analyzer over the freshly
/// compiled program after every compile (initial build and each applied
/// intent). Reports land in last_analysis(); outcomes are tallied on the
/// maton_cp_analysis_{clean,findings}_total counters.
enum class AnalyzeMode {
  kOff,
  /// Run analysis::run (at warning severity) after every successful
  /// compile, on both the incremental and the full-rebuild path.
  kPostCompile,
};

/// Plan for observing one service's aggregate traffic (§2
/// "Monitorability": 3 counters + controller-side aggregation on the
/// universal table vs a single counter on the normalized pipeline).
struct MonitorPlan {
  std::size_t counters = 0;
  /// Additions the controller performs to aggregate the readings.
  std::size_t aggregation_steps = 0;
};

/// Binds the gwlb service model to one concrete representation: builds
/// the data-plane program, compiles intents into rule updates, and keeps
/// its internal service model in sync as intents are applied.
class GwlbBinding {
 public:
  GwlbBinding(workloads::Gwlb gwlb, Representation repr,
              CompileMode mode = CompileMode::kIncremental,
              AnalyzeMode analyze = AnalyzeMode::kOff,
              VerifyMode verify = VerifyMode::kOff);

  [[nodiscard]] Representation representation() const noexcept {
    return repr_;
  }
  [[nodiscard]] CompileMode mode() const noexcept { return mode_; }
  [[nodiscard]] AnalyzeMode analyze_mode() const noexcept {
    return analyze_;
  }
  /// Takes effect from the next compile; does not analyze retroactively.
  void set_analyze_mode(AnalyzeMode analyze) noexcept { analyze_ = analyze; }
  /// Report of the most recent post-compile analysis (empty when
  /// AnalyzeMode is kOff or nothing has compiled since it was enabled).
  [[nodiscard]] const analysis::Report& last_analysis() const noexcept {
    return last_analysis_;
  }
  [[nodiscard]] IncrementalStats incremental_stats() const noexcept {
    return inc_stats_;
  }
  [[nodiscard]] VerifyMode verify_mode() const noexcept { return verify_; }
  [[nodiscard]] VerifyStats verify_stats() const noexcept {
    return verify_stats_;
  }
  /// Solver note / counterexample of the most recent non-verified
  /// outcome (empty while every verification proved equivalence).
  [[nodiscard]] const std::string& last_verify_note() const noexcept {
    return last_verify_note_;
  }
  [[nodiscard]] const workloads::Gwlb& gwlb() const noexcept { return gwlb_; }
  [[nodiscard]] const dp::Program& program() const noexcept {
    return program_;
  }

  /// Compiles `intent` into the updates this representation needs and
  /// advances the internal service model. The §2 controllability metric
  /// is the size of the returned vector.
  [[nodiscard]] Result<std::vector<dp::RuleUpdate>> compile_intent(
      const Intent& intent);

  /// §2 monitorability: the plan for measuring one service's aggregate
  /// traffic under this representation.
  [[nodiscard]] MonitorPlan monitor_plan(std::size_t service) const;

  /// Entries that refer to the service's identity (VIP/port) — the state
  /// that can become inconsistent mid-update. The §2 atomicity argument:
  /// an intent touching k entries has an inconsistency window of k − 1
  /// partially-applied states.
  [[nodiscard]] std::size_t identity_entries(std::size_t service) const;

  /// FDs holding in the *current* universal table, re-mined lazily after
  /// each applied intent (§3's transient dependencies tracked live under
  /// churn). The binding keeps a cross-call PartitionCache: an intent
  /// rewrites a few cells of one or two columns, so the next re-mine
  /// reuses every stripped partition whose columns the intent left
  /// untouched instead of recomputing the world per update. The
  /// incremental path patches the universal table cell-wise precisely so
  /// those fingerprints stay warm.
  [[nodiscard]] const core::FdSet& mined_fds();

  /// The partition cache backing mined_fds(), for reuse diagnostics.
  [[nodiscard]] const core::tane::PartitionCache& partition_cache() const
      noexcept {
    return mine_cache_;
  }

 private:
  void rebuild_program();
  void rebuild_provenance();
  /// Rebuilds the O(Δ) lookup structures (slice index, row offsets, VIP
  /// multiset) from provenance_ and the service model. Full-compile only;
  /// the delta path maintains them in place.
  void rebuild_indexes();
  void rebuild_slice_index(std::size_t table);
  void vip_add(std::uint32_t vip, std::size_t service);
  void vip_remove(std::uint32_t vip, std::size_t service);
  /// Runs the analyzer suite over program_ + the universal table and
  /// stores the report; bumps the clean/findings counters.
  void run_post_compile_analysis();
  /// Proves the live program equivalent to a freshly rebuilt reference
  /// (VerifyMode::kSymbolic); tallies verify_stats_ and the
  /// maton_cp_symbolic_*_total counters.
  void run_post_compile_verify();

  /// Lowered, slice-sorted rules service `s` (in state `svc`) contributes
  /// to program table `table`; empty when it contributes none.
  [[nodiscard]] Result<std::vector<dp::Rule>> service_slice(
      std::size_t table, const workloads::GwlbService& svc,
      std::size_t s) const;

  /// Program tables that may hold rules of service `s`.
  [[nodiscard]] std::vector<std::size_t> affected_tables(
      std::size_t s) const;

  /// Why the most recent try_compile_incremental declined.
  enum class FallbackCause { kVipCollision, kSliceValidation };

  /// The delta path. Returns nullopt when the intent must fall back to
  /// the full rebuild (a VIP collision whose slices could not be proven
  /// disjoint, or a slice-validation mismatch — see last_fallback_cause_);
  /// in that case nothing has been mutated yet.
  [[nodiscard]] std::optional<std::vector<dp::RuleUpdate>>
  try_compile_incremental(std::size_t service,
                          const workloads::GwlbService& old_svc);

  workloads::Gwlb gwlb_;
  Representation repr_;
  CompileMode mode_;
  dp::Program program_;
  /// Attribute→field assignment of the last full compile; single-row
  /// re-lowering in the incremental path resolves against it.
  dp::FieldMap field_map_;
  /// provenance_[t][i] = service that emitted program_.tables[t].rules[i].
  /// Rebuilt (and validated against the emitters) on every full compile,
  /// maintained in place by the incremental patcher.
  std::vector<std::vector<std::uint32_t>> provenance_;
  /// Inverse of provenance_: slice_index_[t][service] = ascending
  /// positions of the service's rules in program_.tables[t]. Lets the
  /// delta path extract a slice in O(slice) instead of scanning the
  /// table; untouched by same-shape patches (positions are stable),
  /// rebuilt per table after a shape-changing merge.
  std::vector<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>>
      slice_index_;
  /// row_offsets_[s] = first universal-table row of service s. Valid
  /// while slice shapes are stable; suffix-recomputed when a slice
  /// grows or shrinks.
  std::vector<std::size_t> row_offsets_;
  /// Live services per VIP: the delta path's collision precheck in O(1),
  /// and — when a collision exists — the partner set whose slices the
  /// symbolic isolation proof must clear before the patch may proceed.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
      vip_services_;
  IncrementalStats inc_stats_;
  FallbackCause last_fallback_cause_ = FallbackCause::kSliceValidation;
  VerifyMode verify_ = VerifyMode::kOff;
  VerifyStats verify_stats_;
  std::string last_verify_note_;
  core::tane::PartitionCache mine_cache_;
  std::optional<core::FdSet> mined_;  // invalidated when universal changes
  AnalyzeMode analyze_ = AnalyzeMode::kOff;
  analysis::Report last_analysis_;
};

/// Builds the core pipeline for a representation (universal = single
/// stage).
[[nodiscard]] core::Pipeline pipeline_for(const workloads::Gwlb& gwlb,
                                          Representation repr);

/// Attribute-set components (over the universal schema) that each
/// representation decomposes the universal table into, for the
/// decomposition-safety analysis. Metadata registers are expanded to the
/// attributes they are derived from, so every component is a subset of
/// the universal schema (Theorem 1 reasons over the original relation).
[[nodiscard]] std::vector<core::AttrSet> decomposition_components(
    Representation repr, const core::Schema& universal_schema);

/// Minimal update set turning `before` into `after`: per table, each old
/// rule consumes the first unmatched equal new rule (hash-multiset, O(n)
/// expected); the leftovers pair up as modifies in order, the remainder
/// becomes removes then inserts. Exposed for the pairing-semantics tests
/// and as the reference the incremental slice diff is held to.
[[nodiscard]] std::vector<dp::RuleUpdate> diff_programs(
    const dp::Program& before, const dp::Program& after);

}  // namespace maton::cp
