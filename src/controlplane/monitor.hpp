// Traffic monitoring: the executable version of §2's "Monitorability".
//
// Observing one tenant's aggregate traffic requires reading M per-backend
// flow counters on the universal table and summing in the controller,
// but a single first-stage counter on the normalized pipeline. The
// monitor derives the counter set from the representation binding, reads
// the switch's flow stats, and reports both the traffic and the effort.
#pragma once

#include "controlplane/compiler.hpp"

namespace maton::cp {

struct ServiceTraffic {
  std::uint64_t packets = 0;
  /// Flow counters the controller had to read.
  std::size_t counters_read = 0;
  /// Controller-side additions to aggregate them.
  std::size_t aggregation_steps = 0;
};

/// Reads one service's aggregate traffic from a switch running the
/// binding's program.
class TrafficMonitor {
 public:
  /// `binding` and `target` must outlive the monitor; the switch must be
  /// loaded with the binding's current program.
  TrafficMonitor(const GwlbBinding& binding, const dp::SwitchModel& target)
      : binding_(binding), target_(target) {}

  [[nodiscard]] Result<ServiceTraffic> read_service(
      std::size_t service) const;

 private:
  const GwlbBinding& binding_;
  const dp::SwitchModel& target_;
};

}  // namespace maton::cp
