// Control-plane churn generation: the Fig. 4 reactiveness schedule
// ("atomically updating a random service port 100 times per second") and
// the mixed-intent draw the soak harness hammers a binding with.
#pragma once

#include <vector>

#include "controlplane/intent.hpp"
#include "util/rng.hpp"
#include "workloads/gwlb.hpp"

namespace maton::cp {

struct ChurnConfig {
  /// Intent updates per second.
  double rate_per_second = 100.0;
  /// Experiment duration in seconds.
  double duration_seconds = 1.0;
  std::size_t num_services = 20;
  std::uint64_t seed = 4;
  /// Poisson arrivals when true; evenly spaced otherwise.
  bool poisson = true;
};

struct TimedIntent {
  double at_seconds = 0.0;
  Intent intent;
};

/// A randomized schedule of MoveServicePort intents (the paper's churn
/// workload): each picks a random service and a fresh random port.
[[nodiscard]] std::vector<TimedIntent> make_port_churn(
    const ChurnConfig& config);

/// Mix weights for draw_mixed_intent (normalized internally).
struct MixedChurnConfig {
  double move_port_weight = 0.5;
  double change_backend_weight = 0.3;
  double change_ip_weight = 0.2;
  /// Probability that a ChangeServiceIp deliberately re-uses another
  /// live service's VIP: the draw that forces the incremental compiler
  /// into its duplicate-VIP full-rebuild fallback (and back out again
  /// when either VIP later moves), so a soak exercises both paths.
  double vip_collision_probability = 0.05;
};

/// One random intent against the *current* service model: move a port,
/// swap a backend VM, or re-address a VIP (fresh 198.18.0.0/15 draw, or
/// a deliberate collision per the config). Values are drawn from the
/// same spaces make_gwlb populates.
[[nodiscard]] Intent draw_mixed_intent(Rng& rng,
                                       const workloads::Gwlb& model,
                                       const MixedChurnConfig& mix = {});

}  // namespace maton::cp
