// Control-plane churn generation for the Fig. 4 reactiveness experiment:
// "atomically updating a random service port 100 times per second".
#pragma once

#include <vector>

#include "controlplane/intent.hpp"
#include "util/rng.hpp"

namespace maton::cp {

struct ChurnConfig {
  /// Intent updates per second.
  double rate_per_second = 100.0;
  /// Experiment duration in seconds.
  double duration_seconds = 1.0;
  std::size_t num_services = 20;
  std::uint64_t seed = 4;
  /// Poisson arrivals when true; evenly spaced otherwise.
  bool poisson = true;
};

struct TimedIntent {
  double at_seconds = 0.0;
  Intent intent;
};

/// A randomized schedule of MoveServicePort intents (the paper's churn
/// workload): each picks a random service and a fresh random port.
[[nodiscard]] std::vector<TimedIntent> make_port_churn(
    const ChurnConfig& config);

}  // namespace maton::cp
