#include "controlplane/monitor.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace maton::cp {

Result<ServiceTraffic> TrafficMonitor::read_service(
    std::size_t service) const {
  const auto& services = binding_.gwlb().services;
  if (service >= services.size()) {
    return invalid_argument("monitor names a non-existent service");
  }
  const workloads::GwlbService& svc = services[service];
  if (svc.src_prefixes.empty()) {
    return failed_precondition("monitor targets a removed service");
  }

  // All of the service's traffic is matched in the entry table by rules
  // carrying its VIP:port pair — M per-backend rules on the universal
  // representation, a single service rule on the normalized ones.
  const dp::TableSpec& entry_table =
      binding_.program().tables[binding_.program().entry];
  std::vector<std::vector<dp::FieldMatch>> rules;
  for (const auto rule : entry_table.rules) {
    bool vip = false;
    bool port = false;
    for (const dp::FieldMatch m : rule.matches) {
      if (m.field == dp::FieldId::kIpDst && m.value == svc.vip) vip = true;
      if (m.field == dp::FieldId::kTcpDst && m.value == svc.port) {
        port = true;
      }
    }
    if (vip && port) rules.push_back(rule.matches);
  }
  if (rules.empty()) {
    return internal_error("no entry-table rules carry the service's "
                          "identity; binding out of sync with program");
  }

  static auto& registry = obs::MetricRegistry::global();
  static obs::Counter& counters_read =
      registry.counter("maton_cp_monitor_counters_read_total");
  static obs::Counter& aggregation_steps =
      registry.counter("maton_cp_monitor_aggregation_steps_total");

  const obs::TraceSpan span("monitor_read");
  ServiceTraffic traffic;
  for (const std::vector<dp::FieldMatch>& matches : rules) {
    const auto count =
        target_.read_rule_counter(binding_.program().entry, matches);
    if (!count.is_ok()) return count.status();
    traffic.packets += count.value();
    ++traffic.counters_read;
  }
  traffic.aggregation_steps = traffic.counters_read - 1;
  counters_read.add(traffic.counters_read);
  aggregation_steps.add(traffic.aggregation_steps);
  return traffic;
}

}  // namespace maton::cp
