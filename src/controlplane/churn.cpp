#include "controlplane/churn.hpp"

#include "util/contract.hpp"

namespace maton::cp {

std::vector<TimedIntent> make_port_churn(const ChurnConfig& config) {
  expects(config.rate_per_second >= 0.0, "negative churn rate");
  expects(config.num_services > 0, "churn needs at least one service");

  std::vector<TimedIntent> schedule;
  if (config.rate_per_second == 0.0) return schedule;

  Rng rng(config.seed);
  double now = 0.0;
  // Ports rotate through the dynamic range so consecutive updates to the
  // same service never no-op.
  std::uint16_t next_port = 49152;
  while (true) {
    now += config.poisson ? rng.exponential(config.rate_per_second)
                          : 1.0 / config.rate_per_second;
    if (now >= config.duration_seconds) break;
    MoveServicePort intent;
    intent.service = rng.index(config.num_services);
    intent.new_port = next_port;
    next_port = next_port == 65535 ? 49152 : next_port + 1;
    schedule.push_back({now, intent});
  }
  return schedule;
}

Intent draw_mixed_intent(Rng& rng, const workloads::Gwlb& model,
                         const MixedChurnConfig& mix) {
  expects(!model.services.empty(), "mixed churn needs at least one service");
  const std::size_t service = rng.index(model.services.size());
  const workloads::GwlbService& svc = model.services[service];

  const double total = mix.move_port_weight + mix.change_backend_weight +
                       mix.change_ip_weight;
  expects(total > 0.0, "mixed churn needs a positive weight");
  const double draw = rng.real() * total;

  if (draw < mix.move_port_weight) {
    // Dodge the current port so the intent never no-ops.
    auto port = static_cast<std::uint16_t>(rng.uniform(1, 65534));
    if (port >= svc.port) ++port;
    return MoveServicePort{.service = service, .new_port = port};
  }
  if (draw < mix.move_port_weight + mix.change_backend_weight &&
      !svc.backends.empty()) {
    return ChangeBackend{
        .service = service,
        .backend = rng.index(svc.backends.size()),
        .new_out = rng.uniform(1, 65535)};
  }
  std::uint32_t vip = 0;
  if (model.services.size() > 1 && rng.chance(mix.vip_collision_probability)) {
    std::size_t other = rng.index(model.services.size() - 1);
    if (other >= service) ++other;
    vip = model.services[other].vip;
  } else {
    // Fresh draw from make_gwlb's 198.18.0.0/15 benchmark space.
    vip = (198u << 24) | (18u << 16) |
          (static_cast<std::uint32_t>(rng.uniform(0, 255)) << 8) |
          static_cast<std::uint32_t>(rng.uniform(1, 254));
  }
  return ChangeServiceIp{.service = service, .new_vip = vip};
}

}  // namespace maton::cp
