#include "controlplane/churn.hpp"

#include "util/contract.hpp"

namespace maton::cp {

std::vector<TimedIntent> make_port_churn(const ChurnConfig& config) {
  expects(config.rate_per_second >= 0.0, "negative churn rate");
  expects(config.num_services > 0, "churn needs at least one service");

  std::vector<TimedIntent> schedule;
  if (config.rate_per_second == 0.0) return schedule;

  Rng rng(config.seed);
  double now = 0.0;
  // Ports rotate through the dynamic range so consecutive updates to the
  // same service never no-op.
  std::uint16_t next_port = 49152;
  while (true) {
    now += config.poisson ? rng.exponential(config.rate_per_second)
                          : 1.0 / config.rate_per_second;
    if (now >= config.duration_seconds) break;
    MoveServicePort intent;
    intent.service = rng.index(config.num_services);
    intent.new_port = next_port;
    next_port = next_port == 65535 ? 49152 : next_port + 1;
    schedule.push_back({now, intent});
  }
  return schedule;
}

}  // namespace maton::cp
