#include "controlplane/controller.hpp"

#include "util/contract.hpp"

namespace maton::cp {

Controller::Controller(std::unique_ptr<GwlbBinding> binding,
                       dp::SwitchModel& target)
    : binding_(std::move(binding)), target_(target) {
  expects(binding_ != nullptr, "controller needs a binding");
  const Status loaded = target_.load(binding_->program());
  expects(loaded.is_ok(), "switch rejected the initial program: " +
                              loaded.message());
}

Result<std::size_t> Controller::apply(const Intent& intent) {
  auto updates = binding_->compile_intent(intent);
  if (!updates.is_ok()) {
    ++stats_.failed_intents;
    return updates.status();
  }
  for (const dp::RuleUpdate& update : updates.value()) {
    if (Status s = target_.apply_update(update); !s.is_ok()) {
      ++stats_.failed_intents;
      return Status(StatusCode::kInternal,
                    "switch rejected an update mid-intent (data plane now "
                    "inconsistent): " +
                        s.message());
    }
  }
  ++stats_.intents_applied;
  stats_.rule_updates_issued += updates.value().size();
  if (!updates.value().empty()) {
    stats_.inconsistency_window += updates.value().size() - 1;
  }
  return updates.value().size();
}

}  // namespace maton::cp
