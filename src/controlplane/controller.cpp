#include "controlplane/controller.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace maton::cp {

Controller::Controller(std::unique_ptr<GwlbBinding> binding,
                       dp::SwitchModel& target)
    : binding_(std::move(binding)), target_(target) {
  expects(binding_ != nullptr, "controller needs a binding");
  const Status loaded = target_.load(binding_->program());
  expects(loaded.is_ok(), "switch rejected the initial program: " +
                              loaded.message());
}

Result<std::size_t> Controller::apply(const Intent& intent) {
  static auto& registry = obs::MetricRegistry::global();
  static obs::Counter& intents_applied =
      registry.counter("maton_cp_intents_applied_total");
  static obs::Counter& intents_failed =
      registry.counter("maton_cp_intents_failed_total");
  static obs::Counter& rule_updates =
      registry.counter("maton_cp_rule_updates_total");
  static obs::Counter& inconsistency_window =
      registry.counter("maton_cp_inconsistency_window_total");

  const obs::TraceSpan span("intent");
  auto updates = binding_->compile_intent(intent);
  if (!updates.is_ok()) {
    ++stats_.failed_intents;
    intents_failed.add();
    return updates.status();
  }
  {
    // Batched push: the switch runs its per-table index maintenance once
    // per touched table instead of once per update. Semantics match the
    // scalar loop exactly, including the §2 non-atomicity — on failure,
    // updates before the failing one stay applied.
    const obs::TraceSpan update_span("switch_update");
    if (Status s = target_.apply_updates(updates.value()); !s.is_ok()) {
      ++stats_.failed_intents;
      intents_failed.add();
      return Status(StatusCode::kInternal,
                    "switch rejected an update mid-intent (data plane now "
                    "inconsistent): " +
                        s.message());
    }
  }
  ++stats_.intents_applied;
  intents_applied.add();
  stats_.rule_updates_issued += updates.value().size();
  rule_updates.add(updates.value().size());
  if (!updates.value().empty()) {
    stats_.inconsistency_window += updates.value().size() - 1;
    inconsistency_window.add(updates.value().size() - 1);
  }
  return updates.value().size();
}

}  // namespace maton::cp
