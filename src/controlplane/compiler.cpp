#include "controlplane/compiler.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>

#include "analysis/symbolic/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace maton::cp {

using dp::Program;
using dp::Rule;
using dp::RuleUpdate;
using dp::TableSpec;
using workloads::Gwlb;
using workloads::GwlbService;

std::string to_string(const Intent& intent) {
  struct Visitor {
    std::string operator()(const MoveServicePort& i) const {
      return "move-service-port(service=" + std::to_string(i.service) +
             ", port=" + std::to_string(i.new_port) + ")";
    }
    std::string operator()(const ChangeServiceIp& i) const {
      return "change-service-ip(service=" + std::to_string(i.service) + ")";
    }
    std::string operator()(const ChangeBackend& i) const {
      return "change-backend(service=" + std::to_string(i.service) +
             ", backend=" + std::to_string(i.backend) + ")";
    }
    std::string operator()(const RemoveService& i) const {
      return "remove-service(service=" + std::to_string(i.service) + ")";
    }
  };
  return std::visit(Visitor{}, intent);
}

std::string_view to_string(Representation repr) noexcept {
  switch (repr) {
    case Representation::kUniversal: return "universal";
    case Representation::kGoto: return "goto";
    case Representation::kMetadata: return "metadata";
    case Representation::kRematch: return "rematch";
  }
  return "unknown";
}

core::Pipeline pipeline_for(const Gwlb& gwlb, Representation repr) {
  switch (repr) {
    case Representation::kUniversal:
      return core::Pipeline::single(gwlb.universal);
    case Representation::kGoto:
      return workloads::gwlb_goto_pipeline(gwlb);
    case Representation::kMetadata:
      return workloads::gwlb_metadata_pipeline(gwlb);
    case Representation::kRematch:
      return workloads::gwlb_rematch_pipeline(gwlb);
  }
  return core::Pipeline::single(gwlb.universal);
}

namespace {

/// Hashes a rule's full content; `RuleT` is dp::Rule or dp::RuleView, so
/// flattened tables hash without materializing boundary Rules.
template <typename RuleT>
[[nodiscard]] std::uint64_t hash_rule(const RuleT& r) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(r.priority);
  mix(r.goto_table.value_or(~std::uint64_t{0}));
  for (const dp::FieldMatch m : r.matches) {
    mix(dp::field_index(m.field));
    mix(m.value);
    mix(m.mask);
  }
  for (const dp::Action a : r.actions) {
    mix(a.kind == dp::Action::Kind::kOutput ? 1 : 2);
    mix(dp::field_index(a.field));
    mix(a.value);
  }
  return h;
}

/// Appends the update set turning `old_rules` into `new_rules` in table
/// `table`. Pairing semantics: each old rule consumes the *first*
/// unmatched equal new rule (hash buckets keep new-index order, so the
/// pairing is the one the original quadratic scan defined); unmatched
/// leftovers pair up as modifies in order, the remainder becomes removes
/// then inserts. O(old + new) expected. The sequences are any types
/// indexable to rules comparable across each other (dp::FlatRules,
/// std::vector<dp::Rule>).
template <typename OldSeq, typename NewSeq>
void diff_rules(std::size_t table, const OldSeq& old_rules,
                const NewSeq& new_rules,
                std::vector<RuleUpdate>& out) {
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  buckets.reserve(new_rules.size());
  for (std::size_t n = 0; n < new_rules.size(); ++n) {
    buckets[hash_rule(new_rules[n])].push_back(
        static_cast<std::uint32_t>(n));
  }
  std::vector<char> matched(new_rules.size(), 0);
  std::vector<std::uint32_t> removed;
  for (std::size_t o = 0; o < old_rules.size(); ++o) {
    bool found = false;
    if (const auto it = buckets.find(hash_rule(old_rules[o]));
        it != buckets.end()) {
      for (const std::uint32_t n : it->second) {
        if (!matched[n] && new_rules[n] == old_rules[o]) {
          matched[n] = 1;
          found = true;
          break;
        }
      }
    }
    if (!found) removed.push_back(static_cast<std::uint32_t>(o));
  }
  std::vector<std::uint32_t> added;
  for (std::size_t n = 0; n < new_rules.size(); ++n) {
    if (!matched[n]) added.push_back(static_cast<std::uint32_t>(n));
  }

  const std::size_t modifies = std::min(removed.size(), added.size());
  for (std::size_t i = 0; i < modifies; ++i) {
    RuleUpdate u;
    u.kind = RuleUpdate::Kind::kModify;
    u.table = table;
    u.target = old_rules[removed[i]].matches;
    u.rule = new_rules[added[i]];
    out.push_back(std::move(u));
  }
  for (std::size_t i = modifies; i < removed.size(); ++i) {
    RuleUpdate u;
    u.kind = RuleUpdate::Kind::kRemove;
    u.table = table;
    u.target = old_rules[removed[i]].matches;
    out.push_back(std::move(u));
  }
  for (std::size_t i = modifies; i < added.size(); ++i) {
    RuleUpdate u;
    u.kind = RuleUpdate::Kind::kInsert;
    u.table = table;
    u.rule = new_rules[added[i]];
    out.push_back(std::move(u));
  }
}

void sort_slice(std::vector<Rule>& rules) {
  // The compiler's table order: priority descending, emission order
  // among equals (stable).
  std::stable_sort(rules.begin(), rules.end(),
                   [](const Rule& a, const Rule& b) {
                     return a.priority > b.priority;
                   });
}

}  // namespace

std::vector<RuleUpdate> diff_programs(const Program& before,
                                      const Program& after) {
  expects(before.tables.size() == after.tables.size(),
          "representation rebuild changed the table count");
  std::vector<RuleUpdate> updates;
  for (std::size_t t = 0; t < before.tables.size(); ++t) {
    diff_rules(t, before.tables[t].rules, after.tables[t].rules, updates);
  }
  return updates;
}

GwlbBinding::GwlbBinding(Gwlb gwlb, Representation repr, CompileMode mode,
                         AnalyzeMode analyze, VerifyMode verify)
    : gwlb_(std::move(gwlb)),
      repr_(repr),
      mode_(mode),
      verify_(verify),
      analyze_(analyze) {
  rebuild_program();
  if (analyze_ == AnalyzeMode::kPostCompile) run_post_compile_analysis();
  if (verify_ == VerifyMode::kSymbolic) run_post_compile_verify();
}

std::vector<core::AttrSet> decomposition_components(
    Representation repr, const core::Schema& universal_schema) {
  const core::AttrSet all = universal_schema.all();
  const core::AttrSet selector =
      core::AttrSet::single(workloads::kGwlbIpDst) |
      core::AttrSet::single(workloads::kGwlbTcpDst);
  switch (repr) {
    case Representation::kUniversal:
      return {all};
    case Representation::kGoto:
    case Representation::kMetadata:
      // The second stage is entered with the full selector context (the
      // goto target resp. the metadata tag are functions of ip_dst and
      // tcp_dst), so its effective attribute set is the whole schema.
      return {selector, all};
    case Representation::kRematch:
      // The second stage re-matches ip_dst but not tcp_dst: the join is
      // lossless only because ip_dst → tcp_dst (Theorem 1 applied).
      return {selector, all - core::AttrSet::single(workloads::kGwlbTcpDst)};
  }
  return {all};
}

void GwlbBinding::run_post_compile_analysis() {
  analysis::Input input;
  input.program = &program_;
  // Declared dependencies the instance must honor: the service model's
  // FDs (ip_dst → tcp_dst for gwlb).
  input.tables.push_back({&gwlb_.universal, &gwlb_.model_fds});

  const core::Schema& schema = gwlb_.universal.schema();
  // The lossless-join proof may additionally use the key dependency the
  // match columns carry by construction (order independence).
  core::FdSet join_fds = gwlb_.model_fds;
  join_fds.add(schema.match_set(), schema.all());
  analysis::Input::DecompositionCheck decomposition;
  decomposition.schema = &schema;
  decomposition.fds = &join_fds;
  decomposition.components = decomposition_components(repr_, schema);
  decomposition.name = "gwlb." + std::string(to_string(repr_));
  input.decomposition = std::move(decomposition);

  analysis::Options options;
  // Warning severity keeps the post-compile hook cheap: the info-only
  // NF-status lints (which would re-mine instance FDs on every intent)
  // are skipped, and a healthy compile yields an empty report.
  options.min_severity = analysis::Severity::kWarning;
  last_analysis_ = analysis::run(input, options);

  static obs::Counter& clean = obs::MetricRegistry::global().counter(
      "maton_cp_analysis_clean_total");
  static obs::Counter& findings = obs::MetricRegistry::global().counter(
      "maton_cp_analysis_findings_total");
  if (last_analysis_.clean(analysis::Severity::kWarning)) {
    clean.add();
  } else {
    findings.add();
  }
}

void GwlbBinding::run_post_compile_verify() {
  const obs::TraceSpan span("symbolic_verify");
  // Rebuild an independent reference through the full pipeline path and
  // prove the live (possibly patched-in-place) program equivalent to it.
  // A bit-identical program passes trivially; the point is that even a
  // bit-different-but-semantically-equal patch verifies, and any drift
  // surfaces as a refutation with a concrete counterexample packet.
  auto reference = dp::compile(pipeline_for(gwlb_, repr_));
  expects(reference.is_ok(),
          "symbolic verify: reference pipeline failed to lower");
  const auto result =
      analysis::symbolic::check_programs(program_, reference.value());
  static obs::Counter& verified = obs::MetricRegistry::global().counter(
      "maton_cp_symbolic_verified_total");
  static obs::Counter& failed = obs::MetricRegistry::global().counter(
      "maton_cp_symbolic_failed_total");
  static obs::Counter& unknown = obs::MetricRegistry::global().counter(
      "maton_cp_symbolic_unknown_total");
  switch (result.outcome) {
    case analysis::symbolic::Outcome::kEquivalent:
      ++verify_stats_.verified;
      verified.add();
      break;
    case analysis::symbolic::Outcome::kInequivalent:
      ++verify_stats_.failed;
      failed.add();
      last_verify_note_ = result.counterexample.has_value()
                              ? result.counterexample->description
                              : "inequivalent (no counterexample)";
      break;
    case analysis::symbolic::Outcome::kUnknown:
      ++verify_stats_.unknown;
      unknown.add();
      last_verify_note_ = result.note;
      break;
  }
}

const core::FdSet& GwlbBinding::mined_fds() {
  if (!mined_.has_value()) {
    static obs::Counter& remines =
        obs::MetricRegistry::global().counter("maton_cp_remines_total");
    const obs::TraceSpan span("fd_re_mine");
    mined_ = core::mine_fds_tane(gwlb_.universal, {.cache = &mine_cache_});
    remines.add();
  }
  return *mined_;
}

void GwlbBinding::rebuild_program() {
  mined_.reset();  // the universal table is about to change
  // Rebuild the universal table from the service model first (the
  // decomposed builders read services directly).
  core::Table universal("gwlb.universal", gwlb_.universal.schema());
  for (const GwlbService& svc : gwlb_.services) {
    for (core::Row& row : workloads::gwlb_universal_rows(svc)) {
      universal.add_row(std::move(row));
    }
  }
  gwlb_.universal = std::move(universal);

  auto compiled = dp::compile(pipeline_for(gwlb_, repr_), &field_map_);
  expects(compiled.is_ok(),
          "gwlb program failed to compile: " + compiled.status().message());
  program_ = std::move(compiled).value();
  rebuild_provenance();
  rebuild_indexes();
}

void GwlbBinding::rebuild_provenance() {
  provenance_.assign(program_.tables.size(), {});
  for (std::size_t t = 0; t < program_.tables.size(); ++t) {
    // Re-emit every service's slice and stable-sort the concatenation:
    // per-slice pre-sorting commutes with the global stable sort, so the
    // result must reproduce the compiled table exactly. This doubles as
    // the cross-check that the per-service emitters cannot drift from
    // the pipeline builders.
    std::vector<std::pair<Rule, std::uint32_t>> emitted;
    for (std::size_t s = 0; s < gwlb_.services.size(); ++s) {
      auto slice = service_slice(t, gwlb_.services[s], s);
      expects(slice.is_ok(), "service slice failed to lower: " +
                                 slice.status().message());
      for (Rule& rule : slice.value()) {
        emitted.emplace_back(std::move(rule), static_cast<std::uint32_t>(s));
      }
    }
    std::stable_sort(emitted.begin(), emitted.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.priority > b.first.priority;
                     });
    const dp::FlatRules& rules = program_.tables[t].rules;
    expects(emitted.size() == rules.size(),
            "provenance drift: emitters disagree with compiled program");
    provenance_[t].reserve(emitted.size());
    for (std::size_t i = 0; i < emitted.size(); ++i) {
      expects(emitted[i].first == rules[i],
              "provenance drift: emitters disagree with compiled program");
      provenance_[t].push_back(emitted[i].second);
    }
  }
}

void GwlbBinding::rebuild_indexes() {
  slice_index_.assign(program_.tables.size(), {});
  for (std::size_t t = 0; t < program_.tables.size(); ++t) {
    rebuild_slice_index(t);
  }
  row_offsets_.assign(gwlb_.services.size(), 0);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < gwlb_.services.size(); ++s) {
    row_offsets_[s] = offset;
    offset += gwlb_.services[s].src_prefixes.size();
  }
  vip_services_.clear();
  for (std::size_t s = 0; s < gwlb_.services.size(); ++s) {
    if (!gwlb_.services[s].src_prefixes.empty()) {
      vip_add(gwlb_.services[s].vip, s);
    }
  }
}

void GwlbBinding::rebuild_slice_index(std::size_t table) {
  auto& index = slice_index_[table];
  index.clear();
  const std::vector<std::uint32_t>& prov = provenance_[table];
  for (std::size_t i = 0; i < prov.size(); ++i) {
    index[prov[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

void GwlbBinding::vip_add(std::uint32_t vip, std::size_t service) {
  vip_services_[vip].push_back(static_cast<std::uint32_t>(service));
}

void GwlbBinding::vip_remove(std::uint32_t vip, std::size_t service) {
  const auto it = vip_services_.find(vip);
  if (it == vip_services_.end()) return;
  auto& services = it->second;
  const auto pos = std::find(services.begin(), services.end(),
                             static_cast<std::uint32_t>(service));
  if (pos != services.end()) services.erase(pos);
  if (services.empty()) vip_services_.erase(it);
}

Result<std::vector<Rule>> GwlbBinding::service_slice(
    std::size_t table, const GwlbService& svc, std::size_t s) const {
  std::vector<Rule> rules;
  const bool live = !svc.src_prefixes.empty();
  const auto lower_into =
      [&](const core::Schema& schema, const core::Row& row,
          std::optional<std::size_t> goto_target) -> Status {
    auto lowered = dp::lower_row(schema, row, field_map_, goto_target);
    if (!lowered.is_ok()) return lowered.status();
    rules.push_back(std::move(lowered).value());
    return Status::ok();
  };

  switch (repr_) {
    case Representation::kUniversal: {
      static const core::Schema schema = workloads::gwlb_universal_schema();
      if (table != 0) break;
      for (const core::Row& row : workloads::gwlb_universal_rows(svc)) {
        if (Status st = lower_into(schema, row, std::nullopt); !st.is_ok()) {
          return st;
        }
      }
      break;
    }
    case Representation::kGoto: {
      static const core::Schema service_schema =
          workloads::gwlb_goto_service_schema();
      static const core::Schema lb_schema = workloads::gwlb_goto_lb_schema();
      if (table == 0) {
        if (live) {
          if (Status st = lower_into(service_schema,
                                     workloads::gwlb_goto_service_row(svc),
                                     1 + s);
              !st.is_ok()) {
            return st;
          }
        }
      } else if (table == 1 + s) {
        for (const core::Row& row : workloads::gwlb_goto_lb_rows(svc)) {
          if (Status st = lower_into(lb_schema, row, std::nullopt);
              !st.is_ok()) {
            return st;
          }
        }
      }
      break;
    }
    case Representation::kMetadata: {
      static const core::Schema service_schema =
          workloads::gwlb_metadata_service_schema();
      static const core::Schema lb_schema =
          workloads::gwlb_metadata_lb_schema();
      if (table == 0) {
        if (live) {
          if (Status st =
                  lower_into(service_schema,
                             workloads::gwlb_metadata_service_row(svc, s),
                             std::nullopt);
              !st.is_ok()) {
            return st;
          }
        }
      } else if (table == 1) {
        for (const core::Row& row :
             workloads::gwlb_metadata_lb_rows(svc, s)) {
          if (Status st = lower_into(lb_schema, row, std::nullopt);
              !st.is_ok()) {
            return st;
          }
        }
      }
      break;
    }
    case Representation::kRematch: {
      static const core::Schema service_schema =
          workloads::gwlb_rematch_service_schema();
      static const core::Schema lb_schema =
          workloads::gwlb_rematch_lb_schema();
      if (table == 0) {
        if (live) {
          if (Status st = lower_into(service_schema,
                                     workloads::gwlb_rematch_service_row(svc),
                                     std::nullopt);
              !st.is_ok()) {
            return st;
          }
        }
      } else if (table == 1) {
        for (const core::Row& row : workloads::gwlb_rematch_lb_rows(svc)) {
          if (Status st = lower_into(lb_schema, row, std::nullopt);
              !st.is_ok()) {
            return st;
          }
        }
      }
      break;
    }
  }
  sort_slice(rules);
  return rules;
}

std::vector<std::size_t> GwlbBinding::affected_tables(std::size_t s) const {
  switch (repr_) {
    case Representation::kUniversal:
      return {0};
    case Representation::kGoto:
      return {0, 1 + s};  // ascending: the order the reference diff uses
    case Representation::kMetadata:
    case Representation::kRematch:
      return {0, 1};
  }
  return {0};
}

std::optional<std::vector<RuleUpdate>> GwlbBinding::try_compile_incremental(
    std::size_t service, const GwlbService& old_svc) {
  const obs::TraceSpan span("compile_incremental");

  const GwlbService& svc = gwlb_.services[service];
  const bool old_live = !old_svc.src_prefixes.empty();
  const bool new_live = !svc.src_prefixes.empty();
  struct Patch {
    std::size_t table = 0;
    std::vector<std::uint32_t> positions;  // ascending, pre-patch
    std::vector<Rule> before;
    std::vector<Rule> after;
    bool same_shape = false;
  };
  std::vector<Patch> patches;
  for (const std::size_t t : affected_tables(service)) {
    Patch patch;
    patch.table = t;
    const dp::FlatRules& rules = program_.tables[t].rules;
    if (const auto it =
            slice_index_[t].find(static_cast<std::uint32_t>(service));
        it != slice_index_[t].end()) {
      patch.positions = it->second;
      patch.before.reserve(patch.positions.size());
      for (const std::uint32_t pos : patch.positions) {
        patch.before.push_back(rules[pos]);
      }
    }
    // Validation: the slice extracted from the live program must equal
    // what the emitters produce for the pre-intent service state. A
    // mismatch means provenance drifted — fall back, nothing mutated.
    auto want_before = service_slice(t, old_svc, service);
    if (!want_before.is_ok() || want_before.value() != patch.before) {
      last_fallback_cause_ = FallbackCause::kSliceValidation;
      return std::nullopt;
    }
    auto after = service_slice(t, svc, service);
    if (!after.is_ok()) {
      last_fallback_cause_ = FallbackCause::kSliceValidation;
      return std::nullopt;
    }
    patch.after = std::move(after).value();
    // Same shape = same size and per-index priorities: the global stable
    // order then keeps every slice rule at its old position, so the
    // patch can rewrite those rows in place.
    patch.same_shape = patch.after.size() == patch.before.size();
    for (std::size_t k = 0; patch.same_shape && k < patch.after.size();
         ++k) {
      if (patch.after[k].priority != patch.before[k].priority) {
        patch.same_shape = false;
      }
    }
    patches.push_back(std::move(patch));
  }

  // Slice-local diffing identifies rules by content, so another live
  // service sharing this one's VIP (pre- or post-intent) could in
  // principle alias rules across slices. Rather than demoting every
  // collision to a full rebuild, prove isolation: if the symbolic engine
  // shows this service's slice region (before ∪ after) disjoint from each
  // colliding partner's slice in every affected table, no packet can hit
  // rules of both and the slice-local diff stays unambiguous. Only a
  // *proven-possible* intersection (or a solver bail) falls back.
  std::vector<std::uint32_t> partners;
  const auto collect_partners = [&](std::uint32_t vip) {
    const auto it = vip_services_.find(vip);
    if (it == vip_services_.end()) return;
    for (const std::uint32_t p : it->second) {
      if (p != static_cast<std::uint32_t>(service) &&
          std::find(partners.begin(), partners.end(), p) == partners.end()) {
        partners.push_back(p);
      }
    }
  };
  if (old_live) collect_partners(old_svc.vip);
  if (new_live) collect_partners(svc.vip);
  if (!partners.empty()) {
    const obs::TraceSpan isolation_span("slice_isolation_proof");
    for (const Patch& patch : patches) {
      std::vector<Rule> self = patch.before;
      self.insert(self.end(), patch.after.begin(), patch.after.end());
      for (const std::uint32_t p : partners) {
        auto partner = service_slice(patch.table, gwlb_.services[p], p);
        if (!partner.is_ok()) {
          last_fallback_cause_ = FallbackCause::kSliceValidation;
          return std::nullopt;
        }
        if (analysis::symbolic::slices_relation(self, partner.value()) !=
            analysis::symbolic::SliceRelation::kDisjoint) {
          last_fallback_cause_ = FallbackCause::kVipCollision;
          return std::nullopt;
        }
      }
    }
  }

  // Validation passed — mutate. First the universal table, cell-wise, so
  // untouched columns keep their partition-cache fingerprints across the
  // FD re-mine. The cached row offset replaces the O(service) prefix
  // scan; offsets stay valid while slice shapes do.
  const std::size_t offset = row_offsets_[service];
  if (old_live) vip_remove(old_svc.vip, service);
  if (new_live) vip_add(svc.vip, service);
  if (svc.src_prefixes.size() != old_svc.src_prefixes.size()) {
    std::size_t off = offset + svc.src_prefixes.size();
    for (std::size_t s = service + 1; s < gwlb_.services.size(); ++s) {
      row_offsets_[s] = off;
      off += gwlb_.services[s].src_prefixes.size();
    }
  }
  if (svc.src_prefixes.empty()) {
    gwlb_.universal.erase_rows(offset, old_svc.src_prefixes.size());
  } else {
    for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
      if (svc.vip != old_svc.vip) {
        gwlb_.universal.set_value(offset + b, workloads::kGwlbIpDst,
                                  svc.vip);
      }
      if (svc.port != old_svc.port) {
        gwlb_.universal.set_value(offset + b, workloads::kGwlbTcpDst,
                                  svc.port);
      }
      if (svc.backends[b] != old_svc.backends[b]) {
        gwlb_.universal.set_value(offset + b, workloads::kGwlbOut,
                                  svc.backends[b]);
      }
    }
  }
  mined_.reset();

  // Then the program: per touched table (ascending), diff the slice and
  // patch the new one in at its sorted positions. The same-shape fast
  // path rewrites the slice's rows in place — O(slice) with provenance,
  // the slice index, and every other row untouched. A shape-changing
  // slice (RemoveService, or an emitter changing priorities) takes the
  // merge splice, which reproduces the full compiler's order — priority
  // descending, (service, ordinal) ascending among equals — so the
  // patched program stays bit-identical to a rebuild either way.
  std::vector<RuleUpdate> updates;
  for (Patch& patch : patches) {
    {
      const obs::TraceSpan diff_span("rule_diff");
      diff_rules(patch.table, patch.before, patch.after, updates);
    }
    if (patch.before == patch.after) continue;  // untouched slice

    const obs::TraceSpan merge_span("slice_merge");
    TableSpec& spec = program_.tables[patch.table];
    if (patch.same_shape) {
      for (std::size_t k = 0; k < patch.positions.size(); ++k) {
        spec.rules.replace(patch.positions[k], patch.after[k]);
      }
      continue;
    }

    const std::vector<std::uint32_t>& old_prov = provenance_[patch.table];
    // `before` was extracted from this table, so it cannot outnumber it;
    // the guard keeps the reserve arithmetic from wrapping if that
    // invariant ever breaks.
    expects(patch.before.size() <= spec.rules.size(),
            "slice larger than its table");
    std::vector<Rule> merged;
    std::vector<std::uint32_t> prov;
    merged.reserve(spec.rules.size() + patch.after.size() -
                   patch.before.size());
    prov.reserve(merged.capacity());
    std::size_t ai = 0;
    for (std::size_t i = 0; i < spec.rules.size(); ++i) {
      if (old_prov[i] == service) continue;
      while (ai < patch.after.size() &&
             (patch.after[ai].priority > spec.rules.priority_of(i) ||
              (patch.after[ai].priority == spec.rules.priority_of(i) &&
               service < old_prov[i]))) {
        merged.push_back(std::move(patch.after[ai++]));
        prov.push_back(static_cast<std::uint32_t>(service));
      }
      merged.push_back(spec.rules[i]);
      prov.push_back(old_prov[i]);
    }
    for (; ai < patch.after.size(); ++ai) {
      merged.push_back(std::move(patch.after[ai]));
      prov.push_back(static_cast<std::uint32_t>(service));
    }
    spec.rules = dp::FlatRules(merged);
    provenance_[patch.table] = std::move(prov);
    rebuild_slice_index(patch.table);
  }
  return updates;
}

Result<std::vector<RuleUpdate>> GwlbBinding::compile_intent(
    const Intent& intent) {
  const std::size_t service = std::visit(
      [](const auto& i) { return i.service; }, intent);
  if (service >= gwlb_.services.size()) {
    return invalid_argument("intent names a non-existent service");
  }
  GwlbService& svc = gwlb_.services[service];
  if (svc.src_prefixes.empty()) {
    return failed_precondition("intent targets a removed service");
  }
  if (const auto* backend = std::get_if<ChangeBackend>(&intent)) {
    if (backend->backend >= svc.backends.size()) {
      return invalid_argument("intent names a non-existent backend");
    }
  }

  const GwlbService old_svc = svc;
  if (const auto* move = std::get_if<MoveServicePort>(&intent)) {
    svc.port = move->new_port;
  } else if (const auto* reip = std::get_if<ChangeServiceIp>(&intent)) {
    svc.vip = reip->new_vip;
  } else if (const auto* backend = std::get_if<ChangeBackend>(&intent)) {
    svc.backends[backend->backend] = backend->new_out;
  } else if (std::get_if<RemoveService>(&intent) != nullptr) {
    svc.src_prefixes.clear();
    svc.backends.clear();
  }

  if (mode_ == CompileMode::kIncremental) {
    static obs::Counter& hits = obs::MetricRegistry::global().counter(
        "maton_cp_incremental_hits_total");
    static obs::Counter& vip_fallbacks =
        obs::MetricRegistry::global().counter(
            "maton_cp_incremental_fallbacks_total",
            {{"cause", "vip_collision"}});
    static obs::Counter& slice_fallbacks =
        obs::MetricRegistry::global().counter(
            "maton_cp_incremental_fallbacks_total",
            {{"cause", "slice_validation"}});
    if (auto updates = try_compile_incremental(service, old_svc)) {
      ++inc_stats_.hits;
      hits.add();
      if (analyze_ == AnalyzeMode::kPostCompile) run_post_compile_analysis();
      if (verify_ == VerifyMode::kSymbolic) run_post_compile_verify();
      return std::move(*updates);
    }
    ++inc_stats_.fallbacks;
    if (last_fallback_cause_ == FallbackCause::kVipCollision) {
      ++inc_stats_.vip_collision_fallbacks;
      vip_fallbacks.add();
    } else {
      ++inc_stats_.slice_validation_fallbacks;
      slice_fallbacks.add();
    }
  }

  std::vector<RuleUpdate> updates;
  {
    const obs::TraceSpan span("compile");
    const Program before = std::move(program_);
    rebuild_program();
    const obs::TraceSpan diff_span("rule_diff");
    updates = diff_programs(before, program_);
  }
  if (analyze_ == AnalyzeMode::kPostCompile) run_post_compile_analysis();
  if (verify_ == VerifyMode::kSymbolic) run_post_compile_verify();
  return updates;
}

MonitorPlan GwlbBinding::monitor_plan(std::size_t service) const {
  expects(service < gwlb_.services.size(), "service index out of range");
  const std::size_t backends =
      gwlb_.services[service].src_prefixes.size();
  if (repr_ == Representation::kUniversal) {
    // One counter per backend entry, summed in the controller.
    return {backends, backends == 0 ? 0 : backends - 1};
  }
  // All of the service's traffic flows through its single first-stage
  // entry: one counter, no aggregation.
  return {1, 0};
}

std::size_t GwlbBinding::identity_entries(std::size_t service) const {
  expects(service < gwlb_.services.size(), "service index out of range");
  const std::size_t backends =
      gwlb_.services[service].src_prefixes.size();
  switch (repr_) {
    case Representation::kUniversal:
      return backends;  // VIP:port repeated per backend entry
    case Representation::kGoto:
    case Representation::kMetadata:
      return 1;  // stated once, in the service table
    case Representation::kRematch:
      return 1 + backends;  // re-matched VIP appears per backend again
  }
  return backends;
}

}  // namespace maton::cp
