#include "controlplane/compiler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace maton::cp {

using dp::Program;
using dp::Rule;
using dp::RuleUpdate;
using dp::TableSpec;
using workloads::Gwlb;

std::string to_string(const Intent& intent) {
  struct Visitor {
    std::string operator()(const MoveServicePort& i) const {
      return "move-service-port(service=" + std::to_string(i.service) +
             ", port=" + std::to_string(i.new_port) + ")";
    }
    std::string operator()(const ChangeServiceIp& i) const {
      return "change-service-ip(service=" + std::to_string(i.service) + ")";
    }
    std::string operator()(const ChangeBackend& i) const {
      return "change-backend(service=" + std::to_string(i.service) +
             ", backend=" + std::to_string(i.backend) + ")";
    }
    std::string operator()(const RemoveService& i) const {
      return "remove-service(service=" + std::to_string(i.service) + ")";
    }
  };
  return std::visit(Visitor{}, intent);
}

std::string_view to_string(Representation repr) noexcept {
  switch (repr) {
    case Representation::kUniversal: return "universal";
    case Representation::kGoto: return "goto";
    case Representation::kMetadata: return "metadata";
    case Representation::kRematch: return "rematch";
  }
  return "unknown";
}

core::Pipeline pipeline_for(const Gwlb& gwlb, Representation repr) {
  switch (repr) {
    case Representation::kUniversal:
      return core::Pipeline::single(gwlb.universal);
    case Representation::kGoto:
      return workloads::gwlb_goto_pipeline(gwlb);
    case Representation::kMetadata:
      return workloads::gwlb_metadata_pipeline(gwlb);
    case Representation::kRematch:
      return workloads::gwlb_rematch_pipeline(gwlb);
  }
  return core::Pipeline::single(gwlb.universal);
}

namespace {

bool rules_equal(const Rule& a, const Rule& b) {
  return a.priority == b.priority && a.matches == b.matches &&
         a.actions == b.actions && a.goto_table == b.goto_table;
}

/// Minimal update set turning `before` into `after`: per table, unmatched
/// old rules pair with unmatched new rules as modifies; the remainder
/// become removes/inserts.
std::vector<RuleUpdate> diff_programs(const Program& before,
                                      const Program& after) {
  expects(before.tables.size() == after.tables.size(),
          "representation rebuild changed the table count");
  std::vector<RuleUpdate> updates;
  for (std::size_t t = 0; t < before.tables.size(); ++t) {
    const auto& old_rules = before.tables[t].rules;
    const auto& new_rules = after.tables[t].rules;
    std::vector<bool> new_matched(new_rules.size(), false);
    std::vector<const Rule*> removed;
    for (const Rule& old_rule : old_rules) {
      bool found = false;
      for (std::size_t n = 0; n < new_rules.size(); ++n) {
        if (!new_matched[n] && rules_equal(old_rule, new_rules[n])) {
          new_matched[n] = true;
          found = true;
          break;
        }
      }
      if (!found) removed.push_back(&old_rule);
    }
    std::vector<const Rule*> added;
    for (std::size_t n = 0; n < new_rules.size(); ++n) {
      if (!new_matched[n]) added.push_back(&new_rules[n]);
    }

    const std::size_t modifies = std::min(removed.size(), added.size());
    for (std::size_t i = 0; i < modifies; ++i) {
      RuleUpdate u;
      u.kind = RuleUpdate::Kind::kModify;
      u.table = t;
      u.target = removed[i]->matches;
      u.rule = *added[i];
      updates.push_back(std::move(u));
    }
    for (std::size_t i = modifies; i < removed.size(); ++i) {
      RuleUpdate u;
      u.kind = RuleUpdate::Kind::kRemove;
      u.table = t;
      u.target = removed[i]->matches;
      updates.push_back(std::move(u));
    }
    for (std::size_t i = modifies; i < added.size(); ++i) {
      RuleUpdate u;
      u.kind = RuleUpdate::Kind::kInsert;
      u.table = t;
      u.rule = *added[i];
      updates.push_back(std::move(u));
    }
  }
  return updates;
}

}  // namespace

GwlbBinding::GwlbBinding(Gwlb gwlb, Representation repr)
    : gwlb_(std::move(gwlb)), repr_(repr) {
  rebuild_program();
}

const core::FdSet& GwlbBinding::mined_fds() {
  if (!mined_.has_value()) {
    static obs::Counter& remines =
        obs::MetricRegistry::global().counter("maton_cp_remines_total");
    const obs::TraceSpan span("fd_re_mine");
    mined_ = core::mine_fds_tane(gwlb_.universal, {.cache = &mine_cache_});
    remines.add();
  }
  return *mined_;
}

void GwlbBinding::rebuild_program() {
  mined_.reset();  // the universal table is about to change
  // Rebuild the universal table from the service model first (the
  // decomposed builders read services directly).
  core::Table universal("gwlb.universal", gwlb_.universal.schema());
  for (const workloads::GwlbService& svc : gwlb_.services) {
    for (std::size_t b = 0; b < svc.src_prefixes.size(); ++b) {
      universal.add_row(
          {svc.src_prefixes[b], svc.vip, svc.port, svc.backends[b]});
    }
  }
  gwlb_.universal = std::move(universal);

  auto compiled = dp::compile(pipeline_for(gwlb_, repr_));
  expects(compiled.is_ok(),
          "gwlb program failed to compile: " + compiled.status().message());
  program_ = std::move(compiled).value();
}

Result<std::vector<RuleUpdate>> GwlbBinding::compile_intent(
    const Intent& intent) {
  const std::size_t service = std::visit(
      [](const auto& i) { return i.service; }, intent);
  if (service >= gwlb_.services.size()) {
    return invalid_argument("intent names a non-existent service");
  }
  workloads::GwlbService& svc = gwlb_.services[service];
  if (svc.src_prefixes.empty()) {
    return failed_precondition("intent targets a removed service");
  }

  if (const auto* move = std::get_if<MoveServicePort>(&intent)) {
    svc.port = move->new_port;
  } else if (const auto* reip = std::get_if<ChangeServiceIp>(&intent)) {
    svc.vip = reip->new_vip;
  } else if (const auto* backend = std::get_if<ChangeBackend>(&intent)) {
    if (backend->backend >= svc.backends.size()) {
      return invalid_argument("intent names a non-existent backend");
    }
    svc.backends[backend->backend] = backend->new_out;
  } else if (std::get_if<RemoveService>(&intent) != nullptr) {
    svc.src_prefixes.clear();
    svc.backends.clear();
  }

  const obs::TraceSpan span("compile");
  const Program before = std::move(program_);
  rebuild_program();
  const obs::TraceSpan diff_span("rule_diff");
  return diff_programs(before, program_);
}

MonitorPlan GwlbBinding::monitor_plan(std::size_t service) const {
  expects(service < gwlb_.services.size(), "service index out of range");
  const std::size_t backends =
      gwlb_.services[service].src_prefixes.size();
  if (repr_ == Representation::kUniversal) {
    // One counter per backend entry, summed in the controller.
    return {backends, backends == 0 ? 0 : backends - 1};
  }
  // All of the service's traffic flows through its single first-stage
  // entry: one counter, no aggregation.
  return {1, 0};
}

std::size_t GwlbBinding::identity_entries(std::size_t service) const {
  expects(service < gwlb_.services.size(), "service index out of range");
  const std::size_t backends =
      gwlb_.services[service].src_prefixes.size();
  switch (repr_) {
    case Representation::kUniversal:
      return backends;  // VIP:port repeated per backend entry
    case Representation::kGoto:
    case Representation::kMetadata:
      return 1;  // stated once, in the service table
    case Representation::kRematch:
      return 1 + backends;  // re-matched VIP appears per backend again
  }
  return backends;
}

}  // namespace maton::cp
