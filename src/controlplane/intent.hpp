// Control-plane intents over the gateway & load-balancer service model.
//
// §2 frames controllability as "how many rule-action pairs must the
// controller touch to effect one functional change". Intents are the
// functional changes; the per-representation compiler (compiler.hpp)
// turns each into the concrete rule updates that representation needs.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace maton::cp {

/// Tenant moves its service to another TCP port (e.g. HTTP → HTTPS, the
/// §2 example).
struct MoveServicePort {
  std::size_t service = 0;
  std::uint16_t new_port = 0;
};

/// Tenant changes the public IP of its service; §2's consistency example
/// (a lost update leaves the service halfway-exposed on two VIPs).
struct ChangeServiceIp {
  std::size_t service = 0;
  std::uint32_t new_vip = 0;
};

/// Replace one backend VM (out port) of a service.
struct ChangeBackend {
  std::size_t service = 0;
  std::size_t backend = 0;
  std::uint64_t new_out = 0;
};

/// Remove a service entirely.
struct RemoveService {
  std::size_t service = 0;
};

using Intent = std::variant<MoveServicePort, ChangeServiceIp, ChangeBackend,
                            RemoveService>;

[[nodiscard]] std::string to_string(const Intent& intent);

}  // namespace maton::cp
