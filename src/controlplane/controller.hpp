// Controller: applies intents to a switch through a representation
// binding, accounting the control-plane effort (§2 controllability) and
// the churn each intent induces (§5 reactiveness).
#pragma once

#include <memory>

#include "controlplane/compiler.hpp"

namespace maton::cp {

struct ControllerStats {
  std::size_t intents_applied = 0;
  std::size_t rule_updates_issued = 0;
  /// Σ over intents of (updates − 1): total partially-applied states the
  /// data plane exposed under non-atomic update application (§2).
  std::size_t inconsistency_window = 0;
  std::size_t failed_intents = 0;
};

/// Drives one switch model with intents compiled for one representation.
class Controller {
 public:
  Controller(std::unique_ptr<GwlbBinding> binding, dp::SwitchModel& target);

  /// Compiles the intent and pushes every resulting rule update to the
  /// switch. Returns the number of rule updates issued.
  [[nodiscard]] Result<std::size_t> apply(const Intent& intent);

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const GwlbBinding& binding() const noexcept {
    return *binding_;
  }

 private:
  std::unique_ptr<GwlbBinding> binding_;
  dp::SwitchModel& target_;
  ControllerStats stats_;
};

}  // namespace maton::cp
