// Lightweight status / expected-value types for recoverable errors.
//
// The library reports recoverable conditions (e.g. "this decomposition is
// invalid because the resulting sub-table would violate 1NF") through
// Status and Result<T> rather than exceptions, so callers can branch on
// the outcome without control-flow surprises.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/contract.hpp"

namespace maton {

/// Machine-readable category of a recoverable error.
enum class StatusCode {
  kOk,
  kInvalidArgument,   // malformed input (bad schema, unknown attribute, ...)
  kFailedPrecondition,// operation undefined for this input (not in 1NF, ...)
  kNotFound,          // lookup missed
  kAlreadyExists,     // duplicate insertion
  kUnimplemented,     // feature intentionally out of scope
  kInternal,          // invariant broke mid-operation (library bug)
};

/// Human-readable name of a StatusCode ("ok", "invalid-argument", ...).
[[nodiscard]] std::string_view to_string(StatusCode code) noexcept;

/// Outcome of an operation that produces no value: either OK or an error
/// code plus message. Cheap to copy in the OK case.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status. `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    expects(code != StatusCode::kOk, "error Status must carry an error code");
  }

  [[nodiscard]] static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Full "code: message" rendering for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;  // messages are advisory
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status invalid_argument(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
[[nodiscard]] inline Status failed_precondition(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
[[nodiscard]] inline Status not_found(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
[[nodiscard]] inline Status already_exists(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
[[nodiscard]] inline Status unimplemented(std::string message) {
  return {StatusCode::kUnimplemented, std::move(message)};
}
[[nodiscard]] inline Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

/// Either a value of type T or an error Status. Accessing the value of an
/// error Result is a contract violation.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    expects(!std::get<Status>(state_).is_ok(),
            "Result error must carry a non-OK status");
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(state_);
  }

  [[nodiscard]] const T& value() const& {
    expects(is_ok(), "Result::value() on error result");
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    expects(is_ok(), "Result::value() on error result");
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    expects(is_ok(), "Result::value() on error result");
    return std::get<T>(std::move(state_));
  }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace maton
