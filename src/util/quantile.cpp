#include "util/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace maton {

P2Quantile::P2Quantile(double q) : q_(q) {
  expects(q > 0.0 && q < 1.0, "P2Quantile: q must be in (0, 1)");
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double sample) {
  if (count_ < 5) {
    insert_initial(sample);
    return;
  }

  // Find the cell the sample falls into and bump marker 0/4 if the sample
  // extends the observed range.
  int k;
  if (sample < heights_[0]) {
    heights_[0] = sample;
    k = 0;
  } else if (sample >= heights_[4]) {
    heights_[4] = sample;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && sample >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  adjust_markers();
}

void P2Quantile::merge(const P2Quantile& other) {
  expects(q_ == other.q_, "P2Quantile::merge requires the same quantile");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }

  // Exact-fallback: a side still holding its initial samples (count < 5)
  // stores them raw in heights_[0..count), so they replay losslessly.
  if (other.count_ < 5) {
    for (std::size_t i = 0; i < other.count_; ++i) add(other.heights_[i]);
    return;
  }
  if (count_ < 5) {
    P2Quantile merged = other;
    for (std::size_t i = 0; i < count_; ++i) merged.add(heights_[i]);
    *this = merged;
    return;
  }

  // Marker merge. Extremes are exact; middle heights are count-weighted
  // averages of two order-statistic estimates, positions add as rank
  // counts (both sides count their own minimum, hence the -1).
  const double w1 = static_cast<double>(count_);
  const double w2 = static_cast<double>(other.count_);
  const std::size_t merged_count = count_ + other.count_;

  std::array<double, 5> h;
  h[0] = std::min(heights_[0], other.heights_[0]);
  h[4] = std::max(heights_[4], other.heights_[4]);
  for (int i = 1; i <= 3; ++i) {
    h[i] = (heights_[i] * w1 + other.heights_[i] * w2) / (w1 + w2);
  }
  for (int i = 1; i < 5; ++i) h[i] = std::max(h[i], h[i - 1]);
  heights_ = h;

  std::array<double, 5> p;
  p[0] = 1.0;
  p[4] = static_cast<double>(merged_count);
  for (int i = 1; i <= 3; ++i) {
    p[i] = positions_[i] + other.positions_[i] - 1.0;
  }
  // Positions must stay strictly increasing with unit gaps available on
  // both sides for the adjustment steps to function.
  for (int i = 1; i < 5; ++i) p[i] = std::max(p[i], p[i - 1] + 1.0);
  for (int i = 3; i >= 0; --i) p[i] = std::min(p[i], p[i + 1] - 1.0);
  positions_ = p;

  const std::array<double, 5> init = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_,
                                      3.0 + 2.0 * q_, 5.0};
  for (int i = 0; i < 5; ++i) {
    desired_[i] = init[i] + static_cast<double>(merged_count - 5) *
                                increments_[i];
  }
  count_ = merged_count;
}

void P2Quantile::insert_initial(double sample) {
  heights_[count_] = sample;
  ++count_;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
    for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  }
}

void P2Quantile::adjust_markers() {
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool up = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool down = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!up && !down) continue;

    const double dir = up ? 1.0 : -1.0;
    double candidate = parabolic(i, dir);
    if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
      heights_[i] = candidate;
    } else {
      heights_[i] = linear(i, dir);
    }
    positions_[i] += dir;
  }
}

double P2Quantile::parabolic(int i, double d) const {
  const auto& n = positions_;
  const auto& h = heights_;
  return h[i] + d / (n[i + 1] - n[i - 1]) *
                    ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) /
                         (n[i + 1] - n[i]) +
                     (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) /
                         (n[i] - n[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double P2Quantile::estimate() const {
  expects(count_ > 0, "P2Quantile::estimate with no samples");
  if (count_ < 5) {
    // Too few samples for the marker machinery: fall back to the exact
    // order statistic over what we have.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, count_ - 1)];
  }
  return heights_[2];
}

double ExactQuantile::quantile(double q) const {
  expects(!samples_.empty(), "ExactQuantile::quantile with no samples");
  expects(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double ExactQuantile::mean() const {
  expects(!samples_.empty(), "ExactQuantile::mean with no samples");
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void LatencyRecorder::add(double sample) {
  if (count_ == 0 || sample < min_) min_ = sample;
  sum_ += sample;
  ++count_;
  p50_.add(sample);
  p75_.add(sample);
  p99_.add(sample);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  sum_ += other.sum_;
  count_ += other.count_;
  p50_.merge(other.p50_);
  p75_.merge(other.p75_);
  p99_.merge(other.p99_);
}

double LatencyRecorder::min() const {
  expects(count_ > 0, "LatencyRecorder::min with no samples");
  return min_;
}

double LatencyRecorder::mean() const {
  expects(count_ > 0, "LatencyRecorder::mean with no samples");
  return sum_ / static_cast<double>(count_);
}

}  // namespace maton
