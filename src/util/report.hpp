// Plain-text report tables for the benchmark harness.
//
// Each bench binary regenerates one table or figure from the paper and
// prints it in a stable, diff-friendly ASCII layout (plus optional CSV for
// plotting), so EXPERIMENTS.md can quote paper-vs-measured side by side.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace maton {

/// Column-aligned ASCII table with a title, built row by row.
class ReportTable {
 public:
  explicit ReportTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; call before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a title line, a header rule, and aligned columns.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated rendering (header + rows) for plotting scripts.
  [[nodiscard]] std::string to_csv() const;

  /// Prints to_string() to the stream followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maton
