// SmallBitset: a fixed-capacity (64-element) bitset used to represent sets
// of schema attributes (columns) throughout the normalization core.
//
// Match-action tables in practice have far fewer than 64 columns, so a
// single machine word keeps attribute-set algebra (closure computation,
// lattice walks in FD mining) allocation-free and branch-cheap.
#pragma once

#include <bit>
#include <iterator>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/contract.hpp"

namespace maton {

/// Set of small integers in [0, 64), stored as one word.
///
/// Iteration order is ascending. All operations are O(1) except
/// to_string() and the iterator, which are O(popcount).
class SmallBitset {
 public:
  static constexpr std::size_t kCapacity = 64;

  constexpr SmallBitset() noexcept = default;

  constexpr SmallBitset(std::initializer_list<std::size_t> elems) {
    for (std::size_t e : elems) insert(e);
  }

  /// Set containing every element in [0, n).
  [[nodiscard]] static constexpr SmallBitset full(std::size_t n) {
    SmallBitset s;
    s.bits_ = n >= kCapacity ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  /// Singleton {e}.
  [[nodiscard]] static constexpr SmallBitset single(std::size_t e) {
    SmallBitset s;
    s.insert(e);
    return s;
  }

  constexpr void insert(std::size_t e) {
    bits_ |= word(e);
  }
  constexpr void erase(std::size_t e) { bits_ &= ~word(e); }
  [[nodiscard]] constexpr bool contains(std::size_t e) const {
    return (bits_ & word(e)) != 0;
  }

  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(std::popcount(bits_));
  }

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return bits_; }
  [[nodiscard]] static constexpr SmallBitset from_raw(std::uint64_t bits) {
    SmallBitset s;
    s.bits_ = bits;
    return s;
  }

  /// True when every element of this set is also in `other`.
  [[nodiscard]] constexpr bool subset_of(const SmallBitset& other) const noexcept {
    return (bits_ & ~other.bits_) == 0;
  }
  /// True when this is a subset of `other` and not equal to it.
  [[nodiscard]] constexpr bool proper_subset_of(
      const SmallBitset& other) const noexcept {
    return subset_of(other) && bits_ != other.bits_;
  }
  [[nodiscard]] constexpr bool intersects(const SmallBitset& other) const noexcept {
    return (bits_ & other.bits_) != 0;
  }

  [[nodiscard]] constexpr SmallBitset operator|(const SmallBitset& o) const noexcept {
    return from_raw(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr SmallBitset operator&(const SmallBitset& o) const noexcept {
    return from_raw(bits_ & o.bits_);
  }
  /// Set difference: elements in this but not in `o`.
  [[nodiscard]] constexpr SmallBitset operator-(const SmallBitset& o) const noexcept {
    return from_raw(bits_ & ~o.bits_);
  }
  constexpr SmallBitset& operator|=(const SmallBitset& o) noexcept {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr SmallBitset& operator&=(const SmallBitset& o) noexcept {
    bits_ &= o.bits_;
    return *this;
  }
  constexpr SmallBitset& operator-=(const SmallBitset& o) noexcept {
    bits_ &= ~o.bits_;
    return *this;
  }

  friend constexpr bool operator==(const SmallBitset&, const SmallBitset&) = default;
  friend constexpr auto operator<=>(const SmallBitset& a, const SmallBitset& b) {
    return a.bits_ <=> b.bits_;
  }

  /// Smallest element; set must be non-empty.
  [[nodiscard]] std::size_t min() const {
    expects(!empty(), "min() of empty bitset");
    return static_cast<std::size_t>(std::countr_zero(bits_));
  }

  /// Forward iterator yielding elements in ascending order.
  class const_iterator {
   public:
    using value_type = std::size_t;
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = std::size_t;

    constexpr explicit const_iterator(std::uint64_t rest) noexcept : rest_(rest) {}
    constexpr std::size_t operator*() const noexcept {
      return static_cast<std::size_t>(std::countr_zero(rest_));
    }
    constexpr const_iterator& operator++() noexcept {
      rest_ &= rest_ - 1;  // clear lowest set bit
      return *this;
    }
    friend constexpr bool operator==(const const_iterator&,
                                     const const_iterator&) = default;

   private:
    std::uint64_t rest_;
  };

  [[nodiscard]] constexpr const_iterator begin() const noexcept {
    return const_iterator(bits_);
  }
  [[nodiscard]] constexpr const_iterator end() const noexcept {
    return const_iterator(0);
  }

  /// "{0, 3, 7}"-style rendering; element order is ascending.
  [[nodiscard]] std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (std::size_t e : *this) {
      if (!first) out += ", ";
      out += std::to_string(e);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t word(std::size_t e) {
    expects(e < kCapacity, "SmallBitset element out of range");
    return std::uint64_t{1} << e;
  }

  std::uint64_t bits_ = 0;
};

}  // namespace maton
