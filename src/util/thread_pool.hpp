// A small fixed-size thread pool with a blocking parallel_for helper.
//
// Built for the FD-mining engine (src/core/fd_mine.cpp): lattice levels
// fan out as index ranges whose per-element work is independent, results
// are written to caller-provided slots by index, and the caller merges
// them in deterministic order afterwards. The pool therefore offers no
// futures or task graph — just "run fn(i) for i in [0, n) on up to W
// workers and wait".
//
// Design points:
//  * The calling thread participates as worker 0, so a pool of size 0
//    degenerates to a plain sequential loop (no threads touched at all —
//    this is the `MineOptions::threads == 0` reproducibility path).
//  * Work is distributed by an atomic ticket counter, not pre-chunked,
//    so skewed per-element costs (partition products shrink as the
//    lattice deepens) self-balance.
//  * The first exception thrown by any worker is captured and rethrown
//    on the calling thread after the loop drains (contract violations
//    inside parallel sections surface exactly like sequential ones).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace maton::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: parallel_for then runs inline
  /// on the calling thread.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool-owned worker threads (excluding callers).
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Maximum workers a parallel_for can engage: pool threads + the caller.
  [[nodiscard]] std::size_t max_parallelism() const noexcept {
    return threads_.size() + 1;
  }

  /// Runs fn(index, worker) for every index in [0, n), on at most
  /// `max_workers` workers (clamped to max_parallelism(); the calling
  /// thread is always worker 0). Blocks until every index completed.
  /// `worker` ∈ [0, max_workers) identifies the executing lane so callers
  /// can maintain per-worker scratch state without synchronization.
  /// Rethrows the first exception any lane produced.
  void parallel_for(std::size_t n, std::size_t max_workers,
                    const std::function<void(std::size_t index,
                                             std::size_t worker)>& fn);

  /// Process-wide pool sized to hardware_concurrency() − 1, created on
  /// first use. Shared by every mine_fds_tane call so repeated mining
  /// (the control-plane churn loop) does not pay thread start-up per call.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> threads_;
  // Pool state lives behind a pimpl-free mutex/cv pair; see .cpp.
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace maton::util
