#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "util/contract.hpp"

namespace maton::util {

/// One parallel_for invocation in flight. Workers pull tickets until the
/// counter runs dry; the last lane to leave signals the submitting thread.
struct ThreadPool::Batch {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  /// Lanes (pool workers) still inside run(); the caller's own lane is
  /// not counted — it waits for this to hit zero after draining.
  std::atomic<std::size_t> active{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;

  void run(std::size_t worker) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Drain the remaining tickets so every lane exits promptly.
        next.store(n, std::memory_order_relaxed);
      }
    }
  }

  void lane_done() {
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  }
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;
  Batch* batch = nullptr;  // non-null while a parallel_for wants helpers
  std::size_t helpers_wanted = 0;
  bool shutdown = false;
};

ThreadPool::ThreadPool(std::size_t workers) : state_(new State) {
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->shutdown = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Batch* batch = nullptr;
    std::size_t lane = 0;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->work_cv.wait(lock, [this] {
        return state_->shutdown ||
               (state_->batch != nullptr && state_->helpers_wanted > 0);
      });
      if (state_->shutdown) return;
      batch = state_->batch;
      lane = state_->helpers_wanted--;  // lanes 1..W; caller is lane 0
      if (state_->helpers_wanted == 0) state_->batch = nullptr;
    }
    batch->run(lane);
    batch->lane_done();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers = std::min(max_workers, max_parallelism());
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  const std::size_t helpers = workers - 1;
  batch.active.store(helpers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    // Only one parallel_for is in flight at a time per pool (the mining
    // engine never nests); a concurrent submitter would clobber `batch`.
    ensures(state_->batch == nullptr,
            "ThreadPool::parallel_for does not support nested/concurrent "
            "submissions on one pool");
    state_->batch = &batch;
    state_->helpers_wanted = helpers;
  }
  state_->work_cv.notify_all();

  batch.run(0);

  {
    // Withdraw any helper slots no worker has claimed yet, so stragglers
    // cannot touch `batch` after it leaves scope.
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->batch == &batch) {
      const std::size_t unclaimed = state_->helpers_wanted;
      state_->helpers_wanted = 0;
      state_->batch = nullptr;
      batch.active.fetch_sub(unclaimed, std::memory_order_acq_rel);
    }
  }
  {
    std::unique_lock<std::mutex> lock(batch.done_mutex);
    batch.done_cv.wait(lock, [&batch] {
      return batch.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw <= 1 ? std::size_t{0} : std::size_t{hw - 1};
  }());
  return pool;
}

}  // namespace maton::util
