// A contiguous vector with inline storage for its first N elements.
//
// Built for per-packet scratch on the data-plane hot path: the matched-
// rule list of a pipeline traversal is bounded by the pipeline depth
// (a handful), so it fits the inline buffer and costs zero allocations;
// pathological programs spill to the heap transparently. Restricted to
// trivially copyable element types so growth is a memcpy and the
// destructor never walks elements.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>

namespace maton::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is for trivially copyable scratch elements");
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { assign(other.span()); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.span());
    return *this;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow();
    data()[size_++] = value;
  }

  /// Drops all elements; keeps whatever capacity has been reached.
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] T* data() noexcept {
    return heap_ ? heap_.get() : inline_;
  }
  [[nodiscard]] const T* data() const noexcept {
    return heap_ ? heap_.get() : inline_;
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size_; }

  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data(), size_};
  }

 private:
  void assign(std::span<const T> values) {
    size_ = 0;
    for (const T& v : values) push_back(v);
  }

  void grow() {
    const std::size_t next = capacity_ * 2;
    auto bigger = std::make_unique<T[]>(next);
    std::memcpy(bigger.get(), data(), size_ * sizeof(T));
    heap_ = std::move(bigger);
    capacity_ = next;
  }

  // Cache-line aligned so the batch walkers' kernel loads over inline
  // scratch (MatchedBuf and friends) never split a line.
  alignas(64) T inline_[N];
  std::unique_ptr<T[]> heap_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace maton::util
