// Formatting and parsing of network-typed values (IPv4 addresses, MAC
// addresses, ports) used when pretty-printing tables and in tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace maton {

/// 192.0.2.1-style rendering of a host-order IPv4 address.
[[nodiscard]] std::string format_ipv4(std::uint32_t addr);

/// "192.0.2.1/24"-style rendering; prefix_len in [0, 32].
[[nodiscard]] std::string format_ipv4_prefix(std::uint32_t addr,
                                             unsigned prefix_len);

/// aa:bb:cc:dd:ee:ff rendering of the low 48 bits.
[[nodiscard]] std::string format_mac(std::uint64_t mac);

/// Parses dotted-quad IPv4 into host order.
[[nodiscard]] Result<std::uint32_t> parse_ipv4(std::string_view text);

/// Convenience for building addresses in code: ipv4(192, 0, 2, 1).
[[nodiscard]] constexpr std::uint32_t ipv4(unsigned a, unsigned b, unsigned c,
                                           unsigned d) noexcept {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

/// Fixed-precision decimal rendering (e.g. format_double(1.5, 2) == "1.50").
[[nodiscard]] std::string format_double(double v, int precision);

/// Minimal "0x1f" rendering (no leading zeros; "0x0" for zero).
[[nodiscard]] std::string format_hex(std::uint64_t v);

}  // namespace maton
