#include "util/format.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace maton {

std::string format_ipv4(std::uint32_t addr) {
  std::array<char, 16> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u",
                              (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                              (addr >> 8) & 0xff, addr & 0xff);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string format_ipv4_prefix(std::uint32_t addr, unsigned prefix_len) {
  expects(prefix_len <= 32, "IPv4 prefix length out of range");
  return format_ipv4(addr) + "/" + std::to_string(prefix_len);
}

std::string format_mac(std::uint64_t mac) {
  std::array<char, 18> buf{};
  const int n = std::snprintf(
      buf.data(), buf.size(), "%02x:%02x:%02x:%02x:%02x:%02x",
      static_cast<unsigned>((mac >> 40) & 0xff),
      static_cast<unsigned>((mac >> 32) & 0xff),
      static_cast<unsigned>((mac >> 24) & 0xff),
      static_cast<unsigned>((mac >> 16) & 0xff),
      static_cast<unsigned>((mac >> 8) & 0xff),
      static_cast<unsigned>(mac & 0xff));
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

Result<std::uint32_t> parse_ipv4(std::string_view text) {
  std::uint32_t addr = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned v = 0;
    const auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255) {
      return invalid_argument("malformed IPv4 address: " + std::string(text));
    }
    addr = (addr << 8) | v;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') {
        return invalid_argument("malformed IPv4 address: " +
                                std::string(text));
      }
      ++p;
    }
  }
  if (p != end) {
    return invalid_argument("trailing characters in IPv4 address: " +
                            std::string(text));
  }
  return addr;
}

std::string format_double(double v, int precision) {
  std::array<char, 64> buf{};
  const int n =
      std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string format_hex(std::uint64_t v) {
  std::array<char, 20> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "0x%llx",
                              static_cast<unsigned long long>(v));
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

}  // namespace maton
