#include "util/status.hpp"

namespace maton {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out{maton::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace maton
