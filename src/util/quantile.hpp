// Streaming quantile estimation for latency measurements.
//
// The paper reports 3rd-quartile (p75) latency. The switch models produce
// one latency sample per packet at tens of millions of packets per run, so
// we estimate quantiles online with the P² algorithm (Jain & Chlamtac,
// CACM 1985): O(1) memory, O(1) amortized update, no sample retention.
// An exact sorted-sample estimator is provided for tests and small runs.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "util/contract.hpp"

namespace maton {

/// P² single-quantile estimator.
///
/// Accuracy is excellent for smooth distributions and within a few percent
/// for the multi-modal latency mixes our switch models produce; the unit
/// tests quantify this against the exact estimator.
class P2Quantile {
 public:
  /// `q` is the target quantile in (0, 1), e.g. 0.75 for the 3rd quartile.
  explicit P2Quantile(double q);

  void add(double sample);

  /// Folds another estimator of the same quantile into this one, as if
  /// the two sample streams had been interleaved. When either side has
  /// fewer than 5 samples its raw retained samples are replayed exactly;
  /// otherwise the P² markers are merged: extreme markers take min/max,
  /// middle marker heights are count-weighted averages (then clamped
  /// monotone), marker positions add as rank estimates, and desired
  /// positions are recomputed from the merged count. The merged estimate
  /// is an approximation — two marker sets cannot recover the exact
  /// interleaved order statistics — but stays within a few percent of a
  /// single-stream estimator for same-shaped per-queue streams (see
  /// util/test_quantile.cpp).
  void merge(const P2Quantile& other);

  /// Current estimate; requires at least one sample.
  [[nodiscard]] double estimate() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  void insert_initial(double sample);
  void adjust_markers();
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

/// Exact quantile over retained samples. O(n log n) per query.
class ExactQuantile {
 public:
  void add(double sample) { samples_.push_back(sample); }

  /// Quantile by linear interpolation between closest ranks;
  /// requires at least one sample and q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Convenience bundle recording min/mean/p50/p75/p99 of a latency stream
/// with bounded memory.
class LatencyRecorder {
 public:
  LatencyRecorder() : p50_(0.50), p75_(0.75), p99_(0.99) {}

  void add(double sample);

  /// Folds another recorder's stream into this one (multi-queue replay
  /// reports one recorder folded over all queues): min/sum/count combine
  /// exactly, the quantile estimates via P2Quantile::merge.
  void merge(const LatencyRecorder& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double p50() const { return p50_.estimate(); }
  /// 3rd-quartile latency — the statistic Table 1 of the paper reports.
  [[nodiscard]] double p75() const { return p75_.estimate(); }
  [[nodiscard]] double p99() const { return p99_.estimate(); }

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double sum_ = 0.0;
  P2Quantile p50_;
  P2Quantile p75_;
  P2Quantile p99_;
};

}  // namespace maton
