// Contract checking for programming errors (precondition violations).
//
// Recoverable conditions use maton::Status / maton::Result (see status.hpp);
// contract violations indicate a bug in the caller and throw
// maton::ContractViolation carrying the source location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace maton {

/// Thrown when a documented precondition or invariant is violated.
/// This signals a programming error, not a runtime condition: callers
/// should not catch it except at test or process boundaries.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string_view what, const std::source_location& loc)
      : std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": contract violation: " +
                         std::string(what)) {}
};

/// Checks a precondition; throws ContractViolation when `ok` is false.
/// constexpr so it is usable in constant-evaluated contexts (where a
/// violation fails compilation instead of throwing).
///
/// Usage: `expects(i < size(), "index out of range");`
constexpr void expects(
    bool ok, std::string_view message,
    const std::source_location& loc = std::source_location::current()) {
  if (!ok) throw ContractViolation(message, loc);
}

/// Checks a postcondition or internal invariant; same semantics as expects().
constexpr void ensures(
    bool ok, std::string_view message,
    const std::source_location& loc = std::source_location::current()) {
  if (!ok) throw ContractViolation(message, loc);
}

}  // namespace maton
