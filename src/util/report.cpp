#include "util/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/contract.hpp"

namespace maton {

void ReportTable::set_header(std::vector<std::string> header) {
  expects(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void ReportTable::add_row(std::vector<std::string> row) {
  expects(header_.empty() || row.size() == header_.size(),
          "row width differs from header width");
  rows_.push_back(std::move(row));
}

std::string ReportTable::to_string() const {
  const std::size_t cols =
      header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                      : header_.size();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += cell;
      if (c + 1 < cols) out.append(width[c] - cell.size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out = "== " + title_ + " ==\n";
  if (!header_.empty()) {
    emit_row(header_, out);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 < cols ? 2 : 0);
    out.append(rule, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

std::string ReportTable::to_csv() const {
  auto emit = [](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  std::string out;
  if (!header_.empty()) emit(header_, out);
  for (const auto& r : rows_) emit(r, out);
  return out;
}

void ReportTable::print(std::ostream& os) const {
  os << to_string() << '\n';
}

}  // namespace maton
