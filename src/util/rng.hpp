// Deterministic pseudo-random source for workload generation and
// property-based tests. All randomness in the library flows through Rng so
// every experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/contract.hpp"

namespace maton {

/// Seeded Mersenne-Twister wrapper with the handful of draw shapes the
/// workload generators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    expects(lo <= hi, "uniform: empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n); requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    expects(n > 0, "index: empty range");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p) { return real() < p; }

  /// Exponentially distributed inter-arrival time with the given rate
  /// (events per unit time); requires rate > 0.
  [[nodiscard]] double exponential(double rate) {
    expects(rate > 0.0, "exponential: rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Underlying engine, for std::shuffle and distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace maton
