// The appendix SDX use case: why the announcement/outbound/inbound split
// is *beyond* functional-dependency normalization (a join dependency),
// how the naive pipeline breaks, and how the Fig. 5c metadata encoding
// repairs it.
//
// Run: ./build/examples/sdx_policy
#include <iostream>

#include "core/equivalence.hpp"
#include "core/fd_mine.hpp"
#include "workloads/sdx.hpp"

using namespace maton;

int main() {
  const workloads::Sdx sdx = workloads::make_sdx_example();
  std::cout << "collapsed SDX policy (Fig. 5a):\n"
            << sdx.universal.to_string() << "\n";

  // FDs cannot explain the split: nothing short of the full match key
  // determines the egress router.
  std::cout << "does ip_dst determine out? "
            << (core::fd_holds(sdx.universal,
                               {core::AttrSet::single(workloads::kSdxIpDst),
                                core::AttrSet::single(workloads::kSdxOut)})
                    ? "yes"
                    : "no")
            << "\n";
  std::cout << "does (ip_dst, tcp_dst) determine out? "
            << (core::fd_holds(
                    sdx.universal,
                    {core::AttrSet{workloads::kSdxIpDst,
                                   workloads::kSdxTcpDst},
                     core::AttrSet::single(workloads::kSdxOut)})
                    ? "yes"
                    : "no")
            << "\n\n";

  // The naive three-table pipeline is structurally broken.
  const Status broken = sdx.broken.validate();
  std::cout << "naive T_an >> T_out >> T_in: " << broken.to_string()
            << "\n\n";

  // The Fig. 5c repair carries the outbound choice explicitly.
  std::cout << "metadata repair (Fig. 5c):\n"
            << sdx.repaired.to_string() << "\n";
  const auto eq = core::check_equivalence(sdx.universal, sdx.repaired);
  std::cout << "equivalent to the collapsed policy: "
            << (eq.equivalent ? "yes" : "NO") << "\n";

  // Trace two packets: HTTP to P1 balances across C1/C2; the rest is D.
  for (const auto& [hash, label] : {std::pair{0, "hash=0"}, {1, "hash=1"}}) {
    core::PacketState packet{
        {"ip_dst", sdx.universal.at(0, workloads::kSdxIpDst)},
        {"tcp_dst", 80},
        {"hash", static_cast<core::Value>(hash)}};
    const auto result = sdx.repaired.evaluate(packet);
    std::cout << "HTTP to P1 (" << label << ") => out="
              << (result.hit ? std::to_string(result.actions.at("out"))
                             : "drop")
              << "\n";
  }
  return eq.equivalent ? 0 : 1;
}
