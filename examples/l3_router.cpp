// The Fig. 2 L3 router: a single-table IP forwarder normalized into the
// 3NF pipeline T0 × T1 ≫ T2 ≫ T3 (constants factored into a product
// stage, next-hop group table, port table), with the decomposition
// verified under both the core evaluator and the NetKAT semantics.
//
// Run: ./build/examples/l3_router
#include <iostream>

#include "core/equivalence.hpp"
#include "core/synthesis.hpp"
#include "netkat/table_codec.hpp"
#include "util/format.hpp"
#include "workloads/l3fwd.hpp"

using namespace maton;

int main() {
  const workloads::L3Fwd l3 = workloads::make_paper_l3_example();
  std::cout << l3.universal.to_string() << "\n";

  core::FdSet model = l3.model_fds;
  model.add(l3.universal.schema().match_set(), l3.universal.schema().all());
  std::cout << "model dependencies:\n"
            << l3.model_fds.to_string(l3.universal.schema()) << "\n";

  const core::NfReport before = core::analyze(l3.universal, model);
  std::cout << "universal table is in "
            << to_string(before.highest()) << ":\n"
            << before.to_string(l3.universal.schema()) << "\n";

  const auto result = core::normalize(
      l3.universal, {.target = core::NormalForm::kThird,
                     .join = core::JoinKind::kMetadata,
                     .model_fds = model});
  if (!result.is_ok()) {
    std::cerr << result.status().to_string() << "\n";
    return 1;
  }
  std::cout << "normalization steps:\n";
  for (const auto& step : result.value().trace) {
    std::cout << "  " << step.description << "\n";
  }
  std::cout << "\n" << result.value().pipeline.to_string() << "\n";

  // Every stage is now in (at least) 3NF against its own instance.
  for (std::size_t i = 0; i < result.value().pipeline.num_stages(); ++i) {
    const core::Table& t = result.value().pipeline.stage(i).table;
    if (t.num_cols() == 0) continue;  // spliced husk
    std::cout << "stage " << i << " (" << t.name() << "): "
              << to_string(core::analyze(t).highest()) << "\n";
  }

  const auto eq = core::check_equivalence(l3.universal,
                                          result.value().pipeline);
  const auto nk =
      netkat::verify_against_netkat(l3.universal, result.value().pipeline);
  std::cout << "\ncore equivalence:   " << (eq.equivalent ? "yes" : "NO")
            << "\nNetKAT consistency: " << (nk.consistent ? "yes" : "NO")
            << "\n";

  // Route one packet symbolically through the normalized pipeline.
  core::PacketState packet{{"eth_type", 0x0800},
                           {"ip_dst", l3.universal.at(0, workloads::kL3IpDst)}};
  const core::EvalResult routed =
      result.value().pipeline.evaluate(packet);
  std::cout << "\npacket to P1: "
            << (routed.hit ? "forwarded on port " +
                                 std::to_string(routed.actions.at("out")) +
                                 ", dmac " +
                                 format_mac(routed.actions.at("mod_dmac"))
                           : "dropped")
            << " (visited " << routed.path.size() << " stages)\n";
  return eq.equivalent && nk.consistent ? 0 : 1;
}
