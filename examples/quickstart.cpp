// Quickstart: build a match-action table, discover its functional
// dependencies, analyze its normal form, normalize it, and verify the
// result is semantically equivalent.
//
// Run: ./build/examples/quickstart
#include <iostream>

#include "core/equivalence.hpp"
#include "core/fd_mine.hpp"
#include "core/normal_forms.hpp"
#include "core/synthesis.hpp"

using namespace maton;

int main() {
  // 1. Describe the table: match fields and actions are both attributes.
  core::Schema schema;
  schema.add_match("ip_dst", core::ValueCodec::kIpv4);
  schema.add_match("tcp_dst", core::ValueCodec::kPort, 16);
  schema.add_action("pool", core::ValueCodec::kPlain, 16);
  schema.add_action("out", core::ValueCodec::kPort, 16);

  // 2. Fill it. Each (ip_dst, tcp_dst) service maps to a backend pool,
  //    and the pool alone decides the output port — a redundancy.
  core::Table table("acl", std::move(schema));
  table.add_row({0xC0000201, 80, 1, 10});   // 192.0.2.1:80  -> pool 1
  table.add_row({0xC0000201, 443, 1, 10});  // 192.0.2.1:443 -> pool 1
  table.add_row({0xC0000202, 80, 2, 20});   // 192.0.2.2:80  -> pool 2
  table.add_row({0xC0000203, 80, 2, 20});   // 192.0.2.3:80  -> pool 2
  std::cout << table.to_string() << "\n";

  // 3. Mine the dependencies that hold in this configuration.
  const core::FdSet fds = core::mine_fds_tane(table);
  std::cout << "dependencies:\n" << fds.to_string(table.schema()) << "\n";

  // 4. Where does it sit in the normal-form hierarchy?
  const core::NfReport report = core::analyze(table, fds);
  std::cout << report.to_string(table.schema()) << "\n";

  // 5. Normalize (metadata join) and show the pipeline.
  const auto result = core::normalize(
      table, {.target = core::NormalForm::kThird,
              .join = core::JoinKind::kMetadata});
  if (!result.is_ok()) {
    std::cerr << "normalization failed: " << result.status().to_string()
              << "\n";
    return 1;
  }
  for (const auto& step : result.value().trace) {
    std::cout << "applied: " << step.description << "\n";
  }
  std::cout << "\n" << result.value().pipeline.to_string() << "\n";

  // 6. Prove nothing changed semantically.
  const auto eq = core::check_equivalence(table, result.value().pipeline);
  std::cout << "equivalent: " << (eq.equivalent ? "yes" : "NO") << " ("
            << eq.packets_checked << " packets checked)\n";
  return eq.equivalent ? 0 : 1;
}
