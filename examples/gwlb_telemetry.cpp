// End-to-end telemetry tour: the Table-1 gwlb workload (20 services x
// 8 backends) on the ESwitch model, batch-replayed, then churned with
// 20 control-plane intents (each followed by a live FD re-mine and a
// monitor read). Every layer's instrumentation fires — per-table
// hit/miss counters and lookup-latency histograms in the data plane,
// intent/compile/rule_diff/switch_update spans in the control plane,
// partition-cache and per-level timings in the miner — and the run ends
// by exporting:
//
//   <prefix>metrics.prom   Prometheus text exposition
//   <prefix>metrics.json   the same snapshot as JSON
//   <prefix>trace.json     Chrome trace_event JSON; open in
//                          chrome://tracing or https://ui.perfetto.dev
//
// Run: ./build/examples/gwlb_telemetry [output-prefix]
#include <iostream>
#include <memory>
#include <string>

#include "controlplane/controller.hpp"
#include "controlplane/monitor.hpp"
#include "obs/expose.hpp"
#include "obs/trace.hpp"
#include "workloads/replay.hpp"
#include "workloads/traffic.hpp"

using namespace maton;

namespace {

constexpr std::size_t kNumIntents = 20;
constexpr std::size_t kBatch = 256;

int export_or_die(const std::string& path, const std::string& text) {
  const Status written = obs::write_text_file(path, text);
  if (!written.is_ok()) {
    std::cerr << written.to_string() << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "gwlb_";

  const workloads::Gwlb gwlb =
      workloads::make_gwlb({.num_services = 20, .num_backends = 8});
  auto binding = std::make_unique<cp::GwlbBinding>(
      gwlb, cp::Representation::kGoto);
  cp::GwlbBinding& live_binding = *binding;

  auto sw = dp::make_eswitch_model();
  cp::Controller controller(std::move(binding), *sw);

  // Data plane: batch replay of the full trace populates the per-table
  // hit/miss counters and lookup-latency histograms.
  const auto keys = workloads::make_gwlb_keys(
      gwlb, {.num_packets = 4096, .hit_fraction = 1.0});
  const workloads::ReplayStats replay =
      workloads::replay_batch(*sw, keys, /*rounds=*/4, kBatch);
  std::cout << "replayed " << replay.packets << " packets ("
            << replay.hits << " hits) at "
            << static_cast<std::uint64_t>(replay.packets_per_second())
            << " pps\n";

  // Control plane: 20 churn intents. Each outer "churn_intent" span nests
  // the controller's intent/compile/rule_diff/switch_update spans, a live
  // FD re-mine over the rebuilt universal table, and a monitor read.
  const cp::TrafficMonitor monitor(live_binding, *sw);
  std::size_t updates = 0;
  for (std::size_t i = 0; i < kNumIntents; ++i) {
    const obs::TraceSpan churn_span("churn_intent");
    const std::size_t service = i % 20;
    const auto port = static_cast<std::uint16_t>(10000 + i);
    const auto cost = controller.apply(
        cp::MoveServicePort{.service = service, .new_port = port});
    if (!cost.is_ok()) {
      std::cerr << cost.status().to_string() << "\n";
      return 1;
    }
    updates += cost.value();
    (void)live_binding.mined_fds();
    const auto traffic = monitor.read_service(service);
    if (!traffic.is_ok()) {
      std::cerr << traffic.status().to_string() << "\n";
      return 1;
    }
  }
  std::cout << "applied " << kNumIntents << " intents (" << updates
            << " rule updates)\n";

  const obs::Snapshot snapshot = obs::MetricRegistry::global().scrape();
  if (export_or_die(prefix + "metrics.prom",
                    obs::render_prometheus(snapshot)) != 0 ||
      export_or_die(prefix + "metrics.json",
                    obs::render_json(snapshot)) != 0 ||
      export_or_die(prefix + "trace.json", obs::render_chrome_trace()) !=
          0) {
    return 1;
  }
  return 0;
}
