// The paper's running example end to end: the cloud access-gateway &
// load-balancer of Fig. 1, normalized with the model-level dependency
// ip_dst → tcp_dst, lowered to a data-plane program, executed on the
// ESwitch model, and updated live from the control plane.
//
// Run: ./build/examples/gwlb_pipeline
#include <iostream>

#include "controlplane/controller.hpp"
#include "core/synthesis.hpp"
#include "util/format.hpp"
#include "workloads/traffic.hpp"

using namespace maton;

int main() {
  // The exact Fig. 1a instance: three tenants, six entries.
  const workloads::Gwlb gwlb = workloads::make_paper_example();
  std::cout << gwlb.universal.to_string() << "\n";

  // Normalize under the service model: a VIP hosts exactly one service.
  core::FdSet model = gwlb.model_fds;
  model.add(gwlb.universal.schema().match_set(),
            gwlb.universal.schema().all());
  const auto normalized = core::normalize(
      gwlb.universal,
      {.join = core::JoinKind::kGoto, .model_fds = model});
  if (!normalized.is_ok()) {
    std::cerr << normalized.status().to_string() << "\n";
    return 1;
  }
  std::cout << "normalized (" << normalized.value().pipeline.field_count()
            << " fields vs " << gwlb.universal.field_count()
            << " universal):\n"
            << normalized.value().pipeline.to_string() << "\n";

  // Lower to the data plane and run real packets through the ESwitch
  // model.
  auto sw = dp::make_eswitch_model();
  cp::Controller controller(
      std::make_unique<cp::GwlbBinding>(gwlb, cp::Representation::kGoto),
      *sw);

  const auto packets =
      workloads::make_gwlb_traffic(gwlb, {.num_packets = 16});
  for (const dp::RawPacket& pkt : packets) {
    const auto key = dp::parse(pkt);
    if (!key.has_value()) continue;
    const dp::ExecResult r = sw->process(*key);
    std::cout << format_ipv4(static_cast<std::uint32_t>(
                     key->get(dp::FieldId::kIpSrc)))
              << " -> "
              << format_ipv4(static_cast<std::uint32_t>(
                     key->get(dp::FieldId::kIpDst)))
              << ":" << key->get(dp::FieldId::kTcpDst) << "  =>  "
              << (r.hit ? "vm" + std::to_string(r.out_port) : "drop")
              << "\n";
  }

  // Control plane: tenant 1 moves from HTTP to HTTPS — one rule update
  // on the normalized pipeline (§2 would need two on the universal one).
  const auto cost =
      controller.apply(cp::MoveServicePort{.service = 0, .new_port = 443});
  if (!cost.is_ok()) {
    std::cerr << cost.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\nmoved tenant 1 to :443 with " << cost.value()
            << " rule update(s)\n";

  dp::FlowKey key;
  key.set(dp::FieldId::kIpSrc, ipv4(1, 2, 3, 4));
  key.set(dp::FieldId::kIpDst, ipv4(192, 0, 2, 1));
  key.set(dp::FieldId::kTcpDst, 443);
  std::cout << "192.0.2.1:443 now => vm" << sw->process(key).out_port
            << "\n";
  key.set(dp::FieldId::kTcpDst, 80);
  std::cout << "192.0.2.1:80  now => "
            << (sw->process(key).hit ? "hit (unexpected)" : "drop") << "\n";
  return 0;
}
