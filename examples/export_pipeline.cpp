// Exporting normalized pipelines to real data planes: the gwlb workload
// normalized with the metadata join, emitted as (a) ovs-ofctl flows for
// an OpenFlow switch and (b) a v1model P4_16 program for p4c/bmv2.
//
// Run: ./build/examples/export_pipeline [output-directory]
#include <fstream>
#include <iostream>

#include "controlplane/compiler.hpp"
#include "core/synthesis.hpp"
#include "export/openflow.hpp"
#include "export/p4.hpp"

using namespace maton;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const auto gwlb =
      workloads::make_gwlb({.num_services = 4, .num_backends = 4});
  core::FdSet model = gwlb.model_fds;
  model.add(gwlb.universal.schema().match_set(),
            gwlb.universal.schema().all());

  const auto normalized = core::normalize(
      gwlb.universal,
      {.join = core::JoinKind::kMetadata, .model_fds = model});
  if (!normalized.is_ok()) {
    std::cerr << normalized.status().to_string() << "\n";
    return 1;
  }

  // OpenFlow: both representations, for side-by-side flashing.
  const cp::GwlbBinding universal(gwlb, cp::Representation::kUniversal);
  const auto uni_flows = exporter::to_openflow(universal.program());
  const auto norm_prog = dp::compile(normalized.value().pipeline);
  if (!uni_flows.is_ok() || !norm_prog.is_ok()) {
    std::cerr << "export failed\n";
    return 1;
  }
  const auto norm_flows = exporter::to_openflow(norm_prog.value());
  if (!norm_flows.is_ok()) {
    std::cerr << norm_flows.status().to_string() << "\n";
    return 1;
  }

  // P4: the normalized pipeline as a bmv2-ready program.
  const auto p4 = exporter::to_p4(normalized.value().pipeline,
                                  {.program_name = "gwlb_normalized"});
  if (!p4.is_ok()) {
    std::cerr << p4.status().to_string() << "\n";
    return 1;
  }

  const auto write = [&](const std::string& name, const std::string& body) {
    const std::string path = out_dir + "/" + name;
    std::ofstream file(path);
    file << body;
    std::cout << "wrote " << path << " (" << body.size() << " bytes)\n";
  };
  write("gwlb_universal.flows", uni_flows.value());
  write("gwlb_normalized.flows", norm_flows.value());
  write("gwlb_normalized.p4", p4.value());

  std::cout << "\n--- preview: normalized OpenFlow flows ---\n"
            << norm_flows.value().substr(0, 800) << "...\n";
  std::cout << "\n--- preview: generated P4 tables ---\n";
  const std::string& prog = p4.value();
  const std::size_t at = prog.find("    table ");
  std::cout << prog.substr(at, 700) << "...\n";
  return 0;
}
