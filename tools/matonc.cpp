// matonc — the maton command-line normalizer.
//
//   matonc analyze   <table.maton>                 dependency & NF report
//   matonc analyze   gwlb:<repr>[@NxM[@seed]]      built-in gwlb program
//   matonc normalize <table.maton> [options]       print the pipeline
//   matonc export    <table.maton> [options]       emit a data plane
//
// Options:
//   --join goto|metadata|rematch     join abstraction   (default metadata)
//   --target 2nf|3nf|bcnf            normalization goal (default 3nf)
//   --format openflow|p4             export backend     (default openflow)
//   --no-constants                   keep constant columns inline
//   --verify=symbolic|probe          how normalize/export prove the
//                                    pipeline equivalent to its source
//                                    table (default symbolic: an exact
//                                    decision-diagram proof over every
//                                    packet; probe: the legacy randomized
//                                    probe oracle). An inconclusive
//                                    symbolic solve falls back to probes.
//   --analyze[=text|json]            run the static analyzer; with json,
//                                    print only the machine-readable report
//   --metrics[=prom|json]            dump telemetry to stderr (default prom)
//   --trace=FILE                     write Chrome trace_event JSON to FILE
//   --metrics-addr=HOST:PORT         serve /metrics, /metrics.json, /trace
//                                    and /healthz over HTTP while the
//                                    command runs (MATON_METRICS_ADDR works
//                                    too; port 0 picks an ephemeral port)
//
// Built-in specs (analyze only): gwlb:universal, gwlb:goto@20x8,
// gwlb:metadata@20x8@7, ... — the paper example, or a randomized NxM
// instance, compiled for the named representation and handed to the
// analyzer. Exit status is 1 when any error-severity diagnostic is found.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/symbolic/engine.hpp"
#include "controlplane/compiler.hpp"
#include "dataplane/program.hpp"
#include "core/equivalence.hpp"
#include "core/fd_mine.hpp"
#include "core/mvd.hpp"
#include "core/normal_forms.hpp"
#include "core/synthesis.hpp"
#include "core/text.hpp"
#include "export/openflow.hpp"
#include "export/p4.hpp"
#include "obs/expose.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"
#include "workloads/gwlb.hpp"

namespace {

using namespace maton;

int usage(std::ostream& os) {
  os << "usage: matonc <analyze|normalize|export> <table.maton|gwlb:SPEC>\n"
        "  [--join goto|metadata|rematch] [--target 2nf|3nf|bcnf]\n"
        "  [--format openflow|p4] [--no-constants]\n"
        "  [--verify=symbolic|probe] [--analyze[=text|json]]\n"
        "  [--metrics[=prom|json]] [--trace=FILE]\n"
        "  [--metrics-addr=HOST:PORT]\n"
        "gwlb:SPEC (analyze only): <repr>[@NxM[@seed]] with repr one of\n"
        "  universal|goto|metadata|rematch\n";
  return 2;
}

struct CliOptions {
  std::string command;
  std::string path;
  core::JoinKind join = core::JoinKind::kMetadata;
  core::NormalForm target = core::NormalForm::kThird;
  std::string format = "openflow";
  bool factor_constants = true;
  std::string verify = "symbolic";  // or "probe"
  std::string analyze_report;  // empty = off, else "text" or "json"
  std::string metrics;         // empty = off, else "prom" or "json"
  std::string trace_path;      // empty = off
  std::string metrics_addr;    // empty = MATON_METRICS_ADDR or off
};

bool parse_args(const std::vector<std::string>& args, CliOptions& opts,
                std::ostream& err) {
  if (args.size() < 2) return false;
  opts.command = args[0];
  opts.path = args[1];
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (arg == "--join") {
      const std::string* v = next();
      if (v == nullptr) return false;
      if (*v == "goto") {
        opts.join = core::JoinKind::kGoto;
      } else if (*v == "metadata") {
        opts.join = core::JoinKind::kMetadata;
      } else if (*v == "rematch") {
        opts.join = core::JoinKind::kRematch;
      } else {
        err << "unknown join '" << *v << "'\n";
        return false;
      }
    } else if (arg == "--target") {
      const std::string* v = next();
      if (v == nullptr) return false;
      if (*v == "2nf") {
        opts.target = core::NormalForm::kSecond;
      } else if (*v == "3nf") {
        opts.target = core::NormalForm::kThird;
      } else if (*v == "bcnf") {
        opts.target = core::NormalForm::kBoyceCodd;
      } else {
        err << "unknown target '" << *v << "'\n";
        return false;
      }
    } else if (arg == "--format") {
      const std::string* v = next();
      if (v == nullptr) return false;
      opts.format = *v;
    } else if (arg == "--no-constants") {
      opts.factor_constants = false;
    } else if (arg.starts_with("--verify=")) {
      opts.verify = arg.substr(sizeof("--verify=") - 1);
      if (opts.verify != "symbolic" && opts.verify != "probe") {
        err << "unknown verify mode '" << opts.verify << "'\n";
        return false;
      }
    } else if (arg == "--analyze" || arg.starts_with("--analyze=")) {
      const std::string v =
          arg == "--analyze" ? "text" : arg.substr(sizeof("--analyze=") - 1);
      if (v != "text" && v != "json") {
        err << "unknown analyze report format '" << v << "'\n";
        return false;
      }
      opts.analyze_report = v;
    } else if (arg == "--metrics" || arg.starts_with("--metrics=")) {
      const std::string v =
          arg == "--metrics" ? "prom" : arg.substr(sizeof("--metrics=") - 1);
      if (v != "prom" && v != "json") {
        err << "unknown metrics format '" << v << "'\n";
        return false;
      }
      opts.metrics = v;
    } else if (arg.starts_with("--trace=")) {
      opts.trace_path = arg.substr(sizeof("--trace=") - 1);
      if (opts.trace_path.empty()) {
        err << "--trace requires a file path\n";
        return false;
      }
    } else if (arg.starts_with("--metrics-addr=")) {
      opts.metrics_addr = arg.substr(sizeof("--metrics-addr=") - 1);
      if (opts.metrics_addr.empty()) {
        err << "--metrics-addr requires HOST:PORT\n";
        return false;
      }
    } else {
      err << "unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

int analyze(const core::ParsedSpec& spec, std::ostream& os) {
  const core::Table& table = spec.table;
  os << table.to_string() << "\n";
  const core::FdSet fds = core::mine_fds_tane(table);
  os << "functional dependencies (instance, minimal):\n"
     << fds.to_string(table.schema());
  const core::NfReport report = core::analyze(table, fds);
  os << "\n" << report.to_string(table.schema());
  if (!spec.model_fds.empty()) {
    core::FdSet model = spec.model_fds;
    model.add(table.schema().match_set(), table.schema().all());
    os << "\nunder the declared model dependencies:\n"
       << spec.model_fds.to_string(table.schema()) << "\n"
       << core::analyze(table, model).to_string(table.schema());
  }
  const core::Nf4Report nf4 = core::analyze_4nf(table, fds);
  if (!nf4.satisfied) {
    os << "beyond 3NF: proper multi-valued dependencies present:\n";
    for (const core::Mvd& mvd : nf4.violations) {
      os << "  " << to_string(mvd, table.schema()) << "\n";
    }
  }
  return 0;
}

Result<core::Pipeline> run_normalize(const core::ParsedSpec& spec,
                                     const CliOptions& opts,
                                     std::ostream& os) {
  const core::Table& table = spec.table;
  std::optional<core::FdSet> model;
  if (!spec.model_fds.empty()) {
    model = spec.model_fds;
    model->add(table.schema().match_set(), table.schema().all());
    os << "# normalizing against the declared model dependencies\n";
  }
  auto out = core::normalize(
      table, {.target = opts.target,
              .join = opts.join,
              .factor_constant_columns = opts.factor_constants,
              .model_fds = std::move(model)});
  if (!out.is_ok()) return out.status();
  for (const auto& step : out.value().trace) {
    os << "# " << step.description << "\n";
  }
  for (const std::string& skipped : out.value().skipped) {
    os << "# skipped: " << skipped << "\n";
  }
  // Proof-gated normalization: by default the pipeline must be *proven*
  // equivalent to the source table by the symbolic engine — every packet,
  // not a probe sample. --verify=probe keeps the legacy randomized
  // oracle; an inconclusive symbolic solve (node budget) degrades to it.
  bool use_probes = opts.verify == "probe";
  if (!use_probes) {
    const auto proof = analysis::symbolic::check_table_vs_pipeline(
        table, out.value().pipeline);
    switch (proof.outcome) {
      case analysis::symbolic::Outcome::kEquivalent:
        os << "# verified equivalent symbolically (" << proof.stats.nodes
           << " diagram nodes)\n";
        break;
      case analysis::symbolic::Outcome::kInequivalent:
        return internal_error(
            "normalization produced a non-equivalent pipeline: " +
            (proof.counterexample.has_value()
                 ? proof.counterexample->description
                 : "symbolic refutation"));
      case analysis::symbolic::Outcome::kUnknown:
        os << "# symbolic verification inconclusive (" << proof.note
           << "); falling back to probes\n";
        use_probes = true;
        break;
    }
  }
  if (use_probes) {
    const auto eq = core::check_equivalence(table, out.value().pipeline);
    if (!eq.equivalent) {
      return internal_error("normalization produced a non-equivalent "
                            "pipeline: " + eq.counterexample);
    }
    os << "# verified equivalent over " << eq.packets_checked
       << " probe packets\n";
  }
  return std::move(out).value().pipeline;
}

/// Renders the report in the requested format and maps error-severity
/// findings onto exit status 1.
int emit_report(const analysis::Report& report, const CliOptions& opts,
                std::ostream& os) {
  os << (opts.analyze_report == "json" ? analysis::render_json(report)
                                       : analysis::render_text(report));
  return report.count(analysis::Severity::kError) > 0 ? 1 : 0;
}

/// Parses and analyzes a built-in program spec of the form
/// gwlb:<repr>[@NxM[@seed]]: the paper's Fig. 1 example (no shape) or a
/// randomized make_gwlb instance, compiled for the named representation.
int run_builtin_analyze(const CliOptions& opts, std::ostream& os,
                        std::ostream& err) {
  if (opts.command != "analyze") {
    err << "built-in specs support only the analyze command\n";
    return 2;
  }
  std::string rest = opts.path.substr(sizeof("gwlb:") - 1);
  std::string shape;
  if (const auto at = rest.find('@'); at != std::string::npos) {
    shape = rest.substr(at + 1);
    rest.resize(at);
  }

  cp::Representation repr;
  if (rest == "universal") {
    repr = cp::Representation::kUniversal;
  } else if (rest == "goto") {
    repr = cp::Representation::kGoto;
  } else if (rest == "metadata") {
    repr = cp::Representation::kMetadata;
  } else if (rest == "rematch") {
    repr = cp::Representation::kRematch;
  } else {
    err << "unknown representation '" << rest << "'\n";
    return 2;
  }

  workloads::Gwlb gwlb;
  if (shape.empty()) {
    gwlb = workloads::make_paper_example();
  } else {
    workloads::GwlbConfig config;
    std::size_t services = 0;
    std::size_t backends = 0;
    std::size_t seed = config.seed;
    const int fields = std::sscanf(shape.c_str(), "%zux%zu@%zu",
                                   &services, &backends, &seed);
    if (fields < 2 || services == 0 || backends == 0) {
      err << "malformed shape '" << shape << "' (want NxM[@seed])\n";
      return 2;
    }
    config.num_services = services;
    config.num_backends = backends;
    config.seed = seed;
    gwlb = workloads::make_gwlb(config);
  }

  const cp::GwlbBinding binding(std::move(gwlb), repr);
  const workloads::Gwlb& model = binding.gwlb();
  const core::Schema& schema = model.universal.schema();
  const std::string name = "gwlb." + std::string(cp::to_string(repr));

  analysis::Input input;
  input.program = &binding.program();
  input.tables.push_back({&model.universal, &model.model_fds});
  core::FdSet join_fds = model.model_fds;
  join_fds.add(schema.match_set(), schema.all());
  analysis::Input::DecompositionCheck decomposition;
  decomposition.schema = &schema;
  decomposition.fds = &join_fds;
  decomposition.components = cp::decomposition_components(repr, schema);
  decomposition.name = name;
  input.decomposition = std::move(decomposition);

  // Symbolic pass inputs. MA601: the binding's live program against an
  // independent recompile of the same pipeline. MA603: the universal
  // table against the representation's decomposed pipeline. MA602: the
  // per-service slices of the universal program, pairwise-adjacent —
  // each proof certifies the services cannot alias each other's rules.
  const auto reference = dp::compile(cp::pipeline_for(model, repr));
  if (!reference.is_ok()) {
    err << "reference compile failed: " << reference.status().to_string()
        << "\n";
    return 1;
  }
  input.program_pair = {.left = &binding.program(),
                        .right = &reference.value(),
                        .left_name = name,
                        .right_name = name + ".reference"};

  const core::Pipeline pipeline = cp::pipeline_for(model, repr);
  input.symbolic_decomposition = {.universal = &model.universal,
                                  .pipeline = &pipeline,
                                  .name = name};

  dp::FieldMap field_map;
  const auto universal_program =
      dp::compile(core::Pipeline::single(model.universal), &field_map);
  std::vector<std::vector<dp::Rule>> slices;
  std::vector<std::size_t> slice_services;
  if (universal_program.is_ok()) {
    for (std::size_t s = 0; s < model.services.size(); ++s) {
      const workloads::GwlbService& svc = model.services[s];
      if (svc.src_prefixes.empty()) continue;
      std::vector<dp::Rule> slice;
      for (const core::Row& row : workloads::gwlb_universal_rows(svc)) {
        auto rule = dp::lower_row(schema, row, field_map);
        if (!rule.is_ok()) break;
        slice.push_back(std::move(rule).value());
      }
      slices.push_back(std::move(slice));
      slice_services.push_back(s);
    }
    for (std::size_t i = 0; i + 1 < slices.size(); ++i) {
      input.slices.push_back(
          {.left = slices[i],
           .right = slices[i + 1],
           .left_name =
               "service " + std::to_string(slice_services[i]),
           .right_name =
               "service " + std::to_string(slice_services[i + 1])});
    }
  }

  return emit_report(analysis::run(input), opts, os);
}

/// Dumps `--metrics` to stderr and `--trace` to its file, after the
/// command has executed. A failed trace write degrades the exit code.
int dump_telemetry(const CliOptions& opts, std::ostream& err) {
  if (!opts.metrics.empty()) {
    err << (opts.metrics == "json" ? obs::render_json()
                                   : obs::render_prometheus());
  }
  if (!opts.trace_path.empty()) {
    const Status written =
        obs::write_text_file(opts.trace_path, obs::render_chrome_trace());
    if (!written.is_ok()) {
      err << "matonc: " << written.to_string() << "\n";
      return 1;
    }
  }
  return 0;
}

/// Compiles `pipeline` and runs the full analyzer suite over it; the
/// declared dependencies (when given) are checked against the first
/// stage's table instance.
int analyze_pipeline(const core::Pipeline& pipeline,
                     const core::FdSet* declared_first,
                     const CliOptions& opts, std::ostream& os,
                     std::ostream& err) {
  const auto program = dp::compile(pipeline);
  if (!program.is_ok()) {
    err << "analysis compile failed: " << program.status().to_string()
        << "\n";
    return 1;
  }
  analysis::Input input;
  input.program = &program.value();
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    input.tables.push_back(
        {&pipeline.stage(i).table, i == 0 ? declared_first : nullptr});
  }
  return emit_report(analysis::run(input), opts, os);
}

int run_command(const CliOptions& opts, std::ostream& os,
                std::ostream& err) {
  if (opts.path.starts_with("gwlb:")) {
    return run_builtin_analyze(opts, os, err);
  }

  std::ifstream file(opts.path);
  if (!file) {
    err << "cannot open " << opts.path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto spec = core::parse_spec(buffer.str());
  if (!spec.is_ok()) {
    err << opts.path << ": " << spec.status().to_string() << "\n";
    return 1;
  }

  // Under --analyze=json only the report reaches stdout; the normal
  // command output is discarded to keep the stream machine-readable.
  std::ostringstream discarded;
  std::ostream& body = opts.analyze_report == "json" ? discarded : os;

  if (opts.command == "analyze") {
    const int rc = analyze(spec.value(), body);
    if (rc != 0 || opts.analyze_report.empty()) return rc;
    return analyze_pipeline(core::Pipeline::single(spec.value().table),
                            &spec.value().model_fds, opts, os, err);
  }
  if (opts.command == "normalize") {
    const auto pipeline = run_normalize(spec.value(), opts, body);
    if (!pipeline.is_ok()) {
      err << pipeline.status().to_string() << "\n";
      return 1;
    }
    body << pipeline.value().to_string();
    if (opts.analyze_report.empty()) return 0;
    return analyze_pipeline(pipeline.value(), nullptr, opts, os, err);
  }
  if (opts.command == "export") {
    const auto pipeline = run_normalize(spec.value(), opts, body);
    if (!pipeline.is_ok()) {
      err << pipeline.status().to_string() << "\n";
      return 1;
    }
    if (opts.format == "p4") {
      const auto p4 = exporter::to_p4(pipeline.value());
      if (!p4.is_ok()) {
        err << p4.status().to_string() << "\n";
        return 1;
      }
      body << p4.value();
    } else if (opts.format == "openflow") {
      const auto program = dp::compile(pipeline.value());
      if (!program.is_ok()) {
        err << program.status().to_string() << "\n";
        return 1;
      }
      const auto flows = exporter::to_openflow(program.value());
      if (!flows.is_ok()) {
        err << flows.status().to_string() << "\n";
        return 1;
      }
      body << flows.value();
    } else {
      err << "unknown format '" << opts.format << "'\n";
      return 2;
    }
    if (opts.analyze_report.empty()) return 0;
    return analyze_pipeline(pipeline.value(), nullptr, opts, os, err);
  }
  return usage(err);
}

int run(const std::vector<std::string>& args, std::ostream& os,
        std::ostream& err) {
  CliOptions opts;
  if (!parse_args(args, opts, err)) return usage(err);

  // Live scrape endpoint for the duration of the command (plus the
  // telemetry dump below); `--metrics-addr=...:0` picks a free port and
  // prints it, so even short runs can be scraped by a wrapper.
  obs::ExpoServer server;
  const Status served = opts.metrics_addr.empty()
                            ? obs::start_from_env(server)
                            : server.start(opts.metrics_addr);
  if (!served.is_ok() && served.code() != StatusCode::kUnimplemented) {
    err << "matonc: metrics server: " << served.to_string() << "\n";
    return 1;
  }
  if (server.running()) {
    err << "matonc: serving http://" << server.address() << "/metrics\n";
  }

  const int rc = run_command(opts, os, err);
  const int telemetry_rc = dump_telemetry(opts, err);
  return rc != 0 ? rc : telemetry_rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return run(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "matonc: " << e.what() << "\n";
    return 1;
  }
}
