// matonc — the maton command-line normalizer.
//
//   matonc analyze   <table.maton>                 dependency & NF report
//   matonc normalize <table.maton> [options]       print the pipeline
//   matonc export    <table.maton> [options]       emit a data plane
//
// Options:
//   --join goto|metadata|rematch     join abstraction   (default metadata)
//   --target 2nf|3nf|bcnf            normalization goal (default 3nf)
//   --format openflow|p4             export backend     (default openflow)
//   --no-constants                   keep constant columns inline
//   --metrics[=prom|json]            dump telemetry to stderr (default prom)
//   --trace=FILE                     write Chrome trace_event JSON to FILE
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/equivalence.hpp"
#include "core/fd_mine.hpp"
#include "core/mvd.hpp"
#include "core/normal_forms.hpp"
#include "core/synthesis.hpp"
#include "core/text.hpp"
#include "export/openflow.hpp"
#include "export/p4.hpp"
#include "obs/expose.hpp"
#include "obs/trace.hpp"

namespace {

using namespace maton;

int usage(std::ostream& os) {
  os << "usage: matonc <analyze|normalize|export> <table.maton>\n"
        "  [--join goto|metadata|rematch] [--target 2nf|3nf|bcnf]\n"
        "  [--format openflow|p4] [--no-constants]\n"
        "  [--metrics[=prom|json]] [--trace=FILE]\n";
  return 2;
}

struct CliOptions {
  std::string command;
  std::string path;
  core::JoinKind join = core::JoinKind::kMetadata;
  core::NormalForm target = core::NormalForm::kThird;
  std::string format = "openflow";
  bool factor_constants = true;
  std::string metrics;     // empty = off, else "prom" or "json"
  std::string trace_path;  // empty = off
};

bool parse_args(const std::vector<std::string>& args, CliOptions& opts,
                std::ostream& err) {
  if (args.size() < 2) return false;
  opts.command = args[0];
  opts.path = args[1];
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (arg == "--join") {
      const std::string* v = next();
      if (v == nullptr) return false;
      if (*v == "goto") {
        opts.join = core::JoinKind::kGoto;
      } else if (*v == "metadata") {
        opts.join = core::JoinKind::kMetadata;
      } else if (*v == "rematch") {
        opts.join = core::JoinKind::kRematch;
      } else {
        err << "unknown join '" << *v << "'\n";
        return false;
      }
    } else if (arg == "--target") {
      const std::string* v = next();
      if (v == nullptr) return false;
      if (*v == "2nf") {
        opts.target = core::NormalForm::kSecond;
      } else if (*v == "3nf") {
        opts.target = core::NormalForm::kThird;
      } else if (*v == "bcnf") {
        opts.target = core::NormalForm::kBoyceCodd;
      } else {
        err << "unknown target '" << *v << "'\n";
        return false;
      }
    } else if (arg == "--format") {
      const std::string* v = next();
      if (v == nullptr) return false;
      opts.format = *v;
    } else if (arg == "--no-constants") {
      opts.factor_constants = false;
    } else if (arg == "--metrics" || arg.rfind("--metrics=", 0) == 0) {
      const std::string v =
          arg == "--metrics" ? "prom" : arg.substr(sizeof("--metrics=") - 1);
      if (v != "prom" && v != "json") {
        err << "unknown metrics format '" << v << "'\n";
        return false;
      }
      opts.metrics = v;
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace_path = arg.substr(sizeof("--trace=") - 1);
      if (opts.trace_path.empty()) {
        err << "--trace requires a file path\n";
        return false;
      }
    } else {
      err << "unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

int analyze(const core::ParsedSpec& spec, std::ostream& os) {
  const core::Table& table = spec.table;
  os << table.to_string() << "\n";
  const core::FdSet fds = core::mine_fds_tane(table);
  os << "functional dependencies (instance, minimal):\n"
     << fds.to_string(table.schema());
  const core::NfReport report = core::analyze(table, fds);
  os << "\n" << report.to_string(table.schema());
  if (!spec.model_fds.empty()) {
    core::FdSet model = spec.model_fds;
    model.add(table.schema().match_set(), table.schema().all());
    os << "\nunder the declared model dependencies:\n"
       << spec.model_fds.to_string(table.schema()) << "\n"
       << core::analyze(table, model).to_string(table.schema());
  }
  const core::Nf4Report nf4 = core::analyze_4nf(table, fds);
  if (!nf4.satisfied) {
    os << "beyond 3NF: proper multi-valued dependencies present:\n";
    for (const core::Mvd& mvd : nf4.violations) {
      os << "  " << to_string(mvd, table.schema()) << "\n";
    }
  }
  return 0;
}

Result<core::Pipeline> run_normalize(const core::ParsedSpec& spec,
                                     const CliOptions& opts,
                                     std::ostream& os) {
  const core::Table& table = spec.table;
  std::optional<core::FdSet> model;
  if (!spec.model_fds.empty()) {
    model = spec.model_fds;
    model->add(table.schema().match_set(), table.schema().all());
    os << "# normalizing against the declared model dependencies\n";
  }
  auto out = core::normalize(
      table, {.target = opts.target,
              .join = opts.join,
              .factor_constant_columns = opts.factor_constants,
              .model_fds = std::move(model)});
  if (!out.is_ok()) return out.status();
  for (const auto& step : out.value().trace) {
    os << "# " << step.description << "\n";
  }
  for (const std::string& skipped : out.value().skipped) {
    os << "# skipped: " << skipped << "\n";
  }
  const auto eq = core::check_equivalence(table, out.value().pipeline);
  if (!eq.equivalent) {
    return internal_error("normalization produced a non-equivalent "
                          "pipeline: " + eq.counterexample);
  }
  os << "# verified equivalent over " << eq.packets_checked
     << " probe packets\n";
  return std::move(out).value().pipeline;
}

/// Dumps `--metrics` to stderr and `--trace` to its file, after the
/// command has executed. A failed trace write degrades the exit code.
int dump_telemetry(const CliOptions& opts, std::ostream& err) {
  if (!opts.metrics.empty()) {
    err << (opts.metrics == "json" ? obs::render_json()
                                   : obs::render_prometheus());
  }
  if (!opts.trace_path.empty()) {
    const Status written =
        obs::write_text_file(opts.trace_path, obs::render_chrome_trace());
    if (!written.is_ok()) {
      err << "matonc: " << written.to_string() << "\n";
      return 1;
    }
  }
  return 0;
}

int run_command(const CliOptions& opts, std::ostream& os,
                std::ostream& err) {
  std::ifstream file(opts.path);
  if (!file) {
    err << "cannot open " << opts.path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto spec = core::parse_spec(buffer.str());
  if (!spec.is_ok()) {
    err << opts.path << ": " << spec.status().to_string() << "\n";
    return 1;
  }

  if (opts.command == "analyze") {
    return analyze(spec.value(), os);
  }
  if (opts.command == "normalize") {
    const auto pipeline = run_normalize(spec.value(), opts, os);
    if (!pipeline.is_ok()) {
      err << pipeline.status().to_string() << "\n";
      return 1;
    }
    os << pipeline.value().to_string();
    return 0;
  }
  if (opts.command == "export") {
    const auto pipeline = run_normalize(spec.value(), opts, os);
    if (!pipeline.is_ok()) {
      err << pipeline.status().to_string() << "\n";
      return 1;
    }
    if (opts.format == "p4") {
      const auto p4 = exporter::to_p4(pipeline.value());
      if (!p4.is_ok()) {
        err << p4.status().to_string() << "\n";
        return 1;
      }
      os << p4.value();
      return 0;
    }
    if (opts.format == "openflow") {
      const auto program = dp::compile(pipeline.value());
      if (!program.is_ok()) {
        err << program.status().to_string() << "\n";
        return 1;
      }
      const auto flows = exporter::to_openflow(program.value());
      if (!flows.is_ok()) {
        err << flows.status().to_string() << "\n";
        return 1;
      }
      os << flows.value();
      return 0;
    }
    err << "unknown format '" << opts.format << "'\n";
    return 2;
  }
  return usage(err);
}

int run(const std::vector<std::string>& args, std::ostream& os,
        std::ostream& err) {
  CliOptions opts;
  if (!parse_args(args, opts, err)) return usage(err);
  const int rc = run_command(opts, os, err);
  const int telemetry_rc = dump_telemetry(opts, err);
  return rc != 0 ? rc : telemetry_rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return run(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "matonc: " << e.what() << "\n";
    return 1;
  }
}
