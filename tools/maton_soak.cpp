// maton-soak — a watchable churn + replay soak harness.
//
// Runs two loads concurrently for a configured duration while the
// embedded scrape server is live, then gates on invariants at exit:
//
//   churn thread   randomized mixed intents (port moves, backend swaps,
//                  VIP re-addressing incl. deliberate collisions) through
//                  the incremental compiler into a live switch, with a
//                  periodic FD re-mine and a periodic *drift check*: the
//                  incrementally patched program is compared bit-for-bit
//                  against a fresh full rebuild from the same service
//                  model.
//   replay thread  multi-queue batched traffic replay (flow-hash
//                  sharding) on its own thread pool, over and over.
//
// While both run, every layer's metrics and per-thread trace rings are
// live on http://<--metrics-addr>/metrics, /metrics.json, /trace and
// /healthz (MATON_METRICS_ADDR works too). At exit the process writes
// MATON_METRICS_OUT / MATON_TRACE_OUT files if set, prints a JSON
// summary to stdout, and fails (exit 1) on: any drift, any failed
// intent, or peak RSS above --rss-limit-mb.
//
//   maton-soak [--duration=SEC] [--services=N] [--backends=M]
//              [--repr=universal|goto|metadata|rematch] [--queues=Q]
//              [--batch=B] [--packets=P] [--seed=S]
//              [--metrics-addr=HOST:PORT] [--rss-limit-mb=MB]
//              [--drift-every=K] [--mine-every=K] [--verify]
//              [--max-fallback-ratio=R]
//
// Defaults: 60 s soak of gwlb 64x8 (goto), 2 replay queues, drift check
// every 64 intents, FD re-mine every 16, no RSS gate.
//
// --verify turns on per-intent symbolic verification: after every
// applied intent the binding proves the live program equivalent to a
// fresh reference with the decision-diagram engine (VerifyMode in
// controlplane/compiler.hpp); any refutation fails the soak.
// --max-fallback-ratio gates fallbacks/(hits+fallbacks) at exit — the
// symbolic slice-isolation proofs are expected to keep deliberate VIP
// collisions on the delta path, so the ratio stays near zero.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "controlplane/churn.hpp"
#include "controlplane/controller.hpp"
#include "obs/diff.hpp"
#include "obs/expose.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "workloads/replay.hpp"
#include "workloads/traffic.hpp"

namespace {

using namespace maton;

struct SoakOptions {
  double duration_s = 60.0;
  std::size_t services = 64;
  std::size_t backends = 8;
  cp::Representation repr = cp::Representation::kGoto;
  std::size_t queues = 2;
  std::size_t batch = 256;
  std::size_t packets = 4096;
  std::uint64_t seed = 1;
  std::string metrics_addr;  // empty = MATON_METRICS_ADDR or none
  double rss_limit_mb = 0.0;  // 0 = no gate
  std::size_t drift_every = 64;
  std::size_t mine_every = 16;
  bool verify = false;
  double max_fallback_ratio = -1.0;  // < 0 = no gate
};

int usage(std::ostream& os) {
  os << "usage: maton-soak [--duration=SEC] [--services=N] [--backends=M]\n"
        "  [--repr=universal|goto|metadata|rematch] [--queues=Q]\n"
        "  [--batch=B] [--packets=P] [--seed=S]\n"
        "  [--metrics-addr=HOST:PORT] [--rss-limit-mb=MB]\n"
        "  [--drift-every=K] [--mine-every=K] [--verify]\n"
        "  [--max-fallback-ratio=R]\n";
  return 2;
}

bool parse_args(const std::vector<std::string>& args, SoakOptions& opts,
                std::ostream& err) {
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--duration") {
        opts.duration_s = std::stod(val);
      } else if (key == "--services") {
        opts.services = std::stoul(val);
      } else if (key == "--backends") {
        opts.backends = std::stoul(val);
      } else if (key == "--repr") {
        if (val == "universal") {
          opts.repr = cp::Representation::kUniversal;
        } else if (val == "goto") {
          opts.repr = cp::Representation::kGoto;
        } else if (val == "metadata") {
          opts.repr = cp::Representation::kMetadata;
        } else if (val == "rematch") {
          opts.repr = cp::Representation::kRematch;
        } else {
          err << "unknown representation '" << val << "'\n";
          return false;
        }
      } else if (key == "--queues") {
        opts.queues = std::stoul(val);
      } else if (key == "--batch") {
        opts.batch = std::stoul(val);
      } else if (key == "--packets") {
        opts.packets = std::stoul(val);
      } else if (key == "--seed") {
        opts.seed = std::stoull(val);
      } else if (key == "--metrics-addr") {
        opts.metrics_addr = val;
      } else if (key == "--rss-limit-mb") {
        opts.rss_limit_mb = std::stod(val);
      } else if (key == "--drift-every") {
        opts.drift_every = std::stoul(val);
      } else if (key == "--mine-every") {
        opts.mine_every = std::stoul(val);
      } else if (key == "--verify") {
        opts.verify = true;
      } else if (key == "--max-fallback-ratio") {
        opts.max_fallback_ratio = std::stod(val);
      } else {
        err << "unknown option '" << arg << "'\n";
        return false;
      }
    } catch (const std::exception&) {
      err << "bad value in '" << arg << "'\n";
      return false;
    }
    if (val.empty() && key != "--metrics-addr" && key != "--verify") {
      err << "option '" << key << "' needs a value\n";
      return false;
    }
  }
  return opts.duration_s > 0.0 && opts.services > 0 && opts.queues > 0 &&
         opts.batch > 0 && opts.packets > 0;
}

/// Shared tallies the gates read after the threads join.
struct SoakState {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> intents{0};
  std::atomic<std::uint64_t> intent_failures{0};
  std::atomic<std::uint64_t> drift_checks{0};
  std::atomic<std::uint64_t> drift{0};
  std::atomic<std::uint64_t> replay_iterations{0};
  std::atomic<std::uint64_t> replay_packets{0};
};

void churn_loop(const SoakOptions& opts, cp::Controller& controller,
                cp::GwlbBinding& binding, SoakState& state) {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs::Counter& intents = reg.counter("maton_soak_intents_total");
  obs::Counter& failures = reg.counter("maton_soak_intent_failures_total");
  obs::Counter& drift_checks = reg.counter("maton_soak_drift_checks_total");
  obs::Counter& drift = reg.counter("maton_soak_drift_total");

  Rng rng(opts.seed ^ 0x5eedc0ffeeULL);
  std::uint64_t applied = 0;
  while (!state.stop.load(std::memory_order_relaxed)) {
    const obs::TraceSpan span("soak_intent");
    const cp::Intent intent = cp::draw_mixed_intent(rng, binding.gwlb());
    const auto cost = controller.apply(intent);
    if (!cost.is_ok()) {
      failures.add();
      state.intent_failures.fetch_add(1, std::memory_order_relaxed);
    }
    intents.add();
    state.intents.fetch_add(1, std::memory_order_relaxed);
    ++applied;

    if (opts.mine_every > 0 && applied % opts.mine_every == 0) {
      (void)binding.mined_fds();
    }
    if (opts.drift_every > 0 && applied % opts.drift_every == 0) {
      const obs::TraceSpan drift_span("soak_drift_check");
      const cp::GwlbBinding reference(binding.gwlb(), opts.repr,
                                      cp::CompileMode::kFullRebuild);
      drift_checks.add();
      state.drift_checks.fetch_add(1, std::memory_order_relaxed);
      if (!(binding.program() == reference.program())) {
        drift.add();
        state.drift.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void replay_loop(const SoakOptions& opts, const dp::Program& program,
                 std::span<const dp::FlowKey> keys, SoakState& state) {
  obs::Counter& iterations = obs::MetricRegistry::global().counter(
      "maton_soak_replay_iterations_total");
  // Dedicated pool: the shared pool belongs to the churn thread's FD
  // re-mines, and a pool accepts one parallel_for at a time.
  util::ThreadPool pool(opts.queues > 0 ? opts.queues - 1 : 0);
  while (!state.stop.load(std::memory_order_relaxed)) {
    const workloads::ReplayStats stats = workloads::replay_threaded(
        dp::make_eswitch_model, program, keys, /*rounds=*/1, opts.queues,
        opts.batch, workloads::ShardMode::kFlowHash, &pool);
    iterations.add();
    state.replay_iterations.fetch_add(1, std::memory_order_relaxed);
    state.replay_packets.fetch_add(stats.packets,
                                   std::memory_order_relaxed);
  }
}

int run(const SoakOptions& opts) {
  const workloads::Gwlb gwlb = workloads::make_gwlb(
      {.num_services = opts.services,
       .num_backends = opts.backends,
       .seed = opts.seed});
  auto binding = std::make_unique<cp::GwlbBinding>(
      gwlb, opts.repr, cp::CompileMode::kIncremental,
      cp::AnalyzeMode::kOff,
      opts.verify ? cp::VerifyMode::kSymbolic : cp::VerifyMode::kOff);
  cp::GwlbBinding& live_binding = *binding;
  auto sw = dp::make_eswitch_model();
  cp::Controller controller(std::move(binding), *sw);

  // The replay plane serves the pre-churn program on its own switch
  // instances: data-plane load and control-plane churn interact only
  // through the observability plane, which is exactly what this harness
  // soaks (concurrent scrapes, cross-thread trace merges, shared
  // metric shards).
  const dp::Program replay_program = live_binding.program();
  const auto keys = workloads::make_gwlb_keys(
      gwlb, {.num_packets = opts.packets, .hit_fraction = 1.0});

  obs::ExpoServer server;
  if (!opts.metrics_addr.empty()) {
    const Status started = server.start(opts.metrics_addr);
    if (!started.is_ok()) {
      std::cerr << "maton-soak: metrics server: " << started.to_string()
                << "\n";
      if (started.code() != StatusCode::kUnimplemented) return 1;
    }
  } else {
    const Status started = obs::start_from_env(server);
    if (!started.is_ok()) {
      std::cerr << "maton-soak: metrics server: " << started.to_string()
                << "\n";
    }
  }
  if (server.running()) {
    std::cerr << "maton-soak: serving http://" << server.address()
              << "/{metrics,metrics.json,trace,healthz}\n";
  }

  SoakState state;
  obs::Gauge& elapsed_gauge =
      obs::MetricRegistry::global().gauge("maton_soak_elapsed_seconds");
  obs::MetricRegistry::global()
      .gauge("maton_soak_duration_seconds")
      .set(opts.duration_s);

  std::thread churner([&] {
    churn_loop(opts, controller, live_binding, state);
  });
  std::thread replayer([&] {
    replay_loop(opts, replay_program, keys, state);
  });

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(opts.duration_s));
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    elapsed_gauge.set(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  state.stop.store(true, std::memory_order_relaxed);
  churner.join();
  replayer.join();
  const double ran_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  // Final gates: one last drift check against a fresh full rebuild, the
  // RSS ceiling, and zero failed intents.
  state.drift_checks.fetch_add(1, std::memory_order_relaxed);
  {
    const cp::GwlbBinding reference(live_binding.gwlb(), opts.repr,
                                    cp::CompileMode::kFullRebuild);
    if (!(live_binding.program() == reference.program())) {
      state.drift.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const std::uint64_t rss_peak = obs::read_peak_rss_bytes();
  const std::uint64_t rss_limit =
      static_cast<std::uint64_t>(opts.rss_limit_mb * 1024.0 * 1024.0);
  const bool rss_ok = rss_limit == 0 || rss_peak == 0 || rss_peak <= rss_limit;
  const cp::IncrementalStats inc = live_binding.incremental_stats();
  const cp::VerifyStats verify = live_binding.verify_stats();
  const double fallback_ratio =
      inc.hits + inc.fallbacks == 0
          ? 0.0
          : static_cast<double>(inc.fallbacks) /
                static_cast<double>(inc.hits + inc.fallbacks);

  obs::update_derived_gauges();
  const Status exported = obs::write_exports_from_env();
  if (!exported.is_ok()) {
    std::cerr << "maton-soak: " << exported.to_string() << "\n";
  }

  const std::uint64_t drift = state.drift.load();
  const std::uint64_t failures = state.intent_failures.load();
  std::cout << "{\n"
            << "  \"duration_s\": " << ran_s << ",\n"
            << "  \"services\": " << opts.services << ",\n"
            << "  \"backends\": " << opts.backends << ",\n"
            << "  \"representation\": \"" << cp::to_string(opts.repr)
            << "\",\n"
            << "  \"intents\": " << state.intents.load() << ",\n"
            << "  \"intent_failures\": " << failures << ",\n"
            << "  \"incremental_hits\": " << inc.hits << ",\n"
            << "  \"incremental_fallbacks\": " << inc.fallbacks << ",\n"
            << "  \"vip_collision_fallbacks\": "
            << inc.vip_collision_fallbacks << ",\n"
            << "  \"slice_validation_fallbacks\": "
            << inc.slice_validation_fallbacks << ",\n"
            << "  \"fallback_ratio\": " << fallback_ratio << ",\n"
            << "  \"symbolic_verified\": " << verify.verified << ",\n"
            << "  \"symbolic_failed\": " << verify.failed << ",\n"
            << "  \"symbolic_unknown\": " << verify.unknown << ",\n"
            << "  \"drift_checks\": " << state.drift_checks.load() << ",\n"
            << "  \"drift\": " << drift << ",\n"
            << "  \"replay_iterations\": " << state.replay_iterations.load()
            << ",\n"
            << "  \"replay_packets\": " << state.replay_packets.load()
            << ",\n"
            << "  \"rss_peak_bytes\": " << rss_peak << ",\n"
            << "  \"rss_limit_bytes\": " << rss_limit << ",\n"
            << "  \"served\": \""
            << (server.running() ? server.address() : "") << "\"\n"
            << "}\n";
  server.stop();

  if (drift != 0) {
    std::cerr << "maton-soak: FAIL: incremental program drifted from the "
                 "reference compiler\n";
    return 1;
  }
  if (failures != 0) {
    std::cerr << "maton-soak: FAIL: " << failures << " intent(s) failed\n";
    return 1;
  }
  if (!rss_ok) {
    std::cerr << "maton-soak: FAIL: peak RSS " << rss_peak
              << " bytes exceeds limit " << rss_limit << "\n";
    return 1;
  }
  if (verify.failed != 0) {
    std::cerr << "maton-soak: FAIL: " << verify.failed
              << " symbolic verification(s) refuted the live program: "
              << live_binding.last_verify_note() << "\n";
    return 1;
  }
  if (opts.max_fallback_ratio >= 0.0 &&
      fallback_ratio > opts.max_fallback_ratio) {
    std::cerr << "maton-soak: FAIL: fallback ratio " << fallback_ratio
              << " exceeds --max-fallback-ratio="
              << opts.max_fallback_ratio << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opts;
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (!parse_args(args, opts, std::cerr)) return usage(std::cerr);
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::cerr << "maton-soak: " << e.what() << "\n";
    return 1;
  }
}
