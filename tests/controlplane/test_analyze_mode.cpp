// AnalyzeMode::kPostCompile: the binding re-runs the static analyzer
// after every compile. Healthy churn must stay diagnostic-clean on both
// compilation paths (the analyzer must not be confused by incremental
// patching artifacts like drained tables), and real defects must land in
// last_analysis() and on the findings counter.
#include <gtest/gtest.h>

#include "analysis/diagnostic.hpp"
#include "controlplane/compiler.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace maton::cp {
namespace {

using workloads::Gwlb;
using workloads::make_gwlb;

constexpr Representation kAllReprs[] = {
    Representation::kUniversal, Representation::kGoto,
    Representation::kMetadata, Representation::kRematch};

/// Same intent distribution as the incremental-compile differential:
/// unique VIPs from 198.19.0.0/16, ports from the ephemeral range,
/// removals capped at a quarter of the fleet.
class IntentSource {
 public:
  explicit IntentSource(std::uint64_t seed, std::size_t services,
                        std::size_t backends)
      : rng_(seed), services_(services), backends_(backends),
        removals_left_(services / 4) {}

  Intent next() {
    const std::size_t service = rng_.index(services_);
    switch (rng_.uniform(0, 9)) {
      case 0:
        if (removals_left_ > 0) {
          --removals_left_;
          return RemoveService{.service = service};
        }
        [[fallthrough]];
      case 1:
      case 2:
      case 3:
        return ChangeServiceIp{.service = service,
                               .new_vip = next_unique_vip()};
      case 4:
      case 5:
      case 6:
        return ChangeBackend{
            .service = service,
            .backend = rng_.index(backends_),
            .new_out = 100000 + vip_counter_ + rng_.uniform(0, 7)};
      default:
        return MoveServicePort{
            .service = service,
            .new_port = static_cast<std::uint16_t>(
                49152 + rng_.uniform(0, 16382))};
    }
  }

 private:
  std::uint32_t next_unique_vip() {
    ++vip_counter_;
    return ipv4(198, 19, (vip_counter_ >> 8) & 0xff, vip_counter_ & 0xff);
  }

  Rng rng_;
  std::size_t services_;
  std::size_t backends_;
  std::size_t removals_left_;
  std::uint64_t vip_counter_ = 0;
};

class AnalyzeModeChurn
    : public ::testing::TestWithParam<Representation> {};

TEST_P(AnalyzeModeChurn, FiveHundredIntentTraceStaysCleanInBothModes) {
  const Representation repr = GetParam();
  const Gwlb gwlb = make_gwlb({.num_services = 10, .num_backends = 4});
  GwlbBinding inc(gwlb, repr, CompileMode::kIncremental,
                  AnalyzeMode::kPostCompile);
  GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild,
                  AnalyzeMode::kPostCompile);

  // The initial compile is analyzed too.
  EXPECT_TRUE(inc.last_analysis().clean(analysis::Severity::kWarning));
  EXPECT_FALSE(inc.last_analysis().passes.empty());

  IntentSource source(11 * 7919 + 1, 10, 4);
  for (std::size_t step = 0; step < 500; ++step) {
    const Intent intent = source.next();
    const auto got = inc.compile_intent(intent);
    const auto want = ref.compile_intent(intent);
    ASSERT_EQ(got.is_ok(), want.is_ok())
        << to_string(repr) << " step " << step;
    if (!got.is_ok()) continue;
    // Identical (empty) diagnostic sets on both compilation paths.
    ASSERT_TRUE(inc.last_analysis().diagnostics.empty())
        << to_string(repr) << " step " << step << ":\n"
        << analysis::render_text(inc.last_analysis());
    ASSERT_TRUE(inc.last_analysis().diagnostics ==
                ref.last_analysis().diagnostics)
        << to_string(repr) << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRepresentations, AnalyzeModeChurn,
                         ::testing::ValuesIn(kAllReprs),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(AnalyzeMode, OffByDefaultAndSwitchable) {
  const Gwlb gwlb = make_gwlb({.num_services = 4, .num_backends = 2});
  GwlbBinding binding(gwlb, Representation::kGoto);
  EXPECT_EQ(binding.analyze_mode(), AnalyzeMode::kOff);
  EXPECT_TRUE(binding.last_analysis().passes.empty());

  binding.set_analyze_mode(AnalyzeMode::kPostCompile);
  ASSERT_TRUE(binding
                  .compile_intent(
                      MoveServicePort{.service = 0, .new_port = 50000})
                  .is_ok());
  EXPECT_FALSE(binding.last_analysis().passes.empty());
  EXPECT_TRUE(binding.last_analysis().clean(analysis::Severity::kWarning));
}

TEST(AnalyzeMode, CountersTallyCleanCompiles) {
  auto& clean =
      obs::MetricRegistry::global().counter("maton_cp_analysis_clean_total");
  const std::uint64_t before = clean.total();
  const Gwlb gwlb = make_gwlb({.num_services = 4, .num_backends = 2});
  GwlbBinding binding(gwlb, Representation::kMetadata,
                      CompileMode::kIncremental, AnalyzeMode::kPostCompile);
  ASSERT_TRUE(binding
                  .compile_intent(
                      MoveServicePort{.service = 1, .new_port = 50001})
                  .is_ok());
  if (obs::kEnabled) {
    // Initial compile + one intent, both clean.
    EXPECT_EQ(clean.total(), before + 2);
  }
}

TEST(AnalyzeMode, FindingsLandInLastAnalysis) {
  // Hand the analyzer a program with a dead table by mutilating a copy:
  // drive the binding API end-to-end through run() instead, with a
  // deliberately broken input (unreachable rule-bearing table).
  dp::Program program;
  dp::TableSpec a;
  a.name = "a";
  dp::Rule r;
  r.actions.push_back({dp::Action::Kind::kOutput, dp::FieldId::kMeta0, 1});
  a.rules.push_back(r);
  dp::TableSpec orphan = a;
  orphan.name = "orphan";
  program.tables.push_back(std::move(a));
  program.tables.push_back(std::move(orphan));

  auto& findings = obs::MetricRegistry::global().counter(
      "maton_cp_analysis_findings_total");
  const std::uint64_t before = findings.total();

  analysis::Input input;
  input.program = &program;
  analysis::Options options;
  options.min_severity = analysis::Severity::kWarning;
  const analysis::Report report = analysis::run(input, options);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "MA203");
  // run() itself does not touch the binding counters.
  EXPECT_EQ(findings.total(), before);
}

}  // namespace
}  // namespace maton::cp
