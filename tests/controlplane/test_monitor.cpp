// Executable §2 monitorability: per-rule flow counters across switch
// models and representations, read through the traffic monitor.
#include "controlplane/monitor.hpp"

#include <gtest/gtest.h>

#include "util/format.hpp"
#include "workloads/traffic.hpp"

namespace maton::cp {
namespace {

std::unique_ptr<dp::SwitchModel> make_switch(std::string_view which) {
  if (which == "eswitch") return dp::make_eswitch_model();
  if (which == "lagopus") return dp::make_lagopus_model();
  if (which == "ovs") return dp::make_ovs_model();
  return std::make_unique<dp::HwTcamModel>();
}

/// Counts, per service, the packets of a trace addressed to it.
std::vector<std::uint64_t> ground_truth(const workloads::Gwlb& gwlb,
                                        const std::vector<dp::RawPacket>& trace) {
  std::vector<std::uint64_t> counts(gwlb.services.size(), 0);
  for (const dp::RawPacket& pkt : trace) {
    const auto key = dp::parse(pkt);
    if (!key.has_value()) continue;
    for (std::size_t s = 0; s < gwlb.services.size(); ++s) {
      if (gwlb.services[s].vip == key->get(dp::FieldId::kIpDst) &&
          gwlb.services[s].port == key->get(dp::FieldId::kTcpDst)) {
        ++counts[s];
      }
    }
  }
  return counts;
}

class MonitorAcrossModels : public ::testing::TestWithParam<const char*> {};

TEST_P(MonitorAcrossModels, CountsMatchGroundTruthOnBothRepresentations) {
  const auto gwlb = workloads::make_gwlb(
      {.num_services = 6, .num_backends = 4, .seed = 31});
  const auto trace = workloads::make_gwlb_traffic(
      gwlb, {.num_packets = 512, .hit_fraction = 0.85, .seed = 32});
  const auto truth = ground_truth(gwlb, trace);

  for (const Representation repr :
       {Representation::kUniversal, Representation::kGoto}) {
    GwlbBinding binding(gwlb, repr);
    auto sw = make_switch(GetParam());
    ASSERT_TRUE(sw->load(binding.program()).is_ok());
    for (const dp::RawPacket& pkt : trace) {
      const auto key = dp::parse(pkt);
      ASSERT_TRUE(key.has_value());
      (void)sw->process(*key);
    }

    TrafficMonitor monitor(binding, *sw);
    for (std::size_t s = 0; s < gwlb.services.size(); ++s) {
      const auto traffic = monitor.read_service(s);
      ASSERT_TRUE(traffic.is_ok()) << traffic.status().to_string();
      EXPECT_EQ(traffic.value().packets, truth[s])
          << GetParam() << " " << to_string(repr) << " service " << s;
      // The §2 effort metric: M counters universal, 1 normalized.
      if (repr == Representation::kUniversal) {
        EXPECT_EQ(traffic.value().counters_read, 4u);
        EXPECT_EQ(traffic.value().aggregation_steps, 3u);
      } else {
        EXPECT_EQ(traffic.value().counters_read, 1u);
        EXPECT_EQ(traffic.value().aggregation_steps, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MonitorAcrossModels,
                         ::testing::Values("eswitch", "lagopus", "ovs",
                                           "hw"));

TEST(RuleCounters, SurviveModify) {
  const auto gwlb = workloads::make_gwlb(
      {.num_services = 3, .num_backends = 2, .seed = 41});
  GwlbBinding binding(gwlb, Representation::kGoto);
  auto sw = dp::make_eswitch_model();
  ASSERT_TRUE(sw->load(binding.program()).is_ok());

  // Hit service 0 a few times.
  dp::FlowKey key;
  key.set(dp::FieldId::kIpSrc, 0);
  key.set(dp::FieldId::kIpDst, gwlb.services[0].vip);
  key.set(dp::FieldId::kTcpDst, gwlb.services[0].port);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sw->process(key).hit);
  }

  // Move the service port; the modified rule must keep its count.
  const auto updates = binding.compile_intent(
      MoveServicePort{.service = 0, .new_port = 4242});
  ASSERT_TRUE(updates.is_ok());
  ASSERT_EQ(updates.value().size(), 1u);
  ASSERT_TRUE(sw->apply_update(updates.value()[0]).is_ok());

  TrafficMonitor monitor(binding, *sw);
  const auto traffic = monitor.read_service(0);
  ASSERT_TRUE(traffic.is_ok()) << traffic.status().to_string();
  EXPECT_EQ(traffic.value().packets, 5u);

  // New-port traffic keeps accumulating on the same counter.
  key.set(dp::FieldId::kTcpDst, 4242);
  ASSERT_TRUE(sw->process(key).hit);
  EXPECT_EQ(monitor.read_service(0).value().packets, 6u);
}

TEST(RuleCounters, MissingRuleReturnsNotFound) {
  const auto gwlb = workloads::make_gwlb(
      {.num_services = 2, .num_backends = 2});
  GwlbBinding binding(gwlb, Representation::kGoto);
  auto sw = dp::make_eswitch_model();
  ASSERT_TRUE(sw->load(binding.program()).is_ok());
  const auto count = sw->read_rule_counter(
      0, {{dp::FieldId::kIpDst, 12345, 0xffffffffULL}});
  ASSERT_FALSE(count.is_ok());
  EXPECT_EQ(count.status().code(), StatusCode::kNotFound);
}

TEST(RuleCounters, OvsAttributesCacheHitsToRules) {
  // OVS serves repeats from the megaflow cache, but flow stats must
  // still be credited to the OpenFlow rules that built the megaflow.
  const auto gwlb = workloads::make_paper_example();
  GwlbBinding binding(gwlb, Representation::kGoto);
  auto sw = dp::make_ovs_model();
  auto* ovs = dynamic_cast<dp::OvsModelInterface*>(sw.get());
  ASSERT_TRUE(sw->load(binding.program()).is_ok());

  dp::FlowKey key;
  key.set(dp::FieldId::kIpSrc, ipv4(1, 2, 3, 4));
  key.set(dp::FieldId::kIpDst, gwlb.services[0].vip);
  key.set(dp::FieldId::kTcpDst, gwlb.services[0].port);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sw->process(key).hit);
  }
  EXPECT_EQ(ovs->stats().cache_hits, 9u);  // 1 miss + 9 hits

  TrafficMonitor monitor(binding, *sw);
  EXPECT_EQ(monitor.read_service(0).value().packets, 10u);
}

}  // namespace
}  // namespace maton::cp
