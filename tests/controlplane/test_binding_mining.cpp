// The binding's live FD-mining path: re-mined transient dependencies
// stay consistent with the service model under churn, and the cross-call
// PartitionCache reuses partitions for columns an intent did not touch.
#include <gtest/gtest.h>

#include "controlplane/churn.hpp"
#include "controlplane/compiler.hpp"
#include "workloads/gwlb.hpp"

namespace maton::cp {
namespace {

using workloads::make_gwlb;

TEST(BindingMining, MinedFdsContainModelFdsInitially) {
  GwlbBinding binding(make_gwlb({.num_services = 10, .num_backends = 4}),
                      Representation::kUniversal);
  const core::FdSet& mined = binding.mined_fds();
  for (const core::Fd& fd : binding.gwlb().model_fds.fds()) {
    EXPECT_TRUE(mined.implies(fd));
  }
}

TEST(BindingMining, MemoizedUntilIntentInvalidates) {
  GwlbBinding binding(make_gwlb({.num_services = 10, .num_backends = 4}),
                      Representation::kUniversal);
  (void)binding.mined_fds();
  const auto first = binding.partition_cache().stats();
  // A second call without an intervening intent re-mines nothing.
  (void)binding.mined_fds();
  const auto second = binding.partition_cache().stats();
  EXPECT_EQ(first.hits + first.misses, second.hits + second.misses);

  const MoveServicePort intent{.service = 3, .new_port = 55555};
  ASSERT_TRUE(binding.compile_intent(intent).is_ok());
  (void)binding.mined_fds();
  const auto third = binding.partition_cache().stats();
  EXPECT_GT(third.hits + third.misses, second.hits + second.misses);
}

TEST(BindingMining, ChurnReusesUntouchedColumnPartitions) {
  GwlbBinding binding(make_gwlb({.num_services = 20, .num_backends = 8}),
                      Representation::kUniversal);
  (void)binding.mined_fds();  // cold fill

  const auto schedule = make_port_churn({.rate_per_second = 50.0,
                                         .duration_seconds = 1.0,
                                         .num_services = 20,
                                         .seed = 3});
  ASSERT_FALSE(schedule.empty());
  for (const TimedIntent& timed : schedule) {
    ASSERT_TRUE(binding.compile_intent(timed.intent).is_ok());
    const core::FdSet& mined = binding.mined_fds();
    // The model dependency (ip_dst → tcp_dst) survives every port move.
    for (const core::Fd& fd : binding.gwlb().model_fds.fds()) {
      EXPECT_TRUE(mined.implies(fd));
    }
  }
  // MoveServicePort rewrites only the tcp_dst column, so across the
  // whole churn run the partitions of every other column (and their
  // products) are served by the cache: a substantial share of lookups.
  const auto stats = binding.partition_cache().stats();
  EXPECT_GT(stats.hits * 3, stats.misses);
}

}  // namespace
}  // namespace maton::cp
