// §2 controllability / monitorability / atomicity arithmetic, pinned to
// the paper's claims for the Fig. 1 instance and checked for consistency
// at scale.
#include "controlplane/compiler.hpp"

#include <gtest/gtest.h>

#include "util/format.hpp"

namespace maton::cp {
namespace {

using workloads::make_gwlb;
using workloads::make_paper_example;

std::unique_ptr<GwlbBinding> bind(Representation repr) {
  return std::make_unique<GwlbBinding>(make_paper_example(), repr);
}

TEST(IntentCompiler, PaperExampleMovePortTenant1) {
  // §2: moving tenant 1 from HTTP to HTTPS "needs to update both of the
  // two entries [...] in the universal table, whereas in the normal form
  // modifying only one entry is enough".
  const MoveServicePort intent{.service = 0, .new_port = 443};

  auto universal = bind(Representation::kUniversal);
  const auto uni_updates = universal->compile_intent(intent);
  ASSERT_TRUE(uni_updates.is_ok());
  EXPECT_EQ(uni_updates.value().size(), 2u);

  for (const Representation repr :
       {Representation::kGoto, Representation::kMetadata,
        Representation::kRematch}) {
    auto normalized = bind(repr);
    const auto updates = normalized->compile_intent(intent);
    ASSERT_TRUE(updates.is_ok());
    EXPECT_EQ(updates.value().size(), 1u) << to_string(repr);
  }
}

TEST(IntentCompiler, MovePortScalesWithBackendsOnlyWhenUniversal) {
  // N=20, M=8 (§5 workload): the universal table needs M updates, the
  // normalized ones a single update — the 8× churn amplification that
  // drives Fig. 4.
  const auto gwlb = make_gwlb({.num_services = 20, .num_backends = 8});
  const MoveServicePort intent{.service = 7, .new_port = 4242};

  GwlbBinding universal(gwlb, Representation::kUniversal);
  const auto uni = universal.compile_intent(intent);
  ASSERT_TRUE(uni.is_ok());
  EXPECT_EQ(uni.value().size(), 8u);

  GwlbBinding normalized(gwlb, Representation::kGoto);
  const auto norm = normalized.compile_intent(intent);
  ASSERT_TRUE(norm.is_ok());
  EXPECT_EQ(norm.value().size(), 1u);
}

TEST(IntentCompiler, ChangeServiceIpRematchPaysForRematching) {
  // The rematch join re-states ip_dst in the second table, so changing
  // the VIP touches 1 + M entries — worse than goto/metadata (1) and no
  // better than the universal table (M).
  const auto gwlb = make_gwlb({.num_services = 4, .num_backends = 4});
  const ChangeServiceIp intent{.service = 1, .new_vip = ipv4(198, 19, 0, 9)};

  GwlbBinding universal(gwlb, Representation::kUniversal);
  EXPECT_EQ(universal.compile_intent(intent).value().size(), 4u);
  GwlbBinding goto_b(gwlb, Representation::kGoto);
  EXPECT_EQ(goto_b.compile_intent(intent).value().size(), 1u);
  GwlbBinding meta(gwlb, Representation::kMetadata);
  EXPECT_EQ(meta.compile_intent(intent).value().size(), 1u);
  GwlbBinding rematch(gwlb, Representation::kRematch);
  EXPECT_EQ(rematch.compile_intent(intent).value().size(), 5u);
}

TEST(IntentCompiler, ChangeBackendIsRepresentationAgnostic) {
  const auto gwlb = make_gwlb({.num_services = 4, .num_backends = 4});
  const ChangeBackend intent{.service = 0, .backend = 2, .new_out = 777};
  for (const Representation repr :
       {Representation::kUniversal, Representation::kGoto,
        Representation::kMetadata, Representation::kRematch}) {
    GwlbBinding binding(gwlb, repr);
    const auto updates = binding.compile_intent(intent);
    ASSERT_TRUE(updates.is_ok()) << to_string(repr);
    EXPECT_EQ(updates.value().size(), 1u) << to_string(repr);
  }
}

TEST(IntentCompiler, RemoveServiceCosts) {
  const auto gwlb = make_gwlb({.num_services = 4, .num_backends = 4});
  const RemoveService intent{.service = 2};

  GwlbBinding universal(gwlb, Representation::kUniversal);
  EXPECT_EQ(universal.compile_intent(intent).value().size(), 4u);
  // Normalized: the service entry plus its per-backend entries.
  GwlbBinding goto_b(gwlb, Representation::kGoto);
  EXPECT_EQ(goto_b.compile_intent(intent).value().size(), 5u);
}

TEST(IntentCompiler, UpdatesAreApplicable) {
  // The emitted updates must be accepted by a switch running the old
  // program, and the updated switch must equal a freshly loaded one.
  const auto gwlb = make_gwlb({.num_services = 6, .num_backends = 4});
  for (const Representation repr :
       {Representation::kUniversal, Representation::kGoto,
        Representation::kMetadata, Representation::kRematch}) {
    GwlbBinding binding(gwlb, repr);
    auto sw = dp::make_eswitch_model();
    ASSERT_TRUE(sw->load(binding.program()).is_ok());

    const MoveServicePort intent{.service = 3, .new_port = 50505};
    const auto updates = binding.compile_intent(intent);
    ASSERT_TRUE(updates.is_ok()) << to_string(repr);
    for (const dp::RuleUpdate& u : updates.value()) {
      ASSERT_TRUE(sw->apply_update(u).is_ok()) << to_string(repr);
    }

    // New-port traffic must now hit.
    dp::FlowKey key;
    key.set(dp::FieldId::kIpSrc, 0);
    key.set(dp::FieldId::kIpDst, binding.gwlb().services[3].vip);
    key.set(dp::FieldId::kTcpDst, 50505);
    EXPECT_TRUE(sw->process(key).hit) << to_string(repr);
    // Old-port traffic must miss.
    key.set(dp::FieldId::kTcpDst, gwlb.services[3].port);
    EXPECT_FALSE(sw->process(key).hit) << to_string(repr);
  }
}

TEST(IntentCompiler, SequentialIntentsStayConsistent) {
  const auto gwlb = make_gwlb({.num_services = 4, .num_backends = 2});
  GwlbBinding binding(gwlb, Representation::kGoto);
  auto sw = dp::make_eswitch_model();
  ASSERT_TRUE(sw->load(binding.program()).is_ok());

  const Intent intents[] = {
      Intent{MoveServicePort{.service = 0, .new_port = 1111}},
      Intent{ChangeServiceIp{.service = 0, .new_vip = ipv4(198, 19, 1, 1)}},
      Intent{MoveServicePort{.service = 0, .new_port = 2222}},
      Intent{ChangeBackend{.service = 0, .backend = 1, .new_out = 99}},
  };
  for (const Intent& intent : intents) {
    const auto updates = binding.compile_intent(intent);
    ASSERT_TRUE(updates.is_ok()) << to_string(intent);
    for (const dp::RuleUpdate& u : updates.value()) {
      ASSERT_TRUE(sw->apply_update(u).is_ok()) << to_string(intent);
    }
  }
  dp::FlowKey key;
  key.set(dp::FieldId::kIpSrc, 0x80000000ULL);  // second half of sources
  key.set(dp::FieldId::kIpDst, ipv4(198, 19, 1, 1));
  key.set(dp::FieldId::kTcpDst, 2222);
  const auto result = sw->process(key);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.out_port, 99u);
}

TEST(IntentCompiler, InvalidIntentsAreRejected) {
  auto binding = bind(Representation::kGoto);
  EXPECT_FALSE(
      binding->compile_intent(MoveServicePort{.service = 99}).is_ok());
  EXPECT_FALSE(
      binding->compile_intent(ChangeBackend{.service = 0, .backend = 99})
          .is_ok());
  ASSERT_TRUE(binding->compile_intent(RemoveService{.service = 0}).is_ok());
  // Intents against the removed service fail.
  const auto again =
      binding->compile_intent(MoveServicePort{.service = 0, .new_port = 1});
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MonitorPlans, PaperExampleTenant2) {
  // §2: monitoring tenant 2 takes 3 counters + controller-side summing on
  // the universal table, one counter on the normal form.
  auto universal = bind(Representation::kUniversal);
  const MonitorPlan uni = universal->monitor_plan(1);
  EXPECT_EQ(uni.counters, 3u);
  EXPECT_EQ(uni.aggregation_steps, 2u);

  auto normalized = bind(Representation::kGoto);
  const MonitorPlan norm = normalized->monitor_plan(1);
  EXPECT_EQ(norm.counters, 1u);
  EXPECT_EQ(norm.aggregation_steps, 0u);
}

TEST(IdentityEntries, AtomicityExposure) {
  auto universal = bind(Representation::kUniversal);
  EXPECT_EQ(universal->identity_entries(1), 3u);
  auto goto_b = bind(Representation::kGoto);
  EXPECT_EQ(goto_b->identity_entries(1), 1u);
  auto rematch = bind(Representation::kRematch);
  EXPECT_EQ(rematch->identity_entries(1), 4u);
}

TEST(IntentCompiler, IntentToString) {
  EXPECT_EQ(to_string(Intent{MoveServicePort{.service = 2, .new_port = 80}}),
            "move-service-port(service=2, port=80)");
  EXPECT_EQ(to_string(Intent{RemoveService{.service = 1}}),
            "remove-service(service=1)");
}

}  // namespace
}  // namespace maton::cp
