// Differential harness gating the incremental intent compiler: over long
// randomized churn traces the delta-scoped path must be bit-identical to
// the full rebuild+diff reference — same update sequences, same patched
// program, same switch state — across all four representations.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "controlplane/compiler.hpp"
#include "util/contract.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace maton::cp {
namespace {

using workloads::Gwlb;
using workloads::make_gwlb;

constexpr Representation kAllReprs[] = {
    Representation::kUniversal, Representation::kGoto,
    Representation::kMetadata, Representation::kRematch};

bool updates_equal(const std::vector<dp::RuleUpdate>& a,
                   const std::vector<dp::RuleUpdate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].table != b[i].table ||
        a[i].target != b[i].target || !(a[i].rule == b[i].rule)) {
      return false;
    }
  }
  return true;
}

/// Draws a random intent. VIPs come from a private counter in
/// 198.19.0.0/16 (make_gwlb allocates from 198.18.0.0/15; this range is
/// never reused), so ChangeServiceIp never collides and the incremental
/// path stays on its fast path. Ports rotate through the ephemeral
/// range. Removals are capped at a quarter of the fleet — services never
/// come back, and intents drawn against an already-removed service are
/// kept in the trace on purpose (they exercise the failed-intent no-op
/// path on both compilers).
class IntentSource {
 public:
  explicit IntentSource(std::uint64_t seed, std::size_t services,
                        std::size_t backends)
      : rng_(seed), services_(services), backends_(backends),
        removals_left_(services / 4) {}

  Intent next() {
    const std::size_t service = rng_.index(services_);
    switch (rng_.uniform(0, 9)) {
      case 0:
        if (removals_left_ > 0) {
          --removals_left_;
          return RemoveService{.service = service};
        }
        [[fallthrough]];
      case 1:
      case 2:
      case 3:
        return ChangeServiceIp{.service = service,
                               .new_vip = next_unique_vip()};
      case 4:
      case 5:
      case 6:
        return ChangeBackend{
            .service = service,
            .backend = rng_.index(backends_),
            .new_out = 100000 + vip_counter_ + rng_.uniform(0, 7)};
      default:
        return MoveServicePort{
            .service = service,
            .new_port = static_cast<std::uint16_t>(
                49152 + rng_.uniform(0, 16382))};
    }
  }

 private:
  std::uint32_t next_unique_vip() {
    ++vip_counter_;
    return ipv4(198, 19, (vip_counter_ >> 8) & 0xff, vip_counter_ & 0xff);
  }

  Rng rng_;
  std::size_t services_;
  std::size_t backends_;
  std::size_t removals_left_;
  std::uint64_t vip_counter_ = 0;
};

/// Replays `num_intents` random intents through an incremental binding
/// and a full-rebuild reference binding in lockstep, checking after every
/// step that the update sequence, the patched program, and the state of a
/// switch driven by the updates are identical.
void run_churn_differential(Representation repr, std::size_t num_services,
                            std::size_t num_backends,
                            std::size_t num_intents, std::uint64_t seed) {
  const Gwlb gwlb = make_gwlb({.num_services = num_services,
                               .num_backends = num_backends,
                               .seed = seed});
  GwlbBinding inc(gwlb, repr, CompileMode::kIncremental);
  GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild);
  ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);

  dp::HwTcamModel sw_inc;
  dp::HwTcamModel sw_ref;
  ASSERT_TRUE(sw_inc.load(inc.program()).is_ok());
  ASSERT_TRUE(sw_ref.load(ref.program()).is_ok());

  IntentSource source(seed * 7919 + 1, num_services, num_backends);
  std::size_t applied = 0;
  for (std::size_t step = 0; step < num_intents; ++step) {
    const Intent intent = source.next();
    const auto got = inc.compile_intent(intent);
    const auto want = ref.compile_intent(intent);
    ASSERT_EQ(got.is_ok(), want.is_ok())
        << to_string(repr) << " step " << step << ": " << to_string(intent);
    if (!got.is_ok()) {
      // Failed intents must be no-ops on both sides.
      EXPECT_EQ(got.status().code(), want.status().code());
      ASSERT_TRUE(inc.program() == ref.program());
      continue;
    }
    ++applied;
    ASSERT_TRUE(updates_equal(got.value(), want.value()))
        << to_string(repr) << " step " << step << ": " << to_string(intent);
    ASSERT_TRUE(inc.program() == ref.program())
        << to_string(repr) << " step " << step << ": " << to_string(intent);

    // The incremental updates, applied batched, must leave the switch in
    // the same state as the reference updates applied one at a time.
    ASSERT_TRUE(sw_inc.apply_updates(got.value()).is_ok());
    for (const dp::RuleUpdate& u : want.value()) {
      ASSERT_TRUE(sw_ref.apply_update(u).is_ok());
    }
    ASSERT_TRUE(sw_inc.program() == sw_ref.program())
        << to_string(repr) << " step " << step;
    ASSERT_TRUE(sw_inc.program() == inc.program())
        << to_string(repr) << " step " << step;
  }

  // The trace avoids VIP collisions, so every applied intent must have
  // taken the delta path — zero fallbacks.
  EXPECT_EQ(inc.incremental_stats().hits, applied) << to_string(repr);
  EXPECT_EQ(inc.incremental_stats().fallbacks, 0u) << to_string(repr);
  EXPECT_EQ(ref.incremental_stats().hits, 0u);
  EXPECT_GT(applied, num_intents / 2);
}

class IncrementalChurn
    : public ::testing::TestWithParam<Representation> {};

TEST_P(IncrementalChurn, FiveHundredIntentTraceMatchesReference) {
  run_churn_differential(GetParam(), /*num_services=*/10,
                         /*num_backends=*/4, /*num_intents=*/500,
                         /*seed=*/11);
}

TEST_P(IncrementalChurn, SmallInstanceDeepTrace) {
  run_churn_differential(GetParam(), /*num_services=*/3,
                         /*num_backends=*/2, /*num_intents=*/200,
                         /*seed=*/23);
}

INSTANTIATE_TEST_SUITE_P(AllRepresentations, IncrementalChurn,
                         ::testing::ValuesIn(kAllReprs),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(IncrementalCompile, RemoveThenRetargetEdgeCases) {
  for (const Representation repr : kAllReprs) {
    const Gwlb gwlb = make_gwlb({.num_services = 4, .num_backends = 4});
    GwlbBinding inc(gwlb, repr, CompileMode::kIncremental);
    GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild);

    // Remove service 1, then try to retarget it: every intent against
    // the removed service must fail identically and change nothing.
    ASSERT_TRUE(inc.compile_intent(RemoveService{.service = 1}).is_ok());
    ASSERT_TRUE(ref.compile_intent(RemoveService{.service = 1}).is_ok());
    ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);

    const Intent retargets[] = {
        Intent{MoveServicePort{.service = 1, .new_port = 8080}},
        Intent{ChangeServiceIp{.service = 1, .new_vip = ipv4(198, 19, 9, 9)}},
        Intent{ChangeBackend{.service = 1, .backend = 0, .new_out = 7}},
        Intent{RemoveService{.service = 1}},
    };
    for (const Intent& intent : retargets) {
      const dp::Program before = inc.program();
      const auto got = inc.compile_intent(intent);
      const auto want = ref.compile_intent(intent);
      ASSERT_FALSE(got.is_ok()) << to_string(repr) << " " << to_string(intent);
      EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
      EXPECT_EQ(want.status().code(), StatusCode::kFailedPrecondition);
      ASSERT_TRUE(inc.program() == before) << to_string(intent);
    }

    // Neighbouring services remain fully retargetable on the delta path.
    const auto after = inc.compile_intent(
        MoveServicePort{.service = 2, .new_port = 50000});
    ASSERT_TRUE(after.is_ok()) << to_string(repr);
    ASSERT_TRUE(
        ref.compile_intent(MoveServicePort{.service = 2, .new_port = 50000})
            .is_ok());
    ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().fallbacks, 0u) << to_string(repr);
  }
}

TEST(IncrementalCompile, VipCollisionFallsBackAndStaysCorrect) {
  // Pointing one service at another's VIP used to demote every intent in
  // the colliding state to the full-rebuild path. The symbolic
  // slice-isolation proof now clears collisions whose slices cannot
  // alias: the colliding services still differ in tcp_dst (and every
  // gwlb rule carries its service's port or tag), so their match regions
  // are provably disjoint in every affected table and the delta path
  // stays on, bit-identical to the reference.
  const Gwlb gwlb = make_gwlb({.num_services = 4, .num_backends = 2});
  ASSERT_NE(gwlb.services[0].port, gwlb.services[2].port);
  for (const Representation repr : kAllReprs) {
    GwlbBinding inc(gwlb, repr, CompileMode::kIncremental);
    GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild);
    const ChangeServiceIp collide{.service = 2,
                                  .new_vip = gwlb.services[0].vip};
    if (repr == Representation::kRematch) {
      // Rematch's LB stage re-matches (ip_src, ip_dst), and make_gwlb
      // gives every service the same src splits, so two live services on
      // one VIP produce *identical* LB keys: the slices provably
      // intersect, the delta path falls back (cause: vip_collision), and
      // the rebuild rejects the duplicate-key pipeline outright — in
      // both modes.
      EXPECT_THROW((void)inc.compile_intent(collide),
                   maton::ContractViolation);
      EXPECT_THROW((void)ref.compile_intent(collide),
                   maton::ContractViolation);
      EXPECT_EQ(inc.incremental_stats().vip_collision_fallbacks, 1u);
      EXPECT_EQ(inc.incremental_stats().slice_validation_fallbacks, 0u);
      continue;
    }
    const auto got = inc.compile_intent(collide);
    const auto want = ref.compile_intent(collide);
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE(want.is_ok());
    ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().hits, 1u) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().fallbacks, 0u) << to_string(repr);

    // The collision persists; intents on uninvolved services have no
    // partners to prove against, and even the colliding pair's own
    // intents carry their isolation proofs.
    ASSERT_TRUE(inc.compile_intent(
                       MoveServicePort{.service = 1, .new_port = 50001})
                    .is_ok());
    ASSERT_TRUE(ref.compile_intent(
                       MoveServicePort{.service = 1, .new_port = 50001})
                    .is_ok());
    // Clearing the collision diffs against the still-colliding pre-state;
    // the proof covers before ∪ after, so it stays delta-scoped too.
    ASSERT_TRUE(inc.compile_intent(ChangeServiceIp{
                       .service = 2, .new_vip = ipv4(198, 19, 200, 1)})
                    .is_ok());
    ASSERT_TRUE(ref.compile_intent(ChangeServiceIp{
                       .service = 2, .new_vip = ipv4(198, 19, 200, 1)})
                    .is_ok());
    ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().hits, 3u) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().fallbacks, 0u) << to_string(repr);
  }
}

TEST(IncrementalCompile, PinnedUpdateCountsMatchFullRebuild) {
  // The §2 controllability pins (tests/controlplane/test_compiler.cpp)
  // run through the default mode; double-check the two modes agree on
  // the exact counts for every intent kind.
  const Gwlb gwlb = make_gwlb({.num_services = 4, .num_backends = 4});
  const Intent intents[] = {
      Intent{MoveServicePort{.service = 0, .new_port = 50100}},
      Intent{ChangeServiceIp{.service = 1, .new_vip = ipv4(198, 19, 3, 3)}},
      Intent{ChangeBackend{.service = 2, .backend = 3, .new_out = 4242}},
      Intent{RemoveService{.service = 3}},
  };
  for (const Representation repr : kAllReprs) {
    GwlbBinding inc(gwlb, repr, CompileMode::kIncremental);
    GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild);
    for (const Intent& intent : intents) {
      const auto got = inc.compile_intent(intent);
      const auto want = ref.compile_intent(intent);
      ASSERT_TRUE(got.is_ok() && want.is_ok()) << to_string(repr);
      ASSERT_TRUE(updates_equal(got.value(), want.value()))
          << to_string(repr) << " " << to_string(intent);
    }
  }
}

TEST(IncrementalCompile, ShrinkingSliceRemovalMatchesReference) {
  // Regression for the slow-path merge's buffer pre-sizing: it reserves
  // size() + |after| − |before|, which must be evaluated in that order
  // (and guarded by |before| ≤ size()) because a shrinking slice —
  // service removal is the maximal case, |after| = 0 — underflows the
  // naive size() − |before| + |after| whenever an invariant breach makes
  // the slice larger than its table. Removals must stay on the delta
  // path and splice out exactly the service's slice in every table.
  for (const Representation repr : kAllReprs) {
    const Gwlb gwlb = make_gwlb({.num_services = 6, .num_backends = 8});
    GwlbBinding inc(gwlb, repr, CompileMode::kIncremental);
    GwlbBinding ref(gwlb, repr, CompileMode::kFullRebuild);

    const std::size_t total_before = inc.program().total_rules();
    // Largest shrink first, then edges of the service array, then a
    // retarget of a survivor to prove the rebuilt slice index is sound.
    for (const std::size_t victim : {5, 0, 3}) {
      const auto got = inc.compile_intent(RemoveService{.service = victim});
      const auto want = ref.compile_intent(RemoveService{.service = victim});
      ASSERT_TRUE(got.is_ok() && want.is_ok())
          << to_string(repr) << " removing " << victim;
      ASSERT_TRUE(updates_equal(got.value(), want.value()))
          << to_string(repr) << " removing " << victim;
      ASSERT_TRUE(inc.program() == ref.program())
          << to_string(repr) << " removing " << victim;
    }
    EXPECT_LT(inc.program().total_rules(), total_before) << to_string(repr);

    ASSERT_TRUE(inc.compile_intent(
                       MoveServicePort{.service = 1, .new_port = 50777})
                    .is_ok());
    ASSERT_TRUE(ref.compile_intent(
                       MoveServicePort{.service = 1, .new_port = 50777})
                    .is_ok());
    ASSERT_TRUE(inc.program() == ref.program()) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().fallbacks, 0u) << to_string(repr);
    EXPECT_EQ(inc.incremental_stats().hits, 4u) << to_string(repr);
  }
}

TEST(DiffPrograms, ModifyPairingSemantics) {
  // The O(n) hash-multiset diff must reproduce the pairing the original
  // quadratic scan defined: per table, each old rule consumes the first
  // unmatched equal new rule; leftovers pair up as modifies in order,
  // the remainder becomes removes then inserts.
  auto rule = [](std::uint32_t prio, std::uint64_t dst, std::uint64_t out) {
    dp::Rule r;
    r.priority = prio;
    r.matches.push_back({dp::FieldId::kIpDst, dst, ~std::uint64_t{0}});
    r.actions.push_back({dp::Action::Kind::kOutput, dp::FieldId::kMeta0, out});
    return r;
  };
  dp::Program before;
  before.tables.push_back({"t", {dp::FieldId::kIpDst}, {}, std::nullopt});
  dp::Program after = before;
  // Old: A, B, C. New: B, D, E — A pairs with D (first unmatched), C
  // with E; B survives unchanged.
  before.tables[0].rules = {rule(3, 1, 10), rule(2, 2, 20), rule(1, 3, 30)};
  after.tables[0].rules = {rule(2, 2, 20), rule(3, 4, 40), rule(1, 5, 50)};

  const auto updates = diff_programs(before, after);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0].kind, dp::RuleUpdate::Kind::kModify);
  EXPECT_EQ(updates[0].target, before.tables[0].rules[0].matches);
  EXPECT_TRUE(updates[0].rule == after.tables[0].rules[1]);
  EXPECT_EQ(updates[1].kind, dp::RuleUpdate::Kind::kModify);
  EXPECT_EQ(updates[1].target, before.tables[0].rules[2].matches);
  EXPECT_TRUE(updates[1].rule == after.tables[0].rules[2]);

  // Duplicate rules: multiset semantics, FIFO pairing.
  dp::Program dup_before = before;
  dp::Program dup_after = before;
  dup_before.tables[0].rules = {rule(1, 7, 70), rule(1, 7, 70)};
  dup_after.tables[0].rules = {rule(1, 7, 70)};
  const auto dup = diff_programs(dup_before, dup_after);
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_EQ(dup[0].kind, dp::RuleUpdate::Kind::kRemove);

  // Pure growth: inserts only.
  dp::Program grown = before;
  grown.tables[0].rules.push_back(rule(0, 9, 90));
  const auto ins = diff_programs(before, grown);
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0].kind, dp::RuleUpdate::Kind::kInsert);
  EXPECT_TRUE(ins[0].rule == grown.tables[0].rules.back());
}

}  // namespace
}  // namespace maton::cp
