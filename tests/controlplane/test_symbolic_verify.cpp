// Proof-gated compilation: VerifyMode::kSymbolic makes the binding prove
// the live program equivalent to a fresh reference after every compile,
// and the symbolic slice-isolation proofs keep deliberately colliding
// VIPs on the incremental path (the old blanket VIP-uniqueness guard
// demoted roughly half of all intents at 32 services under the soak's
// collision mix).
#include <gtest/gtest.h>

#include "controlplane/churn.hpp"
#include "controlplane/compiler.hpp"
#include "util/rng.hpp"

namespace maton::cp {
namespace {

using workloads::Gwlb;
using workloads::make_gwlb;

TEST(SymbolicVerify, InitialBuildIsProven) {
  const Gwlb gwlb = make_gwlb({.num_services = 8, .num_backends = 4});
  for (const Representation repr :
       {Representation::kUniversal, Representation::kGoto,
        Representation::kMetadata, Representation::kRematch}) {
    GwlbBinding binding(gwlb, repr, CompileMode::kIncremental,
                        AnalyzeMode::kOff, VerifyMode::kSymbolic);
    EXPECT_EQ(binding.verify_mode(), VerifyMode::kSymbolic);
    EXPECT_EQ(binding.verify_stats().verified, 1u) << to_string(repr);
    EXPECT_EQ(binding.verify_stats().failed, 0u) << to_string(repr);
    EXPECT_EQ(binding.verify_stats().unknown, 0u) << to_string(repr);
    EXPECT_TRUE(binding.last_verify_note().empty()) << to_string(repr);
  }
}

TEST(SymbolicVerify, VerifiesBothCompilePaths) {
  const Gwlb gwlb = make_gwlb({.num_services = 8, .num_backends = 4});
  for (const CompileMode mode :
       {CompileMode::kIncremental, CompileMode::kFullRebuild}) {
    GwlbBinding binding(gwlb, Representation::kMetadata, mode,
                        AnalyzeMode::kOff, VerifyMode::kSymbolic);
    ASSERT_TRUE(binding
                    .compile_intent(
                        MoveServicePort{.service = 3, .new_port = 50123})
                    .is_ok());
    ASSERT_TRUE(binding
                    .compile_intent(ChangeBackend{
                        .service = 1, .backend = 2, .new_out = 4242})
                    .is_ok());
    EXPECT_EQ(binding.verify_stats().verified, 3u);  // build + 2 intents
    EXPECT_EQ(binding.verify_stats().failed, 0u);
  }
}

TEST(SymbolicVerify, CollisionChurnStaysIncrementalAndProven) {
  // 32 services, the soak's mixed-intent draw with the deliberate
  // VIP-collision probability cranked to 50%: every post-collision state
  // used to demote to the full rebuild until the collision cleared
  // (~half of all intents fell back). The isolation proofs — colliding
  // services still differ in tcp_dst, so their slices are disjoint in
  // every table — keep the whole trace on the delta path, and every
  // patched program is proven equivalent to its reference.
  const Gwlb gwlb = make_gwlb({.num_services = 32, .num_backends = 4});
  GwlbBinding binding(gwlb, Representation::kGoto,
                      CompileMode::kIncremental, AnalyzeMode::kOff,
                      VerifyMode::kSymbolic);

  Rng rng(7);
  MixedChurnConfig mix;
  mix.vip_collision_probability = 0.5;
  constexpr std::size_t kIntents = 200;
  for (std::size_t i = 0; i < kIntents; ++i) {
    const Intent intent = draw_mixed_intent(rng, binding.gwlb(), mix);
    ASSERT_TRUE(binding.compile_intent(intent).is_ok())
        << "intent " << i << ": " << to_string(intent);
  }

  const VerifyStats verify = binding.verify_stats();
  EXPECT_EQ(verify.verified, 1u + kIntents);
  EXPECT_EQ(verify.failed, 0u);
  EXPECT_EQ(verify.unknown, 0u);
  EXPECT_TRUE(binding.last_verify_note().empty());

  const IncrementalStats inc = binding.incremental_stats();
  EXPECT_EQ(inc.hits + inc.fallbacks, kIntents);
  EXPECT_EQ(inc.fallbacks,
            inc.vip_collision_fallbacks + inc.slice_validation_fallbacks);
  const double ratio =
      static_cast<double>(inc.fallbacks) / static_cast<double>(kIntents);
  EXPECT_LT(ratio, 0.1) << "fallbacks: " << inc.fallbacks;
}

}  // namespace
}  // namespace maton::cp
