#include "controlplane/controller.hpp"

#include <gtest/gtest.h>

#include "controlplane/churn.hpp"

namespace maton::cp {
namespace {

TEST(Controller, AccountsUpdatesAndInconsistencyWindow) {
  const auto gwlb =
      workloads::make_gwlb({.num_services = 4, .num_backends = 4});
  auto sw = dp::make_eswitch_model();
  Controller controller(
      std::make_unique<GwlbBinding>(gwlb, Representation::kUniversal), *sw);

  const auto n =
      controller.apply(MoveServicePort{.service = 0, .new_port = 4040});
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 4u);
  EXPECT_EQ(controller.stats().intents_applied, 1u);
  EXPECT_EQ(controller.stats().rule_updates_issued, 4u);
  EXPECT_EQ(controller.stats().inconsistency_window, 3u);

  // The normalized representation applies the same intent atomically.
  auto sw2 = dp::make_eswitch_model();
  Controller normalized(
      std::make_unique<GwlbBinding>(gwlb, Representation::kGoto), *sw2);
  ASSERT_TRUE(
      normalized.apply(MoveServicePort{.service = 0, .new_port = 4040})
          .is_ok());
  EXPECT_EQ(normalized.stats().inconsistency_window, 0u);
}

TEST(Controller, FailedIntentIsCounted) {
  const auto gwlb =
      workloads::make_gwlb({.num_services = 2, .num_backends = 2});
  auto sw = dp::make_eswitch_model();
  Controller controller(
      std::make_unique<GwlbBinding>(gwlb, Representation::kGoto), *sw);
  EXPECT_FALSE(controller.apply(MoveServicePort{.service = 9}).is_ok());
  EXPECT_EQ(controller.stats().failed_intents, 1u);
  EXPECT_EQ(controller.stats().intents_applied, 0u);
}

TEST(Churn, RespectsRateAndDuration) {
  const auto schedule = make_port_churn(
      {.rate_per_second = 100.0, .duration_seconds = 2.0,
       .num_services = 20, .seed = 1, .poisson = false});
  // Deterministic spacing: one intent every 10 ms, ~200 total.
  ASSERT_FALSE(schedule.empty());
  EXPECT_NEAR(static_cast<double>(schedule.size()), 200.0, 1.0);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GT(schedule[i].at_seconds, schedule[i - 1].at_seconds);
    EXPECT_LT(schedule[i].at_seconds, 2.0);
  }
}

TEST(Churn, PoissonAveragesToRate) {
  const auto schedule = make_port_churn(
      {.rate_per_second = 500.0, .duration_seconds = 4.0,
       .num_services = 20, .seed = 7, .poisson = true});
  EXPECT_NEAR(static_cast<double>(schedule.size()), 2000.0, 200.0);
}

TEST(Churn, ZeroRateYieldsEmptySchedule) {
  EXPECT_TRUE(make_port_churn({.rate_per_second = 0.0}).empty());
}

TEST(Churn, IntentsTargetValidServices) {
  const auto schedule =
      make_port_churn({.rate_per_second = 200.0, .duration_seconds = 1.0,
                       .num_services = 5, .seed = 2});
  for (const TimedIntent& timed : schedule) {
    const auto* move = std::get_if<MoveServicePort>(&timed.intent);
    ASSERT_NE(move, nullptr);
    EXPECT_LT(move->service, 5u);
    EXPECT_GE(move->new_port, 49152u);
  }
}

TEST(Controller, ChurnAppliesEndToEnd) {
  // The whole Fig. 4 control loop, functionally: a burst of port moves
  // against both representations; both switches must stay consistent
  // with their bindings throughout.
  const auto gwlb =
      workloads::make_gwlb({.num_services = 8, .num_backends = 4});
  const auto schedule =
      make_port_churn({.rate_per_second = 50.0, .duration_seconds = 1.0,
                       .num_services = 8, .seed = 3});

  for (const Representation repr :
       {Representation::kUniversal, Representation::kGoto}) {
    auto sw = dp::make_eswitch_model();
    Controller controller(std::make_unique<GwlbBinding>(gwlb, repr), *sw);
    for (const TimedIntent& timed : schedule) {
      ASSERT_TRUE(controller.apply(timed.intent).is_ok());
    }
    EXPECT_EQ(controller.stats().intents_applied, schedule.size());
    // Universal issues ~M× the updates of the normalized form.
    if (repr == Representation::kUniversal) {
      EXPECT_EQ(controller.stats().rule_updates_issued,
                schedule.size() * 4u);
    } else {
      EXPECT_EQ(controller.stats().rule_updates_issued, schedule.size());
    }

    // Spot-check forwarding after the churn: every service reachable on
    // its current port.
    for (std::size_t s = 0; s < 8; ++s) {
      dp::FlowKey key;
      key.set(dp::FieldId::kIpSrc, 0);
      key.set(dp::FieldId::kIpDst, controller.binding().gwlb().services[s].vip);
      key.set(dp::FieldId::kTcpDst,
              controller.binding().gwlb().services[s].port);
      EXPECT_TRUE(sw->process(key).hit) << "service " << s;
    }
  }
}

}  // namespace
}  // namespace maton::cp
