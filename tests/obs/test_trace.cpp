#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace maton::obs {
namespace {

#if defined(MATON_OBS_OFF)
TEST(TraceCompiledOut, NoSpansRecorded) {
  Tracer::global().clear();
  {
    const TraceSpan span("outer");
    const TraceSpan inner("inner");
  }
  EXPECT_TRUE(Tracer::global().contents().events.empty());
  EXPECT_NE(render_chrome_trace().find("\"traceEvents\":[]"),
            std::string::npos);
}
#else

/// The tracer is process-global; every test starts from a cleared ring.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::global().clear(); }
};

TEST_F(TraceTest, SpanRecordsOnDestruction) {
  {
    const TraceSpan span("phase_a");
    EXPECT_TRUE(Tracer::global().contents().events.empty());
  }
  const Tracer::Contents c = Tracer::global().contents();
  ASSERT_EQ(c.events.size(), 1u);
  EXPECT_EQ(c.events[0].name_view(), "phase_a");
  EXPECT_EQ(c.events[0].depth, 0u);
  EXPECT_EQ(c.total_recorded, 1u);
}

TEST_F(TraceTest, NestingDepthAndCompletionOrder) {
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan mid("mid");
      const TraceSpan inner("inner");
    }
  }
  const Tracer::Contents c = Tracer::global().contents();
  ASSERT_EQ(c.events.size(), 3u);
  // Spans land in completion (destruction) order: innermost first.
  // Depth is 0-based: the outermost span of a thread records depth 0.
  EXPECT_EQ(c.events[0].name_view(), "inner");
  EXPECT_EQ(c.events[0].depth, 2u);
  EXPECT_EQ(c.events[1].name_view(), "mid");
  EXPECT_EQ(c.events[1].depth, 1u);
  EXPECT_EQ(c.events[2].name_view(), "outer");
  EXPECT_EQ(c.events[2].depth, 0u);
  // The outer span brackets the inner ones.
  EXPECT_LE(c.events[2].start_ns, c.events[0].start_ns);
  EXPECT_GE(c.events[2].start_ns + c.events[2].dur_ns,
            c.events[0].start_ns + c.events[0].dur_ns);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotOverflowed) {
  const std::string long_name(200, 'x');
  { const TraceSpan span(long_name); }
  const Tracer::Contents c = Tracer::global().contents();
  ASSERT_EQ(c.events.size(), 1u);
  EXPECT_EQ(c.events[0].name_view(), std::string(47, 'x'));
}

TEST_F(TraceTest, RingBufferWrapsKeepingMostRecent) {
  const std::size_t total = Tracer::kCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    Tracer::global().record("span_" + std::to_string(i), 0, 1, i, 1);
  }
  const Tracer::Contents c = Tracer::global().contents();
  ASSERT_EQ(c.events.size(), Tracer::kCapacity);
  EXPECT_EQ(c.total_recorded, total);
  // Oldest surviving span is number `total - kCapacity`, newest is last.
  EXPECT_EQ(c.events.front().name_view(),
            "span_" + std::to_string(total - Tracer::kCapacity));
  EXPECT_EQ(c.events.back().name_view(),
            "span_" + std::to_string(total - 1));
  // Recording order is preserved across the wrap point.
  for (std::size_t i = 1; i < c.events.size(); ++i) {
    EXPECT_LT(c.events[i - 1].start_ns, c.events[i].start_ns);
  }
}

TEST_F(TraceTest, ChromeTraceRendersCompleteEvents) {
  Tracer::global().record("alpha \"quoted\"", 7, 2, 1500, 2500);
  const std::string json = render_chrome_trace();
  // One "X" complete event with microsecond timestamps (1500 ns =
  // 1.500 us) and the name JSON-escaped.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

#endif  // !MATON_OBS_OFF

}  // namespace
}  // namespace maton::obs
