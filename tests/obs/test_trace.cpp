#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <tuple>

namespace maton::obs {
namespace {

#if defined(MATON_OBS_OFF)
TEST(TraceCompiledOut, NoSpansRecorded) {
  TracerRegistry::global().clear();
  {
    const TraceSpan span("outer");
    const TraceSpan inner("inner");
  }
  EXPECT_TRUE(TracerRegistry::global().merged().events.empty());
  EXPECT_NE(render_chrome_trace().find("\"traceEvents\":[]"),
            std::string::npos);
}
#else

[[nodiscard]] bool merged_order_ok(const std::vector<TraceEvent>& events) {
  return std::is_sorted(
      events.begin(), events.end(),
      [](const TraceEvent& a, const TraceEvent& b) {
        return std::tuple(a.start_ns, a.tid, a.depth, a.name_view()) <
               std::tuple(b.start_ns, b.tid, b.depth, b.name_view());
      });
}

/// The registry is process-global; every test starts from cleared rings.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TracerRegistry::global().clear(); }
};

TEST_F(TraceTest, SpanRecordsOnDestruction) {
  {
    const TraceSpan span("phase_a");
    EXPECT_TRUE(TracerRegistry::global().merged().events.empty());
  }
  const TraceRing::Contents c = TracerRegistry::global().merged();
  ASSERT_EQ(c.events.size(), 1u);
  EXPECT_EQ(c.events[0].name_view(), "phase_a");
  EXPECT_EQ(c.events[0].depth, 0u);
  EXPECT_EQ(c.events[0].tid, TracerRegistry::this_thread_tid());
  EXPECT_EQ(c.total_recorded, 1u);
}

TEST_F(TraceTest, NestingDepthAndMergedStartOrder) {
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan mid("mid");
      const TraceSpan inner("inner");
    }
  }
  // The ring itself holds completion (destruction) order...
  const TraceRing::Contents raw =
      TracerRegistry::global().this_thread_ring().contents();
  ASSERT_EQ(raw.events.size(), 3u);
  EXPECT_EQ(raw.events[0].name_view(), "inner");
  // ...but the merged export is sorted by start time: outermost first.
  // Depth is 0-based: the outermost span of a thread records depth 0.
  const TraceRing::Contents c = TracerRegistry::global().merged();
  ASSERT_EQ(c.events.size(), 3u);
  EXPECT_EQ(c.events[0].name_view(), "outer");
  EXPECT_EQ(c.events[0].depth, 0u);
  EXPECT_EQ(c.events[1].name_view(), "mid");
  EXPECT_EQ(c.events[1].depth, 1u);
  EXPECT_EQ(c.events[2].name_view(), "inner");
  EXPECT_EQ(c.events[2].depth, 2u);
  // The outer span brackets the inner ones.
  EXPECT_LE(c.events[0].start_ns, c.events[2].start_ns);
  EXPECT_GE(c.events[0].start_ns + c.events[0].dur_ns,
            c.events[2].start_ns + c.events[2].dur_ns);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotOverflowed) {
  const std::string long_name(200, 'x');
  { const TraceSpan span(long_name); }
  const TraceRing::Contents c = TracerRegistry::global().merged();
  ASSERT_EQ(c.events.size(), 1u);
  EXPECT_EQ(c.events[0].name_view(), std::string(47, 'x'));
}

TEST_F(TraceTest, RingBufferWrapsKeepingMostRecent) {
  TraceRing& ring = TracerRegistry::global().this_thread_ring();
  const std::size_t total = TraceRing::kCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    ring.record("span_" + std::to_string(i), 0, 1, i, 1);
  }
  const TraceRing::Contents c = ring.contents();
  ASSERT_EQ(c.events.size(), TraceRing::kCapacity);
  EXPECT_EQ(c.total_recorded, total);
  // Oldest surviving span is number `total - kCapacity`, newest is last.
  EXPECT_EQ(c.events.front().name_view(),
            "span_" + std::to_string(total - TraceRing::kCapacity));
  EXPECT_EQ(c.events.back().name_view(),
            "span_" + std::to_string(total - 1));
  // Recording order is preserved across the wrap point.
  for (std::size_t i = 1; i < c.events.size(); ++i) {
    EXPECT_LT(c.events[i - 1].start_ns, c.events[i].start_ns);
  }
}

// Regression: a wrapped ring's storage starts mid-stream (the write
// cursor sits inside the oldest events), and a second thread's ring
// interleaves arbitrary timestamps — the merged export must still come
// out in nondecreasing start order with every surviving span present.
TEST_F(TraceTest, WrappedRingsMergeInNondecreasingStartOrder) {
  TraceRing& mine = TracerRegistry::global().this_thread_ring();
  const std::uint32_t my_tid = TracerRegistry::this_thread_tid();
  const std::size_t total = TraceRing::kCapacity + 257;  // force a wrap
  for (std::size_t i = 0; i < total; ++i) {
    mine.record("even", my_tid, 0, 2 * i, 1);
  }

  std::uint32_t other_tid = 0;
  std::thread other([&] {
    other_tid = TracerRegistry::this_thread_tid();
    TraceRing& ring = TracerRegistry::global().this_thread_ring();
    // Odd timestamps spanning the survivor window of the wrapped ring,
    // plus one exact tie with an even timestamp to pin the tid order.
    for (std::size_t i = 0; i < 1000; ++i) {
      ring.record("odd", other_tid, 0, 2 * (total - 1000 + i) + 1, 1);
    }
    ring.record("tie", other_tid, 0, 2 * (total - 1), 1);
  });
  other.join();
  ASSERT_NE(my_tid, other_tid);

  const TraceRing::Contents c = TracerRegistry::global().merged();
  ASSERT_EQ(c.events.size(), TraceRing::kCapacity + 1001);
  EXPECT_EQ(c.total_recorded, total + 1001);
  EXPECT_TRUE(merged_order_ok(c.events));

  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : c.events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 2u);

  // The tie at start_ns == 2*(total-1) resolves by tid.
  const auto tie = std::find_if(
      c.events.begin(), c.events.end(), [&](const TraceEvent& e) {
        return e.start_ns == 2 * (total - 1);
      });
  ASSERT_NE(tie, c.events.end());
  ASSERT_NE(tie + 1, c.events.end());
  EXPECT_EQ((tie + 1)->start_ns, tie->start_ns);
  EXPECT_EQ(tie->tid, std::min(my_tid, other_tid));
  EXPECT_EQ((tie + 1)->tid, std::max(my_tid, other_tid));
}

TEST_F(TraceTest, MergedIsDeterministic) {
  {
    const TraceSpan a("a");
    const TraceSpan b("b");
  }
  { const TraceSpan c("c"); }
  const std::string once = render_chrome_trace();
  const std::string twice = render_chrome_trace();
  EXPECT_EQ(once, twice);
}

TEST_F(TraceTest, ChromeTraceRendersCompleteEvents) {
  TracerRegistry::global().record("alpha \"quoted\"", 7, 2, 1500, 2500);
  const std::string json = render_chrome_trace();
  // One "X" complete event with microsecond timestamps (1500 ns =
  // 1.500 us) and the name JSON-escaped.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST_F(TraceTest, OccupancyRollsUpAcrossRings) {
  { const TraceSpan span("one"); }
  const TracerRegistry::Occupancy occ = TracerRegistry::global().occupancy();
  EXPECT_GE(occ.rings, 1u);
  EXPECT_EQ(occ.capacity, occ.rings * TraceRing::kCapacity);
  // Other tests' threads leave registered-but-cleared rings behind; this
  // thread's single span is the only live event.
  EXPECT_EQ(occ.events, 1u);
  EXPECT_EQ(occ.total_recorded, 1u);
}

#endif  // !MATON_OBS_OFF

}  // namespace
}  // namespace maton::obs
