#include "obs/expose.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace maton::obs {
namespace {

#if !defined(MATON_OBS_OFF)

/// One registry with one metric of each kind, deterministic values, so
/// both renderers can be checked against verbatim golden documents.
MetricRegistry& golden_registry() {
  static MetricRegistry* registry = [] {
    auto* r = new MetricRegistry();
    r->counter("maton_x_total").add(42);
    r->gauge("maton_occ", {{"model", "ovs"}}).set(2.5);
    Histogram& h = r->histogram("maton_lat");
    h.observe(3);  // exact bucket 3, upper bound 4
    h.observe(9);  // first octave bucket, upper bound 10
    return r;
  }();
  return *registry;
}

TEST(Expose, PrometheusGolden) {
  const std::string expected =
      "# TYPE maton_lat histogram\n"
      "maton_lat_bucket{le=\"4\"} 1\n"
      "maton_lat_bucket{le=\"10\"} 2\n"
      "maton_lat_bucket{le=\"+Inf\"} 2\n"
      "maton_lat_sum 12\n"
      "maton_lat_count 2\n"
      "# TYPE maton_occ gauge\n"
      "maton_occ{model=\"ovs\"} 2.5\n"
      "# TYPE maton_x_total counter\n"
      "maton_x_total 42\n";
  EXPECT_EQ(render_prometheus(golden_registry().scrape()), expected);
}

TEST(Expose, JsonGolden) {
  const std::string expected =
      "[\n"
      " {\"name\":\"maton_lat\",\"kind\":\"histogram\",\"labels\":{},"
      "\"buckets\":[{\"le\":4,\"count\":1},{\"le\":10,\"count\":1}],"
      "\"sum\":12,\"count\":2},\n"
      " {\"name\":\"maton_occ\",\"kind\":\"gauge\",\"labels\":"
      "{\"model\":\"ovs\"},\"value\":2.5},\n"
      " {\"name\":\"maton_x_total\",\"kind\":\"counter\",\"labels\":{},"
      "\"value\":42}\n"
      "]\n";
  EXPECT_EQ(render_json(golden_registry().scrape()), expected);
}

TEST(Expose, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry.counter("maton_esc_total", {{"k", "a\"b\\c"}}).add(1);
  const Snapshot snap = registry.scrape();
  const std::string prom = render_prometheus(snap);
  EXPECT_NE(prom.find("k=\"a\\\"b\\\\c\""), std::string::npos) << prom;
  const std::string json = render_json(snap);
  EXPECT_NE(json.find("\"k\":\"a\\\"b\\\\c\""), std::string::npos) << json;
}

#endif  // !MATON_OBS_OFF

TEST(Expose, WriteTextFileRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/maton_expose_test.txt";
  ASSERT_TRUE(write_text_file(path, "hello\n").is_ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hello\n");
  std::remove(path.c_str());
}

TEST(Expose, WriteTextFileReportsUnwritablePath) {
  EXPECT_FALSE(
      write_text_file("/nonexistent-dir/metrics.prom", "x").is_ok());
}

}  // namespace
}  // namespace maton::obs
