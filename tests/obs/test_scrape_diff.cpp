#include "obs/diff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "obs/trace.hpp"

namespace maton::obs {
namespace {

MetricSnapshot make_counter(std::string name, double value,
                            Labels labels = {}) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.labels = std::move(labels);
  m.kind = MetricKind::kCounter;
  m.value = value;
  return m;
}

MetricSnapshot make_gauge(std::string name, double value,
                          Labels labels = {}) {
  MetricSnapshot m;
  m.name = std::move(name);
  m.labels = std::move(labels);
  m.kind = MetricKind::kGauge;
  m.value = value;
  return m;
}

const MetricSnapshot* find(const Snapshot& s, std::string_view name) {
  for (const MetricSnapshot& m : s.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

TEST(ScrapeDiff, FirstScrapeEmitsNoRates) {
  ScrapeDiff diff;
  Snapshot in;
  in.metrics.push_back(make_counter("maton_x_total", 100));
  const Snapshot out = diff.augment(std::move(in), 5.0);
  EXPECT_NE(find(out, "maton_x_total"), nullptr);
  EXPECT_EQ(find(out, "maton_x_total_per_sec"), nullptr);
}

TEST(ScrapeDiff, SecondScrapeEmitsPerIntervalRate) {
  ScrapeDiff diff;
  Snapshot first;
  first.metrics.push_back(make_counter("maton_x_total", 100));
  (void)diff.augment(std::move(first), 5.0);

  Snapshot second;
  second.metrics.push_back(make_counter("maton_x_total", 600));
  const Snapshot out = diff.augment(std::move(second), 15.0);
  const MetricSnapshot* rate = find(out, "maton_x_total_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(rate->value, 50.0);  // (600-100)/10s
}

TEST(ScrapeDiff, RatesAreLabelScoped) {
  ScrapeDiff diff;
  Snapshot first;
  first.metrics.push_back(make_counter("maton_x_total", 10, {{"q", "0"}}));
  first.metrics.push_back(make_counter("maton_x_total", 20, {{"q", "1"}}));
  (void)diff.augment(std::move(first), 0.0);

  Snapshot second;
  second.metrics.push_back(make_counter("maton_x_total", 11, {{"q", "0"}}));
  second.metrics.push_back(make_counter("maton_x_total", 40, {{"q", "1"}}));
  const Snapshot out = diff.augment(std::move(second), 1.0);
  double q0 = -1.0;
  double q1 = -1.0;
  for (const MetricSnapshot& m : out.metrics) {
    if (m.name != "maton_x_total_per_sec") continue;
    if (m.labels == Labels{{"q", "0"}}) q0 = m.value;
    if (m.labels == Labels{{"q", "1"}}) q1 = m.value;
  }
  EXPECT_DOUBLE_EQ(q0, 1.0);
  EXPECT_DOUBLE_EQ(q1, 20.0);
}

TEST(ScrapeDiff, CounterResetRebaselinesSilently) {
  ScrapeDiff diff;
  Snapshot first;
  first.metrics.push_back(make_counter("maton_x_total", 500));
  (void)diff.augment(std::move(first), 0.0);

  // The counter went backwards (reset_values between scrapes): no
  // negative rate, no rate at all for this interval.
  Snapshot second;
  second.metrics.push_back(make_counter("maton_x_total", 10));
  const Snapshot out2 = diff.augment(std::move(second), 10.0);
  EXPECT_EQ(find(out2, "maton_x_total_per_sec"), nullptr);

  // The next interval diffs against the re-baselined value.
  Snapshot third;
  third.metrics.push_back(make_counter("maton_x_total", 110));
  const Snapshot out3 = diff.augment(std::move(third), 20.0);
  const MetricSnapshot* rate = find(out3, "maton_x_total_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->value, 10.0);
}

TEST(ScrapeDiff, GaugesTrackHighWatermarks) {
  ScrapeDiff diff;
  Snapshot a;
  a.metrics.push_back(make_gauge("maton_rss_bytes", 5.0));
  const Snapshot out_a = diff.augment(std::move(a), 0.0);
  const MetricSnapshot* hwm = find(out_a, "maton_rss_bytes_hwm");
  ASSERT_NE(hwm, nullptr);
  EXPECT_DOUBLE_EQ(hwm->value, 5.0);

  Snapshot b;
  b.metrics.push_back(make_gauge("maton_rss_bytes", 3.0));
  const Snapshot out_b = diff.augment(std::move(b), 1.0);
  EXPECT_DOUBLE_EQ(find(out_b, "maton_rss_bytes_hwm")->value, 5.0);

  Snapshot c;
  c.metrics.push_back(make_gauge("maton_rss_bytes", 9.0));
  const Snapshot out_c = diff.augment(std::move(c), 2.0);
  EXPECT_DOUBLE_EQ(find(out_c, "maton_rss_bytes_hwm")->value, 9.0);
}

TEST(ScrapeDiff, BuildInfoGetsNoWatermark) {
  ScrapeDiff diff;
  Snapshot in;
  in.metrics.push_back(make_gauge("maton_build_info", 1.0,
                                  {{"build_type", "Release"}}));
  const Snapshot out = diff.augment(std::move(in), 0.0);
  EXPECT_EQ(find(out, "maton_build_info_hwm"), nullptr);
}

TEST(ScrapeDiff, FallbackRatioFromIncrementalCounters) {
  ScrapeDiff diff;
  Snapshot in;
  in.metrics.push_back(
      make_counter("maton_cp_incremental_hits_total", 30));
  in.metrics.push_back(
      make_counter("maton_cp_incremental_fallbacks_total", 10));
  const Snapshot out = diff.augment(std::move(in), 0.0);
  const MetricSnapshot* ratio =
      find(out, "maton_cp_incremental_fallback_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->value, 0.25);
}

TEST(ScrapeDiff, FallbackRatioDefaultsToZero) {
  ScrapeDiff diff;
  const Snapshot out = diff.augment(Snapshot{}, 0.0);
  const MetricSnapshot* ratio =
      find(out, "maton_cp_incremental_fallback_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->value, 0.0);
}

TEST(ScrapeDiff, OutputStaysSortedByNameThenLabels) {
  ScrapeDiff diff;
  Snapshot in;
  in.metrics.push_back(make_counter("maton_a_total", 1));
  in.metrics.push_back(make_gauge("maton_z_gauge", 2.0));
  (void)diff.augment(Snapshot{in}, 0.0);
  const Snapshot out = diff.augment(std::move(in), 1.0);
  EXPECT_TRUE(std::is_sorted(
      out.metrics.begin(), out.metrics.end(),
      [](const MetricSnapshot& a, const MetricSnapshot& b) {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
      }));
}

TEST(DerivedGauges, BuildInfoMatchesCompiledProvenance) {
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_EQ(info.obs_enabled, kEnabled);

  update_derived_gauges();
  const Snapshot scrape = MetricRegistry::global().scrape();
  const MetricSnapshot* build = find(scrape, "maton_build_info");
  ASSERT_NE(build, nullptr);
  const Labels expected = {{"build_type", info.build_type},
                           {"cores", std::to_string(info.host_cores)},
                           {"obs", info.obs_enabled ? "on" : "off"}};
  EXPECT_EQ(build->labels, expected);
#if !defined(MATON_OBS_OFF)
  EXPECT_DOUBLE_EQ(build->value, 1.0);
#endif
  EXPECT_NE(find(scrape, "maton_rss_bytes"), nullptr);
  EXPECT_NE(find(scrape, "maton_trace_ring_capacity"), nullptr);
}

#if !defined(MATON_OBS_OFF)
TEST(DerivedGauges, TrackRssAndRingOccupancy) {
  { const TraceSpan span("derived_gauges_span"); }
  update_derived_gauges();
  const Snapshot scrape = MetricRegistry::global().scrape();
  EXPECT_GT(find(scrape, "maton_rss_bytes")->value, 0.0);
  EXPECT_GT(find(scrape, "maton_rss_peak_bytes")->value, 0.0);
  EXPECT_GE(find(scrape, "maton_trace_rings")->value, 1.0);
  EXPECT_GE(find(scrape, "maton_trace_ring_events")->value, 1.0);
  EXPECT_GE(find(scrape, "maton_trace_spans_recorded_total")->value, 1.0);
  EXPECT_EQ(find(scrape, "maton_trace_ring_capacity")->value,
            find(scrape, "maton_trace_rings")->value *
                static_cast<double>(TraceRing::kCapacity));
}
#endif

}  // namespace
}  // namespace maton::obs
