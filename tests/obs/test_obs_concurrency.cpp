// Concurrency soak over the whole observability plane, aimed at TSan:
// writer threads hammer every metric kind across all registry shards and
// emit nested spans into their per-thread trace rings, while the main
// thread scrapes the registry and merges the rings concurrently. The
// assertions are the scrape-consistency contract: no torn snapshots and
// counters monotone across consecutive scrapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/diff.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace maton::obs {
namespace {

TEST(ObsConcurrency, ScrapeWhileWritingStaysMonotoneAndUntorn) {
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kIterations = 20000;

  MetricRegistry& reg = MetricRegistry::global();
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, &done, w] {
      // Per-writer labels exercise distinct metric objects; the shared
      // counter exercises cross-thread shard summation.
      Counter& mine = reg.counter("maton_concurrency_writer_total",
                                  {{"writer", std::to_string(w)}});
      Counter& shared = reg.counter("maton_concurrency_shared_total");
      Gauge& gauge = reg.gauge("maton_concurrency_gauge",
                               {{"writer", std::to_string(w)}});
      Histogram& histogram = reg.histogram("maton_concurrency_latency");
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        const TraceSpan outer("writer_iter");
        mine.add();
        shared.add(2);
        gauge.set(static_cast<double>(i));
        histogram.observe(static_cast<double>(i % 4096));
        if (i % 64 == 0) {
          const TraceSpan inner("writer_flush");
          gauge.add(0.5);
        }
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  ScrapeDiff diff;
  std::map<std::string, double> last;
  std::uint64_t scrapes = 0;
  double clock = 0.0;
  while (done.load(std::memory_order_acquire) < kWriters) {
    update_derived_gauges();
    const Snapshot snapshot = diff.augment(reg.scrape(), clock);
    clock += 1.0;
    ++scrapes;
    for (const MetricSnapshot& m : snapshot.metrics) {
      if (m.kind != MetricKind::kCounter) continue;
      std::string key = m.name;
      for (const auto& [k, v] : m.labels) key += "|" + k + "=" + v;
      const auto prev = last.find(key);
      if (prev != last.end()) {
        EXPECT_GE(m.value, prev->second) << key << " went backwards";
        prev->second = m.value;
      } else {
        last.emplace(std::move(key), m.value);
      }
    }
    // Merge the per-thread rings while the writers are still recording.
    const std::string trace = render_chrome_trace();
    EXPECT_NE(trace.find("\"traceEvents\":"), std::string::npos);
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GE(scrapes, 1u);

  // Quiesced totals add up exactly: nothing was lost to tearing.
  const Snapshot final_scrape = reg.scrape();
  double shared_total = -1.0;
  double writer_sum = 0.0;
  std::uint64_t histogram_count = 0;
  for (const MetricSnapshot& m : final_scrape.metrics) {
    if (m.name == "maton_concurrency_shared_total") shared_total = m.value;
    if (m.name == "maton_concurrency_writer_total") writer_sum += m.value;
    if (m.name == "maton_concurrency_latency") histogram_count = m.count;
  }
  if constexpr (kEnabled) {
    EXPECT_EQ(shared_total,
              static_cast<double>(2 * kWriters * kIterations));
    EXPECT_EQ(writer_sum, static_cast<double>(kWriters * kIterations));
    EXPECT_GE(histogram_count, kWriters * kIterations);
    // Every writer thread's spans are visible in one merged export.
    const TraceRing::Contents merged = TracerRegistry::global().merged();
    EXPECT_GT(merged.total_recorded, 0u);
  }
}

}  // namespace
}  // namespace maton::obs
