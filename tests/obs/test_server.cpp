#include "obs/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace maton::obs {
namespace {

#if defined(MATON_OBS_OFF)

TEST(ServerCompiledOut, StartReturnsUnimplemented) {
  ExpoServer server;
  const Status started = server.start("127.0.0.1:0");
  EXPECT_EQ(started.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(ServerCompiledOut, EnvStartPropagatesUnimplemented) {
  ExpoServer server;
  ::setenv("MATON_METRICS_ADDR", "127.0.0.1:0", 1);
  const Status started = start_from_env(server);
  ::unsetenv("MATON_METRICS_ADDR");
  EXPECT_EQ(started.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(server.running());
}

#else

/// Blocking one-shot HTTP GET against 127.0.0.1:`port`; returns the full
/// response (status line + headers + body) or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

[[nodiscard]] std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// Value of the first sample line starting exactly with `name ` in a
/// Prometheus text body; NaN when absent.
[[nodiscard]] double sample_value(const std::string& body,
                                  const std::string& name) {
  std::size_t pos = 0;
  const std::string prefix = name + " ";
  while (pos < body.size()) {
    const std::size_t eol = body.find('\n', pos);
    const std::string line =
        body.substr(pos, eol == std::string::npos ? body.size() - pos
                                                  : eol - pos);
    if (line.rfind(prefix, 0) == 0) {
      return std::strtod(line.c_str() + prefix.size(), nullptr);
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start("127.0.0.1:0").is_ok());
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }
  ExpoServer server_;
};

TEST_F(ServerTest, HealthzRespondsOk) {
  const std::string response = http_get(server_.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST_F(ServerTest, UnknownPathIs404) {
  const std::string response = http_get(server_.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
}

TEST_F(ServerTest, MetricsServesAugmentedPrometheusText) {
  MetricRegistry::global().counter("maton_test_server_total").add(3);
  const std::string response = http_get(server_.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = body_of(response);
  // Derived process gauges ride along with every scrape.
  EXPECT_NE(body.find("maton_build_info{"), std::string::npos);
  EXPECT_NE(body.find("maton_rss_bytes "), std::string::npos);
  EXPECT_NE(body.find("maton_trace_rings "), std::string::npos);
  EXPECT_NE(body.find("maton_cp_incremental_fallback_ratio "),
            std::string::npos);
  EXPECT_GE(sample_value(body, "maton_test_server_total"), 3.0);
}

TEST_F(ServerTest, ConsecutiveScrapesSeeMonotoneCountersAndRates) {
  Counter& counter =
      MetricRegistry::global().counter("maton_test_server_total");
  counter.add(10);
  const double first = sample_value(
      body_of(http_get(server_.port(), "/metrics")),
      "maton_test_server_total");
  counter.add(5);
  const std::string second_body =
      body_of(http_get(server_.port(), "/metrics"));
  const double second =
      sample_value(second_body, "maton_test_server_total");
  EXPECT_GE(second, first + 5.0);
  // The second scrape has a previous scrape to diff against, so the
  // counter's per-interval rate gauge appears and is non-negative.
  const double rate =
      sample_value(second_body, "maton_test_server_total_per_sec");
  EXPECT_FALSE(std::isnan(rate));
  EXPECT_GE(rate, 0.0);
}

TEST_F(ServerTest, MetricsJsonServesSameSnapshot) {
  const std::string response = http_get(server_.port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(body_of(response).find("maton_build_info"), std::string::npos);
}

TEST_F(ServerTest, TraceServesMergedChromeTrace) {
  { const TraceSpan span("server_test_span"); }
  const std::string response = http_get(server_.port(), "/trace");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"traceEvents\":"), std::string::npos);
  EXPECT_NE(body.find("server_test_span"), std::string::npos);
}

TEST_F(ServerTest, SecondStartFailsWhileRunning) {
  ExpoServer& server = server_;
  const Status again = server.start("127.0.0.1:0");
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent and the server can be restarted afterwards.
  server.stop();
  ASSERT_TRUE(server.start("127.0.0.1:0").is_ok());
  EXPECT_NE(http_get(server.port(), "/healthz").find("200"),
            std::string::npos);
}

TEST(ServerStart, RejectsMalformedAddresses) {
  ExpoServer server;
  EXPECT_EQ(server.start("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.start("127.0.0.1:notaport").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.start("999.999.0.1:80").code(),
            StatusCode::kInvalidArgument);
}

TEST(ServerStart, EnvUnsetIsOkAndNotRunning) {
  ::unsetenv("MATON_METRICS_ADDR");
  ExpoServer server;
  EXPECT_TRUE(start_from_env(server).is_ok());
  EXPECT_FALSE(server.running());
}

TEST(ServerStart, EnvSetStartsTheServer) {
  ::setenv("MATON_METRICS_ADDR", "127.0.0.1:0", 1);
  ExpoServer server;
  const Status started = start_from_env(server);
  ::unsetenv("MATON_METRICS_ADDR");
  ASSERT_TRUE(started.is_ok());
  EXPECT_TRUE(server.running());
  EXPECT_NE(http_get(server.port(), "/healthz").find("200"),
            std::string::npos);
}

#endif  // MATON_OBS_OFF

}  // namespace
}  // namespace maton::obs
