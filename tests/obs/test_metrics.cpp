#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace maton::obs {
namespace {

#if defined(MATON_OBS_OFF)
// The suite below exercises live metric state; under MATON_OBS_OFF every
// mutator is compiled to an empty body, which ScrapeIsEmptyWhenCompiledOut
// covers.
TEST(MetricsCompiledOut, ScrapeIsEmptyWhenCompiledOut) {
  MetricRegistry registry;
  registry.counter("maton_test_off").add(17);
  const Snapshot snap = registry.scrape();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].value, 0.0);
}
#else

TEST(Counter, AddAndTotal) {
  MetricRegistry registry;
  Counter& c = registry.counter("maton_test_total");
  EXPECT_EQ(c.total(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Registry, SameNameAndLabelsReturnsSameMetric) {
  MetricRegistry registry;
  Counter& a = registry.counter("maton_test_total", {{"t", "x"}});
  Counter& b = registry.counter("maton_test_total", {{"t", "x"}});
  Counter& other = registry.counter("maton_test_total", {{"t", "y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  MetricRegistry registry;
  Counter& a =
      registry.counter("maton_test_total", {{"a", "1"}, {"b", "2"}});
  Counter& b =
      registry.counter("maton_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindMismatchIsContractViolation) {
  MetricRegistry registry;
  registry.counter("maton_test_metric");
  EXPECT_THROW((void)registry.gauge("maton_test_metric"),
               ContractViolation);
}

TEST(Registry, ConcurrentRegistrationAndAddsUnderThreadPool) {
  MetricRegistry registry;
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 10000;
  // Every task hammers the same counter plus a per-(task % 8) labeled
  // one, registering through the full name-lookup path each iteration so
  // registration, lookup, and shard adds all race.
  pool.parallel_for(kTasks, pool.max_parallelism(),
                    [&](std::size_t task, std::size_t /*worker*/) {
                      const std::string lane =
                          std::to_string(task % 8);
                      for (std::size_t i = 0; i < kAddsPerTask; ++i) {
                        registry.counter("maton_test_shared_total").add();
                        registry
                            .counter("maton_test_lane_total",
                                     {{"lane", lane}})
                            .add(2);
                        registry.histogram("maton_test_lat").observe(i);
                      }
                    });
  EXPECT_EQ(registry.counter("maton_test_shared_total").total(),
            kTasks * kAddsPerTask);
  std::uint64_t lane_sum = 0;
  for (std::size_t lane = 0; lane < 8; ++lane) {
    lane_sum += registry
                    .counter("maton_test_lane_total",
                             {{"lane", std::to_string(lane)}})
                    .total();
  }
  EXPECT_EQ(lane_sum, kTasks * kAddsPerTask * 2);
  EXPECT_EQ(registry.histogram("maton_test_lat").totals().count,
            kTasks * kAddsPerTask);
}

TEST(Histogram, BucketBoundaries) {
  // Values below kSub are exact buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v) << v;
  }
  // From 8 up, 8 sub-buckets per octave; boundaries land on
  // lower <= v < upper for every bucket.
  const std::uint64_t probes[] = {8,   9,    15,  16,  17,  31,
                                  32,  63,   64,  100, 1023, 1024,
                                  1u << 20,  (1u << 20) + 1,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    const std::size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::bucket_lower(b), v) << v;
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::bucket_upper(b)) << v;
    }
  }
  // Buckets are monotone: lower bounds strictly increase.
  for (std::size_t b = 1; b < Histogram::kNumBuckets; ++b) {
    EXPECT_GT(Histogram::bucket_lower(b), Histogram::bucket_lower(b - 1))
        << b;
  }
}

// Golden bucket map at the power-of-two edges: the exact index and
// [lower, upper) bounds for each probe, pinned so any change to the
// log-linear layout (kSubBits, octave arithmetic) shows up as a diff
// here, not as silently re-shaped latency histograms.
TEST(Histogram, GoldenBucketEdges) {
  struct Golden {
    std::uint64_t value;
    std::size_t bucket;
    std::uint64_t lower;
    double upper;
  };
  const Golden golden[] = {
      // Exact small buckets end at 7; the first octave starts at 8.
      {0, 0, 0, 1.0},
      {7, 7, 7, 8.0},
      {8, 8, 8, 9.0},
      {9, 9, 9, 10.0},
      {15, 15, 15, 16.0},
      // Octave [16, 32): 8 sub-buckets of width 2 — 16 and 17 coalesce.
      {16, 16, 16, 18.0},
      {17, 16, 16, 18.0},
      {31, 23, 30, 32.0},
      {32, 24, 32, 36.0},
      // Octave [128, 256): width-16 sub-buckets.
      {255, 47, 240, 256.0},
      {256, 48, 256, 288.0},
      {1023, 63, 960, 1024.0},
      {1024, 64, 1024, 1152.0},
      {std::uint64_t{1} << 20, 144, std::uint64_t{1} << 20,
       static_cast<double>((std::uint64_t{8} << 17) + (std::uint64_t{1} << 17))},
  };
  for (const Golden& g : golden) {
    EXPECT_EQ(Histogram::bucket_of(g.value), g.bucket) << g.value;
    EXPECT_EQ(Histogram::bucket_lower(g.bucket), g.lower) << g.value;
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(g.bucket), g.upper) << g.value;
  }
  // The top bucket holds the largest representable value and is open.
  const std::size_t top =
      Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(top, Histogram::kNumBuckets - 1);
  EXPECT_EQ(top, 495u);
  EXPECT_EQ(Histogram::bucket_upper(top),
            std::numeric_limits<double>::infinity());
  // Relative sub-bucket width stays within the documented 12.5% bound.
  for (std::size_t b = Histogram::kSub; b + 1 < Histogram::kNumBuckets;
       ++b) {
    const double lower = static_cast<double>(Histogram::bucket_lower(b));
    EXPECT_LE(Histogram::bucket_upper(b) - lower, lower * 0.125 + 1e-9)
        << b;
  }
}

TEST(Histogram, ObserveClampsAndCounts) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("maton_test_lat");
  h.observe(-5.0);  // clamps to 0
  h.observe(0.0);
  h.observe(7.0);
  h.observe(8.0);
  h.observe(1e30);  // clamps into the top bucket
  const Histogram::Totals t = h.totals();
  EXPECT_EQ(t.count, 5u);
  EXPECT_EQ(t.buckets[0], 2u);  // -5 and 0
  EXPECT_EQ(t.buckets[7], 1u);
  EXPECT_EQ(t.buckets[Histogram::bucket_of(
                std::numeric_limits<std::uint64_t>::max())],
            1u);
}

TEST(Registry, ScrapeMatchesShardedState) {
  MetricRegistry registry;
  util::ThreadPool pool(4);
  Counter& c = registry.counter("maton_test_total");
  Histogram& h = registry.histogram("maton_test_lat");
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kOps = 5000;
  pool.parallel_for(kTasks, pool.max_parallelism(),
                    [&](std::size_t /*task*/, std::size_t /*worker*/) {
                      for (std::size_t i = 0; i < kOps; ++i) {
                        c.add(3);
                        h.observe(static_cast<double>(i % 100));
                      }
                    });
  const Snapshot snap = registry.scrape();
  ASSERT_EQ(snap.metrics.size(), 2u);
  // The scrape aggregates exactly what the shards hold.
  for (const MetricSnapshot& m : snap.metrics) {
    if (m.kind == MetricKind::kCounter) {
      EXPECT_EQ(m.value, static_cast<double>(kTasks * kOps * 3));
    } else {
      EXPECT_EQ(m.count, kTasks * kOps);
      std::uint64_t bucket_sum = 0;
      for (const auto& [upper, count] : m.buckets) bucket_sum += count;
      EXPECT_EQ(bucket_sum, kTasks * kOps);
      // Σ of (i % 100) over kOps iterations, per task.
      const std::uint64_t per_task =
          (kOps / 100) * (99 * 100 / 2);
      EXPECT_DOUBLE_EQ(m.sum, static_cast<double>(kTasks * per_task));
    }
  }
}

TEST(Gauge, SetAddAndScrape) {
  MetricRegistry registry;
  Gauge& g = registry.gauge("maton_test_occupancy");
  g.set(5.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  const Snapshot snap = registry.scrape();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap.metrics[0].value, 7.5);
}

#endif  // !MATON_OBS_OFF

}  // namespace
}  // namespace maton::obs
