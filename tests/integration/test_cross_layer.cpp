// Cross-layer property: for random tables, the core pipeline evaluator,
// the reference program executor, and every switch model must implement
// the same packet-processing function — before and after normalization.
#include <gtest/gtest.h>

#include <set>

#include "core/equivalence.hpp"
#include "core/synthesis.hpp"
#include "dataplane/switch.hpp"
#include "util/rng.hpp"

namespace maton {
namespace {

/// Random exact-match table over three wire fields and two actions
/// (output port + one metadata-ish rewrite mapped to a register).
core::Table random_table(Rng& rng) {
  core::Schema schema;
  schema.add_match("ip_dst", core::ValueCodec::kIpv4);
  schema.add_match("tcp_dst", core::ValueCodec::kPort, 16);
  schema.add_action("pool", core::ValueCodec::kPlain, 16);
  schema.add_action("out", core::ValueCodec::kPort, 16);
  core::Table t("rand", std::move(schema));
  std::set<std::pair<core::Value, core::Value>> used;
  const std::size_t rows = 3 + rng.index(12);
  for (std::size_t r = 0; r < rows; ++r) {
    const core::Value dst = 0x0a000000 + rng.uniform(0, 5);
    const core::Value port = 1000 + rng.uniform(0, 3);
    if (!used.insert({dst, port}).second) continue;
    // Few pools → plenty of dependencies to normalize on.
    const core::Value pool = rng.uniform(0, 2);
    t.add_row({dst, port, pool, 100 + pool});
  }
  return t;
}

dp::FlowKey key_from_packet(const core::PacketState& packet) {
  dp::FlowKey key;
  key.set(dp::FieldId::kIpDst, packet.at("ip_dst"));
  key.set(dp::FieldId::kTcpDst, packet.at("tcp_dst"));
  return key;
}

class CrossLayer : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossLayer, CoreAndDataplaneAgreeThroughNormalization) {
  Rng rng(GetParam());
  const core::Table t = random_table(rng);

  const auto normalized =
      core::normalize(t, {.target = core::NormalForm::kBoyceCodd,
                          .join = core::JoinKind::kMetadata});
  ASSERT_TRUE(normalized.is_ok());
  const core::Pipeline& pipeline = normalized.value().pipeline;

  const auto program = dp::compile(pipeline);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();

  std::unique_ptr<dp::SwitchModel> models[] = {
      dp::make_eswitch_model(), dp::make_ovs_model(),
      dp::make_lagopus_model()};
  for (auto& sw : models) {
    ASSERT_TRUE(sw->load(program.value()).is_ok());
  }

  // Probe every entry plus misses.
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const core::PacketState packet = core::packet_for_row(t, r);
    const core::EvalResult core_result = pipeline.evaluate(packet);
    ASSERT_TRUE(core_result.hit);
    const dp::FlowKey key = key_from_packet(packet);
    const dp::ExecResult ref = dp::execute_reference(program.value(), key);
    ASSERT_TRUE(ref.hit);
    ASSERT_EQ(ref.out_port, core_result.actions.at("out"));
    for (auto& sw : models) {
      const dp::ExecResult got = sw->process(key);
      ASSERT_TRUE(got.hit) << sw->name();
      ASSERT_EQ(got.out_port, ref.out_port) << sw->name();
    }
  }
  for (int probe = 0; probe < 32; ++probe) {
    core::PacketState packet{
        {"ip_dst", 0x0a000000 + rng.uniform(0, 7)},
        {"tcp_dst", 1000 + rng.uniform(0, 5)}};
    const bool core_hit = pipeline.evaluate(packet).hit;
    const dp::FlowKey key = key_from_packet(packet);
    ASSERT_EQ(core_hit, dp::execute_reference(program.value(), key).hit);
    for (auto& sw : models) {
      ASSERT_EQ(core_hit, sw->process(key).hit) << sw->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CrossLayer,
                         ::testing::Range<std::uint64_t>(700, 720));

}  // namespace
}  // namespace maton
