// End-to-end integration: the whole stack in one flow — workload
// generation → FD mining → normal-form analysis → normalization →
// NetKAT verification → data-plane compilation → execution on every
// switch model → live control-plane updates and monitoring.
#include <gtest/gtest.h>

#include "controlplane/controller.hpp"
#include "controlplane/monitor.hpp"
#include "core/denormalize.hpp"
#include "core/equivalence.hpp"
#include "core/synthesis.hpp"
#include "netkat/table_codec.hpp"
#include "controlplane/churn.hpp"
#include "util/format.hpp"
#include "workloads/l3fwd.hpp"
#include "workloads/traffic.hpp"

namespace maton {
namespace {

TEST(EndToEnd, PaperStoryOnOneWorkload) {
  // 1. The §5 workload.
  const auto gwlb =
      workloads::make_gwlb({.num_services = 10, .num_backends = 8});

  // 2. Model dependencies; normalize with the goto join.
  core::FdSet model = gwlb.model_fds;
  model.add(gwlb.universal.schema().match_set(),
            gwlb.universal.schema().all());
  const auto normalized = core::normalize(
      gwlb.universal, {.join = core::JoinKind::kGoto, .model_fds = model});
  ASSERT_TRUE(normalized.is_ok());
  const core::Pipeline& pipeline = normalized.value().pipeline;

  // 3. The normalized form is smaller and provably equivalent (core and
  //    NetKAT semantics).
  EXPECT_LT(pipeline.field_count(),
            core::Pipeline::single(gwlb.universal).field_count());
  EXPECT_TRUE(core::check_equivalence(gwlb.universal, pipeline).equivalent);
  EXPECT_TRUE(
      netkat::verify_against_netkat(gwlb.universal, pipeline).consistent);

  // 4. Denormalizing it recovers the universal function.
  const auto flat = core::flatten(pipeline);
  ASSERT_TRUE(flat.is_ok());
  EXPECT_EQ(flat.value().num_rows(), gwlb.universal.num_rows());

  // 5. Compile both representations and run the same trace on every
  //    switch model: identical forwarding everywhere.
  const auto uni_prog = dp::compile(core::Pipeline::single(gwlb.universal));
  const auto norm_prog = dp::compile(pipeline);
  ASSERT_TRUE(uni_prog.is_ok());
  ASSERT_TRUE(norm_prog.is_ok());
  const auto trace = workloads::make_gwlb_traffic(
      gwlb, {.num_packets = 512, .hit_fraction = 0.9});

  std::unique_ptr<dp::SwitchModel> models[] = {
      dp::make_eswitch_model(), dp::make_ovs_model(),
      dp::make_lagopus_model(), std::make_unique<dp::HwTcamModel>()};
  for (auto& sw : models) {
    ASSERT_TRUE(sw->load(uni_prog.value()).is_ok());
    std::vector<dp::ExecResult> uni_results;
    for (const auto& pkt : trace) {
      const auto key = dp::parse(pkt);
      ASSERT_TRUE(key.has_value());
      uni_results.push_back(sw->process(*key));
    }
    ASSERT_TRUE(sw->load(norm_prog.value()).is_ok());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto key = dp::parse(trace[i]);
      const dp::ExecResult r = sw->process(*key);
      ASSERT_EQ(r.hit, uni_results[i].hit) << sw->name();
      if (r.hit) {
        ASSERT_EQ(r.out_port, uni_results[i].out_port) << sw->name();
      }
    }
  }
}

TEST(EndToEnd, ChurnAndMonitorOnNormalizedPipeline) {
  const auto gwlb =
      workloads::make_gwlb({.num_services = 6, .num_backends = 4});
  auto sw = dp::make_eswitch_model();
  cp::Controller controller(
      std::make_unique<cp::GwlbBinding>(gwlb, cp::Representation::kGoto),
      *sw);

  // Drive traffic, churn, more traffic; the monitor must account every
  // packet of the service across the port move.
  const auto& binding = controller.binding();
  auto hit_service = [&](std::size_t s, int n) {
    dp::FlowKey key;
    key.set(dp::FieldId::kIpSrc, 0x40000000ULL);
    key.set(dp::FieldId::kIpDst, binding.gwlb().services[s].vip);
    key.set(dp::FieldId::kTcpDst, binding.gwlb().services[s].port);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(sw->process(key).hit);
    }
  };

  hit_service(2, 7);
  ASSERT_TRUE(
      controller.apply(cp::MoveServicePort{.service = 2, .new_port = 33333})
          .is_ok());
  hit_service(2, 5);

  cp::TrafficMonitor monitor(controller.binding(), *sw);
  const auto traffic = monitor.read_service(2);
  ASSERT_TRUE(traffic.is_ok());
  EXPECT_EQ(traffic.value().packets, 12u);
  EXPECT_EQ(traffic.value().counters_read, 1u);
  EXPECT_EQ(controller.stats().inconsistency_window, 0u);
}

TEST(EndToEnd, UniversalChurnPaysTheFullPrice) {
  const auto gwlb =
      workloads::make_gwlb({.num_services = 6, .num_backends = 4});
  auto sw = dp::make_eswitch_model();
  cp::Controller controller(
      std::make_unique<cp::GwlbBinding>(gwlb,
                                        cp::Representation::kUniversal),
      *sw);
  const auto schedule = cp::make_port_churn(
      {.rate_per_second = 30, .duration_seconds = 1.0, .num_services = 6});
  for (const auto& timed : schedule) {
    ASSERT_TRUE(controller.apply(timed.intent).is_ok());
  }
  EXPECT_EQ(controller.stats().rule_updates_issued, schedule.size() * 4);
  EXPECT_EQ(controller.stats().inconsistency_window, schedule.size() * 3);
}

TEST(EndToEnd, L3NormalizationOnSwitchModels) {
  // The Fig. 2 pipeline, normalized and executed: same forwarding + MAC
  // rewrites through the compiled 3NF pipeline as through the universal
  // table.
  const auto l3 = workloads::make_l3fwd(
      {.num_prefixes = 64, .num_nexthops = 8, .num_ports = 4});
  core::FdSet model = l3.model_fds;
  model.add(l3.universal.schema().match_set(), l3.universal.schema().all());
  const auto normalized = core::normalize(
      l3.universal,
      {.join = core::JoinKind::kMetadata, .model_fds = model});
  ASSERT_TRUE(normalized.is_ok());

  const auto uni_prog = dp::compile(core::Pipeline::single(l3.universal));
  const auto norm_prog = dp::compile(normalized.value().pipeline);
  ASSERT_TRUE(uni_prog.is_ok());
  ASSERT_TRUE(norm_prog.is_ok());

  auto uni_sw = dp::make_eswitch_model();
  auto norm_sw = dp::make_eswitch_model();
  ASSERT_TRUE(uni_sw->load(uni_prog.value()).is_ok());
  ASSERT_TRUE(norm_sw->load(norm_prog.value()).is_ok());

  // Probe each prefix (plus one miss).
  for (std::size_t r = 0; r < l3.universal.num_rows(); ++r) {
    dp::FlowKey key;
    key.set(dp::FieldId::kEthType, 0x0800);
    key.set(dp::FieldId::kIpDst,
            l3.universal.at(r, workloads::kL3IpDst) >> 8);
    const auto a = uni_sw->process(key);
    const auto b = norm_sw->process(key);
    ASSERT_TRUE(a.hit);
    ASSERT_EQ(a.hit, b.hit);
    ASSERT_EQ(a.out_port, b.out_port);
  }
  dp::FlowKey miss;
  miss.set(dp::FieldId::kEthType, 0x0800);
  miss.set(dp::FieldId::kIpDst, ipv4(203, 0, 113, 1));
  EXPECT_FALSE(uni_sw->process(miss).hit);
  EXPECT_FALSE(norm_sw->process(miss).hit);
}

}  // namespace
}  // namespace maton
